//! Feature-gated retire-loop phase timers.
//!
//! The observability layer wants to know where a host cycle goes for each
//! retired guest instruction: fetching the word, decoding it, executing it,
//! or feeding observers. Measuring that honestly costs two `Instant::now()`
//! calls per scope, which is far too expensive to leave in the default hot
//! loop — so the timers are compiled in only under the `phase-timers`
//! feature and collapse to zero-sized no-ops otherwise.
//!
//! Usage (executors and the core run loop):
//!
//! ```
//! use simcore::phase::{self, Phase};
//! {
//!     let _t = phase::scoped(Phase::Execute);
//!     // ... work attributed to the execute phase ...
//! }
//! let breakdown = phase::take(); // zeros unless `phase-timers` is on
//! assert_eq!(breakdown.total_ns(), if phase::enabled() { breakdown.total_ns() } else { 0 });
//! ```
//!
//! Accumulation is thread-local: each emulation run happens on one thread,
//! and [`take`] snapshots-and-resets that thread's accumulator, so parallel
//! matrix cells never mix their phase costs.

/// One phase of the retire loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Reading the instruction word from guest memory (decode-cache miss).
    Fetch = 0,
    /// Decode-cache lookup and (on miss) decoding the fetched word.
    Decode = 1,
    /// Executing the decoded instruction against architectural state.
    Execute = 2,
    /// Streaming the retirement record through the attached observers.
    Observe = 3,
}

/// Nanoseconds attributed to each retire-loop phase. All-zero when the
/// `phase-timers` feature is off (the accessors still work, so reporting
/// code needs no `cfg`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseNanos {
    /// Instruction-word fetch time (cache-miss path only).
    pub fetch_ns: u64,
    /// Decode-cache lookup + decode time.
    pub decode_ns: u64,
    /// Execution time.
    pub execute_ns: u64,
    /// Observer-dispatch time.
    pub observe_ns: u64,
}

impl PhaseNanos {
    /// Sum over all phases.
    pub fn total_ns(&self) -> u64 {
        self.fetch_ns + self.decode_ns + self.execute_ns + self.observe_ns
    }

    /// `(phase name, nanoseconds)` pairs in fixed order.
    pub fn entries(&self) -> [(&'static str, u64); 4] {
        [
            ("fetch", self.fetch_ns),
            ("decode", self.decode_ns),
            ("execute", self.execute_ns),
            ("observe", self.observe_ns),
        ]
    }

    /// One-line rendering as percentages of the phase total, e.g.
    /// `fetch 1% | decode 17% | execute 64% | observe 18%`. Empty when no
    /// time was attributed (timers off or nothing ran).
    pub fn summary(&self) -> String {
        let total = self.total_ns();
        if total == 0 {
            return String::new();
        }
        self.entries()
            .iter()
            .map(|(name, ns)| format!("{name} {:.0}%", *ns as f64 * 100.0 / total as f64))
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

/// Whether the `phase-timers` feature is compiled in.
pub fn enabled() -> bool {
    cfg!(feature = "phase-timers")
}

#[cfg(feature = "phase-timers")]
mod imp {
    use super::{Phase, PhaseNanos};
    use std::cell::Cell;
    use std::time::Instant;

    thread_local! {
        static ACC: Cell<[u64; 4]> = const { Cell::new([0; 4]) };
    }

    /// RAII guard attributing its lifetime to `phase`.
    pub struct PhaseGuard {
        phase: Phase,
        start: Instant,
    }

    impl Drop for PhaseGuard {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos() as u64;
            ACC.with(|acc| {
                let mut a = acc.get();
                a[self.phase as usize] += ns;
                acc.set(a);
            });
        }
    }

    /// Open a scope attributed to `phase`.
    pub fn scoped(phase: Phase) -> PhaseGuard {
        PhaseGuard { phase, start: Instant::now() }
    }

    /// Snapshot this thread's accumulated phase costs and reset them.
    pub fn take() -> PhaseNanos {
        ACC.with(|acc| {
            let a = acc.replace([0; 4]);
            PhaseNanos {
                fetch_ns: a[0],
                decode_ns: a[1],
                execute_ns: a[2],
                observe_ns: a[3],
            }
        })
    }
}

#[cfg(not(feature = "phase-timers"))]
mod imp {
    use super::{Phase, PhaseNanos};

    /// Zero-sized no-op guard (`phase-timers` off).
    pub struct PhaseGuard;

    /// No-op (`phase-timers` off); compiles away entirely.
    #[inline(always)]
    pub fn scoped(_phase: Phase) -> PhaseGuard {
        PhaseGuard
    }

    /// Always the zero breakdown (`phase-timers` off).
    #[inline(always)]
    pub fn take() -> PhaseNanos {
        PhaseNanos::default()
    }
}

pub use imp::{scoped, take, PhaseGuard};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_take_is_zero_or_consistent() {
        // Whatever was accumulated before, take() resets the accumulator.
        let _ = take();
        if !enabled() {
            let _g = scoped(Phase::Execute);
            drop(_g);
            assert_eq!(take(), PhaseNanos::default());
        }
    }

    #[test]
    fn scoped_attributes_to_the_right_phase() {
        let _ = take();
        {
            let _g = scoped(Phase::Decode);
            std::hint::black_box(1 + 1);
        }
        let p = take();
        if enabled() {
            assert!(p.decode_ns > 0 || p.total_ns() == p.decode_ns);
            assert_eq!(p.fetch_ns, 0);
            assert_eq!(p.execute_ns, 0);
        } else {
            assert_eq!(p, PhaseNanos::default());
        }
        // take() resets.
        assert_eq!(take(), PhaseNanos::default());
    }

    #[test]
    fn summary_renders_percentages() {
        let p = PhaseNanos { fetch_ns: 10, decode_ns: 20, execute_ns: 60, observe_ns: 10 };
        let s = p.summary();
        assert!(s.contains("execute 60%"), "{s}");
        assert!(s.contains("fetch 10%"), "{s}");
        assert_eq!(PhaseNanos::default().summary(), "");
        assert_eq!(p.total_ns(), 100);
    }
}
