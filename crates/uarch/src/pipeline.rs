//! Trace-driven pipeline timing models (the paper's §8 Future Work).
//!
//! Both models consume the retirement stream as [`simcore::Observer`]s and
//! estimate cycle counts under finite resources, assuming perfect branch
//! prediction and ideal caches (L1-hit load latency) — the same idealising
//! assumptions as the paper's windowed analysis, but with real issue
//! widths, ROB sizes and execution latencies.
//!
//! * [`InOrderCore`] — dual-issue in-order (Cortex-A55 / SiFive-7-class,
//!   the `-mtune` targets the paper compiled for);
//! * [`OoOCore`] — out-of-order with a ROB, issue width and per-class
//!   functional units (TX2-class by default).

use simcore::{InstGroup, MemAccess, Observer, RetiredInst, WordMap, NUM_REG_SLOTS};

use crate::cache::{CacheConfig, CacheModel};
use crate::latency::LatencyModel;

/// Resource configuration for the pipeline models.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Instructions fetched/issued per cycle.
    pub width: u64,
    /// Reorder-buffer entries (ignored by the in-order model).
    pub rob: usize,
    /// Functional units per class: (FP pipes, integer pipes, load/store
    /// pipes). Branches issue on integer pipes.
    pub fp_units: u64,
    /// Integer pipes.
    pub int_units: u64,
    /// Load/store pipes.
    pub mem_units: u64,
}

impl PipelineConfig {
    /// Dual-issue in-order configuration (Cortex-A55-class).
    pub fn a55() -> Self {
        PipelineConfig { width: 2, rob: 1, fp_units: 1, int_units: 2, mem_units: 1 }
    }

    /// ThunderX2-class OoO: 4-wide, 180-entry ROB.
    pub fn tx2() -> Self {
        PipelineConfig { width: 4, rob: 180, fp_units: 2, int_units: 2, mem_units: 2 }
    }

    /// Apple-M1-Firestorm-class OoO: 8-wide, ~630-entry ROB (the largest
    /// modern ROB the paper cites).
    pub fn firestorm() -> Self {
        PipelineConfig { width: 8, rob: 630, fp_units: 4, int_units: 6, mem_units: 3 }
    }
}

/// Cycle statistics from a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineStats {
    /// Total cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
}

impl PipelineStats {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        self.cycles as f64 / self.retired.max(1) as f64
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.retired as f64 / self.cycles.max(1) as f64
    }

    /// Estimated runtime in milliseconds at `clock_ghz`.
    pub fn runtime_ms(&self, clock_ghz: f64) -> f64 {
        self.cycles as f64 / (clock_ghz * 1e6)
    }
}

fn unit_class(group: InstGroup) -> usize {
    // 0 = FP, 1 = integer (incl. branch/system), 2 = memory.
    match group {
        g if g.is_fp() => 0,
        InstGroup::Load | InstGroup::Store | InstGroup::Atomic => 2,
        _ => 1,
    }
}

/// Word-granular addresses covered by a memory access.
fn words(a: MemAccess) -> impl Iterator<Item = u64> {
    let first = a.addr >> 3;
    let last = (a.addr + a.size.max(1) as u64 - 1) >> 3;
    first..=last
}

/// Optional L1D timing attached to a pipeline model: on a miss, a load's
/// latency becomes `miss_penalty` instead of the model's L1-hit latency.
struct DCache {
    cache: CacheModel,
    miss_penalty: u64,
}

fn dcache_extra(dcache: &mut Option<DCache>, ri: &RetiredInst) -> u64 {
    let Some(d) = dcache.as_mut() else { return 0 };
    let mut all_hit = true;
    for a in ri.mem_reads.iter() {
        all_hit &= d.cache.access_sized(a.addr, a.size);
    }
    for a in ri.mem_writes.iter() {
        // Stores allocate/update but don't stall the pipe (write buffer).
        d.cache.access_sized(a.addr, a.size);
    }
    if ri.group == InstGroup::Load && !all_hit {
        d.miss_penalty
    } else {
        0
    }
}

/// Dual-issue, in-order, stall-on-use pipeline model.
pub struct InOrderCore<M: LatencyModel> {
    model: M,
    config: PipelineConfig,
    cycle: u64,
    issued_this_cycle: u64,
    reg_ready: [u64; NUM_REG_SLOTS],
    mem_ready: WordMap<u64>,
    retired: u64,
    done_max: u64,
    dcache: Option<DCache>,
}

impl<M: LatencyModel> InOrderCore<M> {
    /// Create an in-order core with the given latency model and resources.
    pub fn new(model: M, config: PipelineConfig) -> Self {
        InOrderCore {
            model,
            config,
            cycle: 0,
            issued_this_cycle: 0,
            reg_ready: [0; NUM_REG_SLOTS],
            mem_ready: WordMap::default(),
            retired: 0,
            done_max: 0,
            dcache: None,
        }
    }

    /// Attach an L1D model: loads that miss take `miss_penalty` cycles.
    pub fn with_dcache(mut self, config: CacheConfig, miss_penalty: u64) -> Self {
        self.dcache = Some(DCache { cache: CacheModel::new(config), miss_penalty });
        self
    }

    /// Final statistics (cycles = completion time of the last instruction).
    pub fn stats(&self) -> PipelineStats {
        PipelineStats { cycles: self.done_max, retired: self.retired }
    }
}

impl<M: LatencyModel> Observer for InOrderCore<M> {
    fn on_retire(&mut self, ri: &RetiredInst) {
        // Issue constraint: `width` instructions per cycle, in order.
        if self.issued_this_cycle >= self.config.width {
            self.cycle += 1;
            self.issued_this_cycle = 0;
        }
        // Stall until sources are ready (in-order: the whole front stalls).
        let mut ready = self.cycle;
        for r in ri.srcs.iter() {
            ready = ready.max(self.reg_ready[r.index()]);
        }
        for a in ri.mem_reads.iter() {
            for w in words(a) {
                ready = ready.max(self.mem_ready.get(&w).copied().unwrap_or(0));
            }
        }
        if ready > self.cycle {
            self.cycle = ready;
            self.issued_this_cycle = 0;
        }
        let done =
            self.cycle + self.model.latency(ri.group) + dcache_extra(&mut self.dcache, ri);
        self.done_max = self.done_max.max(done);
        for r in ri.dsts.iter() {
            self.reg_ready[r.index()] = done;
        }
        for a in ri.mem_writes.iter() {
            for w in words(a) {
                self.mem_ready.insert(w, done);
            }
        }
        self.issued_this_cycle += 1;
        self.retired += 1;
    }
}

/// Out-of-order pipeline model: finite ROB, issue width and functional
/// units, perfect branch prediction and renaming.
pub struct OoOCore<M: LatencyModel> {
    model: M,
    config: PipelineConfig,
    /// Completion cycle per architectural register.
    reg_ready: [u64; NUM_REG_SLOTS],
    /// Completion cycle per 8-byte memory word.
    mem_ready: WordMap<u64>,
    /// Retire cycle of the i-th most recent instruction (ring, ROB-sized).
    rob_retire: Vec<u64>,
    rob_head: usize,
    /// Next free cycle per functional-unit class pipe.
    fu_free: [Vec<u64>; 3],
    index: u64,
    last_retire: u64,
    last_done_max: u64,
    dcache: Option<DCache>,
}

impl<M: LatencyModel> OoOCore<M> {
    /// Create an OoO core with the given latency model and resources.
    pub fn new(model: M, config: PipelineConfig) -> Self {
        let fu_free = [
            vec![0u64; config.fp_units as usize],
            vec![0u64; config.int_units as usize],
            vec![0u64; config.mem_units as usize],
        ];
        OoOCore {
            model,
            reg_ready: [0; NUM_REG_SLOTS],
            mem_ready: WordMap::default(),
            rob_retire: vec![0; config.rob.max(1)],
            rob_head: 0,
            fu_free,
            index: 0,
            last_retire: 0,
            last_done_max: 0,
            dcache: None,
            config,
        }
    }

    /// Attach an L1D model: loads that miss take `miss_penalty` cycles.
    pub fn with_dcache(mut self, config: CacheConfig, miss_penalty: u64) -> Self {
        self.dcache = Some(DCache { cache: CacheModel::new(config), miss_penalty });
        self
    }

    /// Final statistics (cycles = completion time of the last instruction).
    pub fn stats(&self) -> PipelineStats {
        PipelineStats { cycles: self.last_done_max.max(self.last_retire), retired: self.index }
    }
}

impl<M: LatencyModel> Observer for OoOCore<M> {
    fn on_retire(&mut self, ri: &RetiredInst) {
        // Dispatch: bounded by fetch width and by ROB occupancy (cannot
        // dispatch until the instruction `rob` places earlier retired).
        let width_cycle = self.index / self.config.width;
        let rob_cycle = self.rob_retire[self.rob_head];
        let dispatch = width_cycle.max(rob_cycle);

        // Operand readiness.
        let mut ready = dispatch;
        for r in ri.srcs.iter() {
            ready = ready.max(self.reg_ready[r.index()]);
        }
        for a in ri.mem_reads.iter() {
            for w in words(a) {
                ready = ready.max(self.mem_ready.get(&w).copied().unwrap_or(0));
            }
        }

        // Functional-unit contention: pick the earliest-free pipe of the
        // class, but not before `ready`.
        let class = unit_class(ri.group);
        let (best, _) = self.fu_free[class]
            .iter()
            .enumerate()
            .min_by_key(|(_, &free)| free)
            .map(|(i, &free)| (i, free))
            .unwrap();
        let start = ready.max(self.fu_free[class][best]);
        self.fu_free[class][best] = start + 1; // pipelined unit: 1/cycle
        let done = start + self.model.latency(ri.group) + dcache_extra(&mut self.dcache, ri);

        for r in ri.dsts.iter() {
            self.reg_ready[r.index()] = done;
        }
        for a in ri.mem_writes.iter() {
            for w in words(a) {
                self.mem_ready.insert(w, done);
            }
        }

        // In-order retirement.
        let retire = done.max(self.last_retire);
        self.last_retire = retire;
        self.last_done_max = self.last_done_max.max(done);
        self.rob_retire[self.rob_head] = retire;
        self.rob_head = (self.rob_head + 1) % self.rob_retire.len();
        self.index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{Tx2Latency, UnitLatency};
    use simcore::{RegId, RegSet};

    fn alu(dst: u8, srcs: &[u8]) -> RetiredInst {
        let mut ri = RetiredInst::new(0, InstGroup::IntAlu);
        ri.dsts = RegSet::of(&[RegId::Int(dst)]);
        ri.srcs = srcs.iter().map(|&r| RegId::Int(r)).collect();
        ri
    }

    fn fp(dst: u8, srcs: &[u8]) -> RetiredInst {
        let mut ri = RetiredInst::new(0, InstGroup::FpAdd);
        ri.dsts = RegSet::of(&[RegId::Fp(dst)]);
        ri.srcs = srcs.iter().map(|&r| RegId::Fp(r)).collect();
        ri
    }

    #[test]
    fn independent_ops_dual_issue() {
        let mut core = InOrderCore::new(UnitLatency, PipelineConfig::a55());
        for i in 0..8u8 {
            core.on_retire(&alu(i, &[]));
        }
        // 8 independent ALU ops on a 2-wide machine: 4 cycles.
        assert_eq!(core.stats().cycles, 4);
    }

    #[test]
    fn dependent_chain_serialises_in_order() {
        let mut core = InOrderCore::new(Tx2Latency, PipelineConfig::a55());
        for _ in 0..4 {
            core.on_retire(&fp(0, &[0])); // serial fadd chain
        }
        // Each fadd waits 6 cycles for the previous: >= 18 cycles.
        assert!(core.stats().cycles >= 18, "got {}", core.stats().cycles);
    }

    #[test]
    fn ooo_hides_independent_latency() {
        // Two back-to-back FP chains: the OoO core overlaps the second
        // chain with the first; the in-order core must finish issuing the
        // first chain before the second starts making progress.
        let seq: Vec<RetiredInst> =
            (0..20).map(|i| if i < 10 { fp(0, &[0]) } else { fp(1, &[1]) }).collect();
        let mut ino = InOrderCore::new(Tx2Latency, PipelineConfig::a55());
        let mut ooo = OoOCore::new(Tx2Latency, PipelineConfig::tx2());
        for ri in &seq {
            ino.on_retire(ri);
            ooo.on_retire(ri);
        }
        assert!(
            ooo.stats().cycles < ino.stats().cycles,
            "ooo {} should beat in-order {}",
            ooo.stats().cycles,
            ino.stats().cycles
        );
    }

    #[test]
    fn rob_limits_lookahead() {
        // One long dependent chain followed by independent work: a tiny ROB
        // cannot run ahead of the chain; a big ROB can.
        let mut seq = Vec::new();
        for _ in 0..50 {
            seq.push(fp(0, &[0]));
        }
        for i in 0..200u8 {
            seq.push(alu(1 + (i % 20), &[]));
        }
        let small = PipelineConfig { rob: 4, ..PipelineConfig::tx2() };
        let mut small_core = OoOCore::new(Tx2Latency, small);
        let mut big_core = OoOCore::new(Tx2Latency, PipelineConfig::tx2());
        for ri in &seq {
            small_core.on_retire(ri);
            big_core.on_retire(ri);
        }
        assert!(
            big_core.stats().cycles < small_core.stats().cycles,
            "big ROB {} should beat small ROB {}",
            big_core.stats().cycles,
            small_core.stats().cycles
        );
    }

    #[test]
    fn memory_dependency_through_store_load() {
        let mut store = RetiredInst::new(0, InstGroup::Store);
        store.mem_writes.push(0x100, 8);
        let mut load = RetiredInst::new(4, InstGroup::Load);
        load.mem_reads.push(0x100, 8);
        load.dsts = RegSet::of(&[RegId::Int(1)]);

        let mut core = OoOCore::new(Tx2Latency, PipelineConfig::tx2());
        core.on_retire(&store);
        core.on_retire(&load);
        let dependent = core.stats().cycles;

        let mut load2 = load;
        load2.mem_reads = simcore::MemList::one(0x200, 8);
        let mut core2 = OoOCore::new(Tx2Latency, PipelineConfig::tx2());
        core2.on_retire(&store);
        core2.on_retire(&load2);
        assert!(core2.stats().cycles <= dependent);
    }

    #[test]
    fn dcache_misses_slow_the_core() {
        use crate::cache::CacheConfig;
        // Strided loads that miss every line vs the same core without a
        // cache: the cached core must take longer.
        let mk_load = |i: u64| {
            let mut ri = RetiredInst::new(0, InstGroup::Load);
            ri.mem_reads.push(i * 4096, 8); // new page every time: all misses
            ri.dsts = RegSet::of(&[RegId::Int(1)]);
            ri
        };
        let mut ideal = OoOCore::new(Tx2Latency, PipelineConfig::tx2());
        let mut cached = OoOCore::new(Tx2Latency, PipelineConfig::tx2())
            .with_dcache(CacheConfig::l1d_32k(), 100);
        for i in 0..50 {
            ideal.on_retire(&mk_load(i));
            cached.on_retire(&mk_load(i));
        }
        // Independent misses overlap in the OoO core (memory-level
        // parallelism), so the penalty shows up once at the tail, not
        // 50 times serially.
        assert!(
            cached.stats().cycles >= ideal.stats().cycles + 90,
            "cached {} vs ideal {}",
            cached.stats().cycles,
            ideal.stats().cycles
        );
        // Hot loads (same line) pay no penalty after the first.
        let mut hot = InOrderCore::new(Tx2Latency, PipelineConfig::a55())
            .with_dcache(CacheConfig::l1d_32k(), 100);
        let mut hot_ideal = InOrderCore::new(Tx2Latency, PipelineConfig::a55());
        for _ in 0..50 {
            let mut ri = RetiredInst::new(0, InstGroup::Load);
            ri.mem_reads.push(0x100, 8);
            hot.on_retire(&ri);
            hot_ideal.on_retire(&ri);
        }
        assert!(hot.stats().cycles <= hot_ideal.stats().cycles + 100);
    }

    #[test]
    fn stats_derived_metrics() {
        let s = PipelineStats { cycles: 2000, retired: 1000 };
        assert_eq!(s.cpi(), 2.0);
        assert_eq!(s.ipc(), 0.5);
        assert!((s.runtime_ms(2.0) - 0.001).abs() < 1e-12);
    }
}
