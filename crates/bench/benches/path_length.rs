//! Experiment E1 (paper Figure 1 / Table 1 "Path Length" rows): dynamic
//! instruction counts per benchmark and per kernel.
//!
//! The bench times one full emulation+count pass per (workload, ISA) cell
//! and prints the measured path lengths — the numbers behind Figure 1 —
//! as Criterion runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isacmp::{compile, execute, IsaKind, PathLength, Personality, SizeClass, Workload};

fn bench_path_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_length");
    group.sample_size(10);
    for w in Workload::ALL {
        for isa in [IsaKind::AArch64, IsaKind::RiscV] {
            let prog = w.build(SizeClass::Test);
            let compiled = compile(&prog, isa, &Personality::gcc122());
            // Print the measurement itself once, so the bench output carries
            // the figure's data.
            let mut pl = PathLength::new(&compiled.program.regions);
            execute(&compiled, &mut [&mut pl]);
            println!(
                "# fig1: {} {} path_length={} kernels={:?}",
                w.name(),
                isacmp::isa_label(isa),
                pl.total(),
                pl.by_kernel()
            );
            group.bench_with_input(
                BenchmarkId::new(w.name(), isacmp::isa_label(isa)),
                &compiled,
                |b, compiled| {
                    b.iter(|| {
                        let mut pl = PathLength::new(&compiled.program.regions);
                        execute(compiled, &mut [&mut pl]);
                        pl.total()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_path_length);
criterion_main!(benches);
