//! The retirement record handed to analysis observers.

use crate::regid::RegSet;

/// Coarse instruction classification used by latency models.
///
/// These mirror the instruction groups SimEng's yaml core descriptions
/// attach execution latencies to; `uarch::Tx2LatencyModel` assigns the
/// ThunderX2-derived cycle counts the paper's scaled-critical-path
/// experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstGroup {
    /// Integer add/sub/move/compare and address generation.
    IntAlu,
    /// Integer multiply (including multiply-add).
    IntMul,
    /// Integer divide / remainder.
    IntDiv,
    /// Shifts and rotates.
    Shift,
    /// Bitwise logical operations and bit manipulation.
    Logical,
    /// Conditional and unconditional branches, calls, returns.
    Branch,
    /// Memory loads.
    Load,
    /// Memory stores.
    Store,
    /// FP add/sub/compare-free arithmetic of additive latency class.
    FpAdd,
    /// FP multiply.
    FpMul,
    /// Fused multiply-add family.
    FpFma,
    /// FP divide.
    FpDiv,
    /// FP square root.
    FpSqrt,
    /// FP compares.
    FpCmp,
    /// FP <-> integer conversions and rounding.
    FpCvt,
    /// Register moves between FP and integer files or within the FP file.
    FpMove,
    /// Atomic read-modify-write operations.
    Atomic,
    /// Traps, fences, hints, system instructions.
    System,
}

impl InstGroup {
    /// All groups, useful for exhaustive latency tables and property tests.
    pub const ALL: [InstGroup; 18] = [
        InstGroup::IntAlu,
        InstGroup::IntMul,
        InstGroup::IntDiv,
        InstGroup::Shift,
        InstGroup::Logical,
        InstGroup::Branch,
        InstGroup::Load,
        InstGroup::Store,
        InstGroup::FpAdd,
        InstGroup::FpMul,
        InstGroup::FpFma,
        InstGroup::FpDiv,
        InstGroup::FpSqrt,
        InstGroup::FpCmp,
        InstGroup::FpCvt,
        InstGroup::FpMove,
        InstGroup::Atomic,
        InstGroup::System,
    ];

    /// Stable single-byte wire code (the group's position in
    /// [`InstGroup::ALL`]) used by the binary trace format.
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            InstGroup::IntAlu => 0,
            InstGroup::IntMul => 1,
            InstGroup::IntDiv => 2,
            InstGroup::Shift => 3,
            InstGroup::Logical => 4,
            InstGroup::Branch => 5,
            InstGroup::Load => 6,
            InstGroup::Store => 7,
            InstGroup::FpAdd => 8,
            InstGroup::FpMul => 9,
            InstGroup::FpFma => 10,
            InstGroup::FpDiv => 11,
            InstGroup::FpSqrt => 12,
            InstGroup::FpCmp => 13,
            InstGroup::FpCvt => 14,
            InstGroup::FpMove => 15,
            InstGroup::Atomic => 16,
            InstGroup::System => 17,
        }
    }

    /// Inverse of [`InstGroup::code`]; `None` for bytes outside the table
    /// (a corrupt or future-versioned trace).
    #[inline]
    pub fn from_code(code: u8) -> Option<InstGroup> {
        InstGroup::ALL.get(code as usize).copied()
    }

    /// Whether the group executes in a floating-point pipe.
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            InstGroup::FpAdd
                | InstGroup::FpMul
                | InstGroup::FpFma
                | InstGroup::FpDiv
                | InstGroup::FpSqrt
                | InstGroup::FpCmp
                | InstGroup::FpCvt
                | InstGroup::FpMove
        )
    }
}

/// One contiguous memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Guest byte address of the first byte accessed.
    pub addr: u64,
    /// Access width in bytes (1, 2, 4, 8, or 16 for pair accesses).
    pub size: u8,
}

/// A fixed-capacity list of memory accesses (no instruction in either ISA
/// subset performs more than two).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemList {
    items: [Option<MemAccess>; 2],
}

impl MemList {
    /// The empty list.
    pub const fn empty() -> Self {
        MemList { items: [None, None] }
    }

    /// List with a single access.
    pub fn one(addr: u64, size: u8) -> Self {
        MemList {
            items: [Some(MemAccess { addr, size }), None],
        }
    }

    /// Append an access; panics if already full (capacity 2).
    pub fn push(&mut self, addr: u64, size: u8) {
        let a = MemAccess { addr, size };
        if self.items[0].is_none() {
            self.items[0] = Some(a);
        } else if self.items[1].is_none() {
            self.items[1] = Some(a);
        } else {
            panic!("MemList capacity exceeded");
        }
    }

    /// Iterate over the accesses.
    pub fn iter(&self) -> impl Iterator<Item = MemAccess> + '_ {
        self.items.iter().flatten().copied()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.items[0].is_none()
    }

    /// Number of accesses (0..=2).
    pub fn len(&self) -> usize {
        self.items.iter().flatten().count()
    }
}

/// Everything an analysis pass needs to know about one retired instruction.
///
/// The ISA back-ends construct this during execution; zero registers
/// (RISC-V `x0`, AArch64 `xzr`/`wzr`) are *omitted* from `srcs`/`dsts`, so
/// dependency analyses see critical-path breaks through them for free —
/// matching the paper's handling ("the zero register for each ISA always
/// reads zero").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetiredInst {
    /// PC the instruction was fetched from.
    pub pc: u64,
    /// Latency/issue classification.
    pub group: InstGroup,
    /// Architectural registers read (zero registers omitted).
    pub srcs: RegSet,
    /// Architectural registers written (zero registers omitted).
    pub dsts: RegSet,
    /// Memory locations read.
    pub mem_reads: MemList,
    /// Memory locations written.
    pub mem_writes: MemList,
    /// Whether this is a control-flow instruction.
    pub is_branch: bool,
    /// For branches: whether the branch was taken.
    pub taken: bool,
}

impl RetiredInst {
    /// A blank record for `pc`; back-ends fill in the rest.
    pub fn new(pc: u64, group: InstGroup) -> Self {
        RetiredInst {
            pc,
            group,
            srcs: RegSet::empty(),
            dsts: RegSet::empty(),
            mem_reads: MemList::empty(),
            mem_writes: MemList::empty(),
            is_branch: false,
            taken: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memlist_push_and_iter() {
        let mut l = MemList::empty();
        assert!(l.is_empty());
        l.push(0x100, 8);
        l.push(0x108, 8);
        assert_eq!(l.len(), 2);
        let v: Vec<MemAccess> = l.iter().collect();
        assert_eq!(v[0], MemAccess { addr: 0x100, size: 8 });
        assert_eq!(v[1], MemAccess { addr: 0x108, size: 8 });
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn memlist_overflow_panics() {
        let mut l = MemList::empty();
        l.push(0, 1);
        l.push(1, 1);
        l.push(2, 1);
    }

    #[test]
    fn groups_all_distinct() {
        let mut set = std::collections::BTreeSet::new();
        for g in InstGroup::ALL {
            assert!(set.insert(g));
        }
        assert_eq!(set.len(), InstGroup::ALL.len());
    }

    #[test]
    fn group_codes_round_trip() {
        for (i, g) in InstGroup::ALL.iter().enumerate() {
            assert_eq!(g.code() as usize, i, "code must match ALL position for {g:?}");
            assert_eq!(InstGroup::from_code(g.code()), Some(*g));
        }
        assert_eq!(InstGroup::from_code(InstGroup::ALL.len() as u8), None);
        assert_eq!(InstGroup::from_code(255), None);
    }

    #[test]
    fn fp_classification() {
        assert!(InstGroup::FpFma.is_fp());
        assert!(!InstGroup::IntMul.is_fp());
        assert!(!InstGroup::Load.is_fp());
    }
}
