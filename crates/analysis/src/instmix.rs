//! Instruction-mix and critical-chain-composition observers.
//!
//! The paper's §3.3 reasons about differences through instruction mixes
//! (loads/stores per element, branch fractions, compare instructions) and
//! §5 explains scaled-CP changes through the *composition* of the critical
//! chain ("they were more computationally dense"). These observers make
//! both quantitative.

use simcore::{InstGroup, Observer, RetireSource, RetiredInst, SimError, WordMap, NUM_REG_SLOTS};

/// Histogram of retired instructions per [`InstGroup`].
#[derive(Debug, Clone, Default)]
pub struct InstMix {
    counts: [u64; InstGroup::ALL.len()],
    total: u64,
    branches_taken: u64,
    branches: u64,
}

fn group_index(g: InstGroup) -> usize {
    InstGroup::ALL.iter().position(|&x| x == g).expect("group in ALL")
}

impl InstMix {
    /// Fresh histogram.
    pub fn new() -> Self {
        InstMix::default()
    }

    /// Pump an entire retirement source (live run, replayed trace, or
    /// record slice) through this histogram.
    pub fn consume(&mut self, source: &mut dyn RetireSource) -> Result<u64, SimError> {
        let mut obs: [&mut dyn Observer; 1] = [self];
        source.drive(&mut obs)
    }

    /// Total instructions retired.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for one group.
    pub fn count(&self, g: InstGroup) -> u64 {
        self.counts[group_index(g)]
    }

    /// Fraction of the path length for one group.
    pub fn fraction(&self, g: InstGroup) -> f64 {
        self.count(g) as f64 / self.total.max(1) as f64
    }

    /// Fraction of control-flow instructions (the paper's ~15 % STREAM
    /// branch share).
    pub fn branch_fraction(&self) -> f64 {
        self.branches as f64 / self.total.max(1) as f64
    }

    /// Fraction of branches that were taken.
    pub fn taken_rate(&self) -> f64 {
        self.branches_taken as f64 / self.branches.max(1) as f64
    }

    /// Non-zero groups sorted by descending count.
    pub fn sorted(&self) -> Vec<(InstGroup, u64)> {
        let mut v: Vec<(InstGroup, u64)> = InstGroup::ALL
            .iter()
            .map(|&g| (g, self.count(g)))
            .filter(|&(_, c)| c > 0)
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }

    /// Render as an aligned text table.
    pub fn table(&self) -> String {
        let mut out = format!("{:<10} {:>12} {:>8}\n", "group", "count", "share");
        for (g, c) in self.sorted() {
            out.push_str(&format!("{:<10} {:>12} {:>7.2}%\n", format!("{g:?}"), c, 100.0 * c as f64 / self.total.max(1) as f64));
        }
        out
    }
}

impl Observer for InstMix {
    #[inline]
    fn on_retire(&mut self, ri: &RetiredInst) {
        self.counts[group_index(ri.group)] += 1;
        self.total += 1;
        if ri.is_branch {
            self.branches += 1;
            if ri.taken {
                self.branches_taken += 1;
            }
        }
    }
}

/// Approximate composition of the critical chain.
///
/// Tracks unit-cost chain depths exactly like
/// [`crate::CriticalPath`], and attributes every instruction that pushes
/// the *global* maximum depth forward — the frontier of the winning chain.
/// For a single dominant chain (the common case: a pointer bump or
/// reduction) this is exact; when the maximum hops between chains it is an
/// approximation, which is why it is reported separately rather than
/// folded into the CP result.
#[derive(Debug, Clone)]
pub struct CpComposition {
    reg_chain: [u64; NUM_REG_SLOTS],
    mem_chain: WordMap<u64>,
    longest: u64,
    frontier: [u64; InstGroup::ALL.len()],
}

impl CpComposition {
    /// Fresh analyzer.
    pub fn new() -> Self {
        CpComposition {
            reg_chain: [0; NUM_REG_SLOTS],
            mem_chain: WordMap::default(),
            longest: 0,
            frontier: [0; InstGroup::ALL.len()],
        }
    }

    /// The critical path length (unit cost).
    pub fn critical_path(&self) -> u64 {
        self.longest
    }

    /// Frontier counts per group (sums to `critical_path()`).
    pub fn composition(&self) -> Vec<(InstGroup, u64)> {
        let mut v: Vec<(InstGroup, u64)> = InstGroup::ALL
            .iter()
            .map(|&g| (g, self.frontier[group_index(g)]))
            .filter(|&(_, c)| c > 0)
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }

    /// Share of the winning chain formed by FP arithmetic — the paper's
    /// "computational density" of the critical path.
    pub fn fp_share(&self) -> f64 {
        let fp: u64 = InstGroup::ALL
            .iter()
            .filter(|g| g.is_fp())
            .map(|&g| self.frontier[group_index(g)])
            .sum();
        fp as f64 / self.longest.max(1) as f64
    }
}

impl Default for CpComposition {
    fn default() -> Self {
        CpComposition::new()
    }
}

impl Observer for CpComposition {
    #[inline]
    fn on_retire(&mut self, ri: &RetiredInst) {
        let mut longest_src = 0u64;
        for r in ri.srcs.iter() {
            longest_src = longest_src.max(self.reg_chain[r.index()]);
        }
        for a in ri.mem_reads.iter() {
            let first = a.addr >> 3;
            let last = (a.addr + a.size.max(1) as u64 - 1) >> 3;
            for w in first..=last {
                if let Some(&c) = self.mem_chain.get(&w) {
                    longest_src = longest_src.max(c);
                }
            }
        }
        let depth = longest_src + 1;
        for r in ri.dsts.iter() {
            self.reg_chain[r.index()] = depth;
        }
        for a in ri.mem_writes.iter() {
            let first = a.addr >> 3;
            let last = (a.addr + a.size.max(1) as u64 - 1) >> 3;
            for w in first..=last {
                self.mem_chain.insert(w, depth);
            }
        }
        if depth > self.longest {
            self.longest = depth;
            self.frontier[group_index(ri.group)] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{RegId, RegSet};

    fn op(group: InstGroup, srcs: &[RegId], dsts: &[RegId]) -> RetiredInst {
        let mut ri = RetiredInst::new(0, group);
        ri.srcs = RegSet::of(srcs);
        ri.dsts = RegSet::of(dsts);
        ri
    }

    #[test]
    fn mix_counts_and_fractions() {
        let mut m = InstMix::new();
        for _ in 0..6 {
            m.on_retire(&op(InstGroup::IntAlu, &[], &[]));
        }
        for _ in 0..3 {
            m.on_retire(&op(InstGroup::Load, &[], &[]));
        }
        let mut b = op(InstGroup::Branch, &[], &[]);
        b.is_branch = true;
        b.taken = true;
        m.on_retire(&b);
        assert_eq!(m.total(), 10);
        assert_eq!(m.count(InstGroup::IntAlu), 6);
        assert!((m.fraction(InstGroup::Load) - 0.3).abs() < 1e-12);
        assert!((m.branch_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(m.taken_rate(), 1.0);
        assert_eq!(m.sorted()[0].0, InstGroup::IntAlu);
        assert!(m.table().contains("IntAlu"));
    }

    #[test]
    fn composition_of_pure_chain() {
        let mut c = CpComposition::new();
        let f = RegId::Fp(0);
        for _ in 0..20 {
            c.on_retire(&op(InstGroup::FpAdd, &[f], &[f]));
        }
        assert_eq!(c.critical_path(), 20);
        assert_eq!(c.composition(), vec![(InstGroup::FpAdd, 20)]);
        assert_eq!(c.fp_share(), 1.0);
    }

    #[test]
    fn composition_tracks_dominant_chain() {
        let mut c = CpComposition::new();
        let x = RegId::Int(1);
        let f = RegId::Fp(0);
        // A short int chain, then a longer FP chain that overtakes it.
        for _ in 0..3 {
            c.on_retire(&op(InstGroup::IntAlu, &[x], &[x]));
        }
        for _ in 0..10 {
            c.on_retire(&op(InstGroup::FpMul, &[f], &[f]));
        }
        assert_eq!(c.critical_path(), 10);
        let comp = c.composition();
        assert_eq!(comp[0].0, InstGroup::FpMul);
        assert!(c.fp_share() > 0.6);
    }
}
