//! Graceful-shutdown flag: a process-wide "please stop" bit set from
//! SIGINT/SIGTERM and polled at safe points (the retire loop's masked
//! check, the matrix worker pool's claim loop).
//!
//! The container has no crates.io access, so instead of the `signal-hook`
//! or `ctrlc` crates this is a minimal std-only FFI shim over `signal(2)`,
//! which libc always provides and std always links on Unix. The handler
//! does the only async-signal-safe thing possible: store into a static
//! `AtomicBool`. Everything else — checkpointing, partial-matrix flushes,
//! exit codes — happens at the next poll point on a normal thread.
//!
//! On non-Unix targets [`install`] is a no-op returning `false`; the flag
//! can still be set programmatically via [`request`] (which is also how
//! tests drive the interruption paths deterministically).

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide shutdown request flag.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Conventional exit status for a run ended by SIGINT/SIGTERM (128 + 2).
pub const EXIT_INTERRUPTED: i32 = 130;

#[cfg(unix)]
mod sys {
    use std::sync::atomic::Ordering;

    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        // `signal(2)` from libc, which std links unconditionally on Unix.
        // Semantics we rely on: one handler per signal, handler stays
        // installed (glibc/musl give BSD semantics), returns SIG_ERR
        // (usize::MAX as a pointer) on failure.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIG_ERR: usize = usize::MAX;

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe operation: a relaxed atomic store.
        super::SHUTDOWN.store(true, Ordering::Relaxed);
    }

    pub fn install() -> bool {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        let a = unsafe { signal(SIGINT, handler) };
        let b = unsafe { signal(SIGTERM, handler) };
        a != SIG_ERR && b != SIG_ERR
    }
}

/// Install the SIGINT/SIGTERM handler. Returns `true` when both handlers
/// were installed (always `false` on non-Unix, where only [`request`] can
/// set the flag). Safe to call more than once.
pub fn install() -> bool {
    #[cfg(unix)]
    {
        sys::install()
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// Has a shutdown been requested (by signal or [`request`])?
#[inline]
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Programmatically request a shutdown — what the signal handler does,
/// callable from tests and from orchestration code that wants to stop
/// sibling workers.
pub fn request() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Clear the flag. For tests and for long-lived processes that survive an
/// orderly interruption (the CLI bins exit instead).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

/// Serializes in-crate tests that toggle the process-wide flag, so they
/// cannot race each other under the parallel test runner.
#[cfg(test)]
pub(crate) static TEST_FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_and_reset_clears() {
        let _guard = TEST_FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
    }

    #[cfg(unix)]
    #[test]
    fn install_succeeds_on_unix() {
        assert!(install());
        reset();
    }
}
