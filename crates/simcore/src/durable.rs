//! Crash-durable file writes: the fsync discipline every persistent
//! artifact in the workspace routes through.
//!
//! A bare `File::create` + `write_all` (or even tmp+rename without fsync)
//! leaves two windows where a crash or power loss loses or corrupts data:
//! the file contents may still be in the page cache when the rename makes
//! the new name visible, and the rename itself may not have reached the
//! directory's metadata. The helpers here close both windows:
//!
//! - [`durable_write`]: write to `<path>.tmp`, fsync the tmp, rename over
//!   the final name, fsync the parent directory. A reader either sees the
//!   complete old contents or the complete new contents — never a torn
//!   file, even across SIGKILL or power loss.
//! - [`commit`]: the same rename + directory-fsync discipline for a tmp
//!   file some other writer already produced (e.g. a streamed trace
//!   capture), fsyncing it first.
//! - [`durable_append`]: append one record to a log and `fdatasync` it
//!   before returning, so an append-only journal survives a crash with
//!   every acknowledged record intact (the final record may be torn — a
//!   torn *line* — which readers must tolerate).
//!
//! Directory fsync is a no-op on platforms where directories cannot be
//! opened for reading (e.g. Windows); the rename is still atomic there.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Fsync the directory containing `path`, so a rename or creation inside
/// it is durable. Best-effort: errors opening the directory are ignored
/// (not every platform allows it), but a failed `sync_all` on an opened
/// directory is reported.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    match File::open(parent) {
        Ok(dir) => dir.sync_all(),
        // Opening a directory read-only fails on some platforms; the
        // rename is still atomic, just not power-loss durable there.
        Err(_) => Ok(()),
    }
}

/// Atomically and durably replace `path` with `contents`.
///
/// Writes `<path>.tmp`, fsyncs it, renames it over `path`, then fsyncs the
/// parent directory. On any error the final file is untouched (a stale
/// `.tmp` may remain; the next write truncates it).
pub fn durable_write(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// Durably promote an existing fully-written `tmp` file to `path`:
/// fsync `tmp`, rename it over `path`, fsync the parent directory.
///
/// For writers that stream into a tmp file themselves (trace captures,
/// checkpoint snapshots) and only need the commit step.
pub fn commit(tmp: &Path, path: &Path) -> io::Result<()> {
    File::open(tmp)?.sync_all()?;
    std::fs::rename(tmp, path)?;
    sync_parent_dir(path)
}

/// The sibling tmp name `durable_write` stages into: `<path>.tmp`.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

/// An append-only log where every appended record is synced to disk
/// before the append returns — the fsync-per-record discipline the cell
/// journal needs to survive SIGKILL with all acknowledged records intact.
pub struct DurableLog {
    file: File,
}

impl DurableLog {
    /// Open (creating if needed) an append-only log at `path`, and make
    /// the creation itself durable by fsyncing the parent directory.
    pub fn open(path: &Path) -> io::Result<DurableLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        sync_parent_dir(path)?;
        Ok(DurableLog { file })
    }

    /// Append `record` (the caller includes any terminator, typically a
    /// trailing newline) and `fdatasync` before returning.
    pub fn append(&mut self, record: &[u8]) -> io::Result<()> {
        self.file.write_all(record)?;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("isacmp-durable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_replaces_atomically_and_leaves_no_tmp() {
        let dir = tmp_dir("write");
        let path = dir.join("out.json");
        durable_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        durable_write(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        assert!(!tmp_path(&path).exists(), "tmp staging file is consumed by the rename");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_into_missing_directory_errors_without_touching_target() {
        let dir = tmp_dir("missing");
        let path = dir.join("no-such-subdir").join("out.json");
        assert!(durable_write(&path, b"x").is_err());
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_promotes_existing_tmp() {
        let dir = tmp_dir("commit");
        let tmp = dir.join("cap.trace.tmp");
        let fin = dir.join("cap.trace");
        std::fs::write(&tmp, b"streamed bytes").unwrap();
        commit(&tmp, &fin).unwrap();
        assert_eq!(std::fs::read(&fin).unwrap(), b"streamed bytes");
        assert!(!tmp.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn log_appends_accumulate_in_order() {
        let dir = tmp_dir("log");
        let path = dir.join("journal.jsonl");
        {
            let mut log = DurableLog::open(&path).unwrap();
            log.append(b"{\"a\":1}\n").unwrap();
            log.append(b"{\"b\":2}\n").unwrap();
        }
        // Reopening appends, never truncates.
        let mut log = DurableLog::open(&path).unwrap();
        log.append(b"{\"c\":3}\n").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
