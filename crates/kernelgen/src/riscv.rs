//! RV64G back-end for the kernel IR.
//!
//! Lowering follows the idioms the paper observed in GCC's RISC-V output
//! (Listing 2): one pointer ("cursor") register per array, bumped by
//! `addi` every innermost iteration, with the loop back-edge a single fused
//! compare-and-branch (`bne cursor, end, loop`). Constant stencil offsets
//! fold into the load/store immediate under the GCC 12.2 personality and
//! cost an explicit address `addi` under GCC 9.2.

use std::collections::HashMap;

use isa_riscv::{FpWidth, Inst, RvAsm};

use crate::ir::*;
use crate::personality::Personality;
use crate::util::{access_strides, arrays_used, canonical_offsets, collect_consts, inner_stride};
use crate::Compiled;

const TEXT_BASE: u64 = 0x1_0000;
const DATA_BASE: u64 = 0x20_0000;

/// Integer registers handed out to cursors/counters/ends, in order.
/// (t0-t6, s2-s11, s1, a0-a6 — a7/a0 are clobbered at exit only.)
const INT_POOL: &[u8] = &[
    5, 6, 7, 28, 29, 30, 31, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 9, 10, 11, 12, 13, 14, 15,
    16,
];

/// FP registers for pinned values (accumulators, temps, hoisted constants).
const FP_PINNED: &[u8] = &[8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 10, 11, 12, 13, 14, 15];

/// FP scratch registers for expression evaluation.
const FP_SCRATCH: &[u8] = &[0, 1, 2, 3, 4, 5, 6, 7, 28, 29, 30, 31, 16, 17];

struct IntAlloc {
    next: usize,
}

impl IntAlloc {
    fn new() -> Self {
        IntAlloc { next: 0 }
    }
    fn get(&mut self, what: &str) -> u8 {
        assert!(
            self.next < INT_POOL.len(),
            "riscv backend out of integer registers ({what})"
        );
        let r = INT_POOL[self.next];
        self.next += 1;
        r
    }
}

struct FpScratch {
    free: Vec<u8>,
}

impl FpScratch {
    fn new() -> Self {
        FpScratch { free: FP_SCRATCH.to_vec() }
    }
    fn alloc(&mut self) -> u8 {
        self.free.pop().expect("riscv backend out of FP scratch registers")
    }
    fn release(&mut self, r: u8) {
        if FP_SCRATCH.contains(&r) && !self.free.contains(&r) {
            self.free.push(r);
        }
    }
}

/// A value produced by expression evaluation: the register and whether it is
/// a scratch we own (and may overwrite / must release).
#[derive(Clone, Copy)]
struct Val {
    reg: u8,
    scratch: bool,
}

struct KernelCtx {
    /// Cursor register per array id (arrays used by this kernel).
    cursors: HashMap<usize, u8>,
    /// Canonical offset folded into each array's cursor.
    canon: HashMap<usize, i64>,
    /// Pinned register per accumulator.
    acc_regs: Vec<u8>,
    /// Pinned register per temp id.
    temp_regs: HashMap<usize, u8>,
    /// Pinned register per hoisted constant (by bits).
    const_regs: HashMap<u64, u8>,
    /// Two integer scratch registers for address computation / compares.
    int_scratch: [u8; 2],
}

struct Backend<'a> {
    asm: RvAsm,
    p: &'a Personality,
    array_addrs: Vec<u64>,
    const_pool_addr: HashMap<u64, u64>,
}

impl Backend<'_> {
    /// `add rd, rs, imm` handling any immediate size.
    fn add_any(&mut self, rd: u8, rs: u8, imm: i64) {
        if (-2048..2048).contains(&imm) {
            self.asm.addi(rd, rs, imm);
        } else {
            let tmp: u8 = 1; // ra is free as a pure scratch here
            self.asm.li(tmp, imm);
            self.asm.add(rd, rs, tmp);
        }
    }

    fn emit_load(&mut self, ctx: &KernelCtx, acc: &Access, dst: u8) {
        let cursor = ctx.cursors[&acc.arr.0];
        let byte_off = (acc.offset - ctx.canon[&acc.arr.0]) * 8;
        if byte_off == 0 {
            self.asm.fld(dst, cursor, 0);
        } else if self.p.fold_const_offsets && (-2048..2048).contains(&byte_off) {
            self.asm.fld(dst, cursor, byte_off);
        } else {
            let t = ctx.int_scratch[0];
            self.add_any(t, cursor, byte_off);
            self.asm.fld(dst, t, 0);
        }
    }

    fn emit_store(&mut self, ctx: &KernelCtx, acc: &Access, src: u8) {
        let cursor = ctx.cursors[&acc.arr.0];
        let byte_off = (acc.offset - ctx.canon[&acc.arr.0]) * 8;
        if byte_off == 0 {
            self.asm.fsd(src, cursor, 0);
        } else if self.p.fold_const_offsets && (-2048..2048).contains(&byte_off) {
            self.asm.fsd(src, cursor, byte_off);
        } else {
            let t = ctx.int_scratch[0];
            self.add_any(t, cursor, byte_off);
            self.asm.fsd(src, t, 0);
        }
    }

    /// Evaluate an expression, returning the register holding the result.
    fn eval(&mut self, ctx: &KernelCtx, fs: &mut FpScratch, e: &Expr) -> Val {
        match e {
            Expr::Const(v) => {
                let bits = v.to_bits();
                if let Some(&r) = ctx.const_regs.get(&bits) {
                    return Val { reg: r, scratch: false };
                }
                // Unhoisted constant: load from the pool inline.
                let addr = self.const_pool_addr[&bits];
                let t = ctx.int_scratch[1];
                self.asm.la(t, addr);
                let dst = fs.alloc();
                self.asm.fld(dst, t, 0);
                Val { reg: dst, scratch: true }
            }
            Expr::Temp(t) => Val { reg: ctx.temp_regs[&t.0], scratch: false },
            Expr::Acc(a) => Val { reg: ctx.acc_regs[a.0], scratch: false },
            Expr::Load(acc) => {
                let dst = fs.alloc();
                self.emit_load(ctx, acc, dst);
                Val { reg: dst, scratch: true }
            }
            Expr::Un(op, a) => {
                let av = self.eval(ctx, fs, a);
                let dst = if av.scratch { av.reg } else { fs.alloc() };
                match op {
                    UnOp::Neg => self.asm.fneg_d(dst, av.reg),
                    UnOp::Abs => self.asm.fabs_d(dst, av.reg),
                    UnOp::Sqrt => self.asm.fsqrt_d(dst, av.reg),
                }
                Val { reg: dst, scratch: true }
            }
            Expr::Bin(op, a, b) => {
                let av = self.eval(ctx, fs, a);
                let bv = self.eval(ctx, fs, b);
                let dst = if av.scratch {
                    av.reg
                } else if bv.scratch {
                    bv.reg
                } else {
                    fs.alloc()
                };
                match op {
                    BinOp::Add => self.asm.fadd_d(dst, av.reg, bv.reg),
                    BinOp::Sub => self.asm.fsub_d(dst, av.reg, bv.reg),
                    BinOp::Mul => self.asm.fmul_d(dst, av.reg, bv.reg),
                    BinOp::Div => self.asm.fdiv_d(dst, av.reg, bv.reg),
                    BinOp::Min => self.asm.fmin_d(dst, av.reg, bv.reg),
                    BinOp::Max => self.asm.fmax_d(dst, av.reg, bv.reg),
                }
                if av.scratch && av.reg != dst {
                    fs.release(av.reg);
                }
                if bv.scratch && bv.reg != dst {
                    fs.release(bv.reg);
                }
                Val { reg: dst, scratch: true }
            }
            Expr::MulAdd(a, b, c) => {
                let av = self.eval(ctx, fs, a);
                let bv = self.eval(ctx, fs, b);
                let cv = self.eval(ctx, fs, c);
                let dst = if av.scratch {
                    av.reg
                } else if bv.scratch {
                    bv.reg
                } else if cv.scratch {
                    cv.reg
                } else {
                    fs.alloc()
                };
                if self.p.fuse_fma {
                    self.asm.fmadd_d(dst, av.reg, bv.reg, cv.reg);
                } else {
                    // dst must not alias c before the multiply executes.
                    let prod = if av.scratch {
                        av.reg
                    } else if bv.scratch {
                        bv.reg
                    } else {
                        dst
                    };
                    if prod == cv.reg {
                        // All three share registers; take a fresh scratch.
                        let fresh = fs.alloc();
                        self.asm.fmul_d(fresh, av.reg, bv.reg);
                        self.asm.fadd_d(dst, fresh, cv.reg);
                        fs.release(fresh);
                    } else {
                        self.asm.fmul_d(prod, av.reg, bv.reg);
                        self.asm.fadd_d(dst, prod, cv.reg);
                    }
                }
                for v in [av, bv, cv] {
                    if v.scratch && v.reg != dst {
                        fs.release(v.reg);
                    }
                }
                Val { reg: dst, scratch: true }
            }
            Expr::Select { cmp, a, b, t, e } => {
                // RISC-V has no FP conditional select: compare into an
                // integer register, then a branch diamond over an fmv.
                // The then-value is evaluated *before* the compare so the
                // integer compare result is live only across the branch
                // (nested evaluation may clobber the scratch registers).
                let av = self.eval(ctx, fs, a);
                let bv = self.eval(ctx, fs, b);
                let dst = fs.alloc();
                let tv = self.eval(ctx, fs, t);
                self.asm.fmv_d(dst, tv.reg);
                if tv.scratch {
                    fs.release(tv.reg);
                }
                let c = ctx.int_scratch[1];
                match cmp {
                    CmpOp::Lt => self.asm.flt_d(c, av.reg, bv.reg),
                    CmpOp::Le => self.asm.fle_d(c, av.reg, bv.reg),
                    CmpOp::Eq => self.asm.feq_d(c, av.reg, bv.reg),
                }
                if av.scratch {
                    fs.release(av.reg);
                }
                if bv.scratch {
                    fs.release(bv.reg);
                }
                let skip = self.asm.new_label();
                self.asm.bne(c, 0, skip);
                let ev = self.eval(ctx, fs, e);
                self.asm.fmv_d(dst, ev.reg);
                if ev.scratch {
                    fs.release(ev.reg);
                }
                self.asm.bind(skip);
                Val { reg: dst, scratch: true }
            }
        }
    }

    fn lower_kernel(&mut self, k: &Kernel) {
        let ndim = k.dims.len();
        let arrays = arrays_used(k);
        let mut ia = IntAlloc::new();
        let mut ctx = KernelCtx {
            cursors: HashMap::new(),
            canon: canonical_offsets(k),
            acc_regs: Vec::new(),
            temp_regs: HashMap::new(),
            const_regs: HashMap::new(),
            int_scratch: [0, 0],
        };
        ctx.int_scratch = [ia.get("addr scratch"), ia.get("cmp scratch")];

        self.asm.begin_region(&k.name);

        // Cursors start at each array's base plus the canonical offset,
        // so stencil accesses use small relative immediates (GCC ivopts).
        for &arr in &arrays {
            let r = ia.get("array cursor");
            ctx.cursors.insert(arr, r);
            let addr = (self.array_addrs[arr] as i64 + 8 * ctx.canon[&arr]) as u64;
            self.asm.la(r, addr);
        }

        // Pinned FP registers: accumulators, temps, hoisted constants.
        let mut fp_pin = FP_PINNED.to_vec();
        let pin = |what: &str, fp_pin: &mut Vec<u8>| -> u8 {
            assert!(!fp_pin.is_empty(), "riscv backend out of pinned FP registers ({what})");
            fp_pin.remove(0)
        };
        for acc in &k.accs {
            let r = pin("acc", &mut fp_pin);
            ctx.acc_regs.push(r);
            if acc.init == 0.0 {
                self.asm.push(Inst::FmvToFp { width: FpWidth::D, frd: r, rs1: 0 });
            } else {
                let addr = self.const_pool_addr[&acc.init.to_bits()];
                let t = ctx.int_scratch[0];
                self.asm.la(t, addr);
                self.asm.fld(r, t, 0);
            }
        }
        let mut temp_ids: Vec<usize> = Vec::new();
        for s in &k.body {
            if let Stmt::Def { temp, .. } = s {
                temp_ids.push(temp.0);
            }
        }
        for t in temp_ids {
            let r = pin("temp", &mut fp_pin);
            ctx.temp_regs.insert(t, r);
        }
        let mut consts = Vec::new();
        collect_consts(k, &mut consts);
        for bits in consts {
            if fp_pin.is_empty() {
                break; // remaining constants load inline
            }
            let r = pin("const", &mut fp_pin);
            ctx.const_regs.insert(bits, r);
            if bits == 0 {
                self.asm.push(Inst::FmvToFp { width: FpWidth::D, frd: r, rs1: 0 });
            } else {
                let addr = self.const_pool_addr[&bits];
                let t = ctx.int_scratch[0];
                self.asm.la(t, addr);
                self.asm.fld(r, t, 0);
            }
        }

        // Loop nest: outer counters, inner cursor/end or counter loop.
        let inner_trip = *k.dims.last().unwrap() as i64;
        let strided: Vec<(usize, i64)> = arrays
            .iter()
            .map(|&a| (a, inner_stride(k, a)))
            .filter(|&(_, s)| s != 0)
            .collect();
        let primary = strided.first().copied();

        struct OuterLoop {
            counter: u8,
            label: isa_riscv::asm::Label,
        }
        let mut outers: Vec<OuterLoop> = Vec::new();
        for d in 0..ndim - 1 {
            let counter = ia.get("outer counter");
            self.asm.li(counter, k.dims[d] as i64);
            let label = self.asm.new_label();
            self.asm.bind(label);
            outers.push(OuterLoop { counter, label });
        }

        // Inner loop entry: compute end pointer (cursor mode) or counter.
        let inner_label = self.asm.new_label();
        let mut end_reg = None;
        let mut counter_reg = None;
        match primary {
            Some((arr, stride)) => {
                let r = ia.get("end pointer");
                let delta = 8 * stride * inner_trip;
                self.add_any(r, ctx.cursors[&arr], delta);
                end_reg = Some((r, arr));
            }
            None => {
                let r = ia.get("inner counter");
                self.asm.li(r, inner_trip);
                counter_reg = Some(r);
            }
        }
        self.asm.bind(inner_label);

        // Body.
        let mut fs = FpScratch::new();
        for s in &k.body {
            match s {
                Stmt::Def { temp, expr } => {
                    let v = self.eval(&ctx, &mut fs, expr);
                    let pinreg = ctx.temp_regs[&temp.0];
                    if v.reg != pinreg {
                        self.asm.fmv_d(pinreg, v.reg);
                    }
                    if v.scratch {
                        fs.release(v.reg);
                    }
                }
                Stmt::Store { access, value } => {
                    let v = self.eval(&ctx, &mut fs, value);
                    self.emit_store(&ctx, access, v.reg);
                    if v.scratch {
                        fs.release(v.reg);
                    }
                }
                Stmt::Accum { acc, op, value } => {
                    let v = self.eval(&ctx, &mut fs, value);
                    let a = ctx.acc_regs[acc.0];
                    match op {
                        BinOp::Add => self.asm.fadd_d(a, a, v.reg),
                        BinOp::Min => self.asm.fmin_d(a, a, v.reg),
                        BinOp::Max => self.asm.fmax_d(a, a, v.reg),
                        _ => unreachable!(),
                    }
                    if v.scratch {
                        fs.release(v.reg);
                    }
                }
            }
        }

        // Cursor bumps + back edge.
        for &(arr, stride) in &strided {
            let c = ctx.cursors[&arr];
            self.add_any(c, c, 8 * stride);
        }
        match (end_reg, counter_reg) {
            (Some((end, arr)), _) => {
                let c = ctx.cursors[&arr];
                if self.p.riscv_fused_compare_branch {
                    self.asm.bne(c, end, inner_label);
                } else {
                    // Ablation: explicit compare then branch-on-zero.
                    let t = ctx.int_scratch[1];
                    self.asm.push(Inst::Op {
                        op: isa_riscv::RegOp::Xor,
                        rd: t,
                        rs1: c,
                        rs2: end,
                    });
                    self.asm.bne(t, 0, inner_label);
                }
            }
            (None, Some(counter)) => {
                self.asm.addi(counter, counter, -1);
                self.asm.bne(counter, 0, inner_label);
            }
            _ => unreachable!(),
        }

        // Close outer loops innermost-outward with cursor adjustments.
        for d in (0..ndim.saturating_sub(1)).rev() {
            // Per-array adjustment: 8*stride_d - 8*stride_{d+1}*trip_{d+1}.
            for &arr in &arrays {
                let strides = access_strides(k, arr);
                let stride_d = strides[d];
                let stride_next = strides[d + 1];
                let trip_next = k.dims[d + 1] as i64;
                let adj = 8 * (stride_d - stride_next * trip_next);
                if adj != 0 {
                    let c = ctx.cursors[&arr];
                    if strides[..=d].iter().all(|&s| s == 0) {
                        // The cursor returns to a compile-time-constant
                        // position: re-derive it instead of adjusting, as
                        // GCC does for loop-invariant bases. This also
                        // breaks the pointer's dependency chain — without
                        // it the addi chain through the whole nest caps
                        // the measured ILP at the body size.
                        let addr =
                            (self.array_addrs[arr] as i64 + 8 * ctx.canon[&arr]) as u64;
                        self.asm.la(c, addr);
                    } else {
                        self.add_any(c, c, adj);
                    }
                }
            }
            let o = &outers[d];
            self.asm.addi(o.counter, o.counter, -1);
            self.asm.bne(o.counter, 0, o.label);
        }

        // Store accumulators.
        for (i, acc) in k.accs.iter().enumerate() {
            if let Some((arr, elem)) = acc.store_to {
                let addr = self.array_addrs[arr.0] + 8 * elem;
                let t = ctx.int_scratch[0];
                self.asm.la(t, addr);
                self.asm.fsd(ctx.acc_regs[i], t, 0);
            }
        }
        self.asm.end_region();
    }
}

/// Compile `prog` for RV64G.
pub fn compile(prog: &KernelProgram, p: &Personality) -> Compiled {
    prog.validate();
    let (aug, result_arr) = augment_with_checksum(prog);
    let mut asm = RvAsm::new(TEXT_BASE, DATA_BASE);

    // Lay out arrays and the constant pool in the data section.
    let mut array_addrs = Vec::with_capacity(aug.arrays.len());
    for decl in &aug.arrays {
        let addr = match &decl.init {
            ArrayInit::Zero => asm.data_zero(8 * decl.len as usize, 8),
            other => {
                let _ = other;
                asm.data_f64_array(&init_values(decl))
            }
        };
        array_addrs.push(addr);
    }
    let mut const_pool_addr = HashMap::new();
    let mut pool_consts = Vec::new();
    for k in &aug.kernels {
        collect_consts(k, &mut pool_consts);
        for acc in &k.accs {
            let b = acc.init.to_bits();
            if !pool_consts.contains(&b) {
                pool_consts.push(b);
            }
        }
    }
    for bits in pool_consts {
        let addr = asm.data_u64(bits);
        const_pool_addr.insert(bits, addr);
    }

    let mut be = Backend { asm, p, array_addrs, const_pool_addr };

    // Repeat loop around the original kernels; checksum kernels run once.
    let n_orig = prog.kernels.len();
    let rep_reg = 8; // s0: outside the allocator pool
    if aug.repeat > 1 {
        be.asm.li(rep_reg, aug.repeat as i64);
    }
    let rep_label = be.asm.new_label();
    be.asm.bind(rep_label);
    for k in &aug.kernels[..n_orig] {
        be.lower_kernel(k);
    }
    if aug.repeat > 1 {
        // The repeat body spans all kernels and can exceed the +-4 KiB
        // B-type range, so use the standard far-branch idiom: an inverted
        // short branch over an unconditional jump (J-type: +-1 MiB).
        be.asm.addi(rep_reg, rep_reg, -1);
        let done = be.asm.new_label();
        be.asm.beq(rep_reg, 0, done);
        be.asm.j(rep_label);
        be.asm.bind(done);
    }
    for k in &aug.kernels[n_orig..] {
        be.lower_kernel(k);
    }
    be.asm.exit(0);

    let checksum_addr = be.array_addrs[result_arr.0];
    let array_addrs = aug
        .arrays
        .iter()
        .zip(be.array_addrs.iter())
        .map(|(d, a)| (d.name.clone(), *a))
        .collect();
    Compiled { program: be.asm.finish(), checksum_addr, array_addrs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interpret;
    use isa_riscv::RiscVExecutor;
    use simcore::{CpuState, EmulationCore};

    fn run(program: &simcore::Program) -> CpuState {
        let mut st = CpuState::new();
        program.load(&mut st).unwrap();
        let core = EmulationCore::new(RiscVExecutor::new());
        core.run(&mut st, &mut []).unwrap();
        st
    }

    fn check(prog: &KernelProgram, p: &Personality) {
        let expected = interpret(prog, p).checksum;
        let c = compile(prog, p);
        let st = run(&c.program);
        let got = st.mem.read_f64(c.checksum_addr).unwrap();
        assert_eq!(
            got.to_bits(),
            expected.to_bits(),
            "checksum mismatch for {}: got {got}, expected {expected}",
            prog.name
        );
    }

    fn unit(arr: ArrayId) -> Access {
        Access { arr, strides: vec![1], offset: 0 }
    }

    #[test]
    fn copy_kernel_both_personalities() {
        let mut p = KernelProgram::new("copy");
        let a = p.array("a", 64, ArrayInit::Linear { start: 0.5, step: 0.25 });
        let b = p.array("b", 64, ArrayInit::Zero);
        p.kernel(Kernel {
            name: "copy".into(),
            dims: vec![64],
            accs: vec![],
            body: vec![Stmt::Store { access: unit(b), value: Expr::Load(unit(a)) }],
        });
        p.checksum_arrays.push(b);
        check(&p, &Personality::gcc92());
        check(&p, &Personality::gcc122());
    }

    #[test]
    fn triad_with_constant() {
        let mut p = KernelProgram::new("triad");
        let a = p.array("a", 32, ArrayInit::Zero);
        let b = p.array("b", 32, ArrayInit::Linear { start: 1.0, step: 1.0 });
        let c = p.array("c", 32, ArrayInit::Linear { start: 2.0, step: 0.5 });
        p.kernel(Kernel {
            name: "triad".into(),
            dims: vec![32],
            accs: vec![],
            body: vec![Stmt::Store {
                access: unit(a),
                value: Expr::mul_add(Expr::Const(3.0), Expr::Load(unit(c)), Expr::Load(unit(b))),
            }],
        });
        p.checksum_arrays.push(a);
        check(&p, &Personality::gcc122());
        let mut nofma = Personality::gcc122();
        nofma.fuse_fma = false;
        check(&p, &nofma);
    }

    #[test]
    fn stencil_offsets_fold_or_not() {
        let mut p = KernelProgram::new("stencil");
        let a = p.array("a", 66, ArrayInit::Linear { start: 0.0, step: 1.0 });
        let b = p.array("b", 66, ArrayInit::Zero);
        p.kernel(Kernel {
            name: "stencil".into(),
            dims: vec![64],
            accs: vec![],
            body: vec![Stmt::Store {
                access: Access { arr: b, strides: vec![1], offset: 1 },
                value: Expr::mul(
                    Expr::add(
                        Expr::Load(Access { arr: a, strides: vec![1], offset: 0 }),
                        Expr::Load(Access { arr: a, strides: vec![1], offset: 2 }),
                    ),
                    Expr::Const(0.5),
                ),
            }],
        });
        p.checksum_arrays.push(b);
        // Same results; different instruction counts (checked in analysis tests).
        check(&p, &Personality::gcc92());
        check(&p, &Personality::gcc122());
        // GCC 9.2 must emit more instructions (explicit address adds).
        let c92 = compile(&p, &Personality::gcc92());
        let c122 = compile(&p, &Personality::gcc122());
        let s92 = run(&c92.program);
        let s122 = run(&c122.program);
        assert!(
            s92.instret > s122.instret,
            "9.2 ({}) should execute more than 12.2 ({})",
            s92.instret,
            s122.instret
        );
    }

    #[test]
    fn two_dim_with_row_stride() {
        let mut p = KernelProgram::new("rows");
        let m = p.array("m", 40, ArrayInit::Linear { start: 0.0, step: 1.0 });
        let out = p.array("out", 40, ArrayInit::Zero);
        // 5 rows x 8 cols: out[r][c] = m[r][c] * 2
        p.kernel(Kernel {
            name: "scale2d".into(),
            dims: vec![5, 8],
            accs: vec![],
            body: vec![Stmt::Store {
                access: Access { arr: out, strides: vec![8, 1], offset: 0 },
                value: Expr::mul(
                    Expr::Load(Access { arr: m, strides: vec![8, 1], offset: 0 }),
                    Expr::Const(2.0),
                ),
            }],
        });
        p.checksum_arrays.push(out);
        check(&p, &Personality::gcc122());
        check(&p, &Personality::gcc92());
    }

    #[test]
    fn three_dim_nest_and_accumulator() {
        let mut p = KernelProgram::new("dot3");
        let m = p.array("m", 24, ArrayInit::Linear { start: 1.0, step: 0.5 });
        let out = p.array("out", 1, ArrayInit::Zero);
        p.kernel(Kernel {
            name: "sum3".into(),
            dims: vec![2, 3, 4],
            accs: vec![AccDecl { init: 0.0, store_to: Some((out, 0)) }],
            body: vec![Stmt::Accum {
                acc: AccId(0),
                op: BinOp::Add,
                value: Expr::Load(Access { arr: m, strides: vec![12, 4, 1], offset: 0 }),
            }],
        });
        p.checksum_arrays.push(out);
        check(&p, &Personality::gcc122());
    }

    #[test]
    fn select_lowering() {
        let mut p = KernelProgram::new("sel");
        let a = p.array("a", 16, ArrayInit::Linear { start: -4.0, step: 0.75 });
        let b = p.array("b", 16, ArrayInit::Zero);
        p.kernel(Kernel {
            name: "relu".into(),
            dims: vec![16],
            accs: vec![],
            body: vec![Stmt::Store {
                access: unit(b),
                value: Expr::Select {
                    cmp: CmpOp::Lt,
                    a: Box::new(Expr::Load(unit(a))),
                    b: Box::new(Expr::Const(0.0)),
                    t: Box::new(Expr::Const(0.0)),
                    e: Box::new(Expr::Load(unit(a))),
                },
            }],
        });
        p.checksum_arrays.push(b);
        check(&p, &Personality::gcc122());
        check(&p, &Personality::gcc92());
    }

    #[test]
    fn repeat_and_multiple_kernels() {
        let mut p = KernelProgram::new("multi");
        let a = p.array("a", 8, ArrayInit::Fill(1.0));
        let b = p.array("b", 8, ArrayInit::Zero);
        p.kernel(Kernel {
            name: "k1".into(),
            dims: vec![8],
            accs: vec![],
            body: vec![Stmt::Store {
                access: unit(b),
                value: Expr::add(Expr::Load(unit(b)), Expr::Load(unit(a))),
            }],
        });
        p.repeat = 3;
        p.checksum_arrays.push(b);
        check(&p, &Personality::gcc122());
        let c = compile(&p, &Personality::gcc122());
        let st = run(&c.program);
        assert_eq!(st.mem.read_f64(c.checksum_addr).unwrap(), 24.0);
    }

    #[test]
    fn temps_and_unops() {
        let mut p = KernelProgram::new("temps");
        let a = p.array("a", 8, ArrayInit::Linear { start: 1.0, step: 2.0 });
        let b = p.array("b", 8, ArrayInit::Zero);
        let t0 = TempId(0);
        p.kernel(Kernel {
            name: "k".into(),
            dims: vec![8],
            accs: vec![],
            body: vec![
                Stmt::Def { temp: t0, expr: Expr::sqrt(Expr::Load(unit(a))) },
                Stmt::Store {
                    access: unit(b),
                    value: Expr::mul(Expr::Temp(t0), Expr::Temp(t0)),
                },
            ],
        });
        p.checksum_arrays.push(b);
        check(&p, &Personality::gcc122());
    }

    #[test]
    fn fused_compare_branch_ablation() {
        let mut p = KernelProgram::new("ab");
        let a = p.array("a", 32, ArrayInit::Fill(2.0));
        let b = p.array("b", 32, ArrayInit::Zero);
        p.kernel(Kernel {
            name: "copy".into(),
            dims: vec![32],
            accs: vec![],
            body: vec![Stmt::Store { access: unit(b), value: Expr::Load(unit(a)) }],
        });
        p.checksum_arrays.push(b);
        let mut unfused = Personality::gcc122();
        unfused.riscv_fused_compare_branch = false;
        check(&p, &unfused);
        let fused_count = run(&compile(&p, &Personality::gcc122()).program).instret;
        let unfused_count = run(&compile(&p, &unfused).program).instret;
        assert!(unfused_count > fused_count);
    }
}
