//! Smoke-test the `make_tables` binary's fault tolerance: with one cell
//! deterministically faulted, the run still completes, prints the other
//! cells, marks the faulty one `ERR(<kind>)`, records the failure in the
//! metrics report, and only `--strict` flips the exit code.

use std::path::PathBuf;
use std::process::Command;

/// Run `make_tables` with `args` in a fresh scratch directory (the binary
/// writes `results/` into its cwd). Returns (exit code, stdout, stderr).
fn make_tables(scratch: &str, args: &[&str]) -> (i32, String, String) {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(scratch);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_make_tables"))
        .args(args)
        .current_dir(&dir)
        .output()
        .expect("make_tables runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const INJECT: &str = "STREAM/gcc-12.2/RISC-V:trap@1000";

#[test]
fn injected_fault_degrades_gracefully() {
    let (code, stdout, stderr) = make_tables(
        "degrade",
        &["table1", "--size", "test", "--inject", INJECT, "--metrics", "metrics.json"],
    );
    assert_eq!(code, 0, "degraded run still exits 0 without --strict:\n{stderr}");

    // The faulty cell is marked, the other 19 still populate.
    assert!(stdout.contains("ERR(sim)"), "stdout should mark the faulted cell:\n{stdout}");
    for w in ["STREAM", "LBM", "minisweep", "miniBUDE", "CloverLeaf"] {
        assert!(stdout.contains(w), "table should still include {w}:\n{stdout}");
    }
    assert!(stderr.contains("1 of 20 cells failed"), "stderr summary:\n{stderr}");

    // The failure and the retry spent on it land in the metrics report.
    let metrics = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("degrade/metrics.json"),
    )
    .expect("metrics.json written");
    assert!(metrics.contains("cells_failed"), "metrics: {metrics}");
    assert!(metrics.contains("cell_retries"), "metrics: {metrics}");
    assert!(metrics.contains("faults_injected"), "metrics: {metrics}");

    // matrix.json carries the typed failure record.
    let matrix = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("degrade/results/matrix.json"),
    )
    .expect("matrix.json written");
    assert!(matrix.contains("\"failures\""), "matrix.json: {matrix}");
    assert!(matrix.contains("injected fault"), "matrix.json: {matrix}");
}

#[test]
fn strict_flips_the_exit_code() {
    let (code, _stdout, stderr) =
        make_tables("strict", &["table1", "--size", "test", "--inject", INJECT, "--strict"]);
    assert_eq!(code, 3, "--strict must fail the run on a degraded matrix:\n{stderr}");
    assert!(stderr.contains("--strict"), "stderr explains the exit:\n{stderr}");
}

#[test]
fn healthy_strict_run_passes() {
    let (code, stdout, _stderr) = make_tables("healthy", &["table1", "--size", "test", "--strict"]);
    assert_eq!(code, 0);
    assert!(!stdout.contains("ERR("), "no failures expected:\n{stdout}");
}

#[test]
fn bad_inject_spec_is_a_usage_error() {
    let (code, _stdout, stderr) =
        make_tables("badspec", &["table1", "--size", "test", "--inject", "nonsense"]);
    assert_eq!(code, 2, "malformed --inject is a usage error:\n{stderr}");
}

#[test]
fn campaign_then_resume_heals_the_matrix() {
    // Leg 1: a seeded campaign injects into every cell. Seed 7 samples
    // three traps inside the default window (< every Test-size path), so
    // every cell degrades and --strict flips the exit code.
    let (code, stdout, stderr) = make_tables(
        "campaign",
        &["table1", "--size", "test", "--campaign", "7:3", "--strict"],
    );
    assert_eq!(code, 3, "campaign faults + --strict must exit 3:\n{stderr}");
    assert!(stdout.contains("ERR(sim)"), "campaign faults mark cells:\n{stdout}");
    assert!(
        stderr.contains("campaign: seed 0x7, 3 fault(s) per cell"),
        "stderr announces the campaign:\n{stderr}"
    );

    // The sampled schedule is a replayable on-disk artifact.
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("campaign");
    let manifest =
        std::fs::read_to_string(dir.join("results/campaign.json")).expect("campaign.json written");
    for needle in ["\"seed\": \"0x7\"", "\"window\"", "\"faults\"", "trap@"] {
        assert!(manifest.contains(needle), "campaign.json: {manifest}");
    }

    // Leg 2: resume the degraded matrix without the campaign. Every
    // recorded failure re-runs healthy, so --strict now passes.
    let (code, stdout, stderr) = make_tables(
        "campaign",
        &["table1", "--size", "test", "--resume", "results/matrix.json", "--strict"],
    );
    assert_eq!(code, 0, "resumed matrix must heal and pass --strict:\n{stderr}");
    assert!(!stdout.contains("ERR("), "no failures after the resume:\n{stdout}");
    assert!(stderr.contains("resuming matrix"), "stderr announces the resume:\n{stderr}");
}

#[test]
fn campaign_and_resume_are_mutually_exclusive() {
    let (code, _stdout, stderr) = make_tables(
        "camexcl",
        &[
            "table1", "--size", "test", "--campaign", "7:3", "--resume", "results/matrix.json",
        ],
    );
    assert_eq!(code, 2, "contradictory flags are a usage error:\n{stderr}");
    assert!(stderr.contains("mutually exclusive"), "stderr: {stderr}");
    // The rejected run must not leave a manifest behind.
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("camexcl");
    assert!(!dir.join("results/campaign.json").exists(), "no artifact from a rejected run");
}

#[test]
fn bad_campaign_spec_is_a_usage_error() {
    let (code, _stdout, stderr) =
        make_tables("badcamp", &["table1", "--size", "test", "--campaign", "7:zero"]);
    assert_eq!(code, 2, "malformed --campaign is a usage error:\n{stderr}");
}
