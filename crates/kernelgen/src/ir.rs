//! The loop-kernel intermediate representation.
//!
//! A [`KernelProgram`] is a sequence of [`Kernel`]s, each a perfectly nested
//! counted loop over `f64` arrays. Array accesses are affine in the loop
//! induction variables: `element = offset + sum_d stride[d] * iv[d]`. The
//! innermost dimension is the unit the back-ends optimise (addressing modes,
//! loop-exit idioms); outer dimensions are lowered with the classic
//! cursor-adjustment trick so each array needs exactly one pointer register
//! regardless of nesting depth.
//!
//! The IR deliberately has no integer data or data-dependent control flow —
//! conditional values are expressed with [`Expr::Select`], which lowers to
//! `fcmp`+`fcsel` on AArch64 and a compare + branch diamond on RISC-V (the
//! two ISAs' natural idioms). This covers all five paper workloads.

/// Handle to a declared array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayId(pub usize);

/// Handle to a per-iteration `f64` temporary (single assignment per
/// iteration via [`Stmt::Def`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TempId(pub usize);

/// Handle to a loop-carried accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccId(pub usize);

/// How an array's initial contents are produced.
#[derive(Debug, Clone)]
pub enum ArrayInit {
    /// All zeros (placed in `.bss`-like zero storage).
    Zero,
    /// Explicit values (placed in `.data`).
    Values(Vec<f64>),
    /// `start + i * step` for element `i`.
    Linear {
        /// Value of element 0.
        start: f64,
        /// Per-element increment.
        step: f64,
    },
    /// Constant value in every element.
    Fill(f64),
}

/// An array declaration.
#[derive(Debug, Clone)]
pub struct ArrayDecl {
    /// Name (unique within the program).
    pub name: String,
    /// Length in `f64` elements.
    pub len: u64,
    /// Initial contents.
    pub init: ArrayInit,
}

/// Binary operations on `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// IEEE minimumNumber.
    Min,
    /// IEEE maximumNumber.
    Max,
}

/// Unary operations on `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Square root.
    Sqrt,
}

/// Comparison predicates for [`Expr::Select`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Equal.
    Eq,
}

/// An affine array access: `element = offset + sum_d strides[d] * iv[d]`.
///
/// `strides` is indexed outermost-first and must have exactly as many
/// entries as the enclosing kernel has dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// Array accessed.
    pub arr: ArrayId,
    /// Per-dimension element strides (outermost first).
    pub strides: Vec<i64>,
    /// Constant element offset.
    pub offset: i64,
}

/// A pure `f64` expression evaluated once per innermost iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Const(f64),
    /// Previously defined temporary.
    Temp(TempId),
    /// Current value of an accumulator.
    Acc(AccId),
    /// Array load.
    Load(Access),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Fused multiply-add `a*b + c` (fused when the personality allows,
    /// otherwise a separate multiply and add — bit-identical to the
    /// interpreter either way).
    MulAdd(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `if cmp(a, b) { t } else { e }`.
    Select {
        /// Predicate.
        cmp: CmpOp,
        /// Left comparison operand.
        a: Box<Expr>,
        /// Right comparison operand.
        b: Box<Expr>,
        /// Value when the predicate holds.
        t: Box<Expr>,
        /// Value otherwise.
        e: Box<Expr>,
    },
}

// Constructor names deliberately match the IR operation names, not the
// std::ops traits (these build syntax trees, they don't compute).
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(a), Box::new(b))
    }
    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(a), Box::new(b))
    }
    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(a), Box::new(b))
    }
    /// `a / b`.
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(a), Box::new(b))
    }
    /// `min(a, b)`.
    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Min, Box::new(a), Box::new(b))
    }
    /// `max(a, b)`.
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Max, Box::new(a), Box::new(b))
    }
    /// `sqrt(a)`.
    pub fn sqrt(a: Expr) -> Expr {
        Expr::Un(UnOp::Sqrt, Box::new(a))
    }
    /// `-a`.
    pub fn neg(a: Expr) -> Expr {
        Expr::Un(UnOp::Neg, Box::new(a))
    }
    /// `|a|`.
    pub fn abs(a: Expr) -> Expr {
        Expr::Un(UnOp::Abs, Box::new(a))
    }
    /// `a*b + c`.
    pub fn mul_add(a: Expr, b: Expr, c: Expr) -> Expr {
        Expr::MulAdd(Box::new(a), Box::new(b), Box::new(c))
    }
}

/// One statement in a kernel body (executed in order each iteration).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Define temporary `temp` (each temp defined exactly once per body).
    Def {
        /// The temporary being defined.
        temp: TempId,
        /// Its value.
        expr: Expr,
    },
    /// Store `value` to an array element.
    Store {
        /// Destination access.
        access: Access,
        /// Value stored.
        value: Expr,
    },
    /// Loop-carried update: `acc = acc op value`.
    Accum {
        /// Accumulator updated.
        acc: AccId,
        /// Combining operation (Add, Min or Max).
        op: BinOp,
        /// Value combined in.
        value: Expr,
    },
}

/// Declaration of a loop-carried accumulator.
#[derive(Debug, Clone)]
pub struct AccDecl {
    /// Initial value at kernel entry.
    pub init: f64,
    /// Where to store the final value when the kernel completes:
    /// `(array, element)`.
    pub store_to: Option<(ArrayId, u64)>,
}

/// A perfectly nested counted loop with a flat body.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Region name (the per-kernel breakdown of Figure 1 uses this).
    pub name: String,
    /// Trip counts, outermost first. Must be non-empty; every trip > 0.
    pub dims: Vec<u64>,
    /// Accumulators live across the whole nest.
    pub accs: Vec<AccDecl>,
    /// Innermost-loop body.
    pub body: Vec<Stmt>,
}

/// A complete workload: arrays + kernels (+ optional outer repetition).
#[derive(Debug, Clone)]
pub struct KernelProgram {
    /// Workload name.
    pub name: String,
    /// Array declarations.
    pub arrays: Vec<ArrayDecl>,
    /// Kernels, run in order.
    pub kernels: Vec<Kernel>,
    /// Number of times the whole kernel sequence runs (timing iterations).
    pub repeat: u64,
    /// Arrays summed into the final checksum.
    pub checksum_arrays: Vec<ArrayId>,
}

impl KernelProgram {
    /// New empty program.
    pub fn new(name: &str) -> Self {
        KernelProgram {
            name: name.to_string(),
            arrays: Vec::new(),
            kernels: Vec::new(),
            repeat: 1,
            checksum_arrays: Vec::new(),
        }
    }

    /// Declare an array.
    pub fn array(&mut self, name: &str, len: u64, init: ArrayInit) -> ArrayId {
        self.arrays.push(ArrayDecl { name: name.to_string(), len, init });
        ArrayId(self.arrays.len() - 1)
    }

    /// Append a kernel.
    pub fn kernel(&mut self, k: Kernel) {
        self.kernels.push(k);
    }

    /// Validate structural invariants; panics with a description on error.
    /// Back-ends call this before lowering.
    pub fn validate(&self) {
        assert!(self.repeat > 0, "repeat must be positive");
        for k in &self.kernels {
            assert!(!k.dims.is_empty(), "kernel {} has no dims", k.name);
            assert!(k.dims.iter().all(|&d| d > 0), "kernel {} has a zero trip", k.name);
            let ndim = k.dims.len();
            let mut defined: Vec<bool> = Vec::new();
            let check_expr = |e: &Expr, defined: &Vec<bool>| {
                let mut stack = vec![e];
                while let Some(e) = stack.pop() {
                    match e {
                        Expr::Const(_) => {}
                        Expr::Temp(t) => assert!(
                            t.0 < defined.len() && defined[t.0],
                            "kernel {}: temp {} used before def",
                            k.name,
                            t.0
                        ),
                        Expr::Acc(a) => {
                            assert!(a.0 < k.accs.len(), "kernel {}: bad acc id", k.name)
                        }
                        Expr::Load(acc) => {
                            assert!(acc.arr.0 < self.arrays.len());
                            assert_eq!(
                                acc.strides.len(),
                                ndim,
                                "kernel {}: access stride arity mismatch",
                                k.name
                            );
                            self.check_bounds(k, acc);
                        }
                        Expr::Un(_, a) => stack.push(a),
                        Expr::Bin(_, a, b) => {
                            stack.push(a);
                            stack.push(b);
                        }
                        Expr::MulAdd(a, b, c) => {
                            stack.push(a);
                            stack.push(b);
                            stack.push(c);
                        }
                        Expr::Select { cmp: _, a, b, t, e } => {
                            stack.push(a);
                            stack.push(b);
                            stack.push(t);
                            stack.push(e);
                        }
                    }
                }
            };
            for s in &k.body {
                match s {
                    Stmt::Def { temp, expr } => {
                        check_expr(expr, &defined);
                        if temp.0 >= defined.len() {
                            defined.resize(temp.0 + 1, false);
                        }
                        assert!(!defined[temp.0], "kernel {}: temp redefined", k.name);
                        defined[temp.0] = true;
                    }
                    Stmt::Store { access, value } => {
                        check_expr(value, &defined);
                        assert_eq!(access.strides.len(), ndim);
                        self.check_bounds(k, access);
                    }
                    Stmt::Accum { acc, op, value } => {
                        assert!(acc.0 < k.accs.len());
                        assert!(
                            matches!(op, BinOp::Add | BinOp::Min | BinOp::Max),
                            "kernel {}: accumulator op must be Add/Min/Max",
                            k.name
                        );
                        check_expr(value, &defined);
                    }
                }
            }
        }
        for a in &self.checksum_arrays {
            assert!(a.0 < self.arrays.len());
        }
    }

    fn check_bounds(&self, k: &Kernel, acc: &Access) {
        let mut min = acc.offset;
        let mut max = acc.offset;
        for (d, &s) in acc.strides.iter().enumerate() {
            let span = s * (k.dims[d] as i64 - 1);
            if span >= 0 {
                max += span;
            } else {
                min += span;
            }
        }
        let len = self.arrays[acc.arr.0].len as i64;
        assert!(
            min >= 0 && max < len,
            "kernel {}: access to array {} spans [{min}, {max}] out of 0..{len}",
            k.name,
            self.arrays[acc.arr.0].name
        );
    }
}

/// Append the guest-side checksum computation to a program: one
/// reduction kernel per checksum array (partials stored to `__partials`),
/// then a final fold into the single-element `__checksum` array.
///
/// Returns the augmented program and the id of the `__checksum` array.
/// Back-ends compile the augmented form; the per-array-partials shape
/// matches [`crate::interp::interpret`]'s checksum fold bit-for-bit.
pub fn augment_with_checksum(prog: &KernelProgram) -> (KernelProgram, ArrayId) {
    let mut p = prog.clone();
    let n = p.checksum_arrays.len().max(1) as u64;
    let partials = p.array("__partials", n, ArrayInit::Zero);
    let result = p.array("__checksum", 1, ArrayInit::Zero);
    for (i, arr) in prog.checksum_arrays.clone().iter().enumerate() {
        let len = p.arrays[arr.0].len;
        p.kernel(Kernel {
            name: "__checksum".into(),
            dims: vec![len],
            accs: vec![AccDecl { init: 0.0, store_to: Some((partials, i as u64)) }],
            body: vec![Stmt::Accum {
                acc: AccId(0),
                op: BinOp::Add,
                value: Expr::Load(Access { arr: *arr, strides: vec![1], offset: 0 }),
            }],
        });
    }
    p.kernel(Kernel {
        name: "__checksum".into(),
        dims: vec![n],
        accs: vec![AccDecl { init: 0.0, store_to: Some((result, 0)) }],
        body: vec![Stmt::Accum {
            acc: AccId(0),
            op: BinOp::Add,
            value: Expr::Load(Access { arr: partials, strides: vec![1], offset: 0 }),
        }],
    });
    // The checksum kernels run once, after the repeated main sequence.
    // (Back-ends place the repeat loop around the original kernels only.)
    (p, result)
}

/// Materialise an [`ArrayInit`] into concrete values.
pub fn init_values(decl: &ArrayDecl) -> Vec<f64> {
    match &decl.init {
        ArrayInit::Zero => vec![0.0; decl.len as usize],
        ArrayInit::Fill(v) => vec![*v; decl.len as usize],
        ArrayInit::Values(v) => {
            assert_eq!(v.len() as u64, decl.len, "array {} init length", decl.name);
            v.clone()
        }
        ArrayInit::Linear { start, step } => {
            (0..decl.len).map(|i| start + i as f64 * step).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_access(arr: ArrayId) -> Access {
        Access { arr, strides: vec![1], offset: 0 }
    }

    #[test]
    fn builder_and_validate() {
        let mut p = KernelProgram::new("t");
        let a = p.array("a", 16, ArrayInit::Linear { start: 0.0, step: 1.0 });
        let b = p.array("b", 16, ArrayInit::Zero);
        p.kernel(Kernel {
            name: "copy".into(),
            dims: vec![16],
            accs: vec![],
            body: vec![Stmt::Store {
                access: unit_access(b),
                value: Expr::Load(unit_access(a)),
            }],
        });
        p.checksum_arrays.push(b);
        p.validate();
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn oob_access_caught() {
        let mut p = KernelProgram::new("t");
        let a = p.array("a", 8, ArrayInit::Zero);
        p.kernel(Kernel {
            name: "bad".into(),
            dims: vec![16],
            accs: vec![],
            body: vec![Stmt::Store {
                access: unit_access(a),
                value: Expr::Const(0.0),
            }],
        });
        p.validate();
    }

    #[test]
    #[should_panic(expected = "used before def")]
    fn temp_use_before_def_caught() {
        let mut p = KernelProgram::new("t");
        let a = p.array("a", 8, ArrayInit::Zero);
        p.kernel(Kernel {
            name: "bad".into(),
            dims: vec![8],
            accs: vec![],
            body: vec![Stmt::Store {
                access: unit_access(a),
                value: Expr::Temp(TempId(0)),
            }],
        });
        p.validate();
    }

    #[test]
    fn stencil_bounds() {
        let mut p = KernelProgram::new("t");
        let a = p.array("a", 18, ArrayInit::Zero);
        let b = p.array("b", 18, ArrayInit::Zero);
        // 16-wide loop reading a[i], a[i+1], a[i+2]: touches 0..17 -> fits 18.
        p.kernel(Kernel {
            name: "stencil".into(),
            dims: vec![16],
            accs: vec![],
            body: vec![Stmt::Store {
                access: Access { arr: b, strides: vec![1], offset: 1 },
                value: Expr::add(
                    Expr::Load(Access { arr: a, strides: vec![1], offset: 0 }),
                    Expr::Load(Access { arr: a, strides: vec![1], offset: 2 }),
                ),
            }],
        });
        p.validate();
    }

    #[test]
    fn init_value_forms() {
        let lin = ArrayDecl {
            name: "l".into(),
            len: 4,
            init: ArrayInit::Linear { start: 1.0, step: 0.5 },
        };
        assert_eq!(init_values(&lin), vec![1.0, 1.5, 2.0, 2.5]);
        let fill = ArrayDecl { name: "f".into(), len: 3, init: ArrayInit::Fill(7.0) };
        assert_eq!(init_values(&fill), vec![7.0; 3]);
    }
}
