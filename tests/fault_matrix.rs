//! Fault tolerance end to end: an injected fault degrades exactly one
//! cell of the matrix while every other cell still measures, watchdogs
//! produce typed timeouts, and silent corruption is caught by the
//! checksum cross-check.

use isacmp::{
    resume_matrix, run_cell_opts, run_matrix_opts, CellOptions, InjectSpec, IsaKind,
    MatrixOptions, Personality, ResultMatrix, SizeClass, Workload,
};

#[test]
fn injected_fault_degrades_one_cell_and_spares_the_rest() {
    let inject = InjectSpec::parse("STREAM/gcc-12.2/RISC-V:trap@1000").unwrap();
    let opts = MatrixOptions { inject: Some(inject), ..Default::default() };
    let m = run_matrix_opts(&[Workload::Stream, Workload::Lbm], SizeClass::Test, &opts);

    assert_eq!(m.cells.len(), 7, "seven healthy cells measured");
    assert_eq!(m.failures.len(), 1, "exactly the targeted cell failed");
    assert!(!m.is_complete());
    let f = m.get_failure("STREAM", "gcc-12.2", "RISC-V").expect("targeted failure recorded");
    assert_eq!(f.kind, "sim");
    assert!(f.detail.contains("injected fault"), "detail: {}", f.detail);
    // The healthy twin of the faulted cell is untouched.
    assert!(m.get("STREAM", "gcc-12.2", "AArch64").is_some());

    // Tables render the failure in place instead of dropping the run.
    let t1 = m.table1();
    assert!(t1.contains("ERR(sim)"), "table1 should mark the failed cell:\n{t1}");
    assert!(t1.contains("LBM"), "unaffected workloads still render");

    // The failure record survives the JSON round trip.
    let back = ResultMatrix::from_json(&m.to_json()).unwrap();
    assert_eq!(back.failures.len(), 1);
    assert_eq!(back.failures[0].kind, "sim");
    assert_eq!(back.cells.len(), 7);
}

#[test]
fn resume_reruns_only_the_recorded_failures() {
    // Degrade one cell, round-trip the partial matrix through JSON (the
    // on-disk `results/matrix.json` shape), then resume without the fault:
    // only the failed cell re-runs, the seven healthy cells are kept
    // verbatim, and the healed matrix is complete.
    let inject = InjectSpec::parse("STREAM/gcc-12.2/RISC-V:trap@1000").unwrap();
    let opts = MatrixOptions { inject: Some(inject), ..Default::default() };
    let partial = run_matrix_opts(&[Workload::Stream, Workload::Lbm], SizeClass::Test, &opts);
    assert_eq!(partial.cells.len(), 7);
    assert_eq!(partial.failures.len(), 1);

    let prior = ResultMatrix::from_json(&partial.to_json()).expect("matrix round-trips");
    assert_eq!(prior.failures.len(), 1, "failure record survives serialization");

    let tel = isacmp::telemetry::global();
    let skipped0 = tel.counter("cells_skipped");
    let resumed0 = tel.counter("cells_resumed");
    let healed = resume_matrix(&prior, SizeClass::Test, &MatrixOptions::default());
    assert_eq!(tel.counter("cells_skipped") - skipped0, 7, "healthy cells kept, not re-run");
    assert_eq!(tel.counter("cells_resumed") - resumed0, 1, "only the failure re-ran");

    assert!(healed.is_complete(), "resume heals the matrix: {}", healed.failure_summary());
    assert_eq!(healed.cells.len(), 8);
    // The kept cells are the prior ones verbatim, and every healed cell
    // measures identically to a from-scratch never-faulted run. (The
    // resumed cell is appended last, so compare per cell, not per blob.)
    for old in &prior.cells {
        let kept = healed.get(&old.workload, &old.compiler, &old.isa).expect("cell kept");
        assert_eq!(format!("{kept:?}"), format!("{old:?}"));
    }
    let fresh = run_matrix_opts(
        &[Workload::Stream, Workload::Lbm],
        SizeClass::Test,
        &MatrixOptions::default(),
    );
    assert_eq!(fresh.cells.len(), healed.cells.len());
    for cell in &fresh.cells {
        let healed_cell =
            healed.get(&cell.workload, &cell.compiler, &cell.isa).expect("healed cell present");
        assert_eq!(
            format!("{healed_cell:?}"),
            format!("{cell:?}"),
            "healed cell identical to a never-faulted measurement"
        );
    }
}

#[test]
fn resume_carries_unknown_labels_forward() {
    // A matrix produced by a build with more workloads than this one must
    // not lose its un-mappable failures on resume — they stay recorded.
    let inject = InjectSpec::parse("STREAM/gcc-12.2/RISC-V:trap@1000").unwrap();
    let opts = MatrixOptions { inject: Some(inject), ..Default::default() };
    let mut prior = run_matrix_opts(&[Workload::Stream], SizeClass::Test, &opts);
    prior.failures[0].workload = "NOT-A-WORKLOAD".into();

    let healed = resume_matrix(&prior, SizeClass::Test, &MatrixOptions::default());
    assert_eq!(healed.failures.len(), 1, "unknown label carried forward, not dropped");
    assert_eq!(healed.failures[0].workload, "NOT-A-WORKLOAD");
    assert_eq!(healed.cells.len(), prior.cells.len(), "no cell re-ran for it");
}

#[test]
fn zero_deadline_is_a_typed_timeout() {
    let opts = CellOptions { deadline: Some(std::time::Duration::ZERO), ..Default::default() };
    let err = run_cell_opts(
        Workload::Stream,
        IsaKind::AArch64,
        &Personality::gcc122(),
        SizeClass::Test,
        &opts,
    )
    .expect_err("a zero wall-clock budget must trip the watchdog");
    assert_eq!(err.kind(), "timeout");
    assert!(!err.retryable(), "watchdog trips are deterministic; retrying wastes wall time");
}

#[test]
fn read_corruption_is_caught_by_the_checksum() {
    // Flip an exponent bit of the 40th read: the guest runs to completion
    // but its checksum must disagree with the reference interpreter. (A
    // low mantissa bit could round away in the checksum reduction; bit 62
    // cannot.)
    let fault = isacmp::FaultPlan::parse("read@40:62").unwrap();
    let opts = CellOptions { fault: Some(fault), ..Default::default() };
    let err = run_cell_opts(
        Workload::Stream,
        IsaKind::RiscV,
        &Personality::gcc122(),
        SizeClass::Test,
        &opts,
    )
    .expect_err("a corrupted read must not produce the reference checksum");
    // Depending on which load the fault lands on, the guest either faults
    // outright or silently corrupts data; both must surface as errors.
    assert!(
        matches!(err.kind(), "checksum" | "sim"),
        "unexpected failure kind {}: {err}",
        err.kind()
    );
}

#[test]
fn retries_rerun_the_cell_and_are_capped() {
    // A deterministic injected fault fails every attempt: with N retries
    // the harness runs 1 + N attempts, then records a typed failure.
    let tel = isacmp::telemetry::global();
    let before = tel.counter("cell_retries");
    let fault = isacmp::FaultPlan::parse("trap@1000").unwrap();
    let opts = CellOptions { retries: 2, fault: Some(fault), ..Default::default() };
    let err = run_cell_opts(
        Workload::Stream,
        IsaKind::RiscV,
        &Personality::gcc122(),
        SizeClass::Test,
        &opts,
    )
    .expect_err("deterministic fault fails every retry");
    assert_eq!(err.kind(), "sim");
    assert_eq!(tel.counter("cell_retries") - before, 2, "both granted retries were spent");
}
