//! `load_driver` — concurrent load generator for `isacmpd`.
//!
//! Usage: load_driver --addr HOST:PORT [--clients N] [--requests N]
//!                    [job flags: --size/--engine/--retries/--deadline-secs/
//!                     --inject/--campaign/--kind/--fusion]
//!                    [--out MATRIX.JSON] [--stats-out STATS.JSON]
//!                    [--min-hit-rate PCT]
//!
//! Spawns `--clients` threads, each submitting the same job spec
//! `--requests` times over its own connection, and reports p50/p99
//! submit-to-result latency (log2 histogram), throughput, and the
//! daemon-side cache hit rate over the run. Every returned matrix must be
//! byte-identical (the provenance-cache invariant); the first one can be
//! written out with `--out` for external comparison against a one-shot
//! `make_tables` run.
//!
//! Exit codes: 0 success; 1 any job failure, matrix divergence, a
//! `--min-hit-rate` miss, or (with `--fail-on-cell-failures`) any failure
//! entry inside a served matrix; 2 usage. Failure *entries* are otherwise
//! reported but tolerated — a fault campaign produces them by design.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bench::cli;
use isacmp::telemetry::{json::Json, Histogram};
use server::{Client, JobOutcome, JobSpec};

/// Give up on a single request after this many consecutive busy
/// rejections (the daemon is saturated beyond backoff's help).
const MAX_BUSY_RETRIES: u32 = 200;

/// First busy rejection sleeps around this long ...
const BUSY_BACKOFF_BASE_MS: u64 = 5;

/// ... doubling per consecutive rejection up to this cap.
const BUSY_BACKOFF_CAP_MS: u64 = 250;

/// splitmix64 — the jitter stream (one per client thread, deterministic
/// from the client index, so runs are reproducible but threads never
/// sleep in lockstep).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Capped exponential backoff with full jitter: consecutive rejection
/// `retry` sleeps a uniform random duration in
/// `[base, min(cap, base << retry)]`. Exponential growth drains a
/// saturated admission queue; the jitter keeps the herd from thundering
/// back in phase.
fn busy_backoff(retry: u32, rng: &mut u64) -> Duration {
    let ceil = BUSY_BACKOFF_BASE_MS
        .saturating_mul(1u64 << retry.min(16) as u64)
        .min(BUSY_BACKOFF_CAP_MS);
    let span = ceil.saturating_sub(BUSY_BACKOFF_BASE_MS) + 1;
    Duration::from_millis(BUSY_BACKOFF_BASE_MS + splitmix64(rng) % span)
}

fn usage() -> ! {
    eprintln!(
        "usage: load_driver --addr HOST:PORT [--clients N] [--requests N] \
         [--size NAME] [--engine NAME] [--retries N] [--deadline-secs S] \
         [--inject SPEC] [--campaign SEED:N] [--kind matrix|campaign|trace|fusion] \
         [--fusion] [--out MATRIX.JSON] [--stats-out STATS.JSON] [--min-hit-rate PCT] \
         [--fail-on-cell-failures]"
    );
    std::process::exit(2);
}

fn or_usage<T>(r: Result<T, String>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("load_driver: {e}");
        usage();
    })
}

/// Shared tallies across client threads.
#[derive(Default)]
struct Tally {
    latency_us: Mutex<Histogram>,
    ok: AtomicU64,
    /// Transport/submit errors: the job produced no matrix.
    failures: AtomicU64,
    /// Failure entries *inside* served matrices. For a fault campaign
    /// these are the expected outcome, so they are reported separately
    /// and only gated by `--fail-on-cell-failures`.
    cell_failures: AtomicU64,
    busy_rejections: AtomicU64,
    /// Longest consecutive busy-retry streak any single request needed.
    max_busy_streak: AtomicU64,
    /// Cumulative milliseconds slept in busy backoff across all clients.
    backoff_ms: AtomicU64,
    shutdowns: AtomicU64,
    divergent: AtomicU64,
    first_matrix: Mutex<Option<String>>,
}

impl Tally {
    /// Record a served matrix; flags divergence from the first one seen.
    fn record_matrix(&self, matrix_json: &str) {
        let mut first = self.first_matrix.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match first.as_deref() {
            None => *first = Some(matrix_json.to_string()),
            Some(seen) if seen == matrix_json => {}
            Some(_) => {
                self.divergent.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn run_client(id: u64, addr: &str, spec: &JobSpec, requests: u64, tally: &Tally) {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("load_driver: connect {addr}: {e}");
            tally.failures.fetch_add(requests, Ordering::Relaxed);
            return;
        }
    };
    let mut rng = id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x10ad_d21f_e500_0001;
    for _ in 0..requests {
        let mut busy_retries = 0u32;
        loop {
            let t0 = Instant::now();
            match client.submit(spec, |_, _, _, _| {}) {
                Ok(JobOutcome::Done { matrix_json, failures, .. }) => {
                    let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    tally
                        .latency_us
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .record(us);
                    tally.record_matrix(&matrix_json);
                    tally.cell_failures.fetch_add(failures, Ordering::Relaxed);
                    tally.ok.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Ok(JobOutcome::Busy { .. }) => {
                    tally.busy_rejections.fetch_add(1, Ordering::Relaxed);
                    busy_retries += 1;
                    tally.max_busy_streak.fetch_max(busy_retries as u64, Ordering::Relaxed);
                    if busy_retries > MAX_BUSY_RETRIES {
                        tally.failures.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    let sleep = busy_backoff(busy_retries, &mut rng);
                    tally.backoff_ms.fetch_add(sleep.as_millis() as u64, Ordering::Relaxed);
                    std::thread::sleep(sleep);
                }
                Ok(JobOutcome::Shutdown { .. }) => {
                    tally.shutdowns.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(e) => {
                    eprintln!("load_driver: job error: {e}");
                    tally.failures.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if cli::has_flag(&args, "--help") || cli::has_flag(&args, "-h") {
        usage();
    }
    let Some(addr) = cli::flag_value(&args, "--addr") else {
        eprintln!("load_driver: --addr is required");
        usage();
    };
    let clients: u64 = or_usage(
        cli::flag_value(&args, "--clients")
            .map(|s| s.parse().map_err(|_| format!("--clients expects an integer, got '{s}'")))
            .unwrap_or(Ok(8)),
    );
    let requests: u64 = or_usage(
        cli::flag_value(&args, "--requests")
            .map(|s| s.parse().map_err(|_| format!("--requests expects an integer, got '{s}'")))
            .unwrap_or(Ok(1)),
    );
    let min_hit_rate: Option<f64> = cli::flag_value(&args, "--min-hit-rate").map(|s| {
        or_usage(
            s.parse::<f64>()
                .ok()
                .filter(|v| v.is_finite() && (0.0..=100.0).contains(v))
                .ok_or_else(|| format!("--min-hit-rate expects a percentage 0..=100, got '{s}'")),
        )
    });
    let out = cli::flag_value(&args, "--out");
    let stats_out = cli::flag_value(&args, "--stats-out");
    let fail_on_cell_failures = cli::has_flag(&args, "--fail-on-cell-failures");
    let spec = or_usage(JobSpec::from_args(&args));

    // Cache counters are sampled before and after so the reported hit
    // rate covers exactly this run, even against a long-lived daemon.
    let mut probe = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("load_driver: connect {addr}: {e}");
            std::process::exit(1);
        }
    };
    let before = probe.stats().unwrap_or_else(|e| {
        eprintln!("load_driver: stats: {e}");
        std::process::exit(1);
    });

    let tally = Arc::new(Tally::default());
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|id| {
            let (addr, spec, tally) = (addr.clone(), spec.clone(), Arc::clone(&tally));
            std::thread::spawn(move || run_client(id, &addr, &spec, requests, &tally))
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }
    let wall = t0.elapsed();

    let after = probe.stats().unwrap_or_else(|e| {
        eprintln!("load_driver: stats: {e}");
        std::process::exit(1);
    });
    let d_hits = after.cache_hits.saturating_sub(before.cache_hits);
    let d_misses = after.cache_misses.saturating_sub(before.cache_misses);
    let claims = d_hits + d_misses;
    let hit_rate = if claims == 0 { 0.0 } else { 100.0 * d_hits as f64 / claims as f64 };

    let hist = tally.latency_us.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
    let ok = tally.ok.load(Ordering::Relaxed);
    let failures = tally.failures.load(Ordering::Relaxed);
    let cell_failures = tally.cell_failures.load(Ordering::Relaxed);
    let busy = tally.busy_rejections.load(Ordering::Relaxed);
    let max_streak = tally.max_busy_streak.load(Ordering::Relaxed);
    let backoff_ms = tally.backoff_ms.load(Ordering::Relaxed);
    let shutdowns = tally.shutdowns.load(Ordering::Relaxed);
    let divergent = tally.divergent.load(Ordering::Relaxed);
    let (p50, p99) = (hist.quantile(0.5), hist.quantile(0.99));
    let throughput = if wall.as_secs_f64() > 0.0 { ok as f64 / wall.as_secs_f64() } else { 0.0 };

    println!(
        "load_driver: {clients} client(s) x {requests} request(s) in {:.2}s",
        wall.as_secs_f64()
    );
    println!("  jobs ok:        {ok} ({throughput:.2} jobs/s)");
    println!("  failures:       {failures}");
    println!("  cell failures:  {cell_failures}");
    println!("  busy retries:   {busy} (max streak {max_streak}, {backoff_ms} ms backed off)");
    println!("  shutdown-ended: {shutdowns}");
    println!("  divergent:      {divergent}");
    println!("  latency us:     p50 {p50}  p99 {p99}  mean {:.0}  max {}", hist.mean(), hist.max());
    println!("  cache:          {d_hits} hit(s) / {d_misses} miss(es) = {hit_rate:.1}% hit rate");

    if let Some(path) = &out {
        let first = tally.first_matrix.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match first.as_deref() {
            Some(matrix) => {
                if let Err(e) = std::fs::write(path, matrix) {
                    eprintln!("load_driver: write {path}: {e}");
                    std::process::exit(1);
                }
            }
            None => eprintln!("load_driver: no matrix served; {path} not written"),
        }
    }

    if let Some(path) = &stats_out {
        let stats = Json::obj(vec![
            ("clients", Json::Num(clients as f64)),
            ("requests_per_client", Json::Num(requests as f64)),
            ("jobs_ok", Json::Num(ok as f64)),
            ("failures", Json::Num(failures as f64)),
            ("cell_failures", Json::Num(cell_failures as f64)),
            ("busy_rejections", Json::Num(busy as f64)),
            ("busy_max_streak", Json::Num(max_streak as f64)),
            ("backoff_sleep_ms", Json::Num(backoff_ms as f64)),
            ("shutdowns", Json::Num(shutdowns as f64)),
            ("divergent_matrices", Json::Num(divergent as f64)),
            ("p50_latency_us", Json::Num(p50 as f64)),
            ("p99_latency_us", Json::Num(p99 as f64)),
            ("mean_latency_us", Json::Num(hist.mean())),
            ("throughput_jobs_per_sec", Json::Num(throughput)),
            ("cache_hits", Json::Num(d_hits as f64)),
            ("cache_misses", Json::Num(d_misses as f64)),
            ("cache_hit_rate", Json::Num(hit_rate)),
            ("server_jobs_total", Json::Num(after.jobs_total as f64)),
            ("wall_secs", Json::Num(wall.as_secs_f64())),
        ]);
        let mut text = stats.pretty();
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("load_driver: write {path}: {e}");
            std::process::exit(1);
        }
    }
    let _ = std::io::stdout().flush();

    let mut bad = false;
    if failures > 0 {
        eprintln!("load_driver: FAIL: {failures} job failure(s)");
        bad = true;
    }
    if fail_on_cell_failures && cell_failures > 0 {
        eprintln!("load_driver: FAIL: {cell_failures} failed cell(s) in served matrices");
        bad = true;
    }
    if divergent > 0 {
        eprintln!("load_driver: FAIL: {divergent} divergent matrix result(s)");
        bad = true;
    }
    if let Some(min) = min_hit_rate {
        if hit_rate < min {
            eprintln!("load_driver: FAIL: hit rate {hit_rate:.1}% below required {min:.1}%");
            bad = true;
        }
    }
    std::process::exit(if bad { 1 } else { 0 });
}
