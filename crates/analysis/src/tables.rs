//! Result containers and paper-style table/figure formatting.
//!
//! One [`ExperimentCell`] holds everything measured for a (workload,
//! compiler, ISA) combination; a [`ResultMatrix`] formats the full set the
//! way the paper reports it (Tables 1-2, Figures 1-2).

use telemetry::Json;

/// All measurements for one (workload, compiler, ISA) cell.
#[derive(Debug, Clone)]
pub struct ExperimentCell {
    /// Workload name ("STREAM", ...).
    pub workload: String,
    /// Compiler label ("gcc-9.2" / "gcc-12.2").
    pub compiler: String,
    /// ISA label ("AArch64" / "RISC-V").
    pub isa: String,
    /// Dynamic instruction count.
    pub path_length: u64,
    /// Unit-cost critical path.
    pub critical_path: u64,
    /// Latency-scaled critical path (TX2 latencies).
    pub scaled_cp: u64,
    /// Per-kernel instruction counts, in kernel order.
    pub kernels: Vec<(String, u64)>,
    /// Windowed-CP stats: (window size, mean CP, mean ILP).
    pub windows: Vec<(usize, f64, f64)>,
}

impl ExperimentCell {
    /// ILP from the unit-cost critical path.
    pub fn ilp(&self) -> f64 {
        self.path_length as f64 / self.critical_path.max(1) as f64
    }

    /// ILP from the scaled critical path.
    pub fn scaled_ilp(&self) -> f64 {
        self.path_length as f64 / self.scaled_cp.max(1) as f64
    }

    /// 2 GHz runtime estimate (ms) from the unit-cost CP.
    pub fn runtime_ms(&self) -> f64 {
        crate::runtime_ms(self.critical_path)
    }

    /// 2 GHz runtime estimate (ms) from the scaled CP.
    pub fn scaled_runtime_ms(&self) -> f64 {
        crate::runtime_ms(self.scaled_cp)
    }
}

/// The full experiment matrix plus formatters for every paper artefact.
#[derive(Debug, Clone, Default)]
pub struct ResultMatrix {
    /// All measured cells.
    pub cells: Vec<ExperimentCell>,
}

impl ResultMatrix {
    /// Look up a cell.
    pub fn get(&self, workload: &str, compiler: &str, isa: &str) -> Option<&ExperimentCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.compiler == compiler && c.isa == isa)
    }

    /// Distinct workloads in insertion order.
    pub fn workloads(&self) -> Vec<String> {
        let mut out = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.workload) {
                out.push(c.workload.clone());
            }
        }
        out
    }

    fn compilers(&self) -> Vec<String> {
        let mut out = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.compiler) {
                out.push(c.compiler.clone());
            }
        }
        out
    }

    /// Render Table 1 (path length, CP, ILP, 2 GHz runtime).
    pub fn table1(&self) -> String {
        self.render_table(
            "Table 1: Critical Paths and ILP per Benchmark",
            &[
                ("Path Length", &|c: &ExperimentCell| fmt_u64(c.path_length)),
                ("CP", &|c| fmt_u64(c.critical_path)),
                ("ILP", &|c| format!("{:.0}", c.ilp())),
                ("2GHz Run time (ms)", &|c| fmt_ms(c.runtime_ms())),
            ],
        )
    }

    /// Render Table 2 (scaled CP, ILP, 2 GHz runtime).
    pub fn table2(&self) -> String {
        self.render_table(
            "Table 2: Scaled Critical Paths and ILP per Benchmark",
            &[
                ("Scaled CP", &|c: &ExperimentCell| fmt_u64(c.scaled_cp)),
                ("ILP", &|c| format!("{:.0}", c.scaled_ilp())),
                ("2GHz Run time (ms)", &|c| fmt_ms(c.scaled_runtime_ms())),
            ],
        )
    }

    #[allow(clippy::type_complexity)]
    fn render_table(
        &self,
        title: &str,
        rows: &[(&str, &dyn Fn(&ExperimentCell) -> String)],
    ) -> String {
        let mut out = String::new();
        out.push_str(title);
        out.push('\n');
        for w in self.workloads() {
            out.push_str(&format!("\n== {w} ==\n"));
            let mut header = format!("{:<22}", "");
            let mut cols: Vec<&ExperimentCell> = Vec::new();
            for compiler in self.compilers() {
                for isa in ["AArch64", "RISC-V"] {
                    if let Some(c) = self.get(&w, &compiler, isa) {
                        header.push_str(&format!("{:>24}", format!("{compiler}/{isa}")));
                        cols.push(c);
                    }
                }
            }
            out.push_str(&header);
            out.push('\n');
            for (label, f) in rows {
                out.push_str(&format!("{label:<22}"));
                for c in &cols {
                    out.push_str(&format!("{:>24}", f(c)));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Figure 1 data: per-kernel path lengths, normalised to the GCC 9.2 /
    /// AArch64 total for the same workload, as CSV
    /// (`workload,compiler,isa,kernel,instructions,normalised`).
    pub fn fig1_csv(&self) -> String {
        let mut out = String::from("workload,compiler,isa,kernel,instructions,normalised\n");
        for w in self.workloads() {
            let base = self
                .get(&w, "gcc-9.2", "AArch64")
                .map(|c| c.path_length)
                .unwrap_or(1)
                .max(1) as f64;
            for c in self.cells.iter().filter(|c| c.workload == w) {
                for (kernel, count) in &c.kernels {
                    out.push_str(&format!(
                        "{},{},{},{},{},{:.6}\n",
                        c.workload,
                        c.compiler,
                        c.isa,
                        kernel,
                        count,
                        *count as f64 / base
                    ));
                }
            }
        }
        out
    }

    /// Figure 2 data: mean ILP per window size, GCC 12.2 binaries, as CSV
    /// (`workload,isa,window,mean_cp,mean_ilp`).
    pub fn fig2_csv(&self) -> String {
        let mut out = String::from("workload,isa,window,mean_cp,mean_ilp\n");
        for c in self.cells.iter().filter(|c| c.compiler == "gcc-12.2") {
            for (size, mean_cp, mean_ilp) in &c.windows {
                out.push_str(&format!(
                    "{},{},{},{:.3},{:.3}\n",
                    c.workload, c.isa, size, mean_cp, mean_ilp
                ));
            }
        }
        out
    }

    /// The artifact's `basicCPResult.txt` / `scaledCPResult.txt`: critical
    /// path and ILP per benchmark, one line per cell.
    pub fn cp_result_txt(&self, scaled: bool) -> String {
        let mut out = String::new();
        for c in &self.cells {
            let (cp, ilp) = if scaled {
                (c.scaled_cp, c.scaled_ilp())
            } else {
                (c.critical_path, c.ilp())
            };
            out.push_str(&format!(
                "{} {} {}: pathLength={} CP={} ILP={:.1}\n",
                c.workload, c.compiler, c.isa, c.path_length, cp, ilp
            ));
        }
        out
    }

    /// The artifact's `windowAverages.txt`: one comma-separated list of
    /// mean window-CP lengths per benchmark (ascending window size),
    /// GCC 12.2 binaries.
    pub fn window_averages_txt(&self) -> String {
        let mut out = String::new();
        for c in self.cells.iter().filter(|c| c.compiler == "gcc-12.2") {
            let means: Vec<String> =
                c.windows.iter().map(|(_, cp, _)| format!("{cp:.3}")).collect();
            out.push_str(&format!("{} {}: {}\n", c.workload, c.isa, means.join(",")));
        }
        out
    }

    /// A gnuplot script rendering Figure 2 (mean ILP vs window size,
    /// log-log, one line per workload/ISA) with inline data blocks — the
    /// artifact's `lineGraph.pdf` equivalent: `gnuplot results/fig2.gnuplot`.
    pub fn fig2_gnuplot(&self) -> String {
        let mut out = String::from(concat!(
            "set terminal pdfcairo size 9,5\n",
            "set output 'fig2.pdf'\n",
            "set logscale x 2\n",
            "set logscale y\n",
            "set xlabel 'window size'\n",
            "set ylabel 'mean ILP'\n",
            "set title 'Mean ILP per window (GCC 12.2)'\n",
            "set key outside\n",
        ));
        let cells: Vec<&ExperimentCell> =
            self.cells.iter().filter(|c| c.compiler == "gcc-12.2").collect();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("$data{i} << EOD\n"));
            for (size, _, ilp) in &c.windows {
                out.push_str(&format!("{size} {ilp:.4}\n"));
            }
            out.push_str("EOD\n");
        }
        out.push_str("plot ");
        let plots: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let dash = if c.isa == "RISC-V" { 2 } else { 1 };
                format!(
                    "$data{i} using 1:2 with linespoints dashtype {dash} title '{} {}'",
                    c.workload, c.isa
                )
            })
            .collect();
        out.push_str(&plots.join(", \\\n     "));
        out.push('\n');
        out
    }

    /// Serialise the whole matrix as JSON (the artifact's `results/` role).
    /// Tuples become arrays (`kernels: [["copy", 648], ...]`), matching the
    /// shape of the checked-in `results/matrix.json`.
    pub fn to_json(&self) -> String {
        Json::obj(vec![(
            "cells",
            Json::Arr(self.cells.iter().map(ExperimentCell::to_json_value).collect()),
        )])
        .pretty()
    }

    /// Parse a matrix back from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let j = Json::parse(s)?;
        let cells = j
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("matrix: missing \"cells\" array")?;
        Ok(ResultMatrix {
            cells: cells.iter().map(ExperimentCell::from_json_value).collect::<Result<_, _>>()?,
        })
    }
}

impl ExperimentCell {
    fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::Str(self.workload.clone())),
            ("compiler", Json::Str(self.compiler.clone())),
            ("isa", Json::Str(self.isa.clone())),
            ("path_length", Json::Num(self.path_length as f64)),
            ("critical_path", Json::Num(self.critical_path as f64)),
            ("scaled_cp", Json::Num(self.scaled_cp as f64)),
            (
                "kernels",
                Json::Arr(
                    self.kernels
                        .iter()
                        .map(|(name, n)| {
                            Json::Arr(vec![Json::Str(name.clone()), Json::Num(*n as f64)])
                        })
                        .collect(),
                ),
            ),
            (
                "windows",
                Json::Arr(
                    self.windows
                        .iter()
                        .map(|&(size, cp, ilp)| {
                            Json::Arr(vec![
                                Json::Num(size as f64),
                                Json::Num(cp),
                                Json::Num(ilp),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json_value(j: &Json) -> Result<Self, String> {
        let text = |key: &str| -> Result<String, String> {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("cell: missing string field {key:?}"))
        };
        let int = |key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("cell: missing integer field {key:?}"))
        };
        let kernels = j
            .get("kernels")
            .and_then(Json::as_arr)
            .ok_or("cell: missing \"kernels\"")?
            .iter()
            .map(|pair| {
                let a = pair.as_arr().filter(|a| a.len() == 2)?;
                Some((a[0].as_str()?.to_string(), a[1].as_u64()?))
            })
            .collect::<Option<Vec<_>>>()
            .ok_or("cell: malformed \"kernels\" entry")?;
        let windows = j
            .get("windows")
            .and_then(Json::as_arr)
            .ok_or("cell: missing \"windows\"")?
            .iter()
            .map(|triple| {
                let a = triple.as_arr().filter(|a| a.len() == 3)?;
                Some((a[0].as_u64()? as usize, a[1].as_f64()?, a[2].as_f64()?))
            })
            .collect::<Option<Vec<_>>>()
            .ok_or("cell: malformed \"windows\" entry")?;
        Ok(ExperimentCell {
            workload: text("workload")?,
            compiler: text("compiler")?,
            isa: text("isa")?,
            path_length: int("path_length")?,
            critical_path: int("critical_path")?,
            scaled_cp: int("scaled_cp")?,
            kernels,
            windows,
        })
    }
}

/// Thousands-separated integer, like the paper's tables.
pub fn fmt_u64(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

fn fmt_ms(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(w: &str, compiler: &str, isa: &str, pl: u64, cp: u64) -> ExperimentCell {
        ExperimentCell {
            workload: w.into(),
            compiler: compiler.into(),
            isa: isa.into(),
            path_length: pl,
            critical_path: cp,
            scaled_cp: cp * 6,
            kernels: vec![("k1".into(), pl / 2), ("k2".into(), pl / 2)],
            windows: vec![(4, 2.0, 2.0), (16, 4.0, 4.0)],
        }
    }

    fn sample() -> ResultMatrix {
        ResultMatrix {
            cells: vec![
                cell("STREAM", "gcc-9.2", "AArch64", 1000, 100),
                cell("STREAM", "gcc-9.2", "RISC-V", 1100, 100),
                cell("STREAM", "gcc-12.2", "AArch64", 900, 100),
                cell("STREAM", "gcc-12.2", "RISC-V", 1100, 100),
            ],
        }
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(fmt_u64(0), "0");
        assert_eq!(fmt_u64(999), "999");
        assert_eq!(fmt_u64(1000), "1,000");
        assert_eq!(fmt_u64(3_350_107_615), "3,350,107,615");
    }

    #[test]
    fn table1_contains_all_cells() {
        let t = sample().table1();
        assert!(t.contains("STREAM"));
        assert!(t.contains("gcc-9.2/AArch64"));
        assert!(t.contains("1,000"));
        assert!(t.contains("Path Length"));
    }

    #[test]
    fn fig1_normalises_to_gcc92_aarch64() {
        let csv = sample().fig1_csv();
        // gcc-12.2/AArch64 kernel k1: 450/1000 = 0.45
        assert!(csv.contains("STREAM,gcc-12.2,AArch64,k1,450,0.450000"), "{csv}");
    }

    #[test]
    fn fig2_only_gcc122() {
        let csv = sample().fig2_csv();
        assert!(!csv.contains("gcc-9.2"));
        assert!(csv.lines().count() > 1);
    }

    #[test]
    fn cp_result_txt_format() {
        let basic = sample().cp_result_txt(false);
        assert!(basic.contains("STREAM gcc-9.2 AArch64: pathLength=1000 CP=100 ILP=10.0"));
        let scaled = sample().cp_result_txt(true);
        assert!(scaled.contains("CP=600"));
    }

    #[test]
    fn window_averages_format() {
        let t = sample().window_averages_txt();
        assert!(t.contains("STREAM AArch64: 2.000,4.000"));
        assert!(!t.contains("gcc"));
    }

    #[test]
    fn fig2_gnuplot_structure() {
        let g = sample().fig2_gnuplot();
        assert!(g.contains("$data0 << EOD"));
        assert!(g.contains("plot "));
        assert!(g.contains("STREAM RISC-V"));
        assert!(!g.contains("gcc-9.2"), "figure 2 is GCC 12.2 only");
        // Two gcc-12.2 cells -> two data blocks.
        assert_eq!(g.matches("EOD").count(), 4, "two << EOD + two terminators");
    }

    #[test]
    fn json_round_trip() {
        let m = sample();
        let j = m.to_json();
        let back = ResultMatrix::from_json(&j).unwrap();
        assert_eq!(back.cells.len(), m.cells.len());
        assert_eq!(back.cells[0].path_length, 1000);
    }

    #[test]
    fn ilp_and_runtime() {
        let c = cell("X", "gcc-12.2", "RISC-V", 1000, 100);
        assert_eq!(c.ilp(), 10.0);
        assert!((c.runtime_ms() - 100.0 / 2e6).abs() < 1e-12);
        assert_eq!(c.scaled_ilp(), 1000.0 / 600.0);
    }
}
