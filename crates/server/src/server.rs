//! The `isacmpd` daemon: listener, connection handling, and the job
//! runner that unifies the shard pool, the result cache and the per-job
//! cell journals.
//!
//! Threading model: one OS thread per client connection (connections are
//! few and mostly idle), all emulation on the process-wide work-stealing
//! shard pool ([`isacmp::pool::global`]). Connection threads may block —
//! on follower flights, on the progress channel — but pool tasks never
//! block on other pool tasks (the pool's deadlock rule), which is why
//! cache waits live here and not in the cell tasks.
//!
//! Crash safety: every job journals its cell outcomes (through the same
//! `isacmp::journal_outcome` path as `make_tables`) to a per-spec journal
//! under the jobs directory. A `kill -9` loses at most the cells in
//! flight; when the restarted daemon receives the same spec again it
//! recovers every recorded outcome and runs only the rest, reassembling
//! in canonical order — the served matrix is byte-identical to an
//! uninterrupted run. On SIGTERM/SIGINT the daemon stops accepting,
//! interrupts in-flight cells at the next masked boundary, sends every
//! client a typed `shutdown` frame, keeps the journals, and exits 0.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use isacmp::{
    isa_label, journal_outcome, matrix_combos, pool, read_journal, record_outcome, run_cell_opts,
    shutdown, CellError, CellJournal, ExperimentCell, ResultMatrix, SizeClass, Workload,
};

use crate::cache::{CellKey, Claim, ResultCache};
use crate::proto::{self, ClientMsg, FrameReader, JobSpec, ProtoError, ReadOutcome, ServerMsg, StatsBody};

/// How often idle loops (accept, connection poll, flight waits) check the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Listen address; use port 0 to let the OS pick (the bound address
    /// is printed / queryable via [`Server::local_addr`]).
    pub addr: String,
    /// Admission bound: jobs in flight beyond this are rejected with a
    /// typed `busy` frame.
    pub max_jobs: usize,
    /// Per-job cell journals live here (`job-<speckey>.journal.jsonl`).
    pub jobs_dir: PathBuf,
    /// Trace capture/replay dir for trace-analysis jobs.
    pub trace_dir: Option<PathBuf>,
    /// Warm the cell cache from a one-shot `matrix.json` at startup.
    pub warm: Option<PathBuf>,
    /// Size class the warm artifact was measured at.
    pub warm_size: SizeClass,
    /// Engine the warm artifact was measured with.
    pub warm_engine: isacmp::Engine,
    /// How long `run` waits for connection threads to drain after a
    /// shutdown signal before detaching them.
    pub drain_timeout: Duration,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            addr: "127.0.0.1:0".into(),
            max_jobs: 64,
            jobs_dir: PathBuf::from("results/jobs"),
            trace_dir: None,
            warm: None,
            warm_size: SizeClass::Small,
            warm_engine: isacmp::Engine::default(),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// Refcounted registry of open per-job journals, so concurrent
/// submissions of the same spec share one journal file (and the file is
/// deleted only when the last clean job releases it; a crashed or
/// interrupted job leaves it behind for resume).
#[derive(Default)]
struct JournalRegistry {
    map: Mutex<HashMap<u64, RegistryEntry>>,
}

struct RegistryEntry {
    refs: usize,
    delete_on_last: bool,
    path: PathBuf,
    journal: Option<Arc<Mutex<CellJournal>>>,
}

impl JournalRegistry {
    /// Open (or share) the journal for `key`. Journal I/O failures
    /// degrade to journal-less operation, mirroring `make_tables`.
    fn acquire(
        &self,
        key: u64,
        path: &PathBuf,
        size: &str,
        manifest: Option<&isacmp::CampaignManifest>,
    ) -> Option<Arc<Mutex<CellJournal>>> {
        let mut map = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(e) = map.get_mut(&key) {
            e.refs += 1;
            return e.journal.clone();
        }
        let opened = if path.exists() {
            CellJournal::append_to(path)
        } else {
            CellJournal::create(path, size, manifest)
        };
        let journal = match opened {
            Ok(j) => Some(Arc::new(Mutex::new(j))),
            Err(e) => {
                eprintln!(
                    "isacmpd: warning: cannot open {}: {e} (job running without crash journal)",
                    path.display()
                );
                None
            }
        };
        map.insert(
            key,
            RegistryEntry {
                refs: 1,
                delete_on_last: false,
                path: path.clone(),
                journal: journal.clone(),
            },
        );
        journal
    }

    /// Release one job's hold. `completed` means the job resolved every
    /// combo (no interruption) — when the last such holder releases, the
    /// journal file has served its purpose and is removed.
    fn release(&self, key: u64, completed: bool) {
        let mut map = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(e) = map.get_mut(&key) else { return };
        e.refs -= 1;
        e.delete_on_last |= completed;
        if e.refs == 0 {
            if e.delete_on_last {
                let _ = std::fs::remove_file(&e.path);
            }
            map.remove(&key);
        }
    }
}

/// Daemon-wide shared state.
pub struct State {
    cfg: Config,
    cache: ResultCache,
    journals: JournalRegistry,
    active: AtomicUsize,
    jobs_total: AtomicU64,
}

impl State {
    fn stats(&self) -> StatsBody {
        let (hits, misses) = self.cache.stats();
        let pool = pool::global().stats();
        StatsBody {
            jobs_total: self.jobs_total.load(Ordering::Relaxed),
            jobs_active: self.active.load(Ordering::Relaxed) as u64,
            cache_hits: hits,
            cache_misses: misses,
            cache_cells: self.cache.len() as u64,
            pool_workers: pool.workers as u64,
            pool_queued: pool.queued as u64,
            pool_executed: pool.executed,
            pool_stolen: pool.stolen,
        }
    }

    /// Publish the serving gauges the bench trajectory records.
    fn publish_gauges(&self) {
        let tel = isacmp::telemetry::global();
        let s = self.stats();
        tel.gauge_set("server_jobs_total", s.jobs_total as f64);
        tel.gauge_set("cache_hits", s.cache_hits as f64);
        tel.gauge_set("cache_misses", s.cache_misses as f64);
    }
}

/// Decrement the active-jobs counter on every exit path.
struct ActiveGuard<'a>(&'a State);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// FNV-1a, the per-spec journal file name hash. Stable across builds and
/// platforms (unlike `DefaultHasher`), which is what lets a *restarted*
/// daemon find a killed run's journal from the resubmitted spec.
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Bind the listener, create the jobs dir, and warm the cache if
    /// configured.
    pub fn bind(cfg: Config) -> io::Result<Server> {
        std::fs::create_dir_all(&cfg.jobs_dir)?;
        if let Some(dir) = &cfg.trace_dir {
            std::fs::create_dir_all(dir)?;
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let cache = ResultCache::new();
        if let Some(warm) = &cfg.warm {
            let text = std::fs::read_to_string(warm)?;
            let matrix = ResultMatrix::from_json(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let n = cache.warm(&matrix, cfg.warm_size.name(), cfg.warm_engine.name());
            eprintln!("isacmpd: cache warmed with {n} cell(s) from {}", warm.display());
        }
        Ok(Server {
            listener,
            state: Arc::new(State {
                cfg,
                cache,
                journals: JournalRegistry::default(),
                active: AtomicUsize::new(0),
                jobs_total: AtomicU64::new(0),
            }),
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept-and-serve until a shutdown is requested (SIGTERM/SIGINT or
    /// `shutdown::request()`), then drain. Returns the process exit code
    /// (0 — an orderly drain is success).
    pub fn run(self) -> i32 {
        self.listener
            .set_nonblocking(true)
            .expect("listener nonblocking mode is available on all supported platforms");
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !shutdown::requested() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Accepted sockets must be blocking regardless of what
                    // they inherit; per-read timeouts do the idle polling.
                    let _ = stream.set_nonblocking(false);
                    let state = Arc::clone(&self.state);
                    conns.push(std::thread::spawn(move || handle_conn(state, stream)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) => {
                    eprintln!("isacmpd: accept error: {e}");
                    std::thread::sleep(POLL);
                }
            }
            conns.retain(|h| !h.is_finished());
        }
        // Drain: connection threads observe the flag themselves — idle
        // ones send the shutdown frame immediately, busy ones after their
        // interrupted job flushes its journal.
        let signal = shutdown::last_signal()
            .map(shutdown::signal_name)
            .unwrap_or_else(|| "shutdown request".into());
        eprintln!("isacmpd: {signal}: draining {} connection(s) ...", conns.len());
        let deadline = Instant::now() + self.state.cfg.drain_timeout;
        while Instant::now() < deadline && conns.iter().any(|h| !h.is_finished()) {
            std::thread::sleep(POLL);
        }
        let stranded = conns.iter().filter(|h| !h.is_finished()).count();
        if stranded > 0 {
            eprintln!("isacmpd: drain timeout; detaching {stranded} connection(s)");
        }
        eprintln!("isacmpd: bye");
        0
    }
}

/// Serve one client connection until it closes, errors, or the daemon
/// drains.
fn handle_conn(state: Arc<State>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let mut reader = FrameReader::new();
    loop {
        if shutdown::requested() {
            let signal = shutdown::last_signal()
                .map(shutdown::signal_name)
                .unwrap_or_else(|| "shutdown request".into());
            let _ = proto::send(&mut stream, &ServerMsg::Shutdown { signal });
            return;
        }
        match reader.poll(&mut stream) {
            Ok(ReadOutcome::Frame(j)) => match ClientMsg::from_json(&j) {
                Ok(ClientMsg::Ping) => {
                    if proto::send(&mut stream, &ServerMsg::Pong).is_err() {
                        return;
                    }
                }
                Ok(ClientMsg::Stats) => {
                    if proto::send(&mut stream, &ServerMsg::Stats(state.stats())).is_err() {
                        return;
                    }
                }
                Ok(ClientMsg::Submit { job }) => {
                    if submit(&state, &job, &mut stream).is_err() {
                        return;
                    }
                }
                // Malformed messages get a typed rejection, then the
                // connection closes — a peer this confused won't frame the
                // next message correctly either.
                Err(e) => {
                    let _ = proto::send(&mut stream, &ServerMsg::Error { message: e.to_string() });
                    return;
                }
            },
            Ok(ReadOutcome::Idle) => continue,
            Ok(ReadOutcome::Closed) => return,
            Err(e) => {
                let _ = proto::send(&mut stream, &ServerMsg::Error { message: e.to_string() });
                return;
            }
        }
    }
}

/// Admission control + job execution for one submit.
fn submit(state: &Arc<State>, spec: &JobSpec, stream: &mut TcpStream) -> Result<(), ProtoError> {
    let limit = state.cfg.max_jobs;
    let prev = state.active.fetch_add(1, Ordering::SeqCst);
    if prev >= limit {
        state.active.fetch_sub(1, Ordering::SeqCst);
        return proto::send(
            stream,
            &ServerMsg::Busy { active: prev as u64, limit: limit as u64 },
        );
    }
    let _guard = ActiveGuard(state);
    state.jobs_total.fetch_add(1, Ordering::Relaxed);
    let result = run_job(state, spec, stream);
    state.publish_gauges();
    result
}

/// One cell's resolution, as fed into `isacmp::record_outcome`.
type Outcome = Result<Result<ExperimentCell, CellError>, String>;

/// Execute one job: plan combos in canonical order, recover journaled
/// outcomes, resolve the rest through the cache / the shard pool, stream
/// progress, and send the result (or a typed shutdown frame).
fn run_job(state: &Arc<State>, spec: &JobSpec, stream: &mut TcpStream) -> Result<(), ProtoError> {
    let (opts, manifest) = match spec.matrix_options(state.cfg.trace_dir.clone()) {
        Ok(x) => x,
        Err(e) => return proto::send(stream, &ServerMsg::Error { message: e }),
    };
    let combos = matrix_combos(&Workload::ALL);
    let total = combos.len() as u64;
    let size = spec.size;

    // Journal recovery: a restarted daemon finds a killed run's records
    // by the spec's provenance key.
    let speckey = fnv1a64(&spec.canonical());
    let journal_path =
        state.cfg.jobs_dir.join(format!("job-{speckey:016x}.journal.jsonl"));
    let prior = match journal_path.exists() {
        true => match read_journal(&journal_path) {
            Ok(j) if j.size == size.name() => j.matrix,
            // A mismatched or unreadable journal is not trusted; the job
            // recomputes (and re-records) everything.
            _ => ResultMatrix::default(),
        },
        false => ResultMatrix::default(),
    };
    let journal = state.journals.acquire(speckey, &journal_path, size.name(), manifest.as_ref());

    let (tx, rx) = mpsc::channel::<(usize, Outcome)>();
    let mut slots: Vec<Option<Outcome>> = (0..combos.len()).map(|_| None).collect();
    let mut follows: Vec<(usize, CellKey, Arc<crate::cache::Flight>)> = Vec::new();
    let mut outstanding = 0usize;
    let (mut hits, mut misses, mut done) = (0u64, 0u64, 0u64);

    for (i, &(w, p, isa)) in combos.iter().enumerate() {
        let (wn, pl, il) = (w.name(), p.label(), isa_label(isa));
        let label = format!("{wn}/{pl}/{il}");
        if prior.get(wn, pl, il).is_some() || prior.get_failure(wn, pl, il).is_some() {
            // Recovered from the journal; resolved at assembly.
            done += 1;
            proto::send(stream, &ServerMsg::Progress { done, total, cell: label, cached: true })?;
            continue;
        }
        let cell_opts = opts.cell_options(wn, pl, il);
        // Fault-armed cells are not reusable measurements — never cached.
        let cacheable = cell_opts.fault.is_none() && cell_opts.campaign.is_none();
        if !cacheable {
            misses += 1;
            let tx = tx.clone();
            let journal = journal.clone();
            let retries = opts.retries;
            pool::global().submit(Box::new(move || {
                let outcome = run_cell_opts(w, isa, &p, size, &cell_opts);
                journal_outcome(journal.as_deref(), w.name(), p.label(), isa_label(isa), &outcome, retries);
                let _ = tx.send((i, Ok(outcome)));
            }));
            outstanding += 1;
            continue;
        }
        let key = CellKey::new(wn, pl, il, size.name(), spec.engine.name(), spec.fusion);
        match state.cache.claim(&key) {
            Claim::Hit(cell) => {
                hits += 1;
                // Journal the hit too: this job's journal is then
                // self-contained for resume on a cold (cache-less) restart.
                journal_outcome(journal.as_deref(), wn, pl, il, &Ok(cell.clone()), opts.retries);
                slots[i] = Some(Ok(Ok(cell)));
                done += 1;
                proto::send(stream, &ServerMsg::Progress { done, total, cell: label, cached: true })?;
            }
            Claim::Lead => {
                misses += 1;
                let tx = tx.clone();
                let journal = journal.clone();
                let cache_state = Arc::clone(state);
                let key = key.clone();
                let retries = opts.retries;
                pool::global().submit(Box::new(move || {
                    let outcome = run_cell_opts(w, isa, &p, size, &cell_opts);
                    let for_cache = match &outcome {
                        Ok(cell) => Ok(cell.clone()),
                        Err(e) => Err(e.to_string()),
                    };
                    cache_state.cache.complete(&key, for_cache);
                    journal_outcome(journal.as_deref(), w.name(), p.label(), isa_label(isa), &outcome, retries);
                    let _ = tx.send((i, Ok(outcome)));
                }));
                outstanding += 1;
            }
            Claim::Follow(flight) => {
                hits += 1;
                follows.push((i, key, flight));
            }
        }
    }
    drop(tx);

    // Drain this job's own pool tasks, streaming progress as cells land.
    // Interrupted cells (shutdown) come back quickly as `Interrupted` and
    // resolve the loop; no special case needed.
    while outstanding > 0 {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok((i, outcome)) => {
                let (w, p, isa) = combos[i];
                let label = format!("{}/{}/{}", w.name(), p.label(), isa_label(isa));
                slots[i] = Some(outcome);
                outstanding -= 1;
                done += 1;
                proto::send(stream, &ServerMsg::Progress { done, total, cell: label, cached: false })?;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            // All senders gone without filling every slot: a pool worker
            // died. The missing slots degrade to recorded failures below.
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }

    // Resolve cells another job is computing. Waiting happens here, on
    // the connection thread; if that leader fails or is interrupted we
    // re-claim (possibly becoming the new leader and computing inline).
    for (i, key, mut flight) in follows {
        let (w, p, isa) = combos[i];
        let (wn, pl, il) = (w.name(), p.label(), isa_label(isa));
        loop {
            match flight.wait_for(Duration::from_millis(100)) {
                Some(Ok(cell)) => {
                    journal_outcome(journal.as_deref(), wn, pl, il, &Ok(cell.clone()), opts.retries);
                    slots[i] = Some(Ok(Ok(cell)));
                    done += 1;
                    let label = format!("{wn}/{pl}/{il}");
                    proto::send(stream, &ServerMsg::Progress { done, total, cell: label, cached: true })?;
                    break;
                }
                Some(Err(_leader_failed)) => match state.cache.claim(&key) {
                    Claim::Hit(cell) => {
                        journal_outcome(journal.as_deref(), wn, pl, il, &Ok(cell.clone()), opts.retries);
                        slots[i] = Some(Ok(Ok(cell)));
                        done += 1;
                        break;
                    }
                    Claim::Follow(next) => flight = next,
                    Claim::Lead => {
                        // Compute inline — this is a connection thread, so
                        // blocking here is fine.
                        let cell_opts = opts.cell_options(wn, pl, il);
                        let outcome = run_cell_opts(w, isa, &p, size, &cell_opts);
                        let for_cache = match &outcome {
                            Ok(cell) => Ok(cell.clone()),
                            Err(e) => Err(e.to_string()),
                        };
                        state.cache.complete(&key, for_cache);
                        journal_outcome(journal.as_deref(), wn, pl, il, &outcome, opts.retries);
                        slots[i] = Some(Ok(outcome));
                        done += 1;
                        break;
                    }
                },
                None => {
                    if shutdown::requested() {
                        // Stop waiting; the slot stays unresolved and the
                        // journal's gap marks it for resume.
                        break;
                    }
                }
            }
        }
    }

    // Reassemble in canonical order through the same fold as every other
    // matrix entry point — the byte-identity invariant.
    let mut matrix = ResultMatrix::default();
    for (i, &(w, p, isa)) in combos.iter().enumerate() {
        let (wn, pl, il) = (w.name(), p.label(), isa_label(isa));
        if let Some(c) = prior.get(wn, pl, il) {
            matrix.cells.push(c.clone());
        } else if let Some(f) = prior.get_failure(wn, pl, il) {
            matrix.failures.push(f.clone());
        } else if let Some(outcome) = slots[i].take() {
            record_outcome(&mut matrix, wn, pl, il, outcome, opts.retries);
        }
    }
    let completed = (matrix.cells.len() + matrix.failures.len()) as u64 == total;
    state.journals.release(speckey, completed);

    if !completed {
        // Interrupted mid-job: the journal keeps what finished; the
        // client learns this was a drain, not a result.
        let signal = shutdown::last_signal()
            .map(shutdown::signal_name)
            .unwrap_or_else(|| "shutdown request".into());
        return proto::send(stream, &ServerMsg::Shutdown { signal });
    }
    proto::send(
        stream,
        &ServerMsg::Result {
            hits,
            misses,
            failures: matrix.failures.len() as u64,
            matrix_json: matrix.to_json(),
        },
    )
}
