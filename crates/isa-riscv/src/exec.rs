//! Functional execution of RV64G instructions.
//!
//! [`RiscVExecutor`] implements [`simcore::IsaExecutor`]: it fetches the
//! word at `pc`, decodes it (through a decode cache — instruction memory is
//! immutable in our statically linked images), executes it against the
//! architectural state, and emits the [`RetiredInst`] record dependency
//! analyses consume.
//!
//! Zero-register handling matches the paper's critical-path method: `x0`
//! always reads zero and is never reported as a source or destination, so
//! chains naturally break through it.

use std::cell::RefCell;
use std::rc::Rc;

use simcore::phase::{self, Phase};
use simcore::{CpuState, InstGroup, IsaExecutor, RegId, RetiredInst, SimError, WordMap};

use crate::decode::decode;
use crate::inst::*;

/// Longest straight-line run pre-decoded into one block. Bounds both the
/// work a single cache miss performs and how far past a hot loop's entry
/// the builder speculatively decodes.
const MAX_BLOCK_LEN: usize = 64;

/// A pre-decoded basic block: the straight-line instruction run starting
/// at `start`, ending at the first control-flow terminator (or the length
/// cap / first undecodable word, whichever comes sooner). Instruction `i`
/// sits at `start + 4*i`; only the final instruction can redirect the PC,
/// so execution inside a block is purely sequential.
struct Block {
    start: u64,
    insts: Vec<Inst>,
}

/// Whether `inst` ends a basic block: anything that can change control
/// flow (or end the run) — jumps, branches, and the trap instructions.
fn ends_block(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Jal { .. }
            | Inst::Jalr { .. }
            | Inst::Branch { .. }
            | Inst::Ecall
            | Inst::Ebreak
    )
}

/// RV64G executor with a per-instance decode cache and a pre-decoded
/// basic-block cache (used by the core's block engine).
#[derive(Default)]
pub struct RiscVExecutor {
    cache: RefCell<WordMap<Inst>>,
    blocks: RefCell<WordMap<Rc<Block>>>,
}

impl RiscVExecutor {
    /// Create a fresh executor.
    pub fn new() -> Self {
        RiscVExecutor::default()
    }

    /// Look up (or build and cache) the block starting at `pc`. `None`
    /// when no block can start there — misaligned PC, unreadable or
    /// undecodable first word — in which case the per-instruction path
    /// must produce the exact fault. Build failures are never cached:
    /// memory may be remapped or repaired before the PC is reached again.
    fn block_at(&self, state: &CpuState, pc: u64) -> Option<Rc<Block>> {
        if pc & 3 != 0 {
            return None;
        }
        if let Some(b) = self.blocks.borrow().get(&pc) {
            return Some(Rc::clone(b));
        }
        let mut insts = Vec::new();
        let mut cur = pc;
        loop {
            let word = {
                let _t = phase::scoped(Phase::Fetch);
                match state.mem.read_u32(cur) {
                    Ok(w) => w,
                    Err(_) => break,
                }
            };
            let inst = {
                let _t = phase::scoped(Phase::Decode);
                match decode(word) {
                    Ok(i) => i,
                    Err(_) => break,
                }
            };
            let done = ends_block(&inst);
            insts.push(inst);
            if done || insts.len() == MAX_BLOCK_LEN {
                break;
            }
            cur = cur.wrapping_add(4);
        }
        if insts.is_empty() {
            return None;
        }
        let b = Rc::new(Block { start: pc, insts });
        self.blocks.borrow_mut().insert(pc, Rc::clone(&b));
        Some(b)
    }
}

/// Builder for the retirement record; filters out `x0`.
struct Retire {
    ri: RetiredInst,
}

impl Retire {
    fn new(pc: u64, group: InstGroup) -> Self {
        Retire { ri: RetiredInst::new(pc, group) }
    }

    #[inline]
    fn src_x(&mut self, r: u8) {
        if r != 0 {
            self.ri.srcs.insert(RegId::Int(r));
        }
    }

    #[inline]
    fn dst_x(&mut self, r: u8) {
        if r != 0 {
            self.ri.dsts.insert(RegId::Int(r));
        }
    }

    #[inline]
    fn src_f(&mut self, r: u8) {
        self.ri.srcs.insert(RegId::Fp(r));
    }

    #[inline]
    fn dst_f(&mut self, r: u8) {
        self.ri.dsts.insert(RegId::Fp(r));
    }
}

#[inline]
fn wx(state: &mut CpuState, rd: u8, v: u64) {
    if rd != 0 {
        state.x[rd as usize] = v;
    }
}

#[inline]
fn rx(state: &CpuState, rs: u8) -> u64 {
    if rs == 0 {
        0
    } else {
        state.x[rs as usize]
    }
}

/// NaN-box an f32 bit pattern into a 64-bit FP register value.
#[inline]
fn nan_box(bits: u32) -> u64 {
    0xFFFF_FFFF_0000_0000 | bits as u64
}

/// Read an f32 from a (possibly NaN-boxed) register value.
#[inline]
fn unbox_f32(v: u64) -> f32 {
    if v >> 32 == 0xFFFF_FFFF {
        f32::from_bits(v as u32)
    } else {
        // Improperly boxed values must read as the canonical NaN.
        f32::NAN
    }
}

/// RISC-V fmin semantics (IEEE 754 minimumNumber + -0 < +0).
fn rv_fmin(a: f64, b: f64) -> f64 {
    if a.is_nan() && b.is_nan() {
        f64::NAN
    } else if a.is_nan() {
        b
    } else if b.is_nan() {
        a
    } else if a == 0.0 && b == 0.0 {
        if a.is_sign_negative() { a } else { b }
    } else if a < b {
        a
    } else {
        b
    }
}

/// RISC-V fmax semantics.
fn rv_fmax(a: f64, b: f64) -> f64 {
    if a.is_nan() && b.is_nan() {
        f64::NAN
    } else if a.is_nan() {
        b
    } else if b.is_nan() {
        a
    } else if a == 0.0 && b == 0.0 {
        if a.is_sign_positive() { a } else { b }
    } else if a > b {
        a
    } else {
        b
    }
}

/// `fclass` bit per the unprivileged spec.
fn fclass_bits(v: f64) -> u64 {
    use std::num::FpCategory::*;
    let neg = v.is_sign_negative();
    match v.classify() {
        Infinite => if neg { 1 << 0 } else { 1 << 7 },
        Normal => if neg { 1 << 1 } else { 1 << 6 },
        Subnormal => if neg { 1 << 2 } else { 1 << 5 },
        Zero => if neg { 1 << 3 } else { 1 << 4 },
        Nan => {
            // Distinguish signalling (bit 8) from quiet (bit 9) NaN.
            let bits = v.to_bits();
            let quiet = bits & (1 << 51) != 0;
            if quiet { 1 << 9 } else { 1 << 8 }
        }
    }
}

/// Saturating FP-to-int conversions per the RISC-V spec (NaN converts to the
/// maximum value of the target type).
// The branch ladders intentionally follow the spec's case analysis even
// where arms coincide (NaN and +overflow both saturate to the maximum).
#[allow(clippy::if_same_then_else)]
fn cvt_f64_to_int(v: f64, ty: IntTy) -> u64 {
    match ty {
        IntTy::W => {
            let r = if v.is_nan() {
                i32::MAX
            } else if v >= i32::MAX as f64 {
                i32::MAX
            } else if v <= i32::MIN as f64 {
                i32::MIN
            } else {
                v.trunc() as i32
            };
            r as i64 as u64
        }
        IntTy::Wu => {
            let r = if v.is_nan() {
                u32::MAX
            } else if v >= u32::MAX as f64 {
                u32::MAX
            } else if v <= 0.0 {
                if v <= -1.0 { 0 } else { v.trunc() as u32 }
            } else {
                v.trunc() as u32
            };
            r as i32 as i64 as u64
        }
        IntTy::L => {
            if v.is_nan() {
                i64::MAX as u64
            } else if v >= i64::MAX as f64 {
                i64::MAX as u64
            } else if v <= i64::MIN as f64 {
                i64::MIN as u64
            } else {
                (v.trunc() as i64) as u64
            }
        }
        IntTy::Lu => {
            if v.is_nan() {
                u64::MAX
            } else if v >= u64::MAX as f64 {
                u64::MAX
            } else if v <= -1.0 {
                0
            } else {
                v.trunc() as u64
            }
        }
    }
}

fn cvt_int_to_f64(v: u64, ty: IntTy) -> f64 {
    match ty {
        IntTy::W => (v as i32) as f64,
        IntTy::Wu => (v as u32) as f64,
        IntTy::L => (v as i64) as f64,
        IntTy::Lu => v as f64,
    }
}

impl IsaExecutor for RiscVExecutor {
    fn step(&self, state: &mut CpuState) -> Result<RetiredInst, SimError> {
        let pc = state.pc;
        if pc & 3 != 0 {
            return Err(SimError::MisalignedPc { pc });
        }
        // Phase scopes are kept disjoint so the breakdown never
        // double-counts: the cache lookup and decode are Decode, the
        // cache-miss word read is Fetch, execution is Execute.
        let cached = {
            let _t = phase::scoped(Phase::Decode);
            self.cache.borrow_mut().get(&pc).copied()
        };
        let inst = match cached {
            Some(i) => i,
            None => {
                let word = {
                    let _t = phase::scoped(Phase::Fetch);
                    state.mem.read_u32(pc)?
                };
                let _t = phase::scoped(Phase::Decode);
                let i = decode(word).map_err(|e| SimError::Decode {
                    pc,
                    word,
                    msg: e.msg,
                })?;
                self.cache.borrow_mut().insert(pc, i);
                i
            }
        };
        let _t = phase::scoped(Phase::Execute);
        execute(&inst, pc, state)
    }

    fn disassemble(&self, word: u32) -> String {
        match decode(word) {
            Ok(i) => crate::disasm::disassemble(&i),
            Err(e) => format!(".word {word:#010x} ; {e}"),
        }
    }

    fn name(&self) -> &'static str {
        "rv64g"
    }

    fn flush_decode_cache(&self) {
        self.cache.borrow_mut().clear();
        self.blocks.borrow_mut().clear();
    }

    fn supports_blocks(&self) -> bool {
        true
    }

    fn run_block(
        &self,
        state: &mut CpuState,
        fuel: u64,
        mut sink: Option<&mut dyn FnMut(&RetiredInst)>,
    ) -> (u64, Option<SimError>) {
        let mut done = 0u64;
        while done < fuel && state.exited.is_none() {
            let block = match self.block_at(state, state.pc) {
                Some(b) => b,
                None => {
                    // No block can start here; the per-instruction path
                    // raises the exact architectural fault (misaligned PC,
                    // unmapped fetch, undecodable word).
                    match self.step(state) {
                        Ok(ri) => {
                            done += 1;
                            if let Some(s) = sink.as_mut() {
                                s(&ri);
                            }
                            continue;
                        }
                        Err(e) => return (done, Some(e)),
                    }
                }
            };
            // A block never straddles the fuel boundary: execute only the
            // prefix that fits, and the next call re-enters mid-block (the
            // remainder is itself a valid block keyed by its start PC).
            let take = (block.insts.len() as u64).min(fuel - done) as usize;
            for (i, inst) in block.insts[..take].iter().enumerate() {
                let ipc = block.start.wrapping_add(4 * i as u64);
                let res = {
                    let _t = phase::scoped(Phase::Execute);
                    execute(inst, ipc, state)
                };
                match res {
                    Ok(ri) => {
                        done += 1;
                        if let Some(s) = sink.as_mut() {
                            s(&ri);
                        }
                    }
                    Err(e) => return (done, Some(e)),
                }
            }
        }
        (done, None)
    }
}

/// Execute one decoded instruction at `pc`, returning its retirement record.
// Division guards follow the ISA manual's explicit case tables rather than
// checked_div (divide-by-zero and overflow have architecturally defined
// results, not error paths).
#[allow(clippy::manual_is_multiple_of, clippy::manual_checked_ops)]
pub fn execute(inst: &Inst, pc: u64, state: &mut CpuState) -> Result<RetiredInst, SimError> {
    let mut r = Retire::new(pc, inst.group());
    let mut next_pc = pc.wrapping_add(4);

    use Inst::*;
    match *inst {
        Lui { rd, imm } => {
            wx(state, rd, imm as u64);
            r.dst_x(rd);
        }
        Auipc { rd, imm } => {
            wx(state, rd, pc.wrapping_add(imm as u64));
            r.dst_x(rd);
        }
        Jal { rd, offset } => {
            wx(state, rd, pc.wrapping_add(4));
            r.dst_x(rd);
            next_pc = pc.wrapping_add(offset as u64);
            r.ri.is_branch = true;
            r.ri.taken = true;
        }
        Jalr { rd, rs1, offset } => {
            let target = rx(state, rs1).wrapping_add(offset as u64) & !1;
            wx(state, rd, pc.wrapping_add(4));
            r.src_x(rs1);
            r.dst_x(rd);
            next_pc = target;
            r.ri.is_branch = true;
            r.ri.taken = true;
        }
        Branch { op, rs1, rs2, offset } => {
            let a = rx(state, rs1);
            let b = rx(state, rs2);
            let taken = match op {
                BranchOp::Beq => a == b,
                BranchOp::Bne => a != b,
                BranchOp::Blt => (a as i64) < (b as i64),
                BranchOp::Bge => (a as i64) >= (b as i64),
                BranchOp::Bltu => a < b,
                BranchOp::Bgeu => a >= b,
            };
            if taken {
                next_pc = pc.wrapping_add(offset as u64);
            }
            r.src_x(rs1);
            r.src_x(rs2);
            r.ri.is_branch = true;
            r.ri.taken = taken;
        }
        Load { op, rd, rs1, offset } => {
            let addr = rx(state, rs1).wrapping_add(offset as u64);
            let v = match op {
                LoadOp::Lb => state.mem.read_u8(addr)? as i8 as i64 as u64,
                LoadOp::Lh => state.mem.read_u16(addr)? as i16 as i64 as u64,
                LoadOp::Lw => state.mem.read_u32(addr)? as i32 as i64 as u64,
                LoadOp::Ld => state.mem.read_u64(addr)?,
                LoadOp::Lbu => state.mem.read_u8(addr)? as u64,
                LoadOp::Lhu => state.mem.read_u16(addr)? as u64,
                LoadOp::Lwu => state.mem.read_u32(addr)? as u64,
            };
            wx(state, rd, v);
            r.src_x(rs1);
            r.dst_x(rd);
            r.ri.mem_reads.push(addr, op.size());
        }
        Store { op, rs2, rs1, offset } => {
            let addr = rx(state, rs1).wrapping_add(offset as u64);
            let v = rx(state, rs2);
            match op {
                StoreOp::Sb => state.mem.write_u8(addr, v as u8)?,
                StoreOp::Sh => state.mem.write_u16(addr, v as u16)?,
                StoreOp::Sw => state.mem.write_u32(addr, v as u32)?,
                StoreOp::Sd => state.mem.write_u64(addr, v)?,
            }
            r.src_x(rs1);
            r.src_x(rs2);
            r.ri.mem_writes.push(addr, op.size());
        }
        OpImm { op, rd, rs1, imm } => {
            let a = rx(state, rs1);
            let v = match op {
                ImmOp::Addi => a.wrapping_add(imm as u64),
                ImmOp::Slti => ((a as i64) < imm) as u64,
                ImmOp::Sltiu => (a < imm as u64) as u64,
                ImmOp::Xori => a ^ imm as u64,
                ImmOp::Ori => a | imm as u64,
                ImmOp::Andi => a & imm as u64,
                ImmOp::Slli => a << (imm & 0x3F),
                ImmOp::Srli => a >> (imm & 0x3F),
                ImmOp::Srai => ((a as i64) >> (imm & 0x3F)) as u64,
            };
            wx(state, rd, v);
            r.src_x(rs1);
            r.dst_x(rd);
        }
        OpImm32 { op, rd, rs1, imm } => {
            let a = rx(state, rs1) as u32;
            let v32 = match op {
                ImmOp32::Addiw => a.wrapping_add(imm as u32),
                ImmOp32::Slliw => a << (imm & 0x1F),
                ImmOp32::Srliw => a >> (imm & 0x1F),
                ImmOp32::Sraiw => ((a as i32) >> (imm & 0x1F)) as u32,
            };
            wx(state, rd, v32 as i32 as i64 as u64);
            r.src_x(rs1);
            r.dst_x(rd);
        }
        Op { op, rd, rs1, rs2 } => {
            let a = rx(state, rs1);
            let b = rx(state, rs2);
            let v = match op {
                RegOp::Add => a.wrapping_add(b),
                RegOp::Sub => a.wrapping_sub(b),
                RegOp::Sll => a << (b & 0x3F),
                RegOp::Slt => ((a as i64) < (b as i64)) as u64,
                RegOp::Sltu => (a < b) as u64,
                RegOp::Xor => a ^ b,
                RegOp::Srl => a >> (b & 0x3F),
                RegOp::Sra => ((a as i64) >> (b & 0x3F)) as u64,
                RegOp::Or => a | b,
                RegOp::And => a & b,
                RegOp::Mul => a.wrapping_mul(b),
                RegOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
                RegOp::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
                RegOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
                RegOp::Div => {
                    let (a, b) = (a as i64, b as i64);
                    if b == 0 {
                        u64::MAX
                    } else if a == i64::MIN && b == -1 {
                        a as u64
                    } else {
                        (a / b) as u64
                    }
                }
                RegOp::Divu => if b == 0 { u64::MAX } else { a / b },
                RegOp::Rem => {
                    let (a, b) = (a as i64, b as i64);
                    if b == 0 {
                        a as u64
                    } else if a == i64::MIN && b == -1 {
                        0
                    } else {
                        (a % b) as u64
                    }
                }
                RegOp::Remu => if b == 0 { a } else { a % b },
            };
            wx(state, rd, v);
            r.src_x(rs1);
            r.src_x(rs2);
            r.dst_x(rd);
        }
        Op32 { op, rd, rs1, rs2 } => {
            let a = rx(state, rs1) as u32;
            let b = rx(state, rs2) as u32;
            let v32 = match op {
                RegOp32::Addw => a.wrapping_add(b),
                RegOp32::Subw => a.wrapping_sub(b),
                RegOp32::Sllw => a << (b & 0x1F),
                RegOp32::Srlw => a >> (b & 0x1F),
                RegOp32::Sraw => ((a as i32) >> (b & 0x1F)) as u32,
                RegOp32::Mulw => a.wrapping_mul(b),
                RegOp32::Divw => {
                    let (a, b) = (a as i32, b as i32);
                    if b == 0 {
                        u32::MAX
                    } else if a == i32::MIN && b == -1 {
                        a as u32
                    } else {
                        (a / b) as u32
                    }
                }
                RegOp32::Divuw => if b == 0 { u32::MAX } else { a / b },
                RegOp32::Remw => {
                    let (a, b) = (a as i32, b as i32);
                    if b == 0 {
                        a as u32
                    } else if a == i32::MIN && b == -1 {
                        0
                    } else {
                        (a % b) as u32
                    }
                }
                RegOp32::Remuw => if b == 0 { a } else { a % b },
            };
            wx(state, rd, v32 as i32 as i64 as u64);
            r.src_x(rs1);
            r.src_x(rs2);
            r.dst_x(rd);
        }
        Fence => {}
        Ecall => {
            let num = state.x[17];
            let args = [state.x[10], state.x[11], state.x[12]];
            let ret = state.syscall(pc, num, args)?;
            state.x[10] = ret;
            r.src_x(17);
            r.src_x(10);
            r.src_x(11);
            r.src_x(12);
            r.dst_x(10);
        }
        Ebreak => return Err(SimError::Breakpoint { pc }),
        Lr { width, rd, rs1 } => {
            let addr = rx(state, rs1);
            let v = match width {
                AmoWidth::W => state.mem.read_u32(addr)? as i32 as i64 as u64,
                AmoWidth::D => state.mem.read_u64(addr)?,
            };
            wx(state, rd, v);
            r.src_x(rs1);
            r.dst_x(rd);
            r.ri.mem_reads.push(addr, width.size());
        }
        Sc { width, rd, rs1, rs2 } => {
            // Single-hart model: the store-conditional always succeeds.
            let addr = rx(state, rs1);
            let v = rx(state, rs2);
            match width {
                AmoWidth::W => state.mem.write_u32(addr, v as u32)?,
                AmoWidth::D => state.mem.write_u64(addr, v)?,
            }
            wx(state, rd, 0);
            r.src_x(rs1);
            r.src_x(rs2);
            r.dst_x(rd);
            r.ri.mem_writes.push(addr, width.size());
        }
        Amo { op, width, rd, rs1, rs2 } => {
            let addr = rx(state, rs1);
            let rhs = rx(state, rs2);
            let old = match width {
                AmoWidth::W => state.mem.read_u32(addr)? as i32 as i64 as u64,
                AmoWidth::D => state.mem.read_u64(addr)?,
            };
            let new = match (op, width) {
                (AmoOp::Swap, _) => rhs,
                (AmoOp::Add, AmoWidth::W) => (old as u32).wrapping_add(rhs as u32) as u64,
                (AmoOp::Add, AmoWidth::D) => old.wrapping_add(rhs),
                (AmoOp::Xor, _) => old ^ rhs,
                (AmoOp::And, _) => old & rhs,
                (AmoOp::Or, _) => old | rhs,
                (AmoOp::Min, AmoWidth::W) => ((old as i32).min(rhs as i32)) as u32 as u64,
                (AmoOp::Min, AmoWidth::D) => ((old as i64).min(rhs as i64)) as u64,
                (AmoOp::Max, AmoWidth::W) => ((old as i32).max(rhs as i32)) as u32 as u64,
                (AmoOp::Max, AmoWidth::D) => ((old as i64).max(rhs as i64)) as u64,
                (AmoOp::Minu, AmoWidth::W) => ((old as u32).min(rhs as u32)) as u64,
                (AmoOp::Minu, AmoWidth::D) => old.min(rhs),
                (AmoOp::Maxu, AmoWidth::W) => ((old as u32).max(rhs as u32)) as u64,
                (AmoOp::Maxu, AmoWidth::D) => old.max(rhs),
            };
            match width {
                AmoWidth::W => state.mem.write_u32(addr, new as u32)?,
                AmoWidth::D => state.mem.write_u64(addr, new)?,
            }
            wx(state, rd, old);
            r.src_x(rs1);
            r.src_x(rs2);
            r.dst_x(rd);
            r.ri.mem_reads.push(addr, width.size());
            r.ri.mem_writes.push(addr, width.size());
        }
        FpLoad { width, frd, rs1, offset } => {
            let addr = rx(state, rs1).wrapping_add(offset as u64);
            let v = match width {
                FpWidth::S => nan_box(state.mem.read_u32(addr)?),
                FpWidth::D => state.mem.read_u64(addr)?,
            };
            state.f[frd as usize] = v;
            r.src_x(rs1);
            r.dst_f(frd);
            r.ri.mem_reads.push(addr, width.size());
        }
        FpStore { width, frs2, rs1, offset } => {
            let addr = rx(state, rs1).wrapping_add(offset as u64);
            match width {
                FpWidth::S => state.mem.write_u32(addr, state.f[frs2 as usize] as u32)?,
                FpWidth::D => state.mem.write_u64(addr, state.f[frs2 as usize])?,
            }
            r.src_x(rs1);
            r.src_f(frs2);
            r.ri.mem_writes.push(addr, width.size());
        }
        FpReg { op, width, frd, frs1, frs2 } => {
            match width {
                FpWidth::D => {
                    let a = state.fd(frs1);
                    let b = state.fd(frs2);
                    let v = match op {
                        FpOp::Fadd => a + b,
                        FpOp::Fsub => a - b,
                        FpOp::Fmul => a * b,
                        FpOp::Fdiv => a / b,
                        FpOp::Fmin => rv_fmin(a, b),
                        FpOp::Fmax => rv_fmax(a, b),
                        FpOp::Fsgnj => f64::from_bits(
                            (a.to_bits() & !(1 << 63)) | (b.to_bits() & (1 << 63)),
                        ),
                        FpOp::Fsgnjn => f64::from_bits(
                            (a.to_bits() & !(1 << 63)) | (!b.to_bits() & (1 << 63)),
                        ),
                        FpOp::Fsgnjx => f64::from_bits(a.to_bits() ^ (b.to_bits() & (1 << 63))),
                    };
                    state.set_fd(frd, v);
                }
                FpWidth::S => {
                    let a = unbox_f32(state.f[frs1 as usize]);
                    let b = unbox_f32(state.f[frs2 as usize]);
                    let v = match op {
                        FpOp::Fadd => a + b,
                        FpOp::Fsub => a - b,
                        FpOp::Fmul => a * b,
                        FpOp::Fdiv => a / b,
                        FpOp::Fmin => rv_fmin(a as f64, b as f64) as f32,
                        FpOp::Fmax => rv_fmax(a as f64, b as f64) as f32,
                        FpOp::Fsgnj => f32::from_bits(
                            (a.to_bits() & !(1 << 31)) | (b.to_bits() & (1 << 31)),
                        ),
                        FpOp::Fsgnjn => f32::from_bits(
                            (a.to_bits() & !(1 << 31)) | (!b.to_bits() & (1 << 31)),
                        ),
                        FpOp::Fsgnjx => f32::from_bits(a.to_bits() ^ (b.to_bits() & (1 << 31))),
                    };
                    state.f[frd as usize] = nan_box(v.to_bits());
                }
            }
            r.src_f(frs1);
            r.src_f(frs2);
            r.dst_f(frd);
        }
        FpFma { op, width, frd, frs1, frs2, frs3 } => {
            match width {
                FpWidth::D => {
                    let a = state.fd(frs1);
                    let b = state.fd(frs2);
                    let c = state.fd(frs3);
                    let v = match op {
                        FmaOp::Fmadd => a.mul_add(b, c),
                        FmaOp::Fmsub => a.mul_add(b, -c),
                        FmaOp::Fnmsub => (-a).mul_add(b, c),
                        FmaOp::Fnmadd => (-a).mul_add(b, -c),
                    };
                    state.set_fd(frd, v);
                }
                FpWidth::S => {
                    let a = unbox_f32(state.f[frs1 as usize]);
                    let b = unbox_f32(state.f[frs2 as usize]);
                    let c = unbox_f32(state.f[frs3 as usize]);
                    let v = match op {
                        FmaOp::Fmadd => a.mul_add(b, c),
                        FmaOp::Fmsub => a.mul_add(b, -c),
                        FmaOp::Fnmsub => (-a).mul_add(b, c),
                        FmaOp::Fnmadd => (-a).mul_add(b, -c),
                    };
                    state.f[frd as usize] = nan_box(v.to_bits());
                }
            }
            r.src_f(frs1);
            r.src_f(frs2);
            r.src_f(frs3);
            r.dst_f(frd);
        }
        FpSqrt { width, frd, frs1 } => {
            match width {
                FpWidth::D => {
                    let v = state.fd(frs1).sqrt();
                    state.set_fd(frd, v);
                }
                FpWidth::S => {
                    let v = unbox_f32(state.f[frs1 as usize]).sqrt();
                    state.f[frd as usize] = nan_box(v.to_bits());
                }
            }
            r.src_f(frs1);
            r.dst_f(frd);
        }
        FpCmp { op, width, rd, frs1, frs2 } => {
            let (a, b) = match width {
                FpWidth::D => (state.fd(frs1), state.fd(frs2)),
                FpWidth::S => (
                    unbox_f32(state.f[frs1 as usize]) as f64,
                    unbox_f32(state.f[frs2 as usize]) as f64,
                ),
            };
            let v = match op {
                FpCmpOp::Feq => (a == b) as u64,
                FpCmpOp::Flt => (a < b) as u64,
                FpCmpOp::Fle => (a <= b) as u64,
            };
            wx(state, rd, v);
            r.src_f(frs1);
            r.src_f(frs2);
            r.dst_x(rd);
        }
        FcvtIntFromFp { ty, width, rd, frs1 } => {
            let v = match width {
                FpWidth::D => state.fd(frs1),
                FpWidth::S => unbox_f32(state.f[frs1 as usize]) as f64,
            };
            wx(state, rd, cvt_f64_to_int(v, ty));
            r.src_f(frs1);
            r.dst_x(rd);
        }
        FcvtFpFromInt { ty, width, frd, rs1 } => {
            let v = cvt_int_to_f64(rx(state, rs1), ty);
            match width {
                FpWidth::D => state.set_fd(frd, v),
                FpWidth::S => state.f[frd as usize] = nan_box((v as f32).to_bits()),
            }
            r.src_x(rs1);
            r.dst_f(frd);
        }
        FcvtFpFp { to, from, frd, frs1 } => {
            match (to, from) {
                (FpWidth::S, FpWidth::D) => {
                    let v = state.fd(frs1) as f32;
                    state.f[frd as usize] = nan_box(v.to_bits());
                }
                (FpWidth::D, FpWidth::S) => {
                    let v = unbox_f32(state.f[frs1 as usize]) as f64;
                    state.set_fd(frd, v);
                }
                _ => {
                    return Err(SimError::Fault {
                        pc,
                        msg: "fcvt between identical FP widths".into(),
                    })
                }
            }
            r.src_f(frs1);
            r.dst_f(frd);
        }
        FmvToInt { width, rd, frs1 } => {
            let v = match width {
                FpWidth::D => state.f[frs1 as usize],
                FpWidth::S => state.f[frs1 as usize] as u32 as i32 as i64 as u64,
            };
            wx(state, rd, v);
            r.src_f(frs1);
            r.dst_x(rd);
        }
        FmvToFp { width, frd, rs1 } => {
            let v = rx(state, rs1);
            state.f[frd as usize] = match width {
                FpWidth::D => v,
                FpWidth::S => nan_box(v as u32),
            };
            r.src_x(rs1);
            r.dst_f(frd);
        }
        Fclass { width, rd, frs1 } => {
            let v = match width {
                FpWidth::D => state.fd(frs1),
                FpWidth::S => unbox_f32(state.f[frs1 as usize]) as f64,
            };
            wx(state, rd, fclass_bits(v));
            r.src_f(frs1);
            r.dst_x(rd);
        }
    }

    state.pc = next_pc;
    Ok(r.ri)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> CpuState {
        CpuState::new()
    }

    fn run1(inst: Inst, st: &mut CpuState) -> RetiredInst {
        execute(&inst, st.pc, st).unwrap()
    }

    #[test]
    fn addi_and_zero_register() {
        let mut st = fresh();
        run1(Inst::OpImm { op: ImmOp::Addi, rd: 5, rs1: 0, imm: 42 }, &mut st);
        assert_eq!(st.x[5], 42);
        // Write to x0 is discarded.
        let ri = run1(Inst::OpImm { op: ImmOp::Addi, rd: 0, rs1: 5, imm: 1 }, &mut st);
        assert_eq!(st.x[0], 0);
        assert!(ri.dsts.is_empty());
        assert!(ri.srcs.contains(RegId::Int(5)));
    }

    #[test]
    fn x0_not_reported_as_source() {
        let mut st = fresh();
        let ri = run1(Inst::Op { op: RegOp::Add, rd: 1, rs1: 0, rs2: 0 }, &mut st);
        assert!(ri.srcs.is_empty());
        assert!(ri.dsts.contains(RegId::Int(1)));
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let mut st = fresh();
        st.pc = 0x100;
        st.x[1] = 5;
        st.x[2] = 5;
        let ri = run1(Inst::Branch { op: BranchOp::Beq, rs1: 1, rs2: 2, offset: 0x40 }, &mut st);
        assert!(ri.taken);
        assert_eq!(st.pc, 0x140);
        st.x[2] = 6;
        let ri = run1(Inst::Branch { op: BranchOp::Beq, rs1: 1, rs2: 2, offset: 0x40 }, &mut st);
        assert!(!ri.taken);
        assert_eq!(st.pc, 0x144);
    }

    #[test]
    fn signed_vs_unsigned_branches() {
        let mut st = fresh();
        st.x[1] = (-1i64) as u64;
        st.x[2] = 1;
        st.pc = 0;
        run1(Inst::Branch { op: BranchOp::Blt, rs1: 1, rs2: 2, offset: 8 }, &mut st);
        assert_eq!(st.pc, 8, "-1 < 1 signed");
        st.pc = 0;
        run1(Inst::Branch { op: BranchOp::Bltu, rs1: 1, rs2: 2, offset: 8 }, &mut st);
        assert_eq!(st.pc, 4, "u64::MAX not < 1 unsigned");
    }

    #[test]
    fn load_store_round_trip() {
        let mut st = fresh();
        st.x[1] = 0x1000;
        st.x[2] = 0xDEAD_BEEF_CAFE_F00D;
        let ri = run1(Inst::Store { op: StoreOp::Sd, rs2: 2, rs1: 1, offset: 8 }, &mut st);
        assert_eq!(ri.mem_writes.iter().next().unwrap().addr, 0x1008);
        let ri = run1(Inst::Load { op: LoadOp::Ld, rd: 3, rs1: 1, offset: 8 }, &mut st);
        assert_eq!(st.x[3], 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(ri.mem_reads.iter().next().unwrap().size, 8);
    }

    #[test]
    fn load_sign_extension() {
        let mut st = fresh();
        st.x[1] = 0x2000;
        st.mem.write_u8(0x2000, 0x80).unwrap();
        run1(Inst::Load { op: LoadOp::Lb, rd: 3, rs1: 1, offset: 0 }, &mut st);
        assert_eq!(st.x[3] as i64, -128);
        run1(Inst::Load { op: LoadOp::Lbu, rd: 3, rs1: 1, offset: 0 }, &mut st);
        assert_eq!(st.x[3], 0x80);
    }

    #[test]
    fn mul_div_edge_cases() {
        let mut st = fresh();
        st.x[1] = i64::MIN as u64;
        st.x[2] = (-1i64) as u64;
        run1(Inst::Op { op: RegOp::Div, rd: 3, rs1: 1, rs2: 2 }, &mut st);
        assert_eq!(st.x[3], i64::MIN as u64, "overflow case");
        run1(Inst::Op { op: RegOp::Rem, rd: 3, rs1: 1, rs2: 2 }, &mut st);
        assert_eq!(st.x[3], 0);
        st.x[2] = 0;
        run1(Inst::Op { op: RegOp::Div, rd: 3, rs1: 1, rs2: 2 }, &mut st);
        assert_eq!(st.x[3], u64::MAX, "divide by zero returns -1");
        run1(Inst::Op { op: RegOp::Rem, rd: 3, rs1: 1, rs2: 2 }, &mut st);
        assert_eq!(st.x[3], i64::MIN as u64, "rem by zero returns dividend");
    }

    #[test]
    fn mulh_variants() {
        let mut st = fresh();
        st.x[1] = u64::MAX; // -1 signed
        st.x[2] = u64::MAX;
        run1(Inst::Op { op: RegOp::Mulh, rd: 3, rs1: 1, rs2: 2 }, &mut st);
        assert_eq!(st.x[3], 0, "(-1)*(-1)=1, high bits 0");
        run1(Inst::Op { op: RegOp::Mulhu, rd: 3, rs1: 1, rs2: 2 }, &mut st);
        assert_eq!(st.x[3], u64::MAX - 1, "unsigned high product");
        run1(Inst::Op { op: RegOp::Mulhsu, rd: 3, rs1: 1, rs2: 2 }, &mut st);
        assert_eq!(st.x[3], u64::MAX, "signed x unsigned high product");
    }

    #[test]
    fn word_ops_sign_extend() {
        let mut st = fresh();
        st.x[1] = 0x7FFF_FFFF;
        run1(Inst::OpImm32 { op: ImmOp32::Addiw, rd: 2, rs1: 1, imm: 1 }, &mut st);
        assert_eq!(st.x[2], 0xFFFF_FFFF_8000_0000, "addiw wraps and sign-extends");
        st.x[1] = 1;
        run1(Inst::OpImm32 { op: ImmOp32::Slliw, rd: 2, rs1: 1, imm: 31 }, &mut st);
        assert_eq!(st.x[2] as i64, i32::MIN as i64);
    }

    #[test]
    fn jal_jalr_link() {
        let mut st = fresh();
        st.pc = 0x1000;
        let ri = run1(Inst::Jal { rd: 1, offset: 0x100 }, &mut st);
        assert_eq!(st.x[1], 0x1004);
        assert_eq!(st.pc, 0x1100);
        assert!(ri.is_branch && ri.taken);
        st.x[5] = 0x2001; // odd target gets aligned
        run1(Inst::Jalr { rd: 0, rs1: 5, offset: 0 }, &mut st);
        assert_eq!(st.pc, 0x2000);
    }

    #[test]
    fn fp_double_arithmetic() {
        let mut st = fresh();
        st.set_fd(1, 1.5);
        st.set_fd(2, 2.5);
        let ri = run1(
            Inst::FpReg { op: FpOp::Fadd, width: FpWidth::D, frd: 3, frs1: 1, frs2: 2 },
            &mut st,
        );
        assert_eq!(st.fd(3), 4.0);
        assert!(ri.srcs.contains(RegId::Fp(1)));
        assert!(ri.dsts.contains(RegId::Fp(3)));
        run1(
            Inst::FpFma { op: FmaOp::Fmadd, width: FpWidth::D, frd: 4, frs1: 1, frs2: 2, frs3: 3 },
            &mut st,
        );
        assert_eq!(st.fd(4), 1.5f64.mul_add(2.5, 4.0));
    }

    #[test]
    fn fp_min_max_zero_signs() {
        let mut st = fresh();
        st.set_fd(1, -0.0);
        st.set_fd(2, 0.0);
        run1(Inst::FpReg { op: FpOp::Fmin, width: FpWidth::D, frd: 3, frs1: 2, frs2: 1 }, &mut st);
        assert!(st.fd(3).is_sign_negative());
        run1(Inst::FpReg { op: FpOp::Fmax, width: FpWidth::D, frd: 3, frs1: 2, frs2: 1 }, &mut st);
        assert!(st.fd(3).is_sign_positive());
    }

    #[test]
    fn fp_compare_and_nan() {
        let mut st = fresh();
        st.set_fd(1, 1.0);
        st.set_fd(2, f64::NAN);
        run1(Inst::FpCmp { op: FpCmpOp::Flt, width: FpWidth::D, rd: 3, frs1: 1, frs2: 2 }, &mut st);
        assert_eq!(st.x[3], 0, "comparison with NaN is false");
        st.set_fd(2, 2.0);
        run1(Inst::FpCmp { op: FpCmpOp::Fle, width: FpWidth::D, rd: 3, frs1: 1, frs2: 2 }, &mut st);
        assert_eq!(st.x[3], 1);
    }

    #[test]
    fn fcvt_truncates_toward_zero() {
        let mut st = fresh();
        st.set_fd(1, -2.7);
        run1(
            Inst::FcvtIntFromFp { ty: IntTy::W, width: FpWidth::D, rd: 2, frs1: 1 },
            &mut st,
        );
        assert_eq!(st.x[2] as i64, -2);
        st.x[3] = (-7i64) as u64;
        run1(
            Inst::FcvtFpFromInt { ty: IntTy::L, width: FpWidth::D, frd: 2, rs1: 3 },
            &mut st,
        );
        assert_eq!(st.fd(2), -7.0);
    }

    #[test]
    fn fcvt_nan_saturates() {
        let mut st = fresh();
        st.set_fd(1, f64::NAN);
        run1(
            Inst::FcvtIntFromFp { ty: IntTy::W, width: FpWidth::D, rd: 2, frs1: 1 },
            &mut st,
        );
        assert_eq!(st.x[2] as i64, i32::MAX as i64);
    }

    #[test]
    fn fmv_bit_transfer() {
        let mut st = fresh();
        st.x[1] = 0x4008_0000_0000_0000; // 3.0
        run1(Inst::FmvToFp { width: FpWidth::D, frd: 2, rs1: 1 }, &mut st);
        assert_eq!(st.fd(2), 3.0);
        run1(Inst::FmvToInt { width: FpWidth::D, rd: 3, frs1: 2 }, &mut st);
        assert_eq!(st.x[3], 0x4008_0000_0000_0000);
    }

    #[test]
    fn fclass_categories() {
        let mut st = fresh();
        for (v, bit) in [
            (f64::NEG_INFINITY, 0),
            (-1.0, 1),
            (-0.0, 3),
            (0.0, 4),
            (1.0, 6),
            (f64::INFINITY, 7),
        ] {
            st.set_fd(1, v);
            run1(Inst::Fclass { width: FpWidth::D, rd: 2, frs1: 1 }, &mut st);
            assert_eq!(st.x[2], 1 << bit, "fclass of {v}");
        }
    }

    #[test]
    fn amo_add_returns_old() {
        let mut st = fresh();
        st.mem.write_u64(0x1000, 10).unwrap();
        st.x[1] = 0x1000;
        st.x[2] = 5;
        let ri = run1(
            Inst::Amo { op: AmoOp::Add, width: AmoWidth::D, rd: 3, rs1: 1, rs2: 2 },
            &mut st,
        );
        assert_eq!(st.x[3], 10);
        assert_eq!(st.mem.read_u64(0x1000).unwrap(), 15);
        assert_eq!(ri.mem_reads.len(), 1);
        assert_eq!(ri.mem_writes.len(), 1);
    }

    #[test]
    fn lr_sc_pair() {
        let mut st = fresh();
        st.mem.write_u32(0x1000, 7).unwrap();
        st.x[1] = 0x1000;
        run1(Inst::Lr { width: AmoWidth::W, rd: 2, rs1: 1 }, &mut st);
        assert_eq!(st.x[2], 7);
        st.x[3] = 9;
        run1(Inst::Sc { width: AmoWidth::W, rd: 4, rs1: 1, rs2: 3 }, &mut st);
        assert_eq!(st.x[4], 0, "sc succeeds");
        assert_eq!(st.mem.read_u32(0x1000).unwrap(), 9);
    }

    #[test]
    fn ecall_exit() {
        let mut st = fresh();
        st.x[17] = 93;
        st.x[10] = 3;
        run1(Inst::Ecall, &mut st);
        assert_eq!(st.exited, Some(3));
    }

    #[test]
    fn f32_nan_boxing() {
        let mut st = fresh();
        st.x[1] = 0x3000;
        st.mem.write_u32(0x3000, 1.5f32.to_bits()).unwrap();
        run1(Inst::FpLoad { width: FpWidth::S, frd: 1, rs1: 1, offset: 0 }, &mut st);
        assert_eq!(st.f[1] >> 32, 0xFFFF_FFFF, "flw NaN-boxes");
        st.mem.write_u32(0x3004, 2.0f32.to_bits()).unwrap();
        run1(Inst::FpLoad { width: FpWidth::S, frd: 2, rs1: 1, offset: 4 }, &mut st);
        run1(Inst::FpReg { op: FpOp::Fadd, width: FpWidth::S, frd: 3, frs1: 1, frs2: 2 }, &mut st);
        run1(Inst::FpStore { width: FpWidth::S, frs2: 3, rs1: 1, offset: 8 }, &mut st);
        assert_eq!(f32::from_bits(st.mem.read_u32(0x3008).unwrap()), 3.5);
    }
}
