//! `isacmpd` — the always-on experiment daemon.
//!
//! Usage: isacmpd [--addr HOST:PORT] [--max-jobs N] [--jobs-dir PATH]
//!                [--trace-dir PATH] [--warm MATRIX.JSON]
//!                [--warm-size NAME] [--warm-engine NAME]
//!                [--drain-secs SECS]
//!
//! Binds the listener (port 0 lets the OS pick), prints
//! `isacmpd listening on <addr>` on stdout once ready, and serves until
//! SIGTERM/SIGINT, at which point it checkpoints in-flight jobs via their
//! cell journals, notifies connected clients with a typed `shutdown`
//! frame, and exits 0.

use std::path::PathBuf;
use std::time::Duration;

use bench::cli;
use isacmp::shutdown;
use server::{Config, Server};

fn usage() -> ! {
    eprintln!(
        "usage: isacmpd [--addr HOST:PORT] [--max-jobs N] [--jobs-dir PATH] \
         [--trace-dir PATH] [--warm MATRIX.JSON] [--warm-size NAME] \
         [--warm-engine NAME] [--drain-secs SECS]"
    );
    std::process::exit(2);
}

fn or_usage<T>(r: Result<T, String>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("isacmpd: {e}");
        usage();
    })
}

fn parse_config(args: &[String]) -> Config {
    let mut cfg = Config::default();
    if let Some(addr) = cli::flag_value(args, "--addr") {
        cfg.addr = addr;
    }
    if let Some(n) = cli::flag_value(args, "--max-jobs") {
        cfg.max_jobs = or_usage(
            n.parse::<usize>()
                .map_err(|_| format!("--max-jobs expects a non-negative integer, got '{n}'")),
        );
    }
    if let Some(dir) = cli::flag_value(args, "--jobs-dir") {
        cfg.jobs_dir = PathBuf::from(dir);
    }
    if let Some(dir) = cli::flag_value(args, "--trace-dir") {
        cfg.trace_dir = Some(PathBuf::from(dir));
    }
    if let Some(path) = cli::flag_value(args, "--warm") {
        cfg.warm = Some(PathBuf::from(path));
    }
    if let Some(name) = cli::flag_value(args, "--warm-size") {
        cfg.warm_size = or_usage(cli::size_from_name(&name));
    }
    if let Some(name) = cli::flag_value(args, "--warm-engine") {
        cfg.warm_engine = or_usage(
            name.parse()
                .map_err(|e: String| format!("--warm-engine: {e}")),
        );
    }
    if let Some(s) = cli::flag_value(args, "--drain-secs") {
        let secs = or_usage(
            s.parse::<f64>()
                .ok()
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| format!("--drain-secs expects a non-negative number, got '{s}'")),
        );
        cfg.drain_timeout = Duration::from_secs_f64(secs);
    }
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if cli::has_flag(&args, "--help") || cli::has_flag(&args, "-h") {
        usage();
    }
    shutdown::install();
    let cfg = parse_config(&args);
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("isacmpd: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // CI and scripts scrape this line for the bound port.
            println!("isacmpd listening on {addr}");
            use std::io::Write;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("isacmpd: {e}");
            std::process::exit(1);
        }
    }
    std::process::exit(server.run());
}
