//! A minimal, dependency-free benchmark-harness shim.
//!
//! Exposes the subset of the real `criterion` API this workspace's benches
//! use (`Criterion::benchmark_group`, `bench_with_input` / `bench_function`,
//! `BenchmarkId`, `criterion_group!` / `criterion_main!`) so the workspace
//! builds with no crates-io access. Instead of criterion's statistical
//! analysis it runs each benchmark `sample_size` times and prints
//! `min / mean / max` wall time per iteration.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub use std::hint::black_box;

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier rendered as `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: function.to_string(), parameter: parameter.to_string() }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// The harness entry point; create via `Criterion::default()`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup { _c: self, name: name.to_string(), sample_size: 10 }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        run_benchmark(name, 10, f);
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's minimum is 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run `f` with `input`, timed.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.render());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Run `f`, timed.
    pub fn bench_function(&mut self, id: BenchmarkId, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id.render());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// End the group (prints nothing extra; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the hot code.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` once per sample (the routine's return value is
    /// black-boxed so the optimizer can't delete it).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warm-up run.
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("  {label}: no samples (closure never called iter)");
        return;
    }
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    eprintln!(
        "  {label}: min {} / mean {} / max {} ({} samples)",
        fmt_dur(*min),
        fmt_dur(mean),
        fmt_dur(*max),
        b.samples.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Collect benchmark functions into a runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut ran = 0u64;
        run_benchmark("test/one", 5, |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        // 5 timed samples + 1 warm-up.
        assert_eq!(ran, 6);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("f", "p"), &7u64, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("copy", "rv64").render(), "copy/rv64");
    }
}
