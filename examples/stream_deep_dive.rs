//! The paper's §3.3 STREAM analysis, reproduced end to end: disassemble
//! the copy kernels both compilers produce for both ISAs (Listings 1-2),
//! count instructions per element, and measure the branch fraction behind
//! the paper's "up to 15 %" compare-instruction bound.
//!
//! ```sh
//! cargo run --release --example stream_deep_dive
//! ```

use isacmp::{
    compile, disassemble_region, execute, IsaKind, Observer, Personality, RetiredInst, SizeClass,
    Workload,
};

/// Counts branches and NZCV-setting instructions in the retirement stream.
#[derive(Default)]
struct BranchMix {
    total: u64,
    branches: u64,
}

impl Observer for BranchMix {
    fn on_retire(&mut self, ri: &RetiredInst) {
        self.total += 1;
        if ri.is_branch {
            self.branches += 1;
        }
    }
}

fn main() {
    println!("== Listings: the copy kernel, as each compiler emits it ==\n");
    for isa in [IsaKind::AArch64, IsaKind::RiscV] {
        for p in [Personality::gcc92(), Personality::gcc122()] {
            let prog = Workload::Stream.build(SizeClass::Test);
            let compiled = compile(&prog, isa, &p);
            println!("--- {} / {} ---", isacmp::isa_label(isa), p.label());
            for (pc, text) in disassemble_region(&compiled, "copy") {
                println!("  {pc:#x}: {text}");
            }
            println!();
        }
    }

    println!("== The paper's 'more optimal' post-indexed AArch64 copy ==\n");
    let mut post = Personality::gcc122();
    post.arm_post_index = true;
    let prog = Workload::Stream.build(SizeClass::Test);
    let compiled = compile(&prog, IsaKind::AArch64, &post);
    for (pc, text) in disassemble_region(&compiled, "copy") {
        println!("  {pc:#x}: {text}");
    }

    println!("\n== Branch fraction (paper: ~15% of RISC-V STREAM instructions) ==\n");
    for isa in [IsaKind::AArch64, IsaKind::RiscV] {
        let prog = Workload::Stream.build(SizeClass::Small);
        let compiled = compile(&prog, isa, &Personality::gcc122());
        let mut mix = BranchMix::default();
        execute(&compiled, &mut [&mut mix]);
        println!(
            "{:<8}: {} branches / {} instructions = {:.1}%",
            isacmp::isa_label(isa),
            mix.branches,
            mix.total,
            100.0 * mix.branches as f64 / mix.total as f64
        );
    }
}
