//! Shared program-counter snapshot for the sampling profiler.
//!
//! The emulation core publishes `(pc, instret)` into a [`SampleSnapshot`]
//! every `2^k` retirements; a sampler thread (see `telemetry::sampler`)
//! polls the snapshot on a wall-clock period and attributes host time to
//! whatever guest PC was last published. The core never blocks: publication
//! is a seqlock write (two fetch-adds and two relaxed stores), and readers
//! retry if they observe a torn pair.
//!
//! Seqlock protocol: the writer bumps `seq` to an odd value, stores the
//! payload, then bumps `seq` to the next even value. A reader loads `seq`,
//! rejects odd values, loads the payload, re-loads `seq`, and accepts only
//! if the two loads match. There is exactly one writer (the emulation
//! thread), so writer-side increments need no stronger ordering than
//! Release, and the reader pairs them with Acquire.

use std::sync::atomic::{AtomicU64, Ordering};

/// One published sample: the guest PC and retirement count at publish time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Guest program counter last published by the core.
    pub pc: u64,
    /// Instructions retired when the sample was published.
    pub instret: u64,
}

/// Lock-free single-writer snapshot cell shared between the emulation core
/// and the sampler thread.
#[derive(Debug, Default)]
pub struct SampleSnapshot {
    seq: AtomicU64,
    pc: AtomicU64,
    instret: AtomicU64,
    publishes: AtomicU64,
}

impl SampleSnapshot {
    /// Empty snapshot; [`read`](Self::read) returns `None` until the first
    /// [`publish`](Self::publish).
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish `(pc, instret)`. Called from the emulation hot loop on the
    /// sampling stride; must stay cheap and wait-free.
    #[inline]
    pub fn publish(&self, pc: u64, instret: u64) {
        // Odd seq = write in progress.
        self.seq.fetch_add(1, Ordering::Release);
        self.pc.store(pc, Ordering::Relaxed);
        self.instret.store(instret, Ordering::Relaxed);
        self.seq.fetch_add(1, Ordering::Release);
        self.publishes.fetch_add(1, Ordering::Relaxed);
    }

    /// Read the latest published sample, retrying on torn reads. Returns
    /// `None` if nothing has been published yet.
    pub fn read(&self) -> Option<Sample> {
        loop {
            let s0 = self.seq.load(Ordering::Acquire);
            if s0 == 0 {
                return None;
            }
            if s0 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let pc = self.pc.load(Ordering::Relaxed);
            let instret = self.instret.load(Ordering::Relaxed);
            // Acquire fence orders the payload loads before the re-check.
            std::sync::atomic::fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s0 {
                return Some(Sample { pc, instret });
            }
        }
    }

    /// Total number of `publish` calls. Used by tests to assert the
    /// disabled path performs zero publishes (and hence zero hot-loop
    /// overhead beyond the sentinel-mask compare).
    pub fn publishes(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_snapshot_reads_none() {
        let s = SampleSnapshot::new();
        assert_eq!(s.read(), None);
        assert_eq!(s.publishes(), 0);
    }

    #[test]
    fn publish_then_read_round_trips() {
        let s = SampleSnapshot::new();
        s.publish(0x8000_0010, 42);
        assert_eq!(s.read(), Some(Sample { pc: 0x8000_0010, instret: 42 }));
        s.publish(0x8000_0044, 99);
        assert_eq!(s.read(), Some(Sample { pc: 0x8000_0044, instret: 99 }));
        assert_eq!(s.publishes(), 2);
    }

    #[test]
    fn concurrent_reads_never_tear() {
        // Writer publishes pairs where instret == pc + 1; any torn read
        // breaks that invariant.
        let snap = Arc::new(SampleSnapshot::new());
        let w = Arc::clone(&snap);
        let writer = std::thread::spawn(move || {
            for i in 0..200_000u64 {
                w.publish(i, i + 1);
            }
        });
        let mut seen = 0u64;
        while !writer.is_finished() {
            if let Some(s) = snap.read() {
                assert_eq!(s.instret, s.pc + 1, "torn read: {s:?}");
                seen += 1;
            }
        }
        writer.join().unwrap();
        let last = snap.read().unwrap();
        assert_eq!(last, Sample { pc: 199_999, instret: 200_000 });
        assert_eq!(snap.publishes(), 200_000);
        assert!(seen > 0, "reader never observed a published sample");
    }
}
