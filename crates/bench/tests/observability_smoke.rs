//! End-to-end smoke tests for the observability layer through the shipped
//! binaries: `bench_report` writes/extends `BENCH_history.jsonl` and flags
//! regressions, `run_elf --sample` attributes host time to STREAM's kernel
//! loops, and `make_tables --events` drains structured events for a
//! faulted run.

use std::path::PathBuf;
use std::process::Command;

use telemetry::Json;

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run(bin: &str, dir: &PathBuf, args: &[&str]) -> (i32, String, String) {
    let exe = match bin {
        "bench_report" => env!("CARGO_BIN_EXE_bench_report"),
        "make_tables" => env!("CARGO_BIN_EXE_make_tables"),
        "run_elf" => env!("CARGO_BIN_EXE_run_elf"),
        other => panic!("unknown bin {other}"),
    };
    let out = Command::new(exe).args(args).current_dir(dir).output().expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const BASE: &[&str] = &["--size", "test", "--runs", "1"];

#[test]
fn bench_report_builds_a_trajectory_and_flags_regressions() {
    let dir = scratch("benchreport");

    // First run: seeds history and baseline, nothing to compare against.
    let (code, stdout, stderr) = run("bench_report", &dir, BASE);
    assert_eq!(code, 0, "first run:\n{stderr}");
    assert!(stdout.contains("first entry"), "first-run trajectory line:\n{stdout}");

    // Second run: a second history entry and a real comparison.
    let (code, stdout, stderr) = run("bench_report", &dir, BASE);
    assert_eq!(code, 0, "second run:\n{stderr}");
    assert!(stdout.contains("trajectory:"), "comparison line:\n{stdout}");

    let history = std::fs::read_to_string(dir.join("BENCH_history.jsonl")).expect("history");
    let entries: Vec<Json> = history
        .lines()
        .map(|l| Json::parse(l).expect("each history line is valid JSON"))
        .collect();
    assert!(entries.len() >= 2, "two runs must leave at least two entries");
    for e in &entries {
        assert_eq!(e.get("schema").and_then(Json::as_u64), Some(1));
        assert_eq!(e.get("size").and_then(Json::as_str), Some("test"));
        assert!(e.get("geomean_mips").and_then(Json::as_f64).unwrap() > 0.0);
        // The pinned suite: 5 workloads x 2 ISAs at gcc-12.2, each
        // timed on both retire engines.
        assert_eq!(e.get("cells").and_then(Json::as_arr).map(<[Json]>::len), Some(20));
        assert!(e.get("geomean_mips_legacy").and_then(Json::as_f64).unwrap() > 0.0);
    }

    // The baseline is the pretty-printed latest entry.
    let baseline = std::fs::read_to_string(dir.join("BENCH_baseline.json")).expect("baseline");
    let b = Json::parse(&baseline).expect("baseline parses");
    assert_eq!(
        b.get("timestamp").and_then(Json::as_u64),
        entries.last().unwrap().get("timestamp").and_then(Json::as_u64)
    );

    // An artificial 100x slowdown is far past the 20% default threshold:
    // report-only mode still exits 0, --strict exits 4.
    let scaled: Vec<&str> = BASE.iter().copied().chain(["--mips-scale", "0.01"]).collect();
    let (code, _, stderr) = run("bench_report", &dir, &scaled);
    assert_eq!(code, 0, "report-only regression must not fail:\n{stderr}");
    assert!(stderr.contains("REGRESSION"), "regression reported:\n{stderr}");

    // The report-only leg appended its scaled entry, so the strict leg
    // needs a further slowdown relative to that to regress again.
    let strict: Vec<&str> =
        BASE.iter().copied().chain(["--mips-scale", "0.0001", "--strict"]).collect();
    let (code, _, stderr) = run("bench_report", &dir, &strict);
    assert_eq!(code, 4, "--strict regression exits 4:\n{stderr}");
}

#[test]
fn bench_report_rejects_malformed_history() {
    let dir = scratch("benchschema");
    std::fs::write(dir.join("BENCH_history.jsonl"), "{\"schema\": 99}\n").unwrap();
    let (code, _, stderr) = run("bench_report", &dir, BASE);
    assert_eq!(code, 2, "wrong schema version exits 2:\n{stderr}");
    assert!(stderr.contains("schema"), "{stderr}");

    std::fs::write(dir.join("BENCH_history.jsonl"), "not json\n").unwrap();
    let (code, _, stderr) = run("bench_report", &dir, BASE);
    assert_eq!(code, 2, "unparseable history exits 2:\n{stderr}");
}

#[test]
fn sampler_attributes_stream_host_time_to_kernel_loops() {
    let dir = scratch("sampler");
    let (code, _, stderr) = run("make_tables", &dir, &["elves", "--size", "small"]);
    assert_eq!(code, 0, "elves must build:\n{stderr}");

    let (code, stdout, stderr) = run(
        "run_elf",
        &dir,
        &[
            "results/bin/stream-gcc-12.2-riscv64.elf",
            "--sample=100",
            "--metrics",
            "metrics.json",
        ],
    );
    assert_eq!(code, 0, "run_elf --sample must pass:\n{stderr}");
    assert!(stdout.contains("hot blocks:"), "hot-block table printed:\n{stdout}");

    let metrics = std::fs::read_to_string(dir.join("metrics.json")).expect("metrics written");
    let report = Json::parse(&metrics).expect("metrics parse");
    let sampler = report.get("sampler").expect("sampler section present");
    let total = sampler.get("total_samples").and_then(Json::as_u64).unwrap();
    assert!(total > 0, "a small-size STREAM run must collect samples");

    // The acceptance bar: at least half the samples land in STREAM's four
    // kernel loops (the rest is the checksum epilogue and entry stub).
    let symbols = sampler.get("symbols").expect("per-symbol totals");
    let kernels: u64 = ["copy", "scale", "add", "triad"]
        .iter()
        .filter_map(|s| symbols.get(s).and_then(Json::as_u64))
        .sum();
    assert!(
        kernels as f64 >= total as f64 * 0.5,
        "kernel loops got {kernels}/{total} samples:\n{stdout}"
    );
}

#[test]
fn structured_events_drain_from_a_faulted_matrix_run() {
    let dir = scratch("events");
    let (code, _, stderr) = run(
        "make_tables",
        &dir,
        &[
            "table1",
            "--size",
            "test",
            "--inject",
            "STREAM/gcc-12.2/RISC-V:trap@1000",
            "--events",
            "events.jsonl",
        ],
    );
    assert_eq!(code, 0, "degraded run still exits 0:\n{stderr}");
    assert!(stderr.contains("structured events:"), "drain line on stderr:\n{stderr}");

    let events = std::fs::read_to_string(dir.join("events.jsonl")).expect("events written");
    let mut kinds = Vec::new();
    for line in events.lines() {
        let e = Json::parse(line).expect("each event line is valid JSON");
        assert!(e.get("seq").is_some() && e.get("t_us").is_some(), "{line}");
        kinds.push(e.get("kind").and_then(Json::as_str).unwrap().to_string());
    }
    // An injected trap is a non-retryable sim error: the cell fails.
    assert!(kinds.iter().any(|k| k == "cell_failed"), "kinds: {kinds:?}\n{events}");
}
