//! End-to-end integration: the full experiment matrix runs and reproduces
//! the paper's qualitative findings (DESIGN.md's expected shapes).

use isacmp::{run_cell, run_matrix_for, IsaKind, Personality, SizeClass, Workload};

#[test]
fn full_matrix_runs_and_serialises() {
    let m = run_matrix_for(&Workload::ALL, SizeClass::Test);
    assert_eq!(m.cells.len(), 20, "5 workloads x 2 compilers x 2 ISAs");
    for c in &m.cells {
        assert!(c.path_length > 0);
        assert!(c.critical_path > 0 && c.critical_path <= c.path_length);
        assert!(c.scaled_cp >= c.critical_path, "{}: scaling shortens CP?", c.workload);
        assert!(!c.kernels.is_empty());
    }
    // Formatting must include every workload.
    let t1 = m.table1();
    let t2 = m.table2();
    for w in Workload::ALL {
        assert!(t1.contains(w.name()), "table1 missing {}", w.name());
        assert!(t2.contains(w.name()), "table2 missing {}", w.name());
    }
    // JSON round trip.
    let back = isacmp::ResultMatrix::from_json(&m.to_json()).unwrap();
    assert_eq!(back.cells.len(), 20);
}

#[test]
fn stream_compiler_findings_match_paper() {
    // Paper §3.3: moving GCC 9.2 -> 12.2 shortens the AArch64 STREAM path
    // (better loop exits), while the RISC-V kernels are identical.
    let arm92 = run_cell(Workload::Stream, IsaKind::AArch64, &Personality::gcc92(), SizeClass::Small)
        .expect("arm gcc-9.2 cell");
    let arm122 =
        run_cell(Workload::Stream, IsaKind::AArch64, &Personality::gcc122(), SizeClass::Small)
            .expect("arm gcc-12.2 cell");
    let rv92 = run_cell(Workload::Stream, IsaKind::RiscV, &Personality::gcc92(), SizeClass::Small)
        .expect("rv gcc-9.2 cell");
    let rv122 = run_cell(Workload::Stream, IsaKind::RiscV, &Personality::gcc122(), SizeClass::Small)
        .expect("rv gcc-12.2 cell");

    assert!(
        arm92.path_length > arm122.path_length,
        "gcc 9.2 AArch64 ({}) must exceed 12.2 ({})",
        arm92.path_length,
        arm122.path_length
    );
    // Paper: "the main kernels remain the same for both RISC-V binaries".
    assert_eq!(rv92.path_length, rv122.path_length, "RISC-V STREAM identical across compilers");
    // Paper Figure 1: the ISAs stay within ~10-20% of each other.
    let ratio = rv122.path_length as f64 / arm122.path_length as f64;
    assert!((0.8..=1.25).contains(&ratio), "path-length ratio {ratio}");
    // Paper Table 1: STREAM CPs are nearly identical across ISAs (the
    // chain is the pointer increment / checksum reduction, length ~N).
    let cp_ratio = rv122.critical_path as f64 / arm122.critical_path as f64;
    assert!((0.99..=1.01).contains(&cp_ratio), "CP ratio {cp_ratio}");
}

#[test]
fn per_kernel_breakdown_covers_stream() {
    let cell = run_cell(Workload::Stream, IsaKind::RiscV, &Personality::gcc122(), SizeClass::Test)
        .expect("cell measures");
    let names: Vec<&str> = cell.kernels.iter().map(|(n, _)| n.as_str()).collect();
    for k in ["copy", "scale", "add", "triad"] {
        assert!(names.contains(&k), "missing kernel {k}: {names:?}");
    }
    // add/triad touch three arrays; copy touches two: triad must cost more.
    let get = |k: &str| cell.kernels.iter().find(|(n, _)| n == k).unwrap().1;
    assert!(get("triad") > get("copy"));
}

#[test]
fn windowed_ilp_grows_with_window_size() {
    // Figure 2's universal shape: available ILP increases with window size
    // (more instructions to pick from), for every workload and ISA.
    for w in [Workload::Stream, Workload::MiniBude] {
        for isa in [IsaKind::AArch64, IsaKind::RiscV] {
            let cell = run_cell(w, isa, &Personality::gcc122(), SizeClass::Test)
                .expect("cell measures");
            let ilps: Vec<f64> = cell.windows.iter().map(|&(_, _, ilp)| ilp).collect();
            assert!(
                ilps.windows(2).all(|p| p[1] >= p[0] * 0.8),
                "{} {}: ILP series should broadly grow: {ilps:?}",
                w.name(),
                isacmp::isa_label(isa)
            );
            // Window CP can never exceed the window: ILP >= 1.
            assert!(ilps.iter().all(|&v| v >= 1.0));
        }
    }
}

#[test]
fn scaled_cp_fp_chains_scale_by_fp_latency() {
    // STREAM's longest chain after scaling runs through the checksum's
    // fadd reduction: scaled CP ~ 6x the unit CP (TX2 fadd latency),
    // exactly the paper's Table 1 -> Table 2 STREAM relationship.
    let cell = run_cell(Workload::Stream, IsaKind::RiscV, &Personality::gcc122(), SizeClass::Small)
        .expect("cell measures");
    let factor = cell.scaled_cp as f64 / cell.critical_path as f64;
    assert!(
        (4.0..=6.5).contains(&factor),
        "STREAM scaled/unit CP factor {factor} (expected ~6)"
    );
}

#[test]
fn minisweep_has_high_cross_angle_ilp() {
    // Paper Table 1: minisweep's ILP is in the thousands (independent
    // angle sweeps). At Test size (2 angles, tiny grid) it is merely
    // "high"; check it clearly exceeds serial workloads' ILP.
    let sweep =
        run_cell(Workload::Minisweep, IsaKind::RiscV, &Personality::gcc122(), SizeClass::Small)
            .expect("cell measures");
    assert!(sweep.ilp() > 20.0, "sweep ILP {}", sweep.ilp());
}
