//! Bench-trajectory harness: run a pinned emulation suite, append a
//! schema-versioned entry to `BENCH_history.jsonl`, regenerate
//! `BENCH_baseline.json`, and compare against the previous entry.
//!
//! ```text
//! bench_report [--size test|small|paper] [--runs N] [--threshold PCT]
//!              [--history PATH] [--baseline PATH] [--strict]
//!              [--mips-scale F] [--host-ghz F] [--server-stats PATH]
//!              [--fusion | --fusion-baseline]
//! ```
//!
//! `--fusion` attaches the macro-op fusion pass as an observer to every
//! timed cell; `--fusion-baseline` attaches the analyses the pass drives
//! internally (`PathLength` + `DualCriticalPath`) *without* the fusion
//! machinery. Against a `--fusion-baseline` entry in the same history
//! file, a `--fusion` entry's geomean delta is exactly the increment the
//! fusion machinery itself adds (pending buffer, pair recognition,
//! merging) — the CI gate runs the two back to back and fails on a drop
//! beyond `--threshold`. (A bare run is the wrong baseline for that
//! question: it would charge the fusion pass for the critical-path
//! analysis it shares with every real cell run.)
//!
//! `--server-stats` merges a `load_driver --stats-out` report (jobs
//! served, cache hits, p50/p99 latency) into the history entry as a
//! `server` object and publishes the headline numbers as telemetry
//! gauges (`server_jobs_total`, `cache_hits`, `p99_latency_us`), so the
//! daemon's serving performance rides the same trajectory file as
//! emulation throughput.
//!
//! The suite is pinned: all five workloads x {RISC-V, AArch64} x gcc-12.2
//! x {legacy, block} engines, each cell emulated bare (no observers)
//! `--runs` times with the best (highest-MIPS) run kept. Per cell the
//! report shows rvr-style normalized columns alongside raw wall time:
//! host nanoseconds per guest op, host cycles per guest op (scaled by
//! `--host-ghz`, default 3.0), and slowdown versus the host-native kernel
//! (the same `KernelProgram` run through `kernelgen::interpret`). The
//! geomean of per-cell MIPS over the *block*-engine rows is the headline
//! number compared against the previous history entry; a drop larger than
//! `--threshold` percent (default 20) is a regression. Report-only by
//! default; `--strict` exits 4 on regression. Malformed history entries
//! (wrong schema, missing fields) exit 2 in either mode.
//!
//! `--mips-scale` multiplies every measured MIPS value before recording —
//! a test hook so the regression detector can be exercised without
//! needing a genuinely slower build.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use isacmp::telemetry::Json;
use isacmp::{
    compile, interpret, isa_label, try_execute_engine, Compiled, DualCriticalPath, Engine,
    FusionPass, IsaKind, Observer, PathLength, Personality, SizeClass, Tx2Latency, Workload,
};

/// What rides the retire loop of every timed run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ObserverLoad {
    /// No observers: raw engine throughput (the default suite).
    Bare,
    /// `PathLength` + `DualCriticalPath` — the analyses the fusion pass
    /// drives internally, without the fusion machinery.
    FusionBaseline,
    /// The full macro-op fusion pass.
    Fusion,
}

/// History schema version written and accepted by this binary.
const SCHEMA: u64 = 1;
/// Regression threshold (percent geomean-MIPS drop) when not overridden.
const DEFAULT_THRESHOLD_PCT: f64 = 20.0;
/// Best-of-N runs per cell when `--runs` is not given.
const DEFAULT_RUNS: u32 = 3;
/// Assumed host clock for the cycles-per-op column when `--host-ghz` is
/// not given.
const DEFAULT_HOST_GHZ: f64 = 3.0;

const EXIT_SCHEMA: u8 = 2;
const EXIT_REGRESSION: u8 = 4;

struct Args {
    size: SizeClass,
    runs: u32,
    threshold_pct: f64,
    history: PathBuf,
    baseline: PathBuf,
    strict: bool,
    mips_scale: f64,
    host_ghz: f64,
    server_stats: Option<PathBuf>,
    load: ObserverLoad,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_report [--size test|small|paper] [--runs N] [--threshold PCT]\n\
         \x20                   [--history PATH] [--baseline PATH] [--strict] [--mips-scale F]\n\
         \x20                   [--host-ghz F] [--server-stats PATH] [--fusion | --fusion-baseline]"
    );
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut args = Args {
        size: SizeClass::Small,
        runs: DEFAULT_RUNS,
        threshold_pct: DEFAULT_THRESHOLD_PCT,
        history: PathBuf::from("BENCH_history.jsonl"),
        baseline: PathBuf::from("BENCH_baseline.json"),
        strict: false,
        mips_scale: 1.0,
        host_ghz: DEFAULT_HOST_GHZ,
        server_stats: None,
        load: ObserverLoad::Bare,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| {
            eprintln!("bench_report: {flag} needs a value");
            usage()
        });
        match a.as_str() {
            "--size" => {
                args.size = bench::cli::size_from_name(&value("--size")).unwrap_or_else(|e| {
                    eprintln!("bench_report: {e}");
                    usage()
                })
            }
            "--runs" => {
                args.runs = value("--runs").parse::<u32>().ok().filter(|n| *n > 0).unwrap_or_else(
                    || {
                        eprintln!("bench_report: --runs needs a positive integer");
                        usage()
                    },
                )
            }
            "--threshold" => {
                args.threshold_pct =
                    value("--threshold").parse::<f64>().ok().filter(|t| t.is_finite() && *t >= 0.0)
                        .unwrap_or_else(|| {
                            eprintln!("bench_report: --threshold needs a non-negative percent");
                            usage()
                        })
            }
            "--history" => args.history = PathBuf::from(value("--history")),
            "--baseline" => args.baseline = PathBuf::from(value("--baseline")),
            "--server-stats" => args.server_stats = Some(PathBuf::from(value("--server-stats"))),
            "--strict" => args.strict = true,
            "--fusion" => args.load = ObserverLoad::Fusion,
            "--fusion-baseline" => args.load = ObserverLoad::FusionBaseline,
            "--mips-scale" => {
                args.mips_scale = value("--mips-scale")
                    .parse::<f64>()
                    .ok()
                    .filter(|s| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("bench_report: --mips-scale needs a positive number");
                        usage()
                    })
            }
            "--host-ghz" => {
                args.host_ghz = value("--host-ghz")
                    .parse::<f64>()
                    .ok()
                    .filter(|g| g.is_finite() && *g > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("bench_report: --host-ghz needs a positive number");
                        usage()
                    })
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("bench_report: unknown flag {other:?}");
                usage()
            }
        }
    }
    args
}

/// One measured suite cell: best-of-N bare emulation of a compiled kernel
/// on one retire engine, with rvr-style normalized columns.
struct CellResult {
    workload: &'static str,
    isa: &'static str,
    compiler: &'static str,
    engine: Engine,
    retired: u64,
    wall_ms: f64,
    mips: f64,
    /// Host nanoseconds burned per retired guest instruction.
    host_ns_per_op: f64,
    /// `host_ns_per_op` scaled by the assumed host clock (`--host-ghz`).
    host_cycles_per_op: f64,
    /// Emulated wall over the host-native (`kernelgen::interpret`) wall
    /// for the same kernel; `None` when the native run was too fast to
    /// time at this size class.
    overhead_vs_native: Option<f64>,
}

impl CellResult {
    fn label(&self) -> String {
        format!("{}/{}/{}/{}", self.workload, self.isa, self.compiler, self.engine)
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("cell", Json::Str(self.label())),
            ("engine", Json::Str(self.engine.name().to_string())),
            ("retired", Json::Num(self.retired as f64)),
            ("wall_ms", Json::Num(self.wall_ms)),
            ("mips", Json::Num(self.mips)),
            ("host_ns_per_op", Json::Num(self.host_ns_per_op)),
            ("host_cycles_per_op", Json::Num(self.host_cycles_per_op)),
        ];
        if let Some(x) = self.overhead_vs_native {
            fields.push(("overhead_vs_native", Json::Num(x)));
        }
        Json::obj(fields)
    }
}

#[allow(clippy::too_many_arguments)]
fn measure_cell(
    workload: Workload,
    isa: IsaKind,
    compiled: &Compiled,
    personality: &Personality,
    engine: Engine,
    native_wall: Duration,
    runs: u32,
    mips_scale: f64,
    host_ghz: f64,
    load: ObserverLoad,
) -> Result<CellResult, String> {
    let mut best: Option<CellResult> = None;
    for _ in 0..runs {
        // Observers are built fresh per timed run so no run pays for a
        // previous run's accumulated state.
        let run = match load {
            ObserverLoad::Bare => try_execute_engine(compiled, &mut [], None, None, engine),
            ObserverLoad::FusionBaseline => {
                let mut pl = PathLength::new(&compiled.program.regions);
                let mut cp = DualCriticalPath::new(Tx2Latency);
                let mut obs: [&mut dyn Observer; 2] = [&mut pl, &mut cp];
                try_execute_engine(compiled, &mut obs, None, None, engine)
            }
            ObserverLoad::Fusion => {
                let mut pass = FusionPass::new(isa, &compiled.program.regions);
                let mut obs: [&mut dyn Observer; 1] = [&mut pass];
                try_execute_engine(compiled, &mut obs, None, None, engine)
            }
        };
        let (_, stats) = run
            .map_err(|e| format!("{}/{}/{engine}: {e}", workload.name(), isa_label(isa)))?;
        let mips = stats.host_mips() * mips_scale;
        if best.as_ref().is_none_or(|b| mips > b.mips) {
            let wall_ns = stats.wall.as_secs_f64() * 1e9;
            let host_ns_per_op =
                if stats.retired > 0 { wall_ns / stats.retired as f64 } else { 0.0 };
            let native_s = native_wall.as_secs_f64();
            best = Some(CellResult {
                workload: workload.name(),
                isa: isa_label(isa),
                compiler: personality.label(),
                engine,
                retired: stats.retired,
                wall_ms: stats.wall.as_secs_f64() * 1e3,
                mips,
                host_ns_per_op,
                host_cycles_per_op: host_ns_per_op * host_ghz,
                overhead_vs_native: (native_s > 0.0)
                    .then(|| stats.wall.as_secs_f64() / native_s),
            });
        }
    }
    // `runs` is validated positive at parse time, so this is unreachable —
    // but a typed error beats a panic if that invariant ever slips.
    best.ok_or_else(|| format!("{}/{}: no runs completed", workload.name(), isa_label(isa)))
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 { 0.0 } else { (log_sum / n as f64).exp() }
}

/// A validated history entry (the fields the comparator needs).
struct Entry {
    timestamp: u64,
    size: String,
    geomean_mips: f64,
}

/// Parse and schema-check one history line. Any failure here is a schema
/// error: the file exists but this binary cannot trust its contents.
fn parse_entry(line: &str, lineno: usize) -> Result<Entry, String> {
    let at = |what: &str| format!("history line {lineno}: {what}");
    let j = Json::parse(line).map_err(|e| at(&format!("not valid JSON ({e})")))?;
    let schema = j.get("schema").and_then(Json::as_u64).ok_or_else(|| at("missing schema"))?;
    if schema != SCHEMA {
        return Err(at(&format!("schema {schema} (this binary reads schema {SCHEMA})")));
    }
    let geomean_mips = j
        .get("geomean_mips")
        .and_then(Json::as_f64)
        .filter(|m| m.is_finite() && *m >= 0.0)
        .ok_or_else(|| at("missing or invalid geomean_mips"))?;
    let timestamp =
        j.get("timestamp").and_then(Json::as_u64).ok_or_else(|| at("missing timestamp"))?;
    let size =
        j.get("size").and_then(Json::as_str).ok_or_else(|| at("missing size"))?.to_string();
    Ok(Entry { timestamp, size, geomean_mips })
}

/// Load a `load_driver --stats-out` report and validate the fields this
/// binary republishes. Returns the parsed object for verbatim embedding
/// in the history entry.
fn read_server_stats(path: &std::path::Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let j = Json::parse(&text).map_err(|e| format!("{}: not valid JSON ({e})", path.display()))?;
    for field in ["server_jobs_total", "cache_hits", "p99_latency_us"] {
        j.get(field)
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v >= 0.0)
            .ok_or_else(|| format!("{}: missing or invalid {field}", path.display()))?;
    }
    Ok(j)
}

/// Last entry in the history file, if any. `Ok(None)` when the file does
/// not exist yet (first run); `Err` on any malformed line.
fn read_last_entry(path: &std::path::Path) -> Result<Option<Entry>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let mut last = None;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        last = Some(parse_entry(line, i + 1)?);
    }
    Ok(last)
}

fn main() -> ExitCode {
    let args = parse_args();
    let personality = Personality::gcc122();

    // Validate existing history BEFORE measuring, so a corrupt file fails
    // fast instead of after a long suite run.
    let prev = match read_last_entry(&args.history) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bench_report: schema error: {e}");
            return ExitCode::from(EXIT_SCHEMA);
        }
    };
    // Same fail-fast rule for a requested server-stats merge.
    let server_stats = match args.server_stats.as_deref().map(read_server_stats).transpose() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_report: schema error: {e}");
            return ExitCode::from(EXIT_SCHEMA);
        }
    };

    let suite: Vec<(Workload, IsaKind)> = Workload::ALL
        .iter()
        .flat_map(|w| [(*w, IsaKind::RiscV), (*w, IsaKind::AArch64)])
        .collect();
    const ENGINES: [Engine; 2] = [Engine::Legacy, Engine::Block];

    println!(
        "bench_report: {} cells x best-of-{} @ size {} (host clock {:.1} GHz){}",
        suite.len() * ENGINES.len(),
        args.runs,
        args.size.name(),
        args.host_ghz,
        match args.load {
            ObserverLoad::Bare => "",
            ObserverLoad::FusionBaseline => " [fusion-baseline analyses attached]",
            ObserverLoad::Fusion => " [fusion pass attached]",
        }
    );
    println!(
        "  {:<34} {:>12}  {:>9}  {:>8}  {:>8}  {:>8}  {:>9}",
        "cell", "retired", "wall ms", "MIPS", "ns/op", "cyc/op", "vs native"
    );
    let mut cells = Vec::with_capacity(suite.len() * ENGINES.len());
    for (workload, isa) in suite {
        let prog = workload.build(args.size);
        let compiled = compile(&prog, isa, &personality);
        // Host-native reference: the same kernel run straight through the
        // interpreter, no guest ISA involved.
        let native_start = Instant::now();
        let _ = interpret(&prog, &personality);
        let native_wall = native_start.elapsed();
        for engine in ENGINES {
            match measure_cell(
                workload,
                isa,
                &compiled,
                &personality,
                engine,
                native_wall,
                args.runs,
                args.mips_scale,
                args.host_ghz,
                args.load,
            ) {
                Ok(cell) => {
                    let vs_native = cell
                        .overhead_vs_native
                        .map_or_else(|| "-".to_string(), |x| format!("{x:.1}x"));
                    println!(
                        "  {:<34} {:>12}  {:>9.2}  {:>8.2}  {:>8.1}  {:>8.1}  {:>9}",
                        cell.label(),
                        cell.retired,
                        cell.wall_ms,
                        cell.mips,
                        cell.host_ns_per_op,
                        cell.host_cycles_per_op,
                        vs_native
                    );
                    cells.push(cell);
                }
                Err(e) => {
                    eprintln!("bench_report: cell failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    // The block engine is the default retire loop, so it carries the
    // headline (and trajectory-compared) geomean; the legacy geomean is
    // recorded alongside for A/B context.
    let geomean_mips = geomean(cells.iter().filter(|c| c.engine == Engine::Block).map(|c| c.mips));
    let geomean_mips_legacy =
        geomean(cells.iter().filter(|c| c.engine == Engine::Legacy).map(|c| c.mips));
    let total_retired: u64 = cells.iter().map(|c| c.retired).sum();
    let timestamp =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    println!(
        "  geomean {geomean_mips:.2} MIPS (block) | {geomean_mips_legacy:.2} MIPS (legacy) | \
         {total_retired} instructions retired"
    );

    let mut fields = vec![
        ("schema", Json::Num(SCHEMA as f64)),
        ("timestamp", Json::Num(timestamp as f64)),
        ("size", Json::Str(args.size.name().to_string())),
        ("runs", Json::Num(args.runs as f64)),
        ("host_ghz", Json::Num(args.host_ghz)),
        ("geomean_mips", Json::Num(geomean_mips)),
        ("geomean_mips_legacy", Json::Num(geomean_mips_legacy)),
        ("total_retired", Json::Num(total_retired as f64)),
        ("cells", Json::Arr(cells.iter().map(CellResult::to_json).collect())),
    ];
    match args.load {
        ObserverLoad::Bare => {}
        ObserverLoad::FusionBaseline => fields.push(("fusion_baseline", Json::Bool(true))),
        ObserverLoad::Fusion => fields.push(("fusion", Json::Bool(true))),
    }
    if let Some(stats) = &server_stats {
        // Republish the headline serving numbers as gauges and embed the
        // full load_driver report in this entry.
        let tel = isacmp::telemetry::global();
        for g in ["server_jobs_total", "cache_hits", "p99_latency_us"] {
            if let Some(v) = stats.get(g).and_then(Json::as_f64) {
                tel.gauge_set(g, v);
            }
        }
        // load_driver reports cache_hit_rate as a percentage already.
        let hit_rate = stats
            .get("cache_hit_rate")
            .and_then(Json::as_f64)
            .map(|r| format!(", {r:.1}% cache hits"))
            .unwrap_or_default();
        println!(
            "  server: {} job(s), p99 {:.0} us{hit_rate} (from {})",
            stats.get("server_jobs_total").and_then(Json::as_u64).unwrap_or(0),
            stats.get("p99_latency_us").and_then(Json::as_f64).unwrap_or(0.0),
            args.server_stats.as_ref().unwrap().display(),
        );
        fields.push(("server", stats.clone()));
    }
    let entry = Json::obj(fields);

    // Append to history (fsynced, so the record survives a crash), then
    // atomically regenerate the baseline from this entry.
    let mut history_text = entry.compact();
    history_text.push('\n');
    let appended = isacmp::durable::DurableLog::open(&args.history)
        .and_then(|mut log| log.append(history_text.as_bytes()));
    if let Err(e) = appended {
        eprintln!("bench_report: cannot write {}: {e}", args.history.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) =
        isacmp::durable::durable_write(&args.baseline, format!("{}\n", entry.pretty()).as_bytes())
    {
        eprintln!("bench_report: cannot write {}: {e}", args.baseline.display());
        return ExitCode::FAILURE;
    }
    println!("  history  -> {}", args.history.display());
    println!("  baseline -> {}", args.baseline.display());

    // Trajectory comparison against the previous entry, if there was one.
    match prev {
        None => {
            println!("  trajectory: first entry, nothing to compare against");
            ExitCode::SUCCESS
        }
        Some(prev) => {
            if prev.size != args.size.name() {
                println!(
                    "  trajectory: previous entry used size {} (now {}), skipping comparison",
                    prev.size,
                    args.size.name()
                );
                return ExitCode::SUCCESS;
            }
            let delta_pct = if prev.geomean_mips > 0.0 {
                (geomean_mips - prev.geomean_mips) / prev.geomean_mips * 100.0
            } else {
                0.0
            };
            println!(
                "  trajectory: {:.2} -> {:.2} geomean MIPS ({:+.1}%) vs entry @ t={}",
                prev.geomean_mips, geomean_mips, delta_pct, prev.timestamp
            );
            if delta_pct < -args.threshold_pct {
                eprintln!(
                    "bench_report: REGRESSION: geomean MIPS dropped {:.1}% (> {:.1}% threshold)",
                    -delta_pct, args.threshold_pct
                );
                if args.strict {
                    return ExitCode::from(EXIT_REGRESSION);
                }
                println!("  (report-only mode; pass --strict to fail on regression)");
            }
            ExitCode::SUCCESS
        }
    }
}
