//! Guest-run drivers: fault-injectable execution for the timing models.
//!
//! The pipeline and cache models are trace consumers ([`simcore::Observer`]s)
//! — they have no fetch path of their own, so a fault cannot be injected
//! "into" them directly. [`run_guest`] closes that gap: it drives the model
//! from an [`EmulationCore`] over the caller's executor, with the same
//! optional [`FaultInjector`] hook the plain emulation path uses. The two
//! paths therefore share one set of execution semantics by construction,
//! and the differential test pass verifies exactly that: with injection
//! disabled, a pipeline-driven run and a plain emulation run retire
//! identical streams and agree on final architectural state; with the same
//! armed fault, both degrade to the same error.

use std::time::Duration;

use simcore::{
    CpuState, EmulationCore, Engine, FaultInjector, IsaExecutor, Observer, RunStats, SimError,
};

use crate::cache::CacheModel;
use crate::latency::LatencyModel;
use crate::pipeline::{InOrderCore, OoOCore};

/// Run the guest in `state` to completion on `exec`, feeding every
/// retirement to `observer`, with an optional wall-clock deadline and
/// fault injector — the same knobs as the emulation path. `engine`
/// selects the retire loop; timing models want per-instruction records,
/// so a block-engine run takes the observer slow path (records are still
/// delivered one by one, only decode overhead is amortized).
pub fn run_guest<E: IsaExecutor>(
    observer: &mut dyn Observer,
    exec: E,
    state: &mut CpuState,
    deadline: Option<Duration>,
    injector: Option<Box<dyn FaultInjector>>,
    engine: Engine,
) -> Result<RunStats, SimError> {
    let mut core = EmulationCore::new(exec).with_engine(engine);
    if let Some(d) = deadline {
        core = core.with_deadline(d);
    }
    if let Some(inj) = injector {
        core = core.with_injector(inj);
    }
    core.run(state, &mut [observer])
}

impl<M: LatencyModel> InOrderCore<M> {
    /// Execute the guest in `state` on `exec` and time it on this core,
    /// consulting `injector` before every step (see [`run_guest`]).
    pub fn run_guest<E: IsaExecutor>(
        &mut self,
        exec: E,
        state: &mut CpuState,
        deadline: Option<Duration>,
        injector: Option<Box<dyn FaultInjector>>,
    ) -> Result<RunStats, SimError> {
        run_guest(self, exec, state, deadline, injector, Engine::default())
    }
}

impl<M: LatencyModel> OoOCore<M> {
    /// Execute the guest in `state` on `exec` and time it on this core,
    /// consulting `injector` before every step (see [`run_guest`]).
    pub fn run_guest<E: IsaExecutor>(
        &mut self,
        exec: E,
        state: &mut CpuState,
        deadline: Option<Duration>,
        injector: Option<Box<dyn FaultInjector>>,
    ) -> Result<RunStats, SimError> {
        run_guest(self, exec, state, deadline, injector, Engine::default())
    }
}

impl CacheModel {
    /// Execute the guest in `state` on `exec` and replay its memory
    /// accesses through this cache, consulting `injector` before every
    /// step (see [`run_guest`]).
    pub fn run_guest<E: IsaExecutor>(
        &mut self,
        exec: E,
        state: &mut CpuState,
        deadline: Option<Duration>,
        injector: Option<Box<dyn FaultInjector>>,
    ) -> Result<RunStats, SimError> {
        run_guest(self, exec, state, deadline, injector, Engine::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::latency::Tx2Latency;
    use crate::pipeline::PipelineConfig;
    use simcore::{Campaign, FaultPlan, InstGroup, RetiredInst};

    /// Counting guest: each step loads a counter from memory, increments
    /// it, and exits after `limit` iterations — real memory traffic, so
    /// read faults are visible and the cache model sees accesses.
    struct CountExec {
        limit: u64,
    }

    impl IsaExecutor for CountExec {
        fn step(&self, state: &mut CpuState) -> Result<RetiredInst, SimError> {
            let n = state.mem.read_u64(0x2000)?;
            if n >= self.limit {
                state.exited = Some(0);
            } else {
                state.mem.write_u64(0x2000, n + 1)?;
            }
            let mut ri = RetiredInst::new(state.pc, InstGroup::Load);
            ri.mem_reads.push(0x2000, 8);
            state.pc = state.pc.wrapping_add(4);
            Ok(ri)
        }

        fn disassemble(&self, _word: u32) -> String {
            "count".into()
        }

        fn name(&self) -> &'static str {
            "count"
        }
    }

    fn fresh_state() -> CpuState {
        let mut st = CpuState::new();
        st.pc = 0x1000;
        st.mem.write_u64(0x2000, 0).unwrap();
        st
    }

    #[test]
    fn pipeline_run_matches_plain_emulation() {
        let mut st_plain = fresh_state();
        let plain = EmulationCore::new(CountExec { limit: 100 })
            .run(&mut st_plain, &mut [])
            .unwrap();

        let mut core = OoOCore::new(Tx2Latency, PipelineConfig::tx2());
        let mut st = fresh_state();
        let timed = core.run_guest(CountExec { limit: 100 }, &mut st, None, None).unwrap();
        assert_eq!(timed.retired, plain.retired);
        assert_eq!(core.stats().retired, plain.retired);
        assert_eq!(st.mem.read_u64(0x2000).unwrap(), st_plain.mem.read_u64(0x2000).unwrap());
    }

    #[test]
    fn injected_trap_fails_pipeline_and_emulation_identically() {
        let plan = FaultPlan::parse("trap@7").unwrap();

        let mut st = fresh_state();
        let plain_err = EmulationCore::new(CountExec { limit: 100 })
            .with_injector(Box::new(plan.clone()))
            .run(&mut st, &mut [])
            .unwrap_err();

        let mut core = InOrderCore::new(Tx2Latency, PipelineConfig::a55());
        let mut st2 = fresh_state();
        let piped_err = core
            .run_guest(CountExec { limit: 100 }, &mut st2, None, Some(Box::new(plan)))
            .unwrap_err();
        assert!(matches!(plain_err, SimError::Fault { .. }));
        assert!(matches!(piped_err, SimError::Fault { .. }));
        assert_eq!(st.instret, st2.instret, "both paths stop at the same retirement");
    }

    #[test]
    fn cache_model_accepts_a_campaign() {
        let campaign = Campaign::from_plans(vec![FaultPlan::parse("read@3:0").unwrap()], 0);
        let mut cache = CacheModel::new(CacheConfig::l1d_32k());
        let mut st = fresh_state();
        cache
            .run_guest(CountExec { limit: 50 }, &mut st, None, Some(Box::new(campaign.clone())))
            .unwrap();
        assert_eq!(campaign.fired_count(), 1, "the read flip armed (and fired) once");
        assert!(cache.stats().accesses > 0, "the cache saw the guest's loads");
    }
}
