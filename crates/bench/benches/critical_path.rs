//! Experiment E2 (paper Table 1): unit-cost critical-path analysis —
//! the ideal-CPI / ILP measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isacmp::{compile, execute, CriticalPath, IsaKind, Personality, SizeClass, Workload};

fn bench_critical_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("critical_path");
    group.sample_size(10);
    for w in Workload::ALL {
        for isa in [IsaKind::AArch64, IsaKind::RiscV] {
            let prog = w.build(SizeClass::Test);
            let compiled = compile(&prog, isa, &Personality::gcc122());
            let mut cp = CriticalPath::new();
            execute(&compiled, &mut [&mut cp]);
            let r = cp.result();
            println!(
                "# table1: {} {} CP={} ILP={:.0} runtime={:.4}ms",
                w.name(),
                isacmp::isa_label(isa),
                r.critical_path,
                r.ilp(),
                r.runtime_ms()
            );
            group.bench_with_input(
                BenchmarkId::new(w.name(), isacmp::isa_label(isa)),
                &compiled,
                |b, compiled| {
                    b.iter(|| {
                        let mut cp = CriticalPath::new();
                        execute(compiled, &mut [&mut cp]);
                        cp.result().critical_path
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_critical_path);
criterion_main!(benches);
