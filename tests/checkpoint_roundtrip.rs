//! Property tests for the binary checkpoint format ("ICKP"): arbitrary
//! machine snapshots must survive a serialize→parse round trip
//! bit-identically, truncation at any offset must raise a typed error,
//! and any single-bit corruption of the image must be detected or must
//! visibly change the decoded snapshot — silent acceptance of damaged
//! data is the one outcome the format must never produce. Unlike the
//! trace format (whose meta-JSON header is unchecksummed), every
//! checkpoint byte is either structural (magic, version, section
//! framing) or covered by a per-section FNV-1a checksum, so the
//! detection guarantee here starts at byte zero — except the header's
//! reserved u16 (bytes 6–7), which the parser ignores by design.

use proptest::prelude::*;
use simcore::{CampaignState, Checkpoint, CheckpointError, CpuState, TraceMark};

const PAGE_SIZE: usize = 4096;

/// An arbitrary but self-consistent snapshot, built through the same
/// `capture` path the emulator uses so the embedded state hash matches
/// the architectural fields (which `restore_state` cross-checks).
#[allow(clippy::type_complexity)]
fn checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        (
            any::<u64>(),                                   // pc
            any::<u64>(),                                   // instret
            any::<u8>(),                                    // nzcv
            proptest::option::of(any::<i64>()),             // exited
            any::<u64>(),                                   // brk
            proptest::collection::vec(any::<u8>(), 0..64),  // output
        ),
        proptest::collection::vec(any::<u64>(), 32..33),    // x
        proptest::collection::vec(any::<u64>(), 32..33),    // f
        // Sparse memory: (page-spacing, fill byte) pairs; cumulative
        // spacing keeps page addresses strictly ascending.
        proptest::collection::vec((1u64..8, any::<u8>()), 0..4),
        proptest::collection::vec((any::<u64>(), 0u32..64), 0..3), // read faults
        proptest::option::of((
            any::<u64>(),                                   // campaign seed
            any::<u64>(),                                   // fired_count
            proptest::collection::vec(
                (proptest::collection::vec(0u8..26, 1..25), any::<bool>()),
                0..4,
            ),
        )),
        (any::<u64>(), any::<u64>(), any::<u64>()),         // trace mark
    )
        .prop_map(|(core, x, f, pages, faults, campaign, trace)| {
            let (pc, instret, nzcv, exited, brk, output) = core;
            let mut st = CpuState::new();
            st.pc = pc;
            st.instret = instret;
            st.nzcv = nzcv;
            st.exited = exited;
            st.brk = brk;
            st.output = output;
            st.x.copy_from_slice(&x);
            st.f.copy_from_slice(&f);
            let mut page = 0u64;
            for (spacing, fill) in pages {
                page += spacing;
                let addr = page * PAGE_SIZE as u64;
                st.mem
                    .write_bytes(addr, &[fill; 16])
                    .expect("plain store cannot fault");
            }
            for (nth, bit) in faults {
                st.mem.arm_read_fault(nth, bit);
            }
            let mut ckpt = Checkpoint::capture(&st, None, TraceMark {
                records: trace.0,
                blocks: trace.1,
                bytes: trace.2,
            });
            // Campaign state is attached after capture: the plans here are
            // arbitrary strings exercising the length-prefixed encoding,
            // not parseable fault specs (rearm is covered elsewhere).
            ckpt.campaign = campaign.map(|(seed, fired_count, plans)| CampaignState {
                seed,
                fired_count,
                plans: plans
                    .into_iter()
                    .map(|(letters, fired)| {
                        let spec: String =
                            letters.iter().map(|&l| (b'a' + l) as char).collect();
                        (spec, fired)
                    })
                    .collect(),
            });
            ckpt
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serialize_parse_round_trip_is_identical(c in checkpoint()) {
        let bytes = c.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("clean image must parse");
        prop_assert_eq!(&back, &c);
        // Re-serialization is byte-identical: the format has exactly one
        // encoding per snapshot, which is what makes resumed runs
        // comparable byte-for-byte.
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error(c in checkpoint(), cut_seed in any::<u64>()) {
        let bytes = c.to_bytes();
        let cut = (cut_seed as usize) % bytes.len();
        match Checkpoint::from_bytes(&bytes[..cut]) {
            Err(
                CheckpointError::Truncated
                | CheckpointError::BadMagic
                | CheckpointError::MissingSection(_)
                | CheckpointError::SectionChecksum(_)
                | CheckpointError::BadData(_),
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error for cut at {}: {:?}", cut, other),
            Ok(_) => prop_assert!(false, "truncation at byte {} of {} was silently accepted", cut, bytes.len()),
        }
    }

    #[test]
    fn single_bit_corruption_never_goes_unnoticed(
        c in checkpoint(),
        flip_bit in 0u8..8,
        pos_seed in any::<u64>(),
    ) {
        let clean = c.to_bytes();
        let mut pos = (pos_seed as usize) % clean.len();
        // Bytes 6–7 are the header's reserved u16: the parser ignores them
        // for forward compatibility, so they carry no detection guarantee.
        if pos == 6 || pos == 7 {
            pos = 8;
        }
        let mut bad = clean.clone();
        bad[pos] ^= 1 << flip_bit;
        match Checkpoint::from_bytes(&bad) {
            Err(_) => {} // typed detection: magic, version, framing, or checksum
            Ok(decoded) => prop_assert!(
                decoded != c,
                "flipping bit {} of byte {} was silently absorbed", flip_bit, pos
            ),
        }
    }

    #[test]
    fn register_tampering_fails_restore_with_hash_mismatch(
        c in checkpoint(),
        reg in 0usize..32,
        delta in 1u64..u64::MAX,
    ) {
        let mut tampered = Checkpoint::from_bytes(&c.to_bytes()).expect("clean image must parse");
        tampered.x[reg] = tampered.x[reg].wrapping_add(delta);
        match tampered.restore_state() {
            Err(CheckpointError::StateHashMismatch { expected, actual }) => {
                prop_assert_eq!(expected, c.state_hash);
                prop_assert!(actual != expected);
            }
            other => prop_assert!(
                false,
                "tampered register state must fail the hash cross-check, got {:?}",
                other.map(|_| "Ok(CpuState)")
            ),
        }
    }
}

#[test]
fn corruption_of_every_image_byte_is_caught_or_visible() {
    // Exhaustive sweep over a small snapshot: every byte, lowest bit
    // flipped. Every byte of a checkpoint is structural or checksummed,
    // so no flip may be silently absorbed into an equal decode.
    let mut st = CpuState::new();
    st.pc = 0x1440;
    st.instret = 98_304;
    st.x[5] = 0xDEAD_BEEF;
    st.f[3] = 2.5f64.to_bits();
    st.output = b"sweep".to_vec();
    st.mem.write_u64(0x1000, 0x1122_3344_5566_7788).unwrap();
    st.mem.arm_read_fault(10, 3);
    let clean = Checkpoint::capture(
        &st,
        None,
        TraceMark { records: 4096, blocks: 1, bytes: 70_000 },
    )
    .to_bytes();
    let reference = Checkpoint::from_bytes(&clean).unwrap();
    for pos in 0..clean.len() {
        if pos == 6 || pos == 7 {
            continue; // reserved header u16, deliberately ignored by the parser
        }
        let mut bad = clean.clone();
        bad[pos] ^= 1;
        if let Ok(decoded) = Checkpoint::from_bytes(&bad) {
            assert_ne!(decoded, reference, "flip at byte {pos} was silently absorbed");
        }
    }
}

/// Checkpointing the block engine mid-run: the decoded-block cache is
/// host-side state and is deliberately NOT serialized, so a restore into
/// a fresh executor starts cache-cold. The resumed run must rebuild the
/// cache by re-decoding and still finish byte-identical (full checkpoint
/// image, not just the state hash) to an uninterrupted block-engine run.
#[test]
fn block_engine_restore_rebuilds_cache_cold_and_finishes_byte_identical() {
    use isacmp::{
        compile, EmulationCore, Engine, IsaKind, Personality, RiscVExecutor, SizeClass,
        StopReason, Workload,
    };

    let compiled =
        compile(&Workload::Stream.build(SizeClass::Small), IsaKind::RiscV, &Personality::gcc122());
    let mark = TraceMark { records: 0, blocks: 0, bytes: 0 };

    // Reference: one uninterrupted block-engine run.
    let mut ref_st = CpuState::new();
    compiled.program.load(&mut ref_st).expect("program loads");
    EmulationCore::new(RiscVExecutor::new())
        .with_engine(Engine::Block)
        .run(&mut ref_st, &mut [])
        .expect("reference run completes");
    let ref_image = Checkpoint::capture(&ref_st, None, mark).to_bytes();

    // Interrupted leg: pause at the first checkpoint boundary, snapshot,
    // and throw the warm executor (and its block cache) away.
    let mut st = CpuState::new();
    compiled.program.load(&mut st).expect("program loads");
    let stats = EmulationCore::new(RiscVExecutor::new())
        .with_engine(Engine::Block)
        .with_checkpoint_every(400_000)
        .run(&mut st, &mut [])
        .expect("run reaches the checkpoint boundary");
    assert_eq!(stats.stop, StopReason::CheckpointDue, "snapshot must interrupt mid-run");
    assert!(st.exited.is_none(), "the guest must not have finished yet");
    let snapshot = Checkpoint::capture(&st, None, mark).to_bytes();

    // Restore into a brand-new state and executor: the block cache is
    // rebuilt from the restored memory image alone.
    let mut resumed = Checkpoint::from_bytes(&snapshot)
        .expect("snapshot parses")
        .restore_state()
        .expect("snapshot restores");
    EmulationCore::new(RiscVExecutor::new())
        .with_engine(Engine::Block)
        .run(&mut resumed, &mut [])
        .expect("resumed run completes");

    assert_eq!(
        Checkpoint::capture(&resumed, None, mark).to_bytes(),
        ref_image,
        "cold-cache resume must finish byte-identical to the uninterrupted run"
    );
}
