//! Experiment E7 (paper §8 Future Work): trace-driven pipeline timing with
//! realistic out-of-order resources.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isacmp::{run_pipeline, IsaKind, Personality, PipelineConfig, SizeClass, Workload};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let p = Personality::gcc122();
    for w in [Workload::Stream, Workload::Lbm] {
        for isa in [IsaKind::AArch64, IsaKind::RiscV] {
            let stats = run_pipeline(w, isa, &p, SizeClass::Test, PipelineConfig::tx2(), true);
            println!(
                "# pipeline: {} {} OoO(TX2) cycles={} ipc={:.2}",
                w.name(),
                isacmp::isa_label(isa),
                stats.cycles,
                stats.ipc()
            );
            group.bench_with_input(
                BenchmarkId::new(w.name(), isacmp::isa_label(isa)),
                &(w, isa),
                |b, &(w, isa)| {
                    b.iter(|| {
                        run_pipeline(w, isa, &p, SizeClass::Test, PipelineConfig::tx2(), true)
                            .cycles
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
