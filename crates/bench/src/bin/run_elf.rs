//! Run a statically linked ELF produced by `make_tables elves` (or any
//! simple static ELF in the supported subset) through the emulation core
//! and print the paper's metrics — the equivalent of the artifact's
//! "run all relevant (pre-compiled) binaries" step.
//!
//! ```sh
//! cargo run --release -p bench --bin make_tables -- elves --size small
//! cargo run --release -p bench --bin run_elf -- results/bin/stream-gcc-12.2-riscv64.elf
//! ```
//!
//! Options:
//! - `--metrics <path>`: write a structured [`telemetry::RunReport`]
//!   (stage spans, host MIPS, instruction-group mix, hot regions, and
//!   per-observer overhead attribution from one calibration run per
//!   observer) as JSON.
//! - `--trace-out <path>`: capture the retired-instruction stream to a
//!   compact binary `.trace` file (inspect with the `trace_tool` bin,
//!   replay through `make_tables --trace-dir`).
//! - `--spans-out <path>`: write the run's span tree as flamegraph-ready
//!   collapsed stacks (`stack;substack <self-us>` lines).
//! - `--sample[=PERIOD_US]`: attach the hot-block sampling profiler
//!   (default period 250 µs): a background thread attributes host wall
//!   time to guest PCs, printed as a top-N hot-block table, embedded in
//!   `--metrics`, and appended to `--spans-out` as `sampler;...` stacks.
//! - `--events <path>`: drain the structured event log (watchdog trips,
//!   fault injections, checkpoints, ...) to a JSON Lines file.
//! - `--progress[=N]`: heartbeat line on stderr every N retirements
//!   (default 50M); also honoured via `ISACMP_PROGRESS=N`.
//! - `--deadline-secs <s>`: wall-clock watchdog; a trip exits 124 and,
//!   when `--checkpoint` is set, leaves a resumable snapshot behind.
//! - `--inject <fault>`: deterministic fault injection (`trap@N`,
//!   `fetch@N[:MASK]`, `read@N[:BIT]`).
//! - `--campaign <seed>:<n>`: seeded multi-fault campaign (`n` sampled
//!   faults); mutually exclusive with `--inject`. The fired count is
//!   reported after the run.
//! - `--checkpoint <path>`: crash-safe snapshotting. The snapshot is
//!   written durably (tmp + fsync + rename) on SIGINT/SIGTERM (exit 130)
//!   and on a watchdog trip; add `--checkpoint-every <N>` to also write
//!   one every ~N retirements (rounded up to the retire loop's masked
//!   check interval, so snapshots land on trace-block boundaries).
//! - `--engine <legacy|block>`: retire loop (default `block`, the
//!   pre-decoded basic-block engine; byte-identical outputs either way).
//! - `--restore <path>`: resume from a snapshot. Mutually exclusive with
//!   `--inject`/`--campaign` — the armed fault schedule, fired flags and
//!   partial-trace position all come from the checkpoint. A restored run
//!   finishes with the same final state hash, trace bytes and analysis
//!   tables as one that was never interrupted.
//!
//! Exits with the guest's exit code (124 on a watchdog trip, 130 when
//! interrupted by SIGINT/SIGTERM).

use bench::cli;
use isacmp::telemetry::sampler::Sampler;
use isacmp::{
    shutdown, AArch64Executor, Campaign, CampaignSpec, Checkpoint, CpuState, DualCriticalPath,
    EmulationCore, Engine, FaultInjector, FaultPlan, IsaKind, Observer, PathLength, PhaseNanos, Program,
    ProfilingObserver, RiscVExecutor, RunReport, RunStats, SimError, StopReason, TraceMark,
    TraceMeta, TraceReader, TraceWriter, Tx2Latency, WindowedCp, DEFAULT_CAMPAIGN_WINDOW,
    DEFAULT_FAULT_SEED,
};
use isacmp::SampleSnapshot;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Publish stride for `--sample`: one `(pc, instret)` publish every 2^8 =
/// 256 retirements — ~70 µs apart at 3.7 MIPS, well under the sampling
/// period, for a few atomic stores per thousand instructions.
const SAMPLE_LOG2_STRIDE: u32 = 8;

/// Exit code for a watchdog trip, matching the `timeout(1)` convention.
const EXIT_TIMEOUT: i32 = 124;

/// The file-backed tracer variant the checkpoint plumbing handles.
type FileTracer = TraceWriter<std::io::BufWriter<std::fs::File>>;

struct Args {
    elf: String,
    metrics: Option<String>,
    trace_out: Option<String>,
    spans_out: Option<String>,
    sample: Option<Duration>,
    events: Option<String>,
    progress: Option<u64>,
    deadline: Option<Duration>,
    inject: Option<FaultPlan>,
    campaign: Option<Campaign>,
    checkpoint: Option<String>,
    checkpoint_every: Option<u64>,
    restore: Option<String>,
    engine: Engine,
}

fn parse_args() -> Result<Args, String> {
    let mut elf = None;
    let mut metrics = None;
    let mut trace_out = None;
    let mut spans_out = None;
    let mut sample = None;
    let mut events = None;
    let mut progress = None;
    let mut deadline = None;
    let mut inject = None;
    let mut campaign = None;
    let mut checkpoint = None;
    let mut checkpoint_every = None;
    let mut restore = None;
    let mut engine = Engine::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--metrics" {
            metrics = Some(it.next().ok_or("--metrics needs a path")?);
        } else if a == "--sample" {
            sample = Some(Sampler::DEFAULT_PERIOD);
        } else if let Some(us) = a.strip_prefix("--sample=") {
            let us: u64 = us.parse().map_err(|_| format!("bad --sample period {us:?}"))?;
            sample = Some(Duration::from_micros(us));
        } else if a == "--events" {
            events = Some(it.next().ok_or("--events needs a path")?);
        } else if a == "--trace-out" {
            trace_out = Some(it.next().ok_or("--trace-out needs a path")?);
        } else if a == "--spans-out" {
            spans_out = Some(it.next().ok_or("--spans-out needs a path")?);
        } else if a == "--progress" {
            progress = Some(1);
        } else if let Some(n) = a.strip_prefix("--progress=") {
            progress = Some(n.parse::<u64>().map_err(|_| format!("bad --progress value {n:?}"))?);
        } else if a == "--deadline-secs" {
            let s = it.next().ok_or("--deadline-secs needs a value")?;
            deadline = Some(cli::deadline_from_secs(&s)?);
        } else if a == "--inject" {
            let s = it.next().ok_or("--inject needs a fault spec")?;
            inject = Some(FaultPlan::parse(&s)?);
        } else if a == "--campaign" {
            let s = it.next().ok_or("--campaign needs <seed>:<n-faults>")?;
            let spec = CampaignSpec::parse(&s)?;
            campaign = Some(Campaign::sample(spec.seed, spec.n_faults, DEFAULT_CAMPAIGN_WINDOW));
        } else if a == "--checkpoint" {
            checkpoint = Some(it.next().ok_or("--checkpoint needs a path")?);
        } else if a == "--checkpoint-every" {
            let n = it.next().ok_or("--checkpoint-every needs a retirement count")?;
            checkpoint_every =
                Some(n.parse::<u64>().map_err(|_| format!("bad --checkpoint-every value {n:?}"))?);
        } else if a == "--restore" {
            restore = Some(it.next().ok_or("--restore needs a checkpoint path")?);
        } else if a == "--engine" {
            let s = it.next().ok_or("--engine needs legacy|block")?;
            engine = s.parse()?;
        } else if a.starts_with("--") {
            return Err(format!("unknown flag {a:?}"));
        } else if elf.is_none() {
            elf = Some(a);
        } else {
            return Err(format!("unexpected argument {a:?}"));
        }
    }
    if inject.is_some() && campaign.is_some() {
        return Err("--inject and --campaign are mutually exclusive".into());
    }
    if checkpoint_every.is_some() && checkpoint.is_none() {
        return Err("--checkpoint-every needs --checkpoint <path>".into());
    }
    if restore.is_some() && (inject.is_some() || campaign.is_some()) {
        return Err(
            "--restore is mutually exclusive with --inject/--campaign \
             (the armed fault schedule comes from the checkpoint)"
                .into(),
        );
    }
    Ok(Args {
        elf: elf.ok_or(
            "usage: run_elf <binary.elf> [--metrics out.json] [--trace-out out.trace] \
             [--spans-out out.folded] [--sample[=PERIOD_US]] [--events out.jsonl] \
             [--progress[=N]] [--deadline-secs s] [--inject fault] [--campaign seed:n] \
             [--checkpoint out.ckpt [--checkpoint-every N]] [--restore in.ckpt] \
             [--engine legacy|block]",
        )?,
        metrics,
        trace_out,
        spans_out,
        sample,
        events,
        progress,
        deadline,
        inject,
        campaign,
        checkpoint,
        checkpoint_every,
        restore,
        engine,
    })
}

/// Drive one run segment: from the state's current position to guest
/// exit, the next checkpoint boundary, an error, or an interruption.
#[allow(clippy::too_many_arguments)]
fn run_segment(
    isa: IsaKind,
    st: &mut CpuState,
    obs: &mut [&mut dyn Observer],
    deadline: Option<Duration>,
    injector: Option<Box<dyn FaultInjector>>,
    sample: Option<Arc<SampleSnapshot>>,
    checkpoint_every: Option<u64>,
    heed_shutdown: bool,
    engine: Engine,
) -> Result<RunStats, SimError> {
    fn core_for<E: isacmp::IsaExecutor>(
        exec: E,
        deadline: Option<Duration>,
        injector: Option<Box<dyn FaultInjector>>,
        sample: Option<Arc<SampleSnapshot>>,
        checkpoint_every: Option<u64>,
        heed_shutdown: bool,
        engine: Engine,
    ) -> EmulationCore<E> {
        let mut core = EmulationCore::new(exec).with_engine(engine);
        if let Some(d) = deadline {
            core = core.with_deadline(d);
        }
        if let Some(inj) = injector {
            core = core.with_injector(inj);
        }
        if let Some(s) = sample {
            core = core.with_sampling(s, SAMPLE_LOG2_STRIDE);
        }
        if let Some(n) = checkpoint_every {
            core = core.with_checkpoint_every(n);
        }
        if heed_shutdown {
            core = core.with_shutdown();
        }
        core
    }
    match isa {
        IsaKind::RiscV => core_for(
            RiscVExecutor::new(),
            deadline,
            injector,
            sample,
            checkpoint_every,
            heed_shutdown,
            engine,
        )
        .run(st, obs),
        IsaKind::AArch64 => core_for(
            AArch64Executor::new(),
            deadline,
            injector,
            sample,
            checkpoint_every,
            heed_shutdown,
            engine,
        )
        .run(st, obs),
    }
}

/// Durably snapshot the paused machine (plus the armed campaign and the
/// partial-trace position) to `path`. The tracer, if any, is flushed and
/// fdatasync'd first so the bytes the mark points at survive a SIGKILL.
fn write_checkpoint(
    path: &str,
    st: &CpuState,
    campaign: Option<&Campaign>,
    tracer: Option<&mut FileTracer>,
) -> Result<Checkpoint, String> {
    let mark = match tracer {
        Some(t) => {
            t.sync_all().map_err(|e| format!("cannot sync trace file: {e}"))?;
            TraceMark { records: t.records(), blocks: t.blocks(), bytes: t.bytes_written() }
        }
        None => TraceMark::default(),
    };
    let ckpt = Checkpoint::capture(st, campaign, mark);
    let bytes = ckpt
        .write(std::path::Path::new(path))
        .map_err(|e| format!("cannot write checkpoint {path}: {e}"))?;
    let tel = isacmp::telemetry::global();
    tel.counter_add("checkpoint_writes", 1);
    tel.counter_add("checkpoint_bytes", bytes);
    tel.event(
        "checkpoint_written",
        &[
            ("path", isacmp::telemetry::Json::Str(path.to_string())),
            ("instret", isacmp::telemetry::Json::Num(st.instret as f64)),
            ("bytes", isacmp::telemetry::Json::Num(bytes as f64)),
        ],
    );
    eprintln!("checkpoint: {path} at {} retirements ({bytes} bytes)", st.instret);
    Ok(ckpt)
}

fn report_fired(campaign: Option<&Campaign>) {
    if let Some(c) = campaign {
        eprintln!("campaign: {} of {} scheduled fault(s) fired", c.fired_count(), c.len());
        isacmp::telemetry::global().counter_add("faults_fired", c.fired_count());
    }
}

fn sum_phases(a: PhaseNanos, b: PhaseNanos) -> PhaseNanos {
    PhaseNanos {
        fetch_ns: a.fetch_ns + b.fetch_ns,
        decode_ns: a.decode_ns + b.decode_ns,
        execute_ns: a.execute_ns + b.execute_ns,
        observe_ns: a.observe_ns + b.observe_ns,
    }
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if let Some(n) = args.progress {
        // The emulation core reads this when constructed.
        std::env::set_var("ISACMP_PROGRESS", n.to_string());
    }
    let path = &args.elf;
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let program = Program::from_elf(&bytes).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });

    let tel = isacmp::telemetry::global();
    let mut pl = PathLength::new(&program.regions);
    let mut cp = DualCriticalPath::new(Tx2Latency);
    let mut wcp = WindowedCp::paper();
    let mut profile = ProfilingObserver::new(&program.regions);

    // Ad-hoc ELF runs are not matrix cells, so the provenance header names
    // the file rather than a (workload, compiler, size) triple.
    let trace_meta = TraceMeta {
        workload: std::path::Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "elf".into()),
        compiler: "elf".into(),
        isa: isacmp::isa_label(program.isa).to_string(),
        size: "elf".into(),
        regions: program.regions.clone(),
    };

    let checkpointing = args.checkpoint.is_some();
    let mut st = CpuState::new();
    let mut tracer: Option<FileTracer> = None;
    // The armed fault schedule this process drives. A fresh clone is boxed
    // into the core each segment; clones share the fired counter, and
    // per-plan fired flags are reconstructed deterministically at each
    // checkpoint boundary, so pausing never re-arms a fired fault.
    let mut campaign: Option<Campaign> = None;
    // Single-plan injection outside checkpointing keeps its direct path;
    // with checkpointing on, the plan rides in a one-plan campaign so the
    // snapshot can carry it.
    let mut solo_inject: Option<FaultPlan> = None;

    if let Some(ckpt_path) = &args.restore {
        let ckpt = Checkpoint::read(std::path::Path::new(ckpt_path)).unwrap_or_else(|e| {
            eprintln!("cannot read checkpoint {ckpt_path}: {e}");
            std::process::exit(1);
        });
        st = ckpt.restore_state().unwrap_or_else(|e| {
            eprintln!("cannot restore state from {ckpt_path}: {e}");
            std::process::exit(1);
        });
        campaign = ckpt.campaign.as_ref().map(|cs| {
            cs.rearm().unwrap_or_else(|e| {
                eprintln!("cannot re-arm campaign from {ckpt_path}: {e}");
                std::process::exit(1);
            })
        });
        if ckpt.trace.records > 0 {
            // The trace prefix *is* the serialized observer state: replay
            // it through the fresh analysis observers, then truncate to the
            // marked block boundary and keep appending.
            let trace_path = args.trace_out.as_deref().unwrap_or_else(|| {
                eprintln!(
                    "--restore of a traced checkpoint needs --trace-out <path> \
                     (the partial capture to continue)"
                );
                std::process::exit(2);
            });
            let _span = tel.enter("restore_replay");
            let mut reader =
                TraceReader::open(std::path::Path::new(trace_path)).unwrap_or_else(|e| {
                    eprintln!("cannot open trace {trace_path}: {e}");
                    std::process::exit(1);
                });
            {
                let mut obs: Vec<&mut dyn Observer> =
                    vec![&mut pl, &mut cp, &mut wcp, &mut profile];
                let mut fed = 0u64;
                while fed < ckpt.trace.records {
                    match reader.next() {
                        Some(Ok(ri)) => {
                            for o in obs.iter_mut() {
                                o.on_retire(&ri);
                            }
                            fed += 1;
                        }
                        Some(Err(e)) => {
                            eprintln!("cannot replay trace prefix from {trace_path}: {e}");
                            std::process::exit(1);
                        }
                        None => {
                            eprintln!(
                                "trace {trace_path} ends after {fed} records; \
                                 checkpoint expects {}",
                                ckpt.trace.records
                            );
                            std::process::exit(1);
                        }
                    }
                }
            }
            tracer = Some(
                TraceWriter::resume(
                    std::path::Path::new(trace_path),
                    ckpt.trace.records,
                    ckpt.trace.blocks,
                    ckpt.trace.bytes,
                )
                .unwrap_or_else(|e| {
                    eprintln!("cannot resume trace {trace_path}: {e}");
                    std::process::exit(1);
                }),
            );
        } else if args.trace_out.is_some() {
            eprintln!(
                "checkpoint {ckpt_path} was taken without a trace; a capture started now \
                 would only cover the tail of the run — drop --trace-out or restart"
            );
            std::process::exit(2);
        } else {
            eprintln!(
                "note: checkpoint has no trace, so analysis observers restart at zero; \
                 the final machine state is still exact"
            );
        }
        tel.counter_add("checkpoint_restores", 1);
        tel.event(
            "checkpoint_restored",
            &[
                ("path", isacmp::telemetry::Json::Str(ckpt_path.clone())),
                ("instret", isacmp::telemetry::Json::Num(ckpt.instret as f64)),
                ("trace_records", isacmp::telemetry::Json::Num(ckpt.trace.records as f64)),
            ],
        );
        eprintln!("restored: {ckpt_path} at {} retirements", st.instret);
        if let Some(c) = &campaign {
            eprintln!("{} (restored, {} already fired)", c.describe(), c.fired_count());
            tel.counter_add("faults_scheduled", c.len() as u64);
        }
    } else {
        program.load(&mut st).unwrap_or_else(|e| {
            eprintln!("cannot load {path}: {e}");
            std::process::exit(1);
        });
        tracer = args.trace_out.as_ref().map(|p| {
            TraceWriter::create(std::path::Path::new(p), &trace_meta).unwrap_or_else(|e| {
                eprintln!("cannot create trace file {p}: {e}");
                std::process::exit(1);
            })
        });
        if let Some(plan) = &args.inject {
            eprintln!("fault injection armed: {}", plan.describe());
            if checkpointing {
                campaign = Some(Campaign::from_plans(vec![plan.clone()], DEFAULT_FAULT_SEED));
            } else {
                solo_inject = Some(plan.clone());
            }
        }
        if let Some(c) = &args.campaign {
            eprintln!("{}", c.describe());
            for plan in c.plans() {
                eprintln!("  {}", plan.spec());
            }
            tel.counter_add("faults_scheduled", c.len() as u64);
            campaign = Some(c.clone());
        }
    }

    if checkpointing {
        shutdown::install();
    }

    // Start the sampler before the guest so the whole run is covered; it
    // stops (and its thread joins) immediately after, so the calibration
    // runs below are never sampled.
    let snapshot = args.sample.map(|_| Arc::new(SampleSnapshot::new()));
    let sampler = match (&snapshot, args.sample) {
        (Some(snap), Some(period)) => Some(Sampler::start(Arc::clone(snap), period)),
        _ => None,
    };

    let run_start = Instant::now();
    let mut total_wall = Duration::ZERO;
    let mut total_phases = PhaseNanos::default();
    let stats = loop {
        // The watchdog budget spans the whole run, not one segment.
        let remaining = args.deadline.map(|d| d.saturating_sub(run_start.elapsed()));
        let seg = {
            let _span = tel.enter("emulate");
            let injector: Option<Box<dyn FaultInjector>> = match (&campaign, &solo_inject) {
                (Some(c), _) => Some(Box::new(c.clone())),
                (None, Some(p)) => Some(Box::new(p.clone())),
                (None, None) => None,
            };
            let mut obs: Vec<&mut dyn Observer> = vec![&mut pl, &mut cp, &mut wcp, &mut profile];
            if let Some(t) = tracer.as_mut() {
                obs.push(t);
            }
            run_segment(
                program.isa,
                &mut st,
                &mut obs,
                remaining,
                injector,
                snapshot.clone(),
                args.checkpoint_every,
                checkpointing,
                args.engine,
            )
        };
        match seg {
            Ok(s) if s.stop == StopReason::CheckpointDue => {
                total_wall += s.wall;
                total_phases = sum_phases(total_phases, s.phases);
                let ckpt_path =
                    args.checkpoint.as_deref().expect("--checkpoint-every requires --checkpoint");
                match write_checkpoint(ckpt_path, &st, campaign.as_ref(), tracer.as_mut()) {
                    Ok(ckpt) => {
                        // Continue with the snapshot's own re-armed schedule
                        // — exactly what a restore would run — so a paused
                        // run and a resumed one stay in lockstep.
                        if let Some(cs) = &ckpt.campaign {
                            campaign = Some(cs.rearm().unwrap_or_else(|e| {
                                eprintln!("internal: checkpointed campaign does not re-arm: {e}");
                                std::process::exit(1);
                            }));
                        }
                    }
                    Err(msg) => {
                        eprintln!("{msg}");
                        std::process::exit(1);
                    }
                }
            }
            Ok(mut s) => {
                s.wall += total_wall;
                s.phases = sum_phases(total_phases, s.phases);
                break s;
            }
            Err(err) => {
                report_fired(campaign.as_ref());
                let interrupted = matches!(err, SimError::Interrupted { .. });
                if interrupted || err.is_watchdog() {
                    if let Some(ckpt_path) = args.checkpoint.as_deref() {
                        if let Err(msg) =
                            write_checkpoint(ckpt_path, &st, campaign.as_ref(), tracer.as_mut())
                        {
                            eprintln!("{msg}");
                        }
                    }
                }
                if interrupted {
                    tel.event(
                        "run_interrupted",
                        &[
                            ("elf", isacmp::telemetry::Json::Str(path.clone())),
                            ("instret", isacmp::telemetry::Json::Num(st.instret as f64)),
                        ],
                    );
                    eprintln!("{err} (pc={:#x})", st.pc);
                    std::process::exit(shutdown::EXIT_INTERRUPTED);
                }
                eprintln!(
                    "guest fault: {err} (pc={:#x}, after {} retired instructions)",
                    st.pc, st.instret
                );
                if err.is_watchdog() {
                    std::process::exit(EXIT_TIMEOUT);
                }
                std::process::exit(1);
            }
        }
    };
    let hot_blocks = sampler.map(|s| s.stop().attribute(&program.regions));
    report_fired(campaign.as_ref());
    tel.counter_add("instructions_retired", stats.retired);

    println!("{path}");
    println!("  isa          : {}", program.isa);
    println!("  exit code    : {}", stats.exit_code);
    println!("  path length  : {}", pl.total());
    let r = cp.unit();
    println!("  critical path: {}  (ILP {:.0}, 2GHz runtime {:.4} ms)", r.critical_path, r.ilp(), r.runtime_ms());
    let s = cp.scaled();
    println!("  scaled CP    : {}  (ILP {:.0}, 2GHz runtime {:.4} ms)", s.critical_path, s.ilp(), s.runtime_ms());
    println!("  per kernel   :");
    for (name, count) in pl.by_kernel() {
        println!("    {name:<14} {count}");
    }
    println!("  windowed ILP :");
    for w in wcp.stats() {
        println!("    window {:<6} mean CP {:>10.2}  mean ILP {:>8.2}", w.size, w.mean_cp(), w.mean_ilp());
    }
    if !st.output.is_empty() {
        println!("  guest output : {:?}", st.output_string());
    }
    if let Some(hb) = &hot_blocks {
        for line in hb.table(10).lines() {
            println!("  {line}");
        }
    }

    if let (Some(t), Some(p)) = (tracer.take(), &args.trace_out) {
        match t.finish(st.state_hash(), stats.wall) {
            Ok(s) => println!(
                "  trace        : {p} ({} records, {} blocks, {} bytes)",
                s.records, s.blocks, s.bytes
            ),
            Err(e) => {
                eprintln!("cannot finalize trace file {p}: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut report = RunReport::new(&format!("run_elf {path}"))
        .with_run(stats.wall, stats.retired, Some(stats.exit_code as u64))
        .with_profile(&profile)
        .with_phases(stats.phases);
    if let Some(hb) = &hot_blocks {
        report = report.with_sampler(hb);
    }

    if args.metrics.is_some() {
        // Calibration: time a bare observer-free run to establish raw
        // emulation speed, then one run per observer alone to attribute
        // the overhead observer by observer. All calibration runs are
        // deliberately watchdog- and fault-free.
        let _span = tel.enter("calibrate");
        let bare_run = |obs: &mut Vec<&mut dyn Observer>| {
            let mut st = CpuState::new();
            program.load(&mut st).ok()?;
            run_segment(program.isa, &mut st, obs, None, None, None, None, false, args.engine)
                .ok()
                .map(|s| s.wall)
        };
        let bare = bare_run(&mut vec![]);
        if let Some(bare_wall) = bare.filter(|w| !w.is_zero()) {
            let pct_over = |wall: Duration| {
                ((wall.as_secs_f64() / bare_wall.as_secs_f64() - 1.0) * 100.0).max(0.0)
            };
            report.observer_overhead_pct = Some(pct_over(stats.wall));
            let solo: [(&str, &mut dyn Observer); 5] = [
                ("path_length", &mut PathLength::new(&program.regions)),
                ("critical_path", &mut DualCriticalPath::new(Tx2Latency)),
                ("windowed_cp", &mut WindowedCp::paper()),
                ("profile", &mut ProfilingObserver::new(&program.regions)),
                // The trace observer encodes into a sink: observer-side
                // cost only, no filesystem noise.
                ("trace_writer", &mut TraceWriter::sink(&trace_meta)),
            ];
            for (name, obs) in solo {
                if let Some(wall) = bare_run(&mut vec![obs]) {
                    report.observer_overheads.push((name.to_string(), pct_over(wall)));
                }
            }
        }
    }
    let report = report.finish_from(tel);
    if let Some(spans_path) = &args.spans_out {
        // Host spans and sampled guest time share one collapsed file: the
        // sampler frames live under their own `sampler;` root, so a
        // flamegraph renders both side by side.
        let mut collapsed = report.to_collapsed();
        if let Some(hb) = &hot_blocks {
            collapsed.push_str(&hb.to_collapsed());
        }
        std::fs::write(spans_path, collapsed).unwrap_or_else(|e| {
            eprintln!("cannot write {spans_path}: {e}");
            std::process::exit(1);
        });
        println!("  spans        : collapsed stacks written to {spans_path}");
    }
    if let Some(events_path) = &args.events {
        match tel.events().drain_to_file(std::path::Path::new(events_path)) {
            Ok(0) => println!("  events       : none emitted"),
            Ok(n) => println!("  events       : {n} written to {events_path}"),
            Err(e) => {
                eprintln!("cannot write {events_path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(metrics_path) = &args.metrics {
        report.write_file(std::path::Path::new(metrics_path)).unwrap_or_else(|e| {
            eprintln!("cannot write {metrics_path}: {e}");
            std::process::exit(1);
        });
        println!("  metrics      : written to {metrics_path}");
    }
    println!("  run          : {}", report.summary());

    std::process::exit(stats.exit_code as i32);
}
