//! Dump a disassembled execution trace of a workload — the equivalent of
//! SimEng's instruction trace output, used for the paper's listing-level
//! analysis and for debugging the code generators.
//!
//! ```sh
//! cargo run --release -p bench --bin trace -- stream riscv gcc-12.2 40
//! cargo run --release -p bench --bin trace -- lbm aarch64 gcc-9.2 100 collision
//! ```
//!
//! Arguments: `<workload> <isa> <compiler> [max-instructions] [region]`.
//! Pass `--metrics <path>` to also write a telemetry report (compile/run
//! spans, retired count, host MIPS) as JSON.

use isacmp::{
    compile, AArch64Executor, CpuState, EmulationCore, IsaExecutor, IsaKind, Observer,
    Personality, RetiredInst, SizeClass, Workload,
};

struct Tracer<'a> {
    max: u64,
    emitted: u64,
    region: Option<(u64, u64)>,
    region_name: Option<String>,
    disasm: &'a dyn Fn(u32) -> String,
    text: Vec<(u64, Vec<u8>)>,
}

impl Tracer<'_> {
    fn word_at(&self, pc: u64) -> Option<u32> {
        for (addr, bytes) in &self.text {
            if pc >= *addr && (pc + 4) <= addr + bytes.len() as u64 {
                let off = (pc - addr) as usize;
                let word: [u8; 4] = bytes.get(off..off + 4)?.try_into().ok()?;
                return Some(u32::from_le_bytes(word));
            }
        }
        None
    }
}

impl Observer for Tracer<'_> {
    fn on_retire(&mut self, ri: &RetiredInst) {
        if self.emitted >= self.max {
            return;
        }
        if let Some((start, end)) = self.region {
            if ri.pc < start || ri.pc >= end {
                return;
            }
        }
        let text = self
            .word_at(ri.pc)
            .map(|w| (self.disasm)(w))
            .unwrap_or_else(|| "<unmapped>".into());
        let srcs: Vec<String> = ri.srcs.iter().map(|r| r.to_string()).collect();
        let dsts: Vec<String> = ri.dsts.iter().map(|r| r.to_string()).collect();
        let mut mem = String::new();
        for a in ri.mem_reads.iter() {
            mem.push_str(&format!(" R[{:#x};{}]", a.addr, a.size));
        }
        for a in ri.mem_writes.iter() {
            mem.push_str(&format!(" W[{:#x};{}]", a.addr, a.size));
        }
        println!(
            "{:>10}  {:#08x}  {:<36} {:<10} use[{}] def[{}]{}",
            self.emitted,
            ri.pc,
            text,
            format!("{:?}", ri.group),
            srcs.join(","),
            dsts.join(","),
            mem
        );
        self.emitted += 1;
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_path = args
        .iter()
        .position(|a| a == "--metrics")
        .map(|i| {
            let pair: Vec<String> = args.drain(i..(i + 2).min(args.len())).collect();
            pair.get(1).cloned().unwrap_or_else(|| {
                eprintln!("--metrics needs a path");
                std::process::exit(2);
            })
        });
    if args.len() < 3 {
        eprintln!("usage: trace <workload> <riscv|aarch64> <gcc-9.2|gcc-12.2> [max] [region]");
        std::process::exit(2);
    }
    let workload = Workload::ALL
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(&args[0]))
        .unwrap_or_else(|| {
            eprintln!("unknown workload {}", args[0]);
            std::process::exit(2);
        });
    let isa = match args[1].as_str() {
        "riscv" | "rv64g" => IsaKind::RiscV,
        "aarch64" | "arm" => IsaKind::AArch64,
        other => {
            eprintln!("unknown isa {other}");
            std::process::exit(2);
        }
    };
    let personality = match args[2].as_str() {
        "gcc-9.2" | "9.2" => Personality::gcc92(),
        "gcc-12.2" | "12.2" => Personality::gcc122(),
        other => {
            eprintln!("unknown compiler {other}");
            std::process::exit(2);
        }
    };
    let max: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50);
    let region_name = args.get(4).cloned();

    let tel = isacmp::telemetry::global();
    let run_start = std::time::Instant::now();
    let compiled = tel.time("compile", || compile(&workload.build(SizeClass::Test), isa, &personality));
    let region = region_name.as_ref().map(|name| {
        let r = compiled
            .program
            .regions
            .iter()
            .find(|r| &r.name == name)
            .unwrap_or_else(|| {
                eprintln!("region {name} not found; available:");
                for r in &compiled.program.regions {
                    eprintln!("  {}", r.name);
                }
                std::process::exit(2);
            });
        (r.start, r.end)
    });

    let text: Vec<(u64, Vec<u8>)> = compiled
        .program
        .sections
        .iter()
        .map(|s| (s.addr, s.bytes.clone()))
        .collect();
    let rv = |w: u32| isacmp::RiscVExecutor::new().disassemble(w);
    let arm = |w: u32| AArch64Executor::new().disassemble(w);
    let disasm: &dyn Fn(u32) -> String = match isa {
        IsaKind::RiscV => &rv,
        IsaKind::AArch64 => &arm,
    };
    let mut tracer = Tracer {
        max,
        emitted: 0,
        region,
        region_name,
        disasm,
        text,
    };
    if let Some(name) = &tracer.region_name {
        eprintln!("tracing region {name} of {} / {}", workload.name(), isacmp::isa_label(isa));
    }

    let mut st = CpuState::new();
    compiled.program.load(&mut st).unwrap_or_else(|e| {
        eprintln!("cannot load {} image: {e}", workload.name());
        std::process::exit(1);
    });
    let stats = {
        let _span = tel.enter("emulate");
        let mut obs: Vec<&mut dyn Observer> = vec![&mut tracer];
        match isa {
            IsaKind::RiscV => {
                EmulationCore::new(isacmp::RiscVExecutor::new()).run(&mut st, &mut obs)
            }
            IsaKind::AArch64 => EmulationCore::new(AArch64Executor::new()).run(&mut st, &mut obs),
        }
        .unwrap_or_else(|e| {
            eprintln!(
                "guest fault: {e} (pc={:#x}, after {} retired instructions)",
                st.pc, st.instret
            );
            std::process::exit(1);
        })
    };

    if let Some(path) = metrics_path {
        let report = isacmp::RunReport::new(&format!(
            "trace {} {} {}",
            workload.name(),
            isacmp::isa_label(isa),
            personality.label()
        ))
        .with_run(run_start.elapsed(), stats.retired, Some(stats.exit_code as u64))
        .finish_from(tel);
        report.write_file(std::path::Path::new(&path)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("telemetry report written to {path} ({})", report.summary());
    }
}
