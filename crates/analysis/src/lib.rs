#![warn(missing_docs)]
//! The paper's four analyses over the retirement stream.
//!
//! * [`PathLength`] — dynamic instruction counts, total and per named
//!   kernel region (Figure 1, Table 1 "Path Length" rows);
//! * [`CriticalPath`] — longest read-after-write dependency chain through
//!   registers and memory, unit cost per instruction (Table 1 "CP"/"ILP");
//! * [`CriticalPath::scaled`] — the same chain weighted by execution
//!   latencies, loads/stores unscaled per the paper's store-forwarding
//!   assumption (Table 2);
//! * [`WindowedCp`] — critical path within a sliding window over the
//!   execution (window sizes 4..2000, 50 % slide), modelling a finite ROB
//!   (Figure 2).
//!
//! All analyses implement [`simcore::Observer`] and stream: memory use is
//! bounded by the touched data set (critical path) or the largest window
//! (windowed), never by trace length. Each analysis (and the per-cell
//! [`CellAnalyses`] bundle) can also be pumped from any
//! [`simcore::RetireSource`] via its `consume` method — a live emulation
//! run and a replayed on-disk trace produce identical results.
//!
//! ```
//! use analysis::CriticalPath;
//! use simcore::{InstGroup, Observer, RegId, RegSet, RetiredInst};
//!
//! // A three-instruction serial chain has CP 3 and ILP 1.
//! let mut cp = CriticalPath::new();
//! for _ in 0..3 {
//!     let mut ri = RetiredInst::new(0, InstGroup::FpAdd);
//!     ri.srcs = RegSet::of(&[RegId::Fp(0)]);
//!     ri.dsts = RegSet::of(&[RegId::Fp(0)]);
//!     cp.on_retire(&ri);
//! }
//! let r = cp.result();
//! assert_eq!(r.critical_path, 3);
//! assert_eq!(r.ilp(), 1.0);
//! ```

pub mod cell;
pub mod critical_path;
pub mod depdist;
pub mod instmix;
pub mod path_length;
pub mod tables;
pub mod windowed;

pub use cell::CellAnalyses;
pub use critical_path::{CpResult, CriticalPath, DualCriticalPath};
pub use depdist::{DepDistance, DIST_BUCKETS};
pub use instmix::{CpComposition, InstMix};
pub use path_length::PathLength;
pub use tables::*;
pub use windowed::{WindowStats, WindowedCp, PAPER_WINDOW_SIZES};

/// The paper's assumed clock rate for runtime estimates (2 GHz).
pub const CLOCK_GHZ: f64 = 2.0;

/// Convert a cycle count to milliseconds at the paper's 2 GHz clock.
pub fn runtime_ms(cycles: u64) -> f64 {
    cycles as f64 / (CLOCK_GHZ * 1e6)
}
