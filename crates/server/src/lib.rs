//! `isacmpd`: an always-on experiment server for the ISA-comparison
//! matrix, plus the client pieces that talk to it.
//!
//! The daemon accepts matrix / campaign / trace-analysis job submissions
//! over a std-only TCP protocol ([`proto`]: 4-byte big-endian length
//! prefix + `telemetry::json` payload), runs cells on the process-wide
//! work-stealing shard pool (`isacmp::pool::global`), and serves results
//! from a provenance-keyed single-flight cell cache ([`cache`]) so
//! identical cells are computed exactly once no matter how many clients
//! ask. Jobs stream per-cell progress frames, survive daemon restarts via
//! per-job cell journals (the `make_tables --resume` machinery), and are
//! bounded by admission control (typed `busy` rejection) and per-cell
//! deadlines reusing the emulation watchdog.
//!
//! Layering:
//! - [`proto`] — framing, typed errors, client/server messages, job spec
//! - [`cache`] — the provenance-keyed single-flight result cache
//! - [`server`] — listener, connection handling, the job runner
//! - [`client`] — a small blocking client used by `load_driver`, the CI
//!   smoke tests, and anything else that wants results without running
//!   emulation locally

pub mod cache;
pub mod client;
pub mod proto;
pub mod server;

pub use cache::{CellKey, Claim, ResultCache};
pub use client::{Client, JobOutcome};
pub use proto::{
    ClientMsg, FrameReader, JobKind, JobSpec, ProtoError, ReadOutcome, ServerMsg, StatsBody,
    MAX_FRAME, PROTO_VERSION,
};
pub use server::{Config, Server};
