//! Lattice Boltzmann d2q9-bgk, after the University of Bristol HPC course
//! code the paper uses.
//!
//! Structure-of-arrays layout: one array per speed (0 = rest, 1..4 = E N W S,
//! 5..8 = NE NW SW SE), on a halo-padded `(nx+2) x (ny+2)` grid. Each
//! timestep runs the classic kernel sequence:
//!
//! * `accelerate` — add the driving-flow weights along the second row from
//!   the top, guarded so populations stay positive;
//! * `propagate` — pull streaming: `tmp_s(x,y) = cells_s(x-ex, y-ey)`
//!   (split into three 3-speed kernels to bound register pressure, all
//!   reported under the `propagate` region);
//! * `collision` — BGK relaxation toward the local equilibrium, with
//!   bounce-back rebound on obstacle cells (moments kernel + one relax
//!   kernel per speed, all reported under the `collision` region).
//!
//! Substitution note (DESIGN.md §2): the reference code uses periodic wrap,
//! which is not affine; we use a halo ring of obstacle cells (bounce-back
//! walls) instead. The per-cell arithmetic — the object of the paper's
//! instruction-level comparison — is identical.

use crate::SizeClass;
use kernelgen::*;

/// LBM parameters.
#[derive(Debug, Clone, Copy)]
pub struct LbmParams {
    /// Interior cells in x.
    pub nx: u64,
    /// Interior cells in y.
    pub ny: u64,
    /// Timesteps.
    pub iters: u64,
}

impl LbmParams {
    /// Parameters per size class (Paper = 128x128, 100 iterations).
    pub fn for_size(size: SizeClass) -> Self {
        match size {
            SizeClass::Test => LbmParams { nx: 8, ny: 8, iters: 2 },
            SizeClass::Small => LbmParams { nx: 24, ny: 24, iters: 8 },
            SizeClass::Paper => LbmParams { nx: 128, ny: 128, iters: 100 },
        }
    }
}

/// d2q9 lattice vectors, indexed by speed.
const EX: [i64; 9] = [0, 1, 0, -1, 0, 1, -1, -1, 1];
/// d2q9 lattice vectors, indexed by speed.
const EY: [i64; 9] = [0, 0, 1, 0, -1, 1, 1, -1, -1];
/// Opposite speed (for bounce-back).
const OPP: [usize; 9] = [0, 3, 4, 1, 2, 7, 8, 5, 6];
/// Lattice weights.
const W: [f64; 9] = [
    4.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];

/// Build LBM at the given size class.
pub fn build(size: SizeClass) -> KernelProgram {
    build_with(LbmParams::for_size(size))
}

/// Build LBM with explicit parameters.
pub fn build_with(params: LbmParams) -> KernelProgram {
    let LbmParams { nx, ny, iters } = params;
    let w = nx + 2; // padded width
    let h = ny + 2; // padded height
    let len = w * h;
    let density0 = 0.1;
    let accel = 0.005;
    let omega = 1.4;

    let mut p = KernelProgram::new("LBM");

    // Initial state: equilibrium at rest everywhere (including halo).
    let mut cells = Vec::with_capacity(9);
    for (s, ws) in W.iter().enumerate() {
        cells.push(p.array(
            &format!("cells{s}"),
            len,
            ArrayInit::Fill(ws * density0),
        ));
    }
    let mut tmp = Vec::with_capacity(9);
    for s in 0..9 {
        tmp.push(p.array(&format!("tmp{s}"), len, ArrayInit::Zero));
    }
    // Obstacle mask: 1.0 on the halo ring (bounce-back walls), 0.0 inside.
    let mut obst_vals = vec![0.0f64; len as usize];
    for y in 0..h {
        for x in 0..w {
            if x == 0 || y == 0 || x == w - 1 || y == h - 1 {
                obst_vals[(y * w + x) as usize] = 1.0;
            }
        }
    }
    let obst = p.array("obstacles", len, ArrayInit::Values(obst_vals));

    let center = (w + 1) as i64; // offset of interior origin (x=1, y=1)
    let interior = |arr: ArrayId, dx: i64, dy: i64| Access {
        arr,
        strides: vec![w as i64, 1],
        offset: center + dy * w as i64 + dx,
    };
    let row2 = |arr: ArrayId| Access {
        arr,
        strides: vec![1],
        offset: ((ny - 1) * w + 1) as i64, // second row from the top, interior
    };

    // --- accelerate_flow -------------------------------------------------
    // Add w1/w2-weighted momentum along +x on the second row from the top,
    // guarded so the donor populations stay positive.
    let w1a = density0 * accel / 9.0;
    let w2a = density0 * accel / 36.0;
    let guard = |donor: Expr, amount: f64, value: Expr, fallback: Expr| Expr::Select {
        cmp: CmpOp::Lt,
        a: Box::new(Expr::Const(amount)),
        b: Box::new(donor),
        t: Box::new(value),
        e: Box::new(fallback),
    };
    let mut acc_body = Vec::new();
    // notobst = 1 - obstacles (halo ring never accelerates).
    let notobst = TempId(0);
    acc_body.push(Stmt::Def {
        temp: notobst,
        expr: Expr::sub(Expr::Const(1.0), Expr::Load(row2(obst))),
    });
    for (gain, lose, amount) in [(1usize, 3usize, w1a), (5, 7, w2a), (8, 6, w2a)] {
        // gain += amount, lose -= amount when lose > amount (and not wall).
        let delta = Expr::mul(Expr::Temp(notobst), Expr::Const(amount));
        acc_body.push(Stmt::Store {
            access: row2(cells[gain]),
            value: guard(
                Expr::Load(row2(cells[lose])),
                amount,
                Expr::add(Expr::Load(row2(cells[gain])), delta.clone()),
                Expr::Load(row2(cells[gain])),
            ),
        });
        acc_body.push(Stmt::Store {
            access: row2(cells[lose]),
            value: guard(
                Expr::Load(row2(cells[lose])),
                amount,
                Expr::sub(Expr::Load(row2(cells[lose])), delta),
                Expr::Load(row2(cells[lose])),
            ),
        });
    }
    p.kernel(Kernel { name: "accelerate".into(), dims: vec![nx], accs: vec![], body: acc_body });

    // --- propagate (pull streaming), split into 3-speed groups ------------
    for group in [[0usize, 1, 2], [3, 4, 5], [6, 7, 8]] {
        let body = group
            .iter()
            .map(|&s| Stmt::Store {
                access: interior(tmp[s], 0, 0),
                value: Expr::Load(interior(cells[s], -EX[s], -EY[s])),
            })
            .collect();
        p.kernel(Kernel { name: "propagate".into(), dims: vec![ny, nx], accs: vec![], body });
    }

    // --- collision: moments then per-speed BGK relax + rebound ------------
    let density = p.array("density", len, ArrayInit::Zero);
    let ux = p.array("u_x", len, ArrayInit::Zero);
    let uy = p.array("u_y", len, ArrayInit::Zero);
    {
        let t_d = TempId(0);
        let sum = |speeds: &[usize]| -> Expr {
            speeds
                .iter()
                .map(|&s| Expr::Load(interior(tmp[s], 0, 0)))
                .reduce(Expr::add)
                .unwrap()
        };
        let body = vec![
            Stmt::Def { temp: t_d, expr: sum(&[0, 1, 2, 3, 4, 5, 6, 7, 8]) },
            Stmt::Store { access: interior(density, 0, 0), value: Expr::Temp(t_d) },
            Stmt::Store {
                access: interior(ux, 0, 0),
                value: Expr::div(
                    Expr::sub(sum(&[1, 5, 8]), sum(&[3, 6, 7])),
                    Expr::Temp(t_d),
                ),
            },
            Stmt::Store {
                access: interior(uy, 0, 0),
                value: Expr::div(
                    Expr::sub(sum(&[2, 5, 6]), sum(&[4, 7, 8])),
                    Expr::Temp(t_d),
                ),
            },
        ];
        p.kernel(Kernel { name: "collision".into(), dims: vec![ny, nx], accs: vec![], body });
    }
    for s in 0..9usize {
        // u . e_s
        let ue = match (EX[s], EY[s]) {
            (0, 0) => Expr::Const(0.0),
            (ex, 0) => Expr::mul(Expr::Const(ex as f64), Expr::Load(interior(ux, 0, 0))),
            (0, ey) => Expr::mul(Expr::Const(ey as f64), Expr::Load(interior(uy, 0, 0))),
            (ex, ey) => Expr::add(
                Expr::mul(Expr::Const(ex as f64), Expr::Load(interior(ux, 0, 0))),
                Expr::mul(Expr::Const(ey as f64), Expr::Load(interior(uy, 0, 0))),
            ),
        };
        let usq = Expr::add(
            Expr::mul(Expr::Load(interior(ux, 0, 0)), Expr::Load(interior(ux, 0, 0))),
            Expr::mul(Expr::Load(interior(uy, 0, 0)), Expr::Load(interior(uy, 0, 0))),
        );
        let t_ue = TempId(0);
        // equilibrium: w_s * rho * (1 + 3 ue + 4.5 ue^2 - 1.5 usq)
        let d_equ = Expr::mul(
            Expr::mul(Expr::Const(W[s]), Expr::Load(interior(density, 0, 0))),
            Expr::add(
                Expr::mul_add(
                    Expr::Const(4.5),
                    Expr::mul(Expr::Temp(t_ue), Expr::Temp(t_ue)),
                    Expr::mul_add(Expr::Const(3.0), Expr::Temp(t_ue), Expr::Const(1.0)),
                ),
                Expr::mul(Expr::Const(-1.5), usq),
            ),
        );
        let relaxed = Expr::mul_add(
            Expr::Const(omega),
            Expr::sub(d_equ, Expr::Load(interior(tmp[s], 0, 0))),
            Expr::Load(interior(tmp[s], 0, 0)),
        );
        // rebound on obstacles: take the opposite incoming population.
        let body = vec![
            Stmt::Def { temp: t_ue, expr: ue },
            Stmt::Store {
                access: interior(cells[s], 0, 0),
                value: Expr::Select {
                    cmp: CmpOp::Lt,
                    a: Box::new(Expr::Load(interior(obst, 0, 0))),
                    b: Box::new(Expr::Const(0.5)),
                    t: Box::new(relaxed),
                    e: Box::new(Expr::Load(interior(tmp[OPP[s]], 0, 0))),
                },
            },
        ];
        p.kernel(Kernel { name: "collision".into(), dims: vec![ny, nx], accs: vec![], body });
    }

    // --- av_velocity: the benchmark's per-step observable -----------------
    // tot_u += sqrt(u_x^2 + u_y^2) over fluid cells; the running value is
    // stored each step (the role av_vels[tt] plays in the reference code).
    let av = p.array("av_vels", 1, ArrayInit::Zero);
    {
        let speed = Expr::sqrt(Expr::add(
            Expr::mul(Expr::Load(interior(ux, 0, 0)), Expr::Load(interior(ux, 0, 0))),
            Expr::mul(Expr::Load(interior(uy, 0, 0)), Expr::Load(interior(uy, 0, 0))),
        ));
        let fluid_speed = Expr::mul(
            speed,
            Expr::sub(Expr::Const(1.0), Expr::Load(interior(obst, 0, 0))),
        );
        p.kernel(Kernel {
            name: "av_velocity".into(),
            dims: vec![ny, nx],
            accs: vec![AccDecl { init: 0.0, store_to: Some((av, 0)) }],
            body: vec![Stmt::Accum { acc: AccId(0), op: BinOp::Add, value: fluid_speed }],
        });
    }

    p.repeat = iters;
    p.checksum_arrays = cells;
    p.checksum_arrays.push(av);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conserves_roughly_and_stays_finite() {
        let p = build_with(LbmParams { nx: 8, ny: 8, iters: 4 });
        let r = kernelgen::interpret(&p, &Personality::gcc122());
        assert!(r.checksum.is_finite());
        // Interior mass should stay near the initial interior+halo total.
        assert!(r.checksum > 0.0);
        for s in 0..9 {
            for v in &r.arrays[&format!("cells{s}")] {
                assert!(v.is_finite(), "speed {s} went non-finite");
            }
        }
    }

    #[test]
    fn acceleration_creates_flow() {
        let p = build_with(LbmParams { nx: 8, ny: 8, iters: 4 });
        let r = kernelgen::interpret(&p, &Personality::gcc122());
        // Eastward populations should now exceed westward ones overall.
        let east: f64 = r.arrays["cells1"].iter().sum();
        let west: f64 = r.arrays["cells3"].iter().sum();
        assert!(east > west, "flow should drift east: {east} vs {west}");
    }

    #[test]
    fn region_names() {
        let p = build(SizeClass::Test);
        let mut names: Vec<&str> = p.kernels.iter().map(|k| k.name.as_str()).collect();
        names.dedup();
        assert_eq!(names, vec!["accelerate", "propagate", "collision", "av_velocity"]);
    }
}
