//! Typed per-cell errors and the options that control fault tolerance.
//!
//! One experiment cell can fail in several distinct ways — at compile
//! time, at load time, during emulation, by panicking, by producing a
//! wrong checksum, by tripping a watchdog, or by being interrupted by a
//! shutdown signal — and the matrix must survive all of them: a failed
//! cell becomes an `ERR(<kind>)` entry in a partial
//! [`ResultMatrix`](analysis::ResultMatrix) instead of killing the other
//! nineteen cells (an *interrupted* cell is the one exception: it is not
//! recorded at all, so a resumed run re-attempts it).

use std::time::Duration;

use analysis::CellFailure;
use simcore::{Campaign, Engine, FaultPlan, SimError, DEFAULT_FAULT_SEED};

/// Why one (workload, compiler, ISA) cell failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CellError {
    /// The workload builder or compiler panicked.
    Compile {
        /// Panic payload (or other diagnostic).
        msg: String,
    },
    /// The compiled program image could not be loaded into guest memory.
    Load(SimError),
    /// The guest faulted during emulation (decode error, unmapped read,
    /// forced trap, ...). `instret` is how far the guest got.
    Sim {
        /// The underlying simulation error.
        err: SimError,
        /// Instructions retired when the error was raised.
        instret: u64,
    },
    /// The emulator or an observer panicked mid-run (caught, not fatal).
    Panic {
        /// Panic payload.
        msg: String,
    },
    /// The guest ran to completion but its checksum disagrees with the
    /// reference interpreter — silent corruption, caught.
    ChecksumMismatch {
        /// Reference checksum bits (`f64::to_bits`).
        expected_bits: u64,
        /// Measured checksum bits.
        got_bits: u64,
    },
    /// A watchdog fired: instruction budget or wall-clock deadline.
    Timeout {
        /// The watchdog error ([`SimError::is_watchdog`] is true).
        err: SimError,
        /// Instructions retired when the watchdog fired.
        instret: u64,
    },
    /// The guest exited with a non-zero status.
    NonZeroExit {
        /// The guest's exit code.
        code: i64,
    },
    /// The run was cut short by SIGINT/SIGTERM (graceful shutdown). Not a
    /// measurement failure: the cell is neither recorded nor journaled, so
    /// a resumed matrix simply re-runs it.
    Interrupted {
        /// Instructions retired when the shutdown flag was observed.
        instret: u64,
    },
}

impl CellError {
    /// Short failure class, rendered as `ERR(<kind>)` in tables.
    pub fn kind(&self) -> &'static str {
        match self {
            CellError::Compile { .. } => "compile",
            CellError::Load(_) => "load",
            CellError::Sim { .. } => "sim",
            CellError::Panic { .. } => "panic",
            CellError::ChecksumMismatch { .. } => "checksum",
            CellError::Timeout { .. } => "timeout",
            CellError::NonZeroExit { .. } => "exit",
            CellError::Interrupted { .. } => "interrupted",
        }
    }

    /// Whether retrying the cell could plausibly help. Runtime upsets
    /// (faults, panics, corruption) are retried; deterministic failures
    /// (compile, load, watchdogs, exit status) are not — they would only
    /// burn the same wall time again.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            CellError::Sim { .. } | CellError::Panic { .. } | CellError::ChecksumMismatch { .. }
        )
    }

    /// Convert to the serializable failure record carried by a partial
    /// [`analysis::ResultMatrix`].
    pub fn to_failure(
        &self,
        workload: &str,
        compiler: &str,
        isa: &str,
        retries: u64,
    ) -> CellFailure {
        CellFailure {
            workload: workload.to_string(),
            compiler: compiler.to_string(),
            isa: isa.to_string(),
            kind: self.kind().to_string(),
            detail: self.to_string(),
            retries,
        }
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Compile { msg } => write!(f, "compile failed: {msg}"),
            CellError::Load(e) => write!(f, "program load failed: {e}"),
            CellError::Sim { err, instret } => {
                write!(f, "guest fault after {instret} retirements: {err}")
            }
            CellError::Panic { msg } => write!(f, "panic during emulation: {msg}"),
            CellError::ChecksumMismatch { expected_bits, got_bits } => write!(
                f,
                "checksum mismatch: expected {:#018x}, got {:#018x}",
                expected_bits, got_bits
            ),
            CellError::Timeout { err, instret } => {
                write!(f, "watchdog after {instret} retirements: {err}")
            }
            CellError::NonZeroExit { code } => write!(f, "guest exited with code {code}"),
            CellError::Interrupted { instret } => {
                write!(f, "interrupted by signal after {instret} retirements")
            }
        }
    }
}

impl std::error::Error for CellError {}

/// Render a caught panic payload as text.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Hard cap on per-cell retries, whatever the caller asks for.
pub const MAX_CELL_RETRIES: u32 = 3;

/// Fault-tolerance knobs for a single cell run.
#[derive(Debug, Clone, Default)]
pub struct CellOptions {
    /// Wall-clock watchdog for the emulation phase.
    pub deadline: Option<Duration>,
    /// Retries for [`CellError::retryable`] failures (clamped to
    /// [`MAX_CELL_RETRIES`]).
    pub retries: u32,
    /// Deterministic one-shot fault to inject into the run.
    pub fault: Option<FaultPlan>,
    /// Seeded multi-fault schedule to inject into the run (may coexist
    /// with `fault`; the schedules merge).
    pub campaign: Option<Campaign>,
    /// Trace cache directory: replay a matching capture instead of
    /// emulating, and capture one on a live run. Ignored (no capture, no
    /// replay) while a fault or campaign is armed — an injected-fault run
    /// is not a reusable measurement.
    pub trace_dir: Option<std::path::PathBuf>,
    /// Honor the process shutdown flag ([`simcore::shutdown`]): abort the
    /// retire loop at the next masked boundary with
    /// [`CellError::Interrupted`] instead of running to completion.
    pub heed_shutdown: bool,
    /// Directory for resumable watchdog snapshots: when a cell trips its
    /// deadline, its machine state is checkpointed here (one `.ckpt` per
    /// cell label) before the `ERR(timeout)` is recorded.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Retire loop to drive ([`Engine::Block`] by default; see
    /// [`simcore::Engine`] for when a block run degrades to legacy).
    pub engine: Engine,
    /// Run the macro-op fusion pass alongside the cell analyses and carry
    /// its report in the cell (`ExperimentCell::fused`). A fused cell is
    /// a distinct scenario-axis point: it caches and journals under a
    /// different provenance key than the unfused cell, but shares the
    /// same captured trace (the retired stream itself is fusion-free).
    pub fusion: bool,
}

impl CellOptions {
    /// Retries actually granted (caller's ask, capped).
    pub fn effective_retries(&self) -> u32 {
        self.retries.min(MAX_CELL_RETRIES)
    }

    /// Merge the one-shot fault and the campaign schedule into one
    /// freshly-armed injector. A new `Campaign` (fresh fired state) is
    /// built per call, so every retry of a cell deterministically
    /// re-injects the same schedule from scratch.
    pub fn armed_campaign(&self) -> Option<Campaign> {
        let mut plans: Vec<FaultPlan> =
            self.campaign.as_ref().map(|c| c.plans().to_vec()).unwrap_or_default();
        if let Some(f) = &self.fault {
            plans.push(f.clone());
        }
        if plans.is_empty() {
            return None;
        }
        let seed = self.campaign.as_ref().map(Campaign::seed).unwrap_or(DEFAULT_FAULT_SEED);
        Some(Campaign::from_plans(plans, seed))
    }
}

/// Selects cells of the experiment matrix, e.g. for targeted fault
/// injection. Fields compare case-insensitively; `*` matches anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSelector {
    /// Workload name or `*`.
    pub workload: String,
    /// Compiler label or `*`.
    pub compiler: String,
    /// ISA label or `*`.
    pub isa: String,
}

impl CellSelector {
    /// Parse `workload/compiler/isa` (e.g. `STREAM/gcc-12.2/RISC-V`,
    /// `*/gcc-9.2/*`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split('/').collect();
        match parts.as_slice() {
            [w, c, i] if !w.is_empty() && !c.is_empty() && !i.is_empty() => Ok(CellSelector {
                workload: w.to_string(),
                compiler: c.to_string(),
                isa: i.to_string(),
            }),
            _ => Err(format!(
                "bad cell selector {s:?}: expected workload/compiler/isa (\"*\" wildcards ok)"
            )),
        }
    }

    /// Does this selector match the labelled cell?
    pub fn matches(&self, workload: &str, compiler: &str, isa: &str) -> bool {
        let eq = |pat: &str, v: &str| pat == "*" || pat.eq_ignore_ascii_case(v);
        eq(&self.workload, workload) && eq(&self.compiler, compiler) && eq(&self.isa, isa)
    }
}

/// A targeted injection: which cell, and what fault.
#[derive(Debug, Clone)]
pub struct InjectSpec {
    /// Which matrix cell(s) receive the fault.
    pub selector: CellSelector,
    /// The deterministic fault to inject there.
    pub plan: FaultPlan,
}

impl InjectSpec {
    /// Parse `workload/compiler/isa:faultspec`, e.g.
    /// `STREAM/gcc-12.2/RISC-V:trap@1000`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (sel, spec) = s.split_once(':').ok_or_else(|| {
            format!("bad inject spec {s:?}: expected workload/compiler/isa:<fault>")
        })?;
        Ok(InjectSpec { selector: CellSelector::parse(sel)?, plan: FaultPlan::parse(spec)? })
    }
}

/// Fault-tolerance knobs for a whole matrix run.
#[derive(Debug, Clone, Default)]
pub struct MatrixOptions {
    /// Per-cell wall-clock watchdog.
    pub deadline: Option<Duration>,
    /// Per-cell retries for retryable failures (clamped to
    /// [`MAX_CELL_RETRIES`]).
    pub retries: u32,
    /// Targeted deterministic fault injection.
    pub inject: Option<InjectSpec>,
    /// Seeded multi-fault campaign, injected into *every* cell (each cell
    /// gets its own freshly-armed copy of the same schedule, so the sweep
    /// is deterministic across cells and runs).
    pub campaign: Option<Campaign>,
    /// Trace cache directory shared by all cells (see
    /// [`CellOptions::trace_dir`]).
    pub trace_dir: Option<std::path::PathBuf>,
    /// Honor the process shutdown flag in every cell and in the worker
    /// pool (see [`CellOptions::heed_shutdown`]).
    pub heed_shutdown: bool,
    /// Directory for resumable watchdog snapshots (see
    /// [`CellOptions::checkpoint_dir`]).
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Retire loop driven in every cell (see [`CellOptions::engine`]).
    pub engine: Engine,
    /// Run the macro-op fusion pass in every cell (see
    /// [`CellOptions::fusion`]) — the matrix's third scenario axis.
    pub fusion: bool,
}

impl MatrixOptions {
    /// The per-cell options for one labelled cell (attaching the injected
    /// fault when the selector matches, and the campaign unconditionally).
    pub fn cell_options(&self, workload: &str, compiler: &str, isa: &str) -> CellOptions {
        let fault = self.inject.as_ref().and_then(|i| {
            i.selector.matches(workload, compiler, isa).then(|| i.plan.clone())
        });
        CellOptions {
            deadline: self.deadline,
            retries: self.retries,
            fault,
            campaign: self.campaign.clone(),
            trace_dir: self.trace_dir.clone(),
            heed_shutdown: self.heed_shutdown,
            checkpoint_dir: self.checkpoint_dir.clone(),
            engine: self.engine,
            fusion: self.fusion,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_retryability() {
        let sim = CellError::Sim { err: SimError::MisalignedPc { pc: 2 }, instret: 7 };
        assert_eq!(sim.kind(), "sim");
        assert!(sim.retryable());
        let timeout = CellError::Timeout {
            err: SimError::WallClockExceeded { limit_ms: 5, retired: 9 },
            instret: 9,
        };
        assert_eq!(timeout.kind(), "timeout");
        assert!(!timeout.retryable(), "watchdogs are deterministic, no retry");
        assert!(!CellError::Compile { msg: "x".into() }.retryable());
        assert!(CellError::ChecksumMismatch { expected_bits: 1, got_bits: 2 }.retryable());
    }

    #[test]
    fn failure_record_carries_labels_and_detail() {
        let e = CellError::NonZeroExit { code: 3 };
        let f = e.to_failure("STREAM", "gcc-12.2", "RISC-V", 2);
        assert_eq!(f.kind, "exit");
        assert_eq!(f.retries, 2);
        assert!(f.detail.contains("code 3"));
        assert_eq!((f.workload.as_str(), f.isa.as_str()), ("STREAM", "RISC-V"));
    }

    #[test]
    fn selector_parses_and_matches() {
        let sel = CellSelector::parse("STREAM/gcc-12.2/RISC-V").unwrap();
        assert!(sel.matches("STREAM", "gcc-12.2", "RISC-V"));
        assert!(sel.matches("stream", "GCC-12.2", "risc-v"), "case-insensitive");
        assert!(!sel.matches("LBM", "gcc-12.2", "RISC-V"));
        let any = CellSelector::parse("*/*/RISC-V").unwrap();
        assert!(any.matches("LBM", "gcc-9.2", "RISC-V"));
        assert!(!any.matches("LBM", "gcc-9.2", "AArch64"));
        assert!(CellSelector::parse("STREAM/gcc-12.2").is_err());
        assert!(CellSelector::parse("//").is_err());
    }

    #[test]
    fn inject_spec_round_trip() {
        let i = InjectSpec::parse("STREAM/gcc-12.2/RISC-V:trap@1000").unwrap();
        assert!(i.selector.matches("STREAM", "gcc-12.2", "RISC-V"));
        assert_eq!(
            i.plan.kind(),
            &simcore::FaultKind::TrapAt { at_instret: 1000 }
        );
        assert!(InjectSpec::parse("STREAM:trap@1").is_err());
        assert!(InjectSpec::parse("a/b/c").is_err());
    }

    #[test]
    fn retries_are_capped() {
        let o = CellOptions { retries: 99, ..Default::default() };
        assert_eq!(o.effective_retries(), MAX_CELL_RETRIES);
    }

    #[test]
    fn armed_campaign_merges_fault_and_schedule() {
        assert!(CellOptions::default().armed_campaign().is_none());
        let o = CellOptions {
            fault: Some(FaultPlan::parse("trap@10").unwrap()),
            campaign: Some(Campaign::sample(7, 3, 100)),
            ..Default::default()
        };
        let armed = o.armed_campaign().unwrap();
        assert_eq!(armed.len(), 4, "3 sampled plans + the one-shot fault");
        assert_eq!(armed.seed(), 7, "campaign seed wins when both are set");
        assert_eq!(armed.fired_count(), 0, "armed fresh");
        // Each arming is independent: new fired state every retry.
        let again = o.armed_campaign().unwrap();
        assert_eq!(again.fired_count(), 0);
    }

    #[test]
    fn matrix_campaign_reaches_every_cell() {
        let opts = MatrixOptions { campaign: Some(Campaign::sample(1, 2, 100)), ..Default::default() };
        let a = opts.cell_options("STREAM", "gcc-9.2", "AArch64");
        let b = opts.cell_options("LBM", "gcc-12.2", "RISC-V");
        assert_eq!(a.campaign.as_ref().unwrap().len(), 2);
        assert_eq!(b.campaign.as_ref().unwrap().len(), 2);
    }
}
