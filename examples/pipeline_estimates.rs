//! The paper's Future Work (§8), made concrete: run every workload
//! through trace-driven pipeline models with *finite* resources — a
//! dual-issue in-order core (the A55/SiFive-7 class the paper's `-mtune`
//! targeted) and out-of-order cores at TX2 and Firestorm scale — and
//! compare the resulting cycle estimates across ISAs.
//!
//! ```sh
//! cargo run --release --example pipeline_estimates
//! ```

use isacmp::{run_pipeline, IsaKind, Personality, PipelineConfig, SizeClass, Workload};

fn main() {
    let p = Personality::gcc122();
    let size = SizeClass::Small;

    println!("Cycle estimates (GCC 12.2, TX2 latencies), RISC-V / AArch64 ratio in brackets\n");
    println!(
        "{:<12}{:>16}{:>16}{:>18}",
        "workload", "in-order (A55)", "OoO (TX2)", "OoO (Firestorm)"
    );
    for w in Workload::ALL {
        let mut cols = Vec::new();
        for (cfg, ooo) in [
            (PipelineConfig::a55(), false),
            (PipelineConfig::tx2(), true),
            (PipelineConfig::firestorm(), true),
        ] {
            let arm = run_pipeline(w, IsaKind::AArch64, &p, size, cfg.clone(), ooo);
            let rv = run_pipeline(w, IsaKind::RiscV, &p, size, cfg, ooo);
            cols.push(format!(
                "{} [{:.2}]",
                arm.cycles,
                rv.cycles as f64 / arm.cycles as f64
            ));
        }
        println!("{:<12}{:>16}{:>16}{:>18}", w.name(), cols[0], cols[1], cols[2]);
    }
    println!(
        "\nRatios near 1.0 extend the paper's conclusion — neither ISA is\n\
         inherently disadvantaged — from ideal processors to finite ones."
    );
}
