//! The single-cycle emulation core.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::SimError;
use crate::fault::{FaultInjector, InjectAction};
use crate::observer::Observer;
use crate::phase::{self, Phase, PhaseNanos};
use crate::retire::RetiredInst;
use crate::sample::SampleSnapshot;
use crate::state::CpuState;

/// Host emulation rate in million instructions per second. The single
/// definition used by [`RunStats::host_mips`], the telemetry reports, and
/// every CLI table — keep derived speed numbers consistent by routing all
/// of them through here.
pub fn host_mips(retired: u64, wall: Duration) -> f64 {
    if wall.is_zero() {
        0.0
    } else {
        retired as f64 / wall.as_secs_f64() / 1e6
    }
}

/// Implemented by each ISA back-end: fetch, decode and execute exactly one
/// instruction, mutating `state` and describing what happened.
pub trait IsaExecutor {
    /// Execute the instruction at `state.pc`, advance the PC, and return the
    /// retirement record.
    fn step(&self, state: &mut CpuState) -> Result<RetiredInst, SimError>;

    /// Disassemble the 32-bit word at `pc` (for diagnostics and the paper's
    /// listing-level analysis).
    fn disassemble(&self, word: u32) -> String;

    /// Short ISA name ("rv64g", "aarch64").
    fn name(&self) -> &'static str;

    /// Drop any cached decodes. Called by the core after instruction memory
    /// is mutated behind the executor's back (fault injection); the default
    /// suits executors that do not cache.
    fn flush_decode_cache(&self) {}
}

/// Statistics from one emulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions retired (the paper's *path length*).
    pub retired: u64,
    /// Guest exit status.
    pub exit_code: i64,
    /// Host wall-clock time spent inside the run loop.
    pub wall: Duration,
    /// Retire-loop phase breakdown; all-zero unless the crate is built with
    /// the `phase-timers` feature.
    pub phases: PhaseNanos,
}

impl RunStats {
    /// Host emulation rate in million instructions per second.
    pub fn host_mips(&self) -> f64 {
        host_mips(self.retired, self.wall)
    }
}

/// The paper's measurement vehicle: SimEng's "emulation core model which
/// executes each instruction atomically to completion in a single cycle".
///
/// Runs a loaded [`CpuState`] until the guest exits, feeding every retired
/// instruction to the supplied observers in program order.
///
/// When the `ISACMP_PROGRESS` environment variable is set to a retirement
/// interval (or to `1` for the default of 50M), the core prints a heartbeat
/// line to stderr every interval: instructions retired and host MIPS. The
/// hot loop pays a single integer compare per retirement for this — the
/// sentinel is `u64::MAX` when disabled, so the branch never takes.
pub struct EmulationCore<E: IsaExecutor> {
    exec: E,
    /// Abort if this many instructions retire without the guest exiting.
    max_insts: u64,
    /// Heartbeat interval in retirements; `u64::MAX` disables it.
    progress_every: u64,
    /// Wall-clock watchdog; checked every [`Self::DEADLINE_CHECK_INTERVAL`]
    /// retirements so the hot loop pays only an AND and a branch.
    deadline: Option<Duration>,
    /// Fault-injection hook, consulted before every step when present.
    /// `RefCell` keeps [`EmulationCore::run`] callable on a shared core.
    injector: Option<RefCell<Box<dyn FaultInjector>>>,
    /// Shared snapshot for the sampling profiler, written every
    /// `sample_mask + 1` retirements when attached.
    sample: Option<Arc<SampleSnapshot>>,
    /// `stride - 1` for the sampling publish check (stride is a power of
    /// two); `u64::MAX` when sampling is disabled, so — exactly like the
    /// deadline check — the hot loop pays one AND and one never-taken
    /// branch.
    sample_mask: u64,
}

/// Default heartbeat interval when `ISACMP_PROGRESS` is set without a count.
const DEFAULT_PROGRESS_INTERVAL: u64 = 50_000_000;

fn progress_interval_from_env() -> u64 {
    match std::env::var("ISACMP_PROGRESS") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(0) | Err(_) => u64::MAX,
            Ok(1) => DEFAULT_PROGRESS_INTERVAL,
            Ok(n) => n,
        },
        Err(_) => u64::MAX,
    }
}

impl<E: IsaExecutor> EmulationCore<E> {
    /// Default runaway-guest budget (no paper workload at our scaled sizes
    /// exceeds a few hundred million instructions).
    pub const DEFAULT_BUDGET: u64 = 5_000_000_000;

    /// How often (in retirements) the wall-clock watchdog consults the
    /// host clock. Power of two so the check is a mask.
    pub const DEADLINE_CHECK_INTERVAL: u64 = 1 << 14;

    /// Create a core around an ISA executor.
    pub fn new(exec: E) -> Self {
        EmulationCore {
            exec,
            max_insts: Self::DEFAULT_BUDGET,
            progress_every: progress_interval_from_env(),
            deadline: None,
            injector: None,
            sample: None,
            sample_mask: u64::MAX,
        }
    }

    /// Override the instruction budget.
    pub fn with_budget(mut self, max_insts: u64) -> Self {
        self.max_insts = max_insts;
        self
    }

    /// Attach a wall-clock watchdog: the run fails with
    /// [`SimError::WallClockExceeded`] once `deadline` elapses. The clock is
    /// polled every [`Self::DEADLINE_CHECK_INTERVAL`] retirements, so
    /// enforcement granularity is a few tens of microseconds of guest time.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a fault injector (e.g. a [`crate::FaultPlan`]), consulted
    /// before every step.
    pub fn with_injector(mut self, injector: Box<dyn FaultInjector>) -> Self {
        self.injector = Some(RefCell::new(injector));
        self
    }

    /// Override the heartbeat interval (`u64::MAX` disables; normally taken
    /// from `ISACMP_PROGRESS`).
    pub fn with_progress(mut self, every: u64) -> Self {
        self.progress_every = every.max(1);
        self
    }

    /// Attach a sampling-profiler snapshot: `(pc, instret)` is published
    /// into `snapshot` every `2^log2_stride` retirements. `log2_stride` is
    /// clamped to `[6, 30]` — below 64 the publish itself would distort the
    /// measurement, above 2^30 a short run would never publish.
    pub fn with_sampling(mut self, snapshot: Arc<SampleSnapshot>, log2_stride: u32) -> Self {
        self.sample = Some(snapshot);
        self.sample_mask = (1u64 << log2_stride.clamp(6, 30)) - 1;
        self
    }

    /// Access the underlying executor (e.g. for disassembly).
    pub fn executor(&self) -> &E {
        &self.exec
    }

    /// Run until the guest exits, pumping retirements through `observers`.
    ///
    /// On error, `state.instret` holds the retirement count reached and
    /// `state.pc` the faulting program counter, so callers can report how
    /// far the guest got.
    pub fn run(
        &self,
        state: &mut CpuState,
        observers: &mut [&mut dyn Observer],
    ) -> Result<RunStats, SimError> {
        let start = Instant::now();
        let mut retired: u64 = 0;
        let mut next_beat = self.progress_every;
        // Reset this thread's phase accumulator so a prior (possibly failed)
        // run on the same worker thread cannot leak into our breakdown.
        let _ = phase::take();
        while state.exited.is_none() {
            if retired >= self.max_insts {
                state.instret = retired;
                return Err(SimError::InstructionBudgetExceeded {
                    budget: self.max_insts,
                });
            }
            if retired & (Self::DEADLINE_CHECK_INTERVAL - 1) == 0 {
                if let Some(deadline) = self.deadline {
                    if start.elapsed() >= deadline {
                        state.instret = retired;
                        return Err(SimError::WallClockExceeded {
                            limit_ms: deadline.as_millis() as u64,
                            retired,
                        });
                    }
                }
            }
            if retired & self.sample_mask == 0 {
                if let Some(snap) = &self.sample {
                    snap.publish(state.pc, retired);
                }
            }
            if let Some(inj) = &self.injector {
                match inj.borrow_mut().before_step(state, retired) {
                    Ok(InjectAction::Continue) => {}
                    Ok(InjectAction::FlushDecodeCache) => self.exec.flush_decode_cache(),
                    Err(e) => {
                        state.instret = retired;
                        return Err(e);
                    }
                }
            }
            let ri = match self.exec.step(state) {
                Ok(ri) => ri,
                Err(e) => {
                    state.instret = retired;
                    return Err(e);
                }
            };
            retired += 1;
            if !observers.is_empty() {
                let _t = phase::scoped(Phase::Observe);
                for obs in observers.iter_mut() {
                    obs.on_retire(&ri);
                }
            }
            if retired == next_beat {
                let mips = host_mips(retired, start.elapsed());
                eprintln!(
                    "[{}] {retired} retired, {mips:.1} MIPS, pc={:#x}",
                    self.exec.name(),
                    state.pc
                );
                next_beat = next_beat.saturating_add(self.progress_every);
            }
        }
        state.instret = retired;
        for obs in observers.iter_mut() {
            obs.on_finish();
        }
        Ok(RunStats {
            retired,
            exit_code: state.exited.unwrap_or(0),
            wall: start.elapsed(),
            phases: phase::take(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::retire::InstGroup;
    use std::cell::Cell;

    /// Minimal executor: reads the word at pc (a real memory fetch, so read
    /// faults and fetch corruption are visible); word 0 = nop, anything
    /// else = exit with that word as the code.
    struct SpinExec {
        flushes: Cell<u32>,
    }

    impl SpinExec {
        fn new() -> Self {
            SpinExec { flushes: Cell::new(0) }
        }
    }

    impl IsaExecutor for SpinExec {
        fn step(&self, state: &mut CpuState) -> Result<RetiredInst, SimError> {
            let word = state.mem.read_u32(state.pc)?;
            if word != 0 {
                state.exited = Some(word as i64);
            }
            state.pc = state.pc.wrapping_add(4);
            Ok(RetiredInst::new(state.pc - 4, InstGroup::IntAlu))
        }

        fn disassemble(&self, _word: u32) -> String {
            "nop".into()
        }

        fn name(&self) -> &'static str {
            "spin"
        }

        fn flush_decode_cache(&self) {
            self.flushes.set(self.flushes.get() + 1);
        }
    }

    /// A looping guest: one mapped page of nops, pc wrapped back each 1024
    /// instructions by the test via a tiny budget instead.
    fn spinning_state() -> CpuState {
        let mut st = CpuState::new();
        st.pc = 0x1000;
        // Map several pages of nops so the spin runs for a while.
        for page in 0..64u64 {
            st.mem.write_u64(0x1000 + page * 4096, 0).unwrap();
        }
        st
    }

    #[test]
    fn wall_clock_watchdog_fires() {
        let mut st = spinning_state();
        let core = EmulationCore::new(SpinExec::new()).with_deadline(Duration::ZERO);
        let err = core.run(&mut st, &mut []).unwrap_err();
        assert!(
            matches!(err, SimError::WallClockExceeded { .. }),
            "expected WallClockExceeded, got {err}"
        );
        assert!(err.is_watchdog());
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let mut st = CpuState::new();
        st.pc = 0x1000;
        st.mem.write_u32(0x1000, 7).unwrap(); // immediate exit(7)
        let core =
            EmulationCore::new(SpinExec::new()).with_deadline(Duration::from_secs(3600));
        let stats = core.run(&mut st, &mut []).unwrap();
        assert_eq!(stats.exit_code, 7);
    }

    #[test]
    fn injected_trap_stops_run_at_target_instret() {
        let mut st = spinning_state();
        let plan = FaultPlan::parse("trap@5").unwrap();
        let core = EmulationCore::new(SpinExec::new()).with_injector(Box::new(plan));
        let err = core.run(&mut st, &mut []).unwrap_err();
        assert!(matches!(err, SimError::Fault { .. }), "{err}");
        assert_eq!(st.instret, 5, "trap must fire before the 6th instruction");
    }

    #[test]
    fn injected_fetch_corruption_flushes_and_alters_execution() {
        let mut st = spinning_state();
        // Corrupt the word fetched at retirement 3: nop (0) becomes
        // non-zero, which SpinExec treats as exit.
        let plan = FaultPlan::parse("fetch@3:0x2a").unwrap();
        let exec = SpinExec::new();
        let core = EmulationCore::new(exec).with_injector(Box::new(plan));
        let stats = core.run(&mut st, &mut []).unwrap();
        assert_eq!(stats.exit_code, 0x2a, "corrupted word drives the exit");
        assert_eq!(stats.retired, 4);
        assert_eq!(core.executor().flushes.get(), 1, "decode cache flushed once");
    }

    #[test]
    fn sampling_publishes_on_the_configured_stride() {
        let mut st = spinning_state();
        let snap = std::sync::Arc::new(crate::sample::SampleSnapshot::new());
        // Budget of 4096 retirements at stride 2^6 = 64 publishes (one per
        // stride boundary, starting at retirement 0).
        let core = EmulationCore::new(SpinExec::new())
            .with_budget(4096)
            .with_sampling(std::sync::Arc::clone(&snap), 6);
        let err = core.run(&mut st, &mut []).unwrap_err();
        assert!(matches!(err, SimError::InstructionBudgetExceeded { .. }));
        assert_eq!(snap.publishes(), 4096 / 64);
        let last = snap.read().expect("samples were published");
        assert_eq!(last.instret % 64, 0);
        assert!(last.pc >= 0x1000, "published pc must be a guest pc: {:#x}", last.pc);
    }

    #[test]
    fn no_sampling_means_zero_publishes() {
        let mut st = spinning_state();
        let snap = crate::sample::SampleSnapshot::new();
        let core = EmulationCore::new(SpinExec::new()).with_budget(4096);
        let _ = core.run(&mut st, &mut []);
        // The disabled path never touches a snapshot: the hot loop's mask is
        // the u64::MAX sentinel and no snapshot is attached.
        assert_eq!(snap.publishes(), 0);
        assert_eq!(snap.read(), None);
    }

    #[test]
    fn phase_breakdown_is_zero_without_the_feature() {
        let mut st = CpuState::new();
        st.pc = 0x1000;
        st.mem.write_u32(0x1000, 7).unwrap();
        let core = EmulationCore::new(SpinExec::new());
        let mut count = crate::observer::CountingObserver::default();
        let mut obs: [&mut dyn Observer; 1] = [&mut count];
        let stats = core.run(&mut st, &mut obs).unwrap();
        if crate::phase::enabled() {
            // With timers on, observer dispatch was inside an Observe scope.
            assert!(stats.phases.observe_ns > 0 || stats.retired == 0);
        } else {
            assert_eq!(stats.phases, crate::phase::PhaseNanos::default());
        }
    }

    #[test]
    fn injected_read_flip_reaches_the_guest() {
        let mut st = spinning_state();
        // Flip a low bit of the very first fetch: nop becomes exit(1<<b).
        let plan = FaultPlan::parse("read@1:0").unwrap();
        let core = EmulationCore::new(SpinExec::new()).with_injector(Box::new(plan));
        let stats = core.run(&mut st, &mut []).unwrap();
        assert_eq!(stats.exit_code, 1);
    }
}
