//! RV64G binary encoder (the assembler's final stage).
//!
//! Produces the canonical 32-bit encodings defined by the RISC-V unprivileged
//! specification. Rounding-mode fields are emitted as `dyn` (0b111) for FP
//! arithmetic and `rtz` (0b001) for FP-to-integer conversions — the modes GCC
//! emits for C arithmetic and casts respectively.

use crate::inst::*;

const OP_LUI: u32 = 0b0110111;
const OP_AUIPC: u32 = 0b0010111;
const OP_JAL: u32 = 0b1101111;
const OP_JALR: u32 = 0b1100111;
const OP_BRANCH: u32 = 0b1100011;
const OP_LOAD: u32 = 0b0000011;
const OP_STORE: u32 = 0b0100011;
const OP_IMM: u32 = 0b0010011;
const OP_IMM32: u32 = 0b0011011;
const OP_REG: u32 = 0b0110011;
const OP_REG32: u32 = 0b0111011;
const OP_MISC_MEM: u32 = 0b0001111;
const OP_SYSTEM: u32 = 0b1110011;
const OP_AMO: u32 = 0b0101111;
const OP_LOAD_FP: u32 = 0b0000111;
const OP_STORE_FP: u32 = 0b0100111;
const OP_FP: u32 = 0b1010011;
const OP_FMADD: u32 = 0b1000011;
const OP_FMSUB: u32 = 0b1000111;
const OP_FNMSUB: u32 = 0b1001011;
const OP_FNMADD: u32 = 0b1001111;

/// Dynamic rounding mode.
const RM_DYN: u32 = 0b111;
/// Round-towards-zero.
const RM_RTZ: u32 = 0b001;

#[inline]
fn r_type(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

#[inline]
fn i_type(imm: i64, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    let imm12 = (imm as u32) & 0xFFF;
    (imm12 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

#[inline]
fn s_type(imm: i64, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    let imm = (imm as u32) & 0xFFF;
    ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | ((imm & 0x1F) << 7) | opcode
}

#[inline]
fn b_type(offset: i64, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    debug_assert_eq!(offset & 1, 0, "branch offset must be even");
    let imm = offset as u32;
    let b12 = (imm >> 12) & 1;
    let b11 = (imm >> 11) & 1;
    let b10_5 = (imm >> 5) & 0x3F;
    let b4_1 = (imm >> 1) & 0xF;
    (b12 << 31)
        | (b10_5 << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (b4_1 << 8)
        | (b11 << 7)
        | opcode
}

#[inline]
fn u_type(imm: i64, rd: u32, opcode: u32) -> u32 {
    // `imm` carries the already-shifted value; the encoding stores bits 31:12.
    ((imm as u32) & 0xFFFF_F000) | (rd << 7) | opcode
}

#[inline]
fn j_type(offset: i64, rd: u32, opcode: u32) -> u32 {
    debug_assert_eq!(offset & 1, 0, "jump offset must be even");
    let imm = offset as u32;
    let b20 = (imm >> 20) & 1;
    let b10_1 = (imm >> 1) & 0x3FF;
    let b11 = (imm >> 11) & 1;
    let b19_12 = (imm >> 12) & 0xFF;
    (b20 << 31) | (b10_1 << 21) | (b11 << 20) | (b19_12 << 12) | (rd << 7) | opcode
}

#[inline]
fn r4_type(rs3: u32, fmt: u32, rs2: u32, rs1: u32, rm: u32, rd: u32, opcode: u32) -> u32 {
    (rs3 << 27) | (fmt << 25) | (rs2 << 20) | (rs1 << 15) | (rm << 12) | (rd << 7) | opcode
}

fn fp_fmt(w: FpWidth) -> u32 {
    match w {
        FpWidth::S => 0,
        FpWidth::D => 1,
    }
}

/// Encode a decoded instruction back to its 32-bit word.
pub fn encode(inst: &Inst) -> u32 {
    use Inst::*;
    match *inst {
        Lui { rd, imm } => u_type(imm, rd as u32, OP_LUI),
        Auipc { rd, imm } => u_type(imm, rd as u32, OP_AUIPC),
        Jal { rd, offset } => j_type(offset, rd as u32, OP_JAL),
        Jalr { rd, rs1, offset } => i_type(offset, rs1 as u32, 0b000, rd as u32, OP_JALR),
        Branch { op, rs1, rs2, offset } => {
            let f3 = match op {
                BranchOp::Beq => 0b000,
                BranchOp::Bne => 0b001,
                BranchOp::Blt => 0b100,
                BranchOp::Bge => 0b101,
                BranchOp::Bltu => 0b110,
                BranchOp::Bgeu => 0b111,
            };
            b_type(offset, rs2 as u32, rs1 as u32, f3, OP_BRANCH)
        }
        Load { op, rd, rs1, offset } => {
            let f3 = match op {
                LoadOp::Lb => 0b000,
                LoadOp::Lh => 0b001,
                LoadOp::Lw => 0b010,
                LoadOp::Ld => 0b011,
                LoadOp::Lbu => 0b100,
                LoadOp::Lhu => 0b101,
                LoadOp::Lwu => 0b110,
            };
            i_type(offset, rs1 as u32, f3, rd as u32, OP_LOAD)
        }
        Store { op, rs2, rs1, offset } => {
            let f3 = match op {
                StoreOp::Sb => 0b000,
                StoreOp::Sh => 0b001,
                StoreOp::Sw => 0b010,
                StoreOp::Sd => 0b011,
            };
            s_type(offset, rs2 as u32, rs1 as u32, f3, OP_STORE)
        }
        OpImm { op, rd, rs1, imm } => match op {
            ImmOp::Addi => i_type(imm, rs1 as u32, 0b000, rd as u32, OP_IMM),
            ImmOp::Slti => i_type(imm, rs1 as u32, 0b010, rd as u32, OP_IMM),
            ImmOp::Sltiu => i_type(imm, rs1 as u32, 0b011, rd as u32, OP_IMM),
            ImmOp::Xori => i_type(imm, rs1 as u32, 0b100, rd as u32, OP_IMM),
            ImmOp::Ori => i_type(imm, rs1 as u32, 0b110, rd as u32, OP_IMM),
            ImmOp::Andi => i_type(imm, rs1 as u32, 0b111, rd as u32, OP_IMM),
            // RV64 shifts: 6-bit shamt, bit 30 selects arithmetic.
            ImmOp::Slli => i_type(imm & 0x3F, rs1 as u32, 0b001, rd as u32, OP_IMM),
            ImmOp::Srli => i_type(imm & 0x3F, rs1 as u32, 0b101, rd as u32, OP_IMM),
            ImmOp::Srai => i_type((imm & 0x3F) | 0x400, rs1 as u32, 0b101, rd as u32, OP_IMM),
        },
        OpImm32 { op, rd, rs1, imm } => match op {
            ImmOp32::Addiw => i_type(imm, rs1 as u32, 0b000, rd as u32, OP_IMM32),
            ImmOp32::Slliw => i_type(imm & 0x1F, rs1 as u32, 0b001, rd as u32, OP_IMM32),
            ImmOp32::Srliw => i_type(imm & 0x1F, rs1 as u32, 0b101, rd as u32, OP_IMM32),
            ImmOp32::Sraiw => i_type((imm & 0x1F) | 0x400, rs1 as u32, 0b101, rd as u32, OP_IMM32),
        },
        Op { op, rd, rs1, rs2 } => {
            let (f7, f3) = match op {
                RegOp::Add => (0b0000000, 0b000),
                RegOp::Sub => (0b0100000, 0b000),
                RegOp::Sll => (0b0000000, 0b001),
                RegOp::Slt => (0b0000000, 0b010),
                RegOp::Sltu => (0b0000000, 0b011),
                RegOp::Xor => (0b0000000, 0b100),
                RegOp::Srl => (0b0000000, 0b101),
                RegOp::Sra => (0b0100000, 0b101),
                RegOp::Or => (0b0000000, 0b110),
                RegOp::And => (0b0000000, 0b111),
                RegOp::Mul => (0b0000001, 0b000),
                RegOp::Mulh => (0b0000001, 0b001),
                RegOp::Mulhsu => (0b0000001, 0b010),
                RegOp::Mulhu => (0b0000001, 0b011),
                RegOp::Div => (0b0000001, 0b100),
                RegOp::Divu => (0b0000001, 0b101),
                RegOp::Rem => (0b0000001, 0b110),
                RegOp::Remu => (0b0000001, 0b111),
            };
            r_type(f7, rs2 as u32, rs1 as u32, f3, rd as u32, OP_REG)
        }
        Op32 { op, rd, rs1, rs2 } => {
            let (f7, f3) = match op {
                RegOp32::Addw => (0b0000000, 0b000),
                RegOp32::Subw => (0b0100000, 0b000),
                RegOp32::Sllw => (0b0000000, 0b001),
                RegOp32::Srlw => (0b0000000, 0b101),
                RegOp32::Sraw => (0b0100000, 0b101),
                RegOp32::Mulw => (0b0000001, 0b000),
                RegOp32::Divw => (0b0000001, 0b100),
                RegOp32::Divuw => (0b0000001, 0b101),
                RegOp32::Remw => (0b0000001, 0b110),
                RegOp32::Remuw => (0b0000001, 0b111),
            };
            r_type(f7, rs2 as u32, rs1 as u32, f3, rd as u32, OP_REG32)
        }
        Fence => i_type(0, 0, 0b000, 0, OP_MISC_MEM),
        Ecall => i_type(0, 0, 0b000, 0, OP_SYSTEM),
        Ebreak => i_type(1, 0, 0b000, 0, OP_SYSTEM),
        Lr { width, rd, rs1 } => {
            r_type(0b00010 << 2, 0, rs1 as u32, amo_f3(width), rd as u32, OP_AMO)
        }
        Sc { width, rd, rs1, rs2 } => {
            r_type(0b00011 << 2, rs2 as u32, rs1 as u32, amo_f3(width), rd as u32, OP_AMO)
        }
        Amo { op, width, rd, rs1, rs2 } => {
            let f5 = match op {
                AmoOp::Add => 0b00000,
                AmoOp::Swap => 0b00001,
                AmoOp::Xor => 0b00100,
                AmoOp::Or => 0b01000,
                AmoOp::And => 0b01100,
                AmoOp::Min => 0b10000,
                AmoOp::Max => 0b10100,
                AmoOp::Minu => 0b11000,
                AmoOp::Maxu => 0b11100,
            };
            r_type(f5 << 2, rs2 as u32, rs1 as u32, amo_f3(width), rd as u32, OP_AMO)
        }
        FpLoad { width, frd, rs1, offset } => {
            let f3 = if width == FpWidth::S { 0b010 } else { 0b011 };
            i_type(offset, rs1 as u32, f3, frd as u32, OP_LOAD_FP)
        }
        FpStore { width, frs2, rs1, offset } => {
            let f3 = if width == FpWidth::S { 0b010 } else { 0b011 };
            s_type(offset, frs2 as u32, rs1 as u32, f3, OP_STORE_FP)
        }
        FpReg { op, width, frd, frs1, frs2 } => {
            let fmt = fp_fmt(width);
            let (f7base, f3) = match op {
                FpOp::Fadd => (0b0000000, RM_DYN),
                FpOp::Fsub => (0b0000100, RM_DYN),
                FpOp::Fmul => (0b0001000, RM_DYN),
                FpOp::Fdiv => (0b0001100, RM_DYN),
                FpOp::Fsgnj => (0b0010000, 0b000),
                FpOp::Fsgnjn => (0b0010000, 0b001),
                FpOp::Fsgnjx => (0b0010000, 0b010),
                FpOp::Fmin => (0b0010100, 0b000),
                FpOp::Fmax => (0b0010100, 0b001),
            };
            r_type(f7base | fmt, frs2 as u32, frs1 as u32, f3, frd as u32, OP_FP)
        }
        FpFma { op, width, frd, frs1, frs2, frs3 } => {
            let opcode = match op {
                FmaOp::Fmadd => OP_FMADD,
                FmaOp::Fmsub => OP_FMSUB,
                FmaOp::Fnmsub => OP_FNMSUB,
                FmaOp::Fnmadd => OP_FNMADD,
            };
            r4_type(frs3 as u32, fp_fmt(width), frs2 as u32, frs1 as u32, RM_DYN, frd as u32, opcode)
        }
        FpSqrt { width, frd, frs1 } => {
            r_type(0b0101100 | fp_fmt(width), 0, frs1 as u32, RM_DYN, frd as u32, OP_FP)
        }
        FpCmp { op, width, rd, frs1, frs2 } => {
            let f3 = match op {
                FpCmpOp::Fle => 0b000,
                FpCmpOp::Flt => 0b001,
                FpCmpOp::Feq => 0b010,
            };
            r_type(0b1010000 | fp_fmt(width), frs2 as u32, frs1 as u32, f3, rd as u32, OP_FP)
        }
        FcvtIntFromFp { ty, width, rd, frs1 } => {
            r_type(0b1100000 | fp_fmt(width), int_ty_code(ty), frs1 as u32, RM_RTZ, rd as u32, OP_FP)
        }
        FcvtFpFromInt { ty, width, frd, rs1 } => {
            r_type(0b1101000 | fp_fmt(width), int_ty_code(ty), rs1 as u32, RM_DYN, frd as u32, OP_FP)
        }
        FcvtFpFp { to, from, frd, frs1 } => {
            // fcvt.s.d: f7=0100000 rs2=1; fcvt.d.s: f7=0100001 rs2=0.
            r_type(0b0100000 | fp_fmt(to), fp_fmt(from), frs1 as u32, RM_DYN, frd as u32, OP_FP)
        }
        FmvToInt { width, rd, frs1 } => {
            r_type(0b1110000 | fp_fmt(width), 0, frs1 as u32, 0b000, rd as u32, OP_FP)
        }
        FmvToFp { width, frd, rs1 } => {
            r_type(0b1111000 | fp_fmt(width), 0, rs1 as u32, 0b000, frd as u32, OP_FP)
        }
        Fclass { width, rd, frs1 } => {
            r_type(0b1110000 | fp_fmt(width), 0, frs1 as u32, 0b001, rd as u32, OP_FP)
        }
    }
}

fn amo_f3(width: AmoWidth) -> u32 {
    match width {
        AmoWidth::W => 0b010,
        AmoWidth::D => 0b011,
    }
}

fn int_ty_code(ty: IntTy) -> u32 {
    match ty {
        IntTy::W => 0,
        IntTy::Wu => 1,
        IntTy::L => 2,
        IntTy::Lu => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Golden encodings cross-checked against GNU `as` output.
    #[test]
    fn golden_encodings() {
        // addi x0, x0, 0 == canonical nop == 0x00000013
        assert_eq!(
            encode(&Inst::OpImm { op: ImmOp::Addi, rd: 0, rs1: 0, imm: 0 }),
            0x0000_0013
        );
        // add a0, a1, a2 -> 0x00c58533
        assert_eq!(
            encode(&Inst::Op { op: RegOp::Add, rd: 10, rs1: 11, rs2: 12 }),
            0x00C5_8533
        );
        // ld a5, 8(a0) -> 0x00853783
        assert_eq!(
            encode(&Inst::Load { op: LoadOp::Ld, rd: 15, rs1: 10, offset: 8 }),
            0x0085_3783
        );
        // sd a5, 16(sp) -> 0x00f13823
        assert_eq!(
            encode(&Inst::Store { op: StoreOp::Sd, rs2: 15, rs1: 2, offset: 16 }),
            0x00F1_3823
        );
        // bne a5, s0, -8 -> 0xfe879ce3
        assert_eq!(
            encode(&Inst::Branch { op: BranchOp::Bne, rs1: 15, rs2: 8, offset: -8 }),
            0xFE87_9CE3
        );
        // lui a0, 0x12345 -> 0x12345537
        assert_eq!(encode(&Inst::Lui { rd: 10, imm: 0x12345 << 12 }), 0x1234_5537);
        // jal ra, 16 -> 0x010000ef
        assert_eq!(encode(&Inst::Jal { rd: 1, offset: 16 }), 0x0100_00EF);
        // ecall -> 0x00000073
        assert_eq!(encode(&Inst::Ecall), 0x0000_0073);
        // fld fa5, 0(a5) -> 0x0007b787
        assert_eq!(
            encode(&Inst::FpLoad { width: FpWidth::D, frd: 15, rs1: 15, offset: 0 }),
            0x0007_B787
        );
        // fsd fa5, 0(a4) -> 0x00f73027
        assert_eq!(
            encode(&Inst::FpStore { width: FpWidth::D, frs2: 15, rs1: 14, offset: 0 }),
            0x00F7_3027
        );
        // fadd.d fa0, fa1, fa2, dyn -> 0x02c5f553
        assert_eq!(
            encode(&Inst::FpReg {
                op: FpOp::Fadd,
                width: FpWidth::D,
                frd: 10,
                frs1: 11,
                frs2: 12
            }),
            0x02C5_F553
        );
        // fmadd.d fa0, fa1, fa2, fa3, dyn -> 0x6ac5f543
        assert_eq!(
            encode(&Inst::FpFma {
                op: FmaOp::Fmadd,
                width: FpWidth::D,
                frd: 10,
                frs1: 11,
                frs2: 12,
                frs3: 13
            }),
            0x6AC5_F543
        );
        // mul a0, a1, a2 -> 0x02c58533
        assert_eq!(
            encode(&Inst::Op { op: RegOp::Mul, rd: 10, rs1: 11, rs2: 12 }),
            0x02C5_8533
        );
        // srai a0, a1, 3 -> 0x4035d513
        assert_eq!(
            encode(&Inst::OpImm { op: ImmOp::Srai, rd: 10, rs1: 11, imm: 3 }),
            0x4035_D513
        );
    }

    #[test]
    fn branch_offset_bit_scatter() {
        // beq x1, x2, 4096 exercises imm[12].
        let w = encode(&Inst::Branch { op: BranchOp::Beq, rs1: 1, rs2: 2, offset: -4096 });
        assert_eq!(w >> 31, 1); // sign bit (imm[12]) set
    }
}
