//! Inspect and compare the compact binary `.trace` files written by
//! `run_elf --trace-out` and `make_tables --trace-dir` (format: the `trace`
//! crate, spec in DESIGN.md).
//!
//! ```sh
//! cargo run --release -p bench --bin trace_tool -- info   results/stream.trace
//! cargo run --release -p bench --bin trace_tool -- verify results/stream.trace
//! cargo run --release -p bench --bin trace_tool -- dump   results/stream.trace --limit 20
//! cargo run --release -p bench --bin trace_tool -- diff   a.trace b.trace
//! cargo run --release -p bench --bin trace_tool -- fuse   results/stream.trace
//! ```
//!
//! - `info`: header provenance and trailer totals (header only on a file
//!   whose body is damaged).
//! - `verify`: full integrity scan — block checksums, record decode,
//!   trailer consistency. Exit 1 on any corruption.
//! - `dump`: human-readable record listing (`--limit N`, default 50;
//!   `--limit 0` for everything).
//! - `diff`: first record-level divergence plus per-group count deltas
//!   between two traces. Exit 1 if the traces differ.
//! - `fuse`: run the macro-op fusion pass over the captured stream and
//!   print the per-pair-kind fusion summary (the ISA's recognizer set is
//!   picked from the trace header).

use isacmp::{FusionPass, InstGroup, IsaKind, RegSet, RetiredInst, TraceReader};

fn usage() -> ! {
    eprintln!(
        "usage: trace_tool <info|verify|dump|diff|fuse> <file.trace> [file2.trace] [--limit N]"
    );
    std::process::exit(2);
}

fn open(path: &str) -> TraceReader<std::io::BufReader<std::fs::File>> {
    TraceReader::open(std::path::Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    })
}

fn print_header(path: &str, reader: &TraceReader<std::io::BufReader<std::fs::File>>) {
    let m = reader.meta();
    println!("{path}");
    println!("  format     : ICTR v{}", reader.version());
    println!("  workload   : {}", m.workload);
    println!("  compiler   : {}", m.compiler);
    println!("  isa        : {}", m.isa);
    println!("  size       : {}", m.size);
    println!("  regions    : {}", m.regions.len());
}

fn info(path: &str) {
    let reader = open(path);
    print_header(path, &reader);
    if let Ok(len) = std::fs::metadata(path).map(|m| m.len()) {
        println!("  file bytes : {len}");
    }
    // The trailer lives at the end of the stream, so totals require a scan;
    // a damaged body still leaves the header above on screen.
    match reader.verify() {
        Ok(s) => {
            println!("  records    : {}", s.records);
            println!("  blocks     : {}", s.blocks);
            println!("  state hash : {:#018x}", s.trailer.state_hash);
            let wall = std::time::Duration::from_micros(s.trailer.capture_wall_us);
            println!(
                "  capture    : {} us emulation wall ({:.2} MIPS)",
                s.trailer.capture_wall_us,
                isacmp::host_mips(s.records, wall)
            );
        }
        Err(e) => println!("  body       : UNREADABLE ({e})"),
    }
}

fn verify(path: &str) {
    let reader = open(path);
    match reader.verify() {
        Ok(s) => println!(
            "{path}: OK ({} records in {} blocks, state hash {:#018x})",
            s.records, s.blocks, s.trailer.state_hash
        ),
        Err(e) => {
            eprintln!("{path}: CORRUPT — {e}");
            std::process::exit(1);
        }
    }
}

fn fmt_record(i: u64, ri: &RetiredInst) -> String {
    let mut s = format!("{i:>10}  {:#012x}  {:<10?}", ri.pc, ri.group);
    if ri.is_branch {
        s.push_str(if ri.taken { " branch(taken)" } else { " branch" });
    }
    let regs = |set: &RegSet| -> String {
        set.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(",")
    };
    if ri.srcs.len() > 0 {
        s.push_str(&format!("  src {}", regs(&ri.srcs)));
    }
    if ri.dsts.len() > 0 {
        s.push_str(&format!("  dst {}", regs(&ri.dsts)));
    }
    for a in ri.mem_reads.iter() {
        s.push_str(&format!("  R[{:#x};{}]", a.addr, a.size));
    }
    for a in ri.mem_writes.iter() {
        s.push_str(&format!("  W[{:#x};{}]", a.addr, a.size));
    }
    s
}

fn dump(path: &str, limit: u64) {
    let reader = open(path);
    print_header(path, &reader);
    println!("{:>10}  {:<12}  {}", "index", "pc", "group");
    let mut shown = 0u64;
    for (i, rec) in reader.enumerate() {
        match rec {
            Ok(ri) => println!("{}", fmt_record(i as u64, &ri)),
            Err(e) => {
                eprintln!("{path}: CORRUPT at record {i} — {e}");
                std::process::exit(1);
            }
        }
        shown += 1;
        if limit > 0 && shown >= limit {
            println!("... ({limit} record limit; --limit 0 for all)");
            break;
        }
    }
}

/// Pull the next record or die on corruption; `None` at end of trace.
fn next_or_die(
    path: &str,
    it: &mut TraceReader<std::io::BufReader<std::fs::File>>,
) -> Option<RetiredInst> {
    match it.next() {
        Some(Ok(ri)) => Some(ri),
        Some(Err(e)) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
        None => None,
    }
}

fn fuse(path: &str) {
    let mut reader = open(path);
    print_header(path, &reader);
    let isa = match reader.meta().isa.as_str() {
        "RISC-V" => IsaKind::RiscV,
        "AArch64" => IsaKind::AArch64,
        other => {
            eprintln!("{path}: unknown ISA {other:?} in trace header");
            std::process::exit(1);
        }
    };
    let regions = reader.meta().regions.clone();
    let mut pass = FusionPass::new(isa, &regions);
    if let Err(e) = pass.consume(&mut reader) {
        eprintln!("{path}: CORRUPT — {e}");
        std::process::exit(1);
    }
    println!("{}", pass.report().summary());
}

fn diff(path_a: &str, path_b: &str) {
    let mut a = open(path_a);
    let mut b = open(path_b);
    if a.meta() != b.meta() {
        println!(
            "headers differ: {}/{}/{}/{} vs {}/{}/{}/{}",
            a.meta().workload, a.meta().compiler, a.meta().isa, a.meta().size,
            b.meta().workload, b.meta().compiler, b.meta().isa, b.meta().size,
        );
    }
    let mut counts_a = [0u64; InstGroup::ALL.len()];
    let mut counts_b = [0u64; InstGroup::ALL.len()];
    let mut first_divergence: Option<(u64, String, String)> = None;
    let mut i = 0u64;
    let (mut total_a, mut total_b) = (0u64, 0u64);
    loop {
        let ra = next_or_die(path_a, &mut a);
        let rb = next_or_die(path_b, &mut b);
        match (ra, rb) {
            (None, None) => break,
            (Some(ri), None) => {
                counts_a[ri.group.code() as usize] += 1;
                total_a += 1;
                if first_divergence.is_none() {
                    first_divergence =
                        Some((i, fmt_record(i, &ri), "<end of trace>".into()));
                }
                // Drain the longer trace so group totals stay meaningful.
                while let Some(ri) = next_or_die(path_a, &mut a) {
                    counts_a[ri.group.code() as usize] += 1;
                    total_a += 1;
                }
                break;
            }
            (None, Some(ri)) => {
                counts_b[ri.group.code() as usize] += 1;
                total_b += 1;
                if first_divergence.is_none() {
                    first_divergence =
                        Some((i, "<end of trace>".into(), fmt_record(i, &ri)));
                }
                while let Some(ri) = next_or_die(path_b, &mut b) {
                    counts_b[ri.group.code() as usize] += 1;
                    total_b += 1;
                }
                break;
            }
            (Some(ra), Some(rb)) => {
                counts_a[ra.group.code() as usize] += 1;
                counts_b[rb.group.code() as usize] += 1;
                total_a += 1;
                total_b += 1;
                if first_divergence.is_none() && ra != rb {
                    first_divergence = Some((i, fmt_record(i, &ra), fmt_record(i, &rb)));
                }
            }
        }
        i += 1;
    }
    println!("records: {total_a} vs {total_b}");
    match first_divergence {
        None => {
            println!("traces are identical");
        }
        Some((at, left, right)) => {
            println!("first divergence at record {at}:");
            println!("  {path_a}:");
            println!("  {left}");
            println!("  {path_b}:");
            println!("  {right}");
            println!("group deltas (b - a):");
            for (g, (&ca, &cb)) in
                InstGroup::ALL.iter().zip(counts_a.iter().zip(counts_b.iter()))
            {
                if ca != cb {
                    println!("  {g:<12?} {ca:>12} -> {cb:>12} ({:+})", cb as i64 - ca as i64);
                }
            }
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(|s| s.as_str()).unwrap_or_else(|| usage());
    let mut files: Vec<&String> = Vec::new();
    let mut limit = 50u64;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        if a == "--limit" {
            limit = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("--limit needs a non-negative integer");
                std::process::exit(2);
            });
        } else if a.starts_with("--") {
            eprintln!("unknown flag {a:?}");
            std::process::exit(2);
        } else {
            files.push(a);
        }
    }
    match (cmd, files.as_slice()) {
        ("info", [f]) => info(f),
        ("verify", [f]) => verify(f),
        ("dump", [f]) => dump(f, limit),
        ("diff", [a, b]) => diff(a, b),
        ("fuse", [f]) => fuse(f),
        _ => usage(),
    }
}
