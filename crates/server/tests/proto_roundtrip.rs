//! Wire-protocol conformance: every message round-trips exactly, every
//! malformed input is a typed error, and no byte stream — random or
//! adversarial — can panic the frame reader.

use std::io::Cursor;

use server::proto::{self, read_frame, FrameReader, ReadOutcome};
use server::{ClientMsg, JobSpec, ProtoError, ServerMsg, StatsBody, MAX_FRAME, PROTO_VERSION};

fn frame_bytes(j: &isacmp::telemetry::Json) -> Vec<u8> {
    let mut buf = Vec::new();
    proto::write_frame(&mut buf, j).expect("frame fits");
    buf
}

fn roundtrip_client(msg: ClientMsg) {
    let bytes = frame_bytes(&msg.to_json());
    let json = read_frame(&mut Cursor::new(bytes)).expect("readable frame");
    assert_eq!(ClientMsg::from_json(&json).expect("valid message"), msg);
}

fn roundtrip_server(msg: ServerMsg) {
    let bytes = frame_bytes(&msg.to_json());
    let json = read_frame(&mut Cursor::new(bytes)).expect("readable frame");
    assert_eq!(ServerMsg::from_json(&json).expect("valid message"), msg);
}

#[test]
fn client_messages_round_trip() {
    roundtrip_client(ClientMsg::Ping);
    roundtrip_client(ClientMsg::Stats);
    roundtrip_client(ClientMsg::Submit { job: JobSpec::matrix(isacmp::SizeClass::Test) });
    let full = JobSpec {
        kind: server::JobKind::Campaign,
        size: isacmp::SizeClass::Small,
        engine: isacmp::Engine::Legacy,
        retries: 3,
        deadline_secs: Some(2.5),
        inject: None,
        campaign: Some("42:6".into()),
        fusion: false,
    };
    roundtrip_client(ClientMsg::Submit { job: full });

    // A fused trace-analysis job: the `fusion` flag must survive the wire.
    let mut fused = JobSpec::matrix(isacmp::SizeClass::Test);
    fused.kind = server::JobKind::FusionReport;
    fused.fusion = true;
    roundtrip_client(ClientMsg::Submit { job: fused });
}

#[test]
fn server_messages_round_trip() {
    roundtrip_server(ServerMsg::Pong);
    roundtrip_server(ServerMsg::Busy { active: 64, limit: 64 });
    roundtrip_server(ServerMsg::Error { message: "no \"such\" job\nnewline".into() });
    roundtrip_server(ServerMsg::Shutdown { signal: "SIGTERM".into() });
    roundtrip_server(ServerMsg::Progress {
        done: 7,
        total: 20,
        cell: "dhrystone/gcc-12.2/RISC-V".into(),
        cached: true,
    });
    roundtrip_server(ServerMsg::Stats(StatsBody {
        jobs_total: 1,
        jobs_active: 2,
        cache_hits: 3,
        cache_misses: 4,
        cache_cells: 5,
        pool_workers: 6,
        pool_queued: 7,
        pool_executed: 8,
        pool_stolen: 9,
    }));
    // The matrix travels as a JSON string; the codec's escape round-trip
    // must preserve every byte, including quotes, newlines and unicode.
    roundtrip_server(ServerMsg::Result {
        hits: 19,
        misses: 1,
        failures: 0,
        matrix_json: "{\n  \"cells\": [\"\\u0001 weird \\\\ text\"]\n}\n".into(),
    });
}

#[test]
fn truncated_frames_are_typed_errors() {
    // A complete frame chopped anywhere mid-payload strands bytes.
    let bytes = frame_bytes(&ClientMsg::Ping.to_json());
    for cut in 1..bytes.len() {
        let err = read_frame(&mut Cursor::new(&bytes[..cut])).expect_err("truncated");
        match err {
            ProtoError::Truncated { have } => assert_eq!(have, cut),
            other => panic!("expected Truncated at cut {cut}, got {other:?}"),
        }
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_payload() {
    // Only the 4-byte prefix arrives: the reader must reject it without
    // waiting for (or buffering) a single payload byte.
    let prefix = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
    let err = read_frame(&mut Cursor::new(prefix)).expect_err("oversized");
    assert_eq!(err, ProtoError::Oversized { len: MAX_FRAME + 1, max: MAX_FRAME });
}

#[test]
fn zero_length_and_corrupt_payloads_are_typed_errors() {
    let err = read_frame(&mut Cursor::new(0u32.to_be_bytes().to_vec())).expect_err("zero length");
    assert!(matches!(err, ProtoError::BadFrame(_)), "zero-length: {err:?}");

    let mut corrupt = (7u32.to_be_bytes()).to_vec();
    corrupt.extend_from_slice(b"{nope!!");
    let err = read_frame(&mut Cursor::new(corrupt)).expect_err("corrupt json");
    assert!(matches!(err, ProtoError::BadJson(_)), "corrupt json: {err:?}");

    let mut not_utf8 = (4u32.to_be_bytes()).to_vec();
    not_utf8.extend_from_slice(&[0xff, 0xfe, 0x80, 0x80]);
    let err = read_frame(&mut Cursor::new(not_utf8)).expect_err("bad utf-8");
    assert!(matches!(err, ProtoError::BadFrame(_)), "bad utf-8: {err:?}");
}

#[test]
fn version_mismatch_is_typed() {
    let mut j = ClientMsg::Ping.to_json();
    if let isacmp::telemetry::Json::Obj(fields) = &mut j {
        for (k, v) in fields.iter_mut() {
            if k == "proto" {
                *v = isacmp::telemetry::Json::Num(99.0);
            }
        }
    }
    let err = ClientMsg::from_json(&j).expect_err("version mismatch");
    assert_eq!(err, ProtoError::VersionMismatch { got: 99, want: PROTO_VERSION });
}

#[test]
fn reader_keeps_partial_frames_across_idle_polls() {
    // Feed a frame one byte per poll through a reader that sees
    // WouldBlock between bytes — mid-frame bytes must survive Idle.
    struct Trickle {
        bytes: Vec<u8>,
        pos: usize,
        ready: bool,
    }
    impl std::io::Read for Trickle {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.bytes.len() {
                return Ok(0);
            }
            if !self.ready {
                self.ready = true;
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.ready = false;
            out[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }
    let msg = ServerMsg::Busy { active: 1, limit: 2 };
    let mut src = Trickle { bytes: frame_bytes(&msg.to_json()), pos: 0, ready: false };
    let mut reader = FrameReader::new();
    let mut idles = 0u32;
    loop {
        match reader.poll(&mut src).expect("no protocol error") {
            ReadOutcome::Frame(j) => {
                assert_eq!(ServerMsg::from_json(&j).unwrap(), msg);
                break;
            }
            ReadOutcome::Idle => idles += 1,
            ReadOutcome::Closed => panic!("closed before the frame completed"),
        }
        assert!(idles < 10_000, "reader made no progress");
    }
    assert!(idles > 0, "the trickle source should have idled at least once");
}

#[test]
fn two_frames_in_one_buffer_both_parse() {
    let mut bytes = frame_bytes(&ServerMsg::Pong.to_json());
    bytes.extend_from_slice(&frame_bytes(&ServerMsg::Error { message: "x".into() }.to_json()));
    let mut cursor = Cursor::new(bytes);
    let mut reader = FrameReader::new();
    let first = match reader.poll(&mut cursor).unwrap() {
        ReadOutcome::Frame(j) => ServerMsg::from_json(&j).unwrap(),
        other => panic!("expected first frame, got {other:?}"),
    };
    assert_eq!(first, ServerMsg::Pong);
    let second = match reader.poll(&mut cursor).unwrap() {
        ReadOutcome::Frame(j) => ServerMsg::from_json(&j).unwrap(),
        other => panic!("expected second frame, got {other:?}"),
    };
    assert_eq!(second, ServerMsg::Error { message: "x".into() });
    assert!(matches!(reader.poll(&mut cursor).unwrap(), ReadOutcome::Closed));
}

/// The same deterministic mixer the fault injector uses (simcore's
/// `splitmix64`), inlined: the crate doesn't re-export it.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[test]
fn fuzzed_byte_streams_never_panic_the_reader() {
    // 64 seeded random streams, up to 4 KiB each: every poll must return
    // a frame, idle/close, or a *typed* error — never panic, never loop.
    for seed in 0..64u64 {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) ^ 0xD15EA5E;
        let len = 64 + (splitmix64(&mut state) % 4096) as usize;
        let mut bytes = Vec::with_capacity(len);
        while bytes.len() < len {
            bytes.extend_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        // Half the streams get a plausible small length prefix up front so
        // the parser exercises payload paths, not just Oversized.
        if seed % 2 == 0 {
            let small = (splitmix64(&mut state) % 256) as u32;
            bytes[..4].copy_from_slice(&small.to_be_bytes());
        }
        let mut cursor = Cursor::new(bytes);
        let mut reader = FrameReader::new();
        for _ in 0..1024 {
            match reader.poll(&mut cursor) {
                Ok(ReadOutcome::Frame(j)) => {
                    // Whatever parsed must still go through message
                    // decoding without panicking.
                    let _ = ClientMsg::from_json(&j);
                    let _ = ServerMsg::from_json(&j);
                }
                Ok(ReadOutcome::Idle) => continue,
                Ok(ReadOutcome::Closed) => break,
                Err(_typed) => break,
            }
        }
    }
}

#[test]
fn job_spec_canonical_is_stable_and_discriminating() {
    let a = JobSpec::matrix(isacmp::SizeClass::Test);
    // The journal-recovery contract: the canonical string (and thus the
    // journal file name) must not drift between builds.
    assert_eq!(a.canonical(), "v1:matrix:test:block:r1:d-:i-:c-");
    let mut b = a.clone();
    b.retries = 2;
    assert_ne!(a.canonical(), b.canonical());
    let mut c = a.clone();
    c.engine = isacmp::Engine::Legacy;
    assert_ne!(a.canonical(), c.canonical());
    // The fusion axis must discriminate cache/journal identity, and it does
    // so with a suffix so every pre-fusion canonical string stays byte-stable.
    let mut f = a.clone();
    f.fusion = true;
    assert_ne!(a.canonical(), f.canonical());
    assert_eq!(f.canonical(), "v1:matrix:test:block:r1:d-:i-:c-:f1");
}

#[test]
fn job_spec_validation_rejects_kind_flag_disagreements() {
    let mut campaign_without_spec = JobSpec::matrix(isacmp::SizeClass::Test);
    campaign_without_spec.kind = server::JobKind::Campaign;
    assert!(campaign_without_spec.validate().is_err());

    let mut matrix_with_campaign = JobSpec::matrix(isacmp::SizeClass::Test);
    matrix_with_campaign.campaign = Some("1:2".into());
    assert!(matrix_with_campaign.validate().is_err());

    let mut armed_trace = JobSpec::matrix(isacmp::SizeClass::Test);
    armed_trace.kind = server::JobKind::TraceAnalysis;
    armed_trace.inject = Some("dhrystone/gcc-12.2/RISC-V:decode".into());
    assert!(armed_trace.validate().is_err());

    // Fusion measures the clean retired stream: fault injection is refused.
    let mut armed_fusion = JobSpec::matrix(isacmp::SizeClass::Test);
    armed_fusion.kind = server::JobKind::FusionReport;
    armed_fusion.fusion = true;
    armed_fusion.inject = Some("dhrystone/gcc-12.2/RISC-V:decode".into());
    assert!(armed_fusion.validate().is_err());

    // A fusion job without the fusion flag is self-contradictory.
    let mut unflagged_fusion = JobSpec::matrix(isacmp::SizeClass::Test);
    unflagged_fusion.kind = server::JobKind::FusionReport;
    assert!(unflagged_fusion.validate().is_err());

    let mut ok_fusion = JobSpec::matrix(isacmp::SizeClass::Test);
    ok_fusion.kind = server::JobKind::FusionReport;
    ok_fusion.fusion = true;
    assert!(ok_fusion.validate().is_ok());
}

#[test]
fn job_spec_from_args_uses_the_shared_cli_grammar() {
    let args: Vec<String> =
        ["--size", "test", "--retries", "2", "--campaign", "7:3"].iter().map(|s| s.to_string()).collect();
    let spec = JobSpec::from_args(&args).expect("valid args");
    assert_eq!(spec.kind, server::JobKind::Campaign); // inferred from --campaign
    assert_eq!(spec.size, isacmp::SizeClass::Test);
    assert_eq!(spec.retries, 2);
    assert_eq!(spec.campaign.as_deref(), Some("7:3"));

    let bad: Vec<String> = ["--size", "galactic"].iter().map(|s| s.to_string()).collect();
    assert!(JobSpec::from_args(&bad).is_err());

    // `--kind fusion` implies the fusion flag so the spec validates as built.
    let fused: Vec<String> =
        ["--kind", "fusion", "--size", "test"].iter().map(|s| s.to_string()).collect();
    let spec = JobSpec::from_args(&fused).expect("valid args");
    assert_eq!(spec.kind, server::JobKind::FusionReport);
    assert!(spec.fusion);
    assert!(spec.validate().is_ok());
}
