//! miniBUDE: molecular-docking energy evaluation (Bristol University
//! Docking Engine mini-app).
//!
//! The hot kernel evaluates, for every pose of the ligand, the interaction
//! energy of every (protein atom, ligand atom) pair: a distance (square
//! root), a steric/electrostatic term gated on cutoffs (conditional
//! selects) and an accumulation per pose. The paper runs the `bm1` deck
//! with 64 poses for one iteration.
//!
//! Substitution (DESIGN.md §2): the real mini-app rotates the ligand with
//! per-pose trigonometric transforms read from the input deck; we
//! precompute per-pose displacements and per-pair geometry on the host with
//! a seeded RNG — the deck's role — so the guest kernel performs the same
//! mix of FP operations (sub/mul/fma/sqrt/div/select/accumulate).
//!
//! Loop order is (pose, pair) with pairs innermost, matching the real
//! mini-app: each pose's energy accumulates over its own pair chain, and
//! the chains of successive poses are independent — which is exactly why
//! the paper measures ILP in the hundreds for miniBUDE (one pose's chain
//! per `npairs` instructions of work, with `nposes` chains overlappable).

use crate::SizeClass;
use kernelgen::*;

/// Deterministic SplitMix64 generator standing in for the input deck's
/// randomness; checksums are verified interpreter-vs-emulator, so any
/// reproducible stream works.
struct DeckRng {
    state: u64,
}

impl DeckRng {
    fn new(seed: u64) -> Self {
        DeckRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// miniBUDE parameters.
#[derive(Debug, Clone, Copy)]
pub struct BudeParams {
    /// Number of ligand poses (the paper uses 64).
    pub nposes: u64,
    /// Number of (protein, ligand) atom pairs evaluated per pose.
    pub npairs: u64,
}

impl BudeParams {
    /// Parameters per size class (Paper ~= bm1: 938 protein x 26 ligand
    /// atoms = 24,388 pairs, 64 poses).
    pub fn for_size(size: SizeClass) -> Self {
        match size {
            SizeClass::Test => BudeParams { nposes: 4, npairs: 32 },
            SizeClass::Small => BudeParams { nposes: 16, npairs: 512 },
            SizeClass::Paper => BudeParams { nposes: 64, npairs: 24_388 },
        }
    }
}

/// Build miniBUDE at the given size class.
pub fn build(size: SizeClass) -> KernelProgram {
    build_with(BudeParams::for_size(size))
}

/// Build miniBUDE with explicit parameters.
pub fn build_with(params: BudeParams) -> KernelProgram {
    let BudeParams { nposes, npairs } = params;
    let mut rng = DeckRng::new(0xB0DE);
    let mut p = KernelProgram::new("miniBUDE");

    // Per-pair geometry (protein atom minus untransformed ligand atom) and
    // force-field parameters, precomputed on the host like the input deck.
    let coord = |rng: &mut DeckRng, n: u64, span: f64| -> Vec<f64> {
        (0..n).map(|_| rng.range(-span, span)).collect()
    };
    let dx = p.array("pair_dx", npairs, ArrayInit::Values(coord(&mut rng, npairs, 8.0)));
    let dy = p.array("pair_dy", npairs, ArrayInit::Values(coord(&mut rng, npairs, 8.0)));
    let dz = p.array("pair_dz", npairs, ArrayInit::Values(coord(&mut rng, npairs, 8.0)));
    let charge: Vec<f64> = (0..npairs).map(|_| rng.range(-1.0, 1.0)).collect();
    let charge = p.array("pair_charge", npairs, ArrayInit::Values(charge));
    let radius: Vec<f64> = (0..npairs).map(|_| rng.range(1.0, 3.0)).collect();
    let radius = p.array("pair_radius", npairs, ArrayInit::Values(radius));

    // Per-pose rigid-body displacement (stand-in for the pose rotation).
    let tx = p.array("pose_tx", nposes, ArrayInit::Values(coord(&mut rng, nposes, 2.0)));
    let ty = p.array("pose_ty", nposes, ArrayInit::Values(coord(&mut rng, nposes, 2.0)));
    let tz = p.array("pose_tz", nposes, ArrayInit::Values(coord(&mut rng, nposes, 2.0)));

    let energies = p.array("energies", nposes, ArrayInit::Zero);

    // Access helpers: pose-indexed (outer dim), pair-indexed (inner dim).
    let by_pair = |arr| Access { arr, strides: vec![0, 1], offset: 0 };
    let by_pose = |arr| Access { arr, strides: vec![1, 0], offset: 0 };

    let t_dx = TempId(0);
    let t_dy = TempId(1);
    let t_dz = TempId(2);
    let t_dist = TempId(3);
    let t_distbb = TempId(4);

    // distbb = |pair_d + pose_t| - radius
    let dist2 = Expr::mul_add(
        Expr::Temp(t_dz),
        Expr::Temp(t_dz),
        Expr::mul_add(
            Expr::Temp(t_dy),
            Expr::Temp(t_dy),
            Expr::mul(Expr::Temp(t_dx), Expr::Temp(t_dx)),
        ),
    );

    // Electrostatic term: charge * (1 - distbb/cutoff) when inside cutoff.
    let cutoff = 8.0;
    let elec = Expr::Select {
        cmp: CmpOp::Lt,
        a: Box::new(Expr::Temp(t_distbb)),
        b: Box::new(Expr::Const(cutoff)),
        t: Box::new(Expr::mul(
            Expr::Load(by_pair(charge)),
            Expr::mul_add(
                Expr::Temp(t_distbb),
                Expr::Const(-1.0 / cutoff),
                Expr::Const(1.0),
            ),
        )),
        e: Box::new(Expr::Const(0.0)),
    };
    // Steric clash penalty: (2 - distbb)^2 when the surfaces overlap.
    let steric = Expr::Select {
        cmp: CmpOp::Lt,
        a: Box::new(Expr::Temp(t_distbb)),
        b: Box::new(Expr::Const(2.0)),
        t: Box::new(Expr::mul(
            Expr::sub(Expr::Const(2.0), Expr::Temp(t_distbb)),
            Expr::sub(Expr::Const(2.0), Expr::Temp(t_distbb)),
        )),
        e: Box::new(Expr::Const(0.0)),
    };

    let body = vec![
        Stmt::Def {
            temp: t_dx,
            expr: Expr::add(Expr::Load(by_pair(dx)), Expr::Load(by_pose(tx))),
        },
        Stmt::Def {
            temp: t_dy,
            expr: Expr::add(Expr::Load(by_pair(dy)), Expr::Load(by_pose(ty))),
        },
        Stmt::Def {
            temp: t_dz,
            expr: Expr::add(Expr::Load(by_pair(dz)), Expr::Load(by_pose(tz))),
        },
        Stmt::Def { temp: t_dist, expr: Expr::sqrt(dist2) },
        Stmt::Def {
            temp: t_distbb,
            expr: Expr::sub(Expr::Temp(t_dist), Expr::Load(by_pair(radius))),
        },
        Stmt::Store {
            access: by_pose(energies),
            value: Expr::add(Expr::Load(by_pose(energies)), Expr::add(elec, steric)),
        },
    ];

    p.kernel(Kernel {
        name: "fasten_main".into(),
        dims: vec![nposes, npairs],
        accs: vec![],
        body,
    });
    p.checksum_arrays = vec![energies];
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energies_are_finite_and_pose_dependent() {
        let p = build_with(BudeParams { nposes: 4, npairs: 64 });
        let r = kernelgen::interpret(&p, &Personality::gcc122());
        let e = &r.arrays["energies"];
        assert_eq!(e.len(), 4);
        for v in e {
            assert!(v.is_finite());
        }
        // Different poses must score differently.
        assert!(e.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn deterministic_build() {
        let a = kernelgen::interpret(&build(SizeClass::Test), &Personality::gcc122()).checksum;
        let b = kernelgen::interpret(&build(SizeClass::Test), &Personality::gcc122()).checksum;
        assert_eq!(a.to_bits(), b.to_bits(), "seeded RNG must be reproducible");
    }
}
