//! Regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p bench --bin make_tables -- all
//! cargo run --release -p bench --bin make_tables -- table1 --size small
//! ```
//!
//! Experiments: `table1`, `table2`, `fig1`, `fig2`, `ablation`, `pipeline`,
//! `all`. Figure data is written as CSV next to the printed tables; a full
//! JSON dump of the result matrix is written to `results/matrix.json`.
//!
//! Options (any experiment):
//! - `--metrics <path>`: write a structured telemetry report (per-stage
//!   span timings, counters, cell wall-time histogram, host MIPS) as JSON.
//! - `--progress[=N]`: emulation heartbeat on stderr every N retirements.
//! - `--events <path>`: drain the bounded structured event log (cell
//!   retries, watchdog trips, fault injections, trace-cache anomalies) to
//!   a JSONL file after the run.
//!
//! Fault tolerance (matrix experiments):
//! - `--strict`: exit 3 if any matrix cell failed (default: degrade to a
//!   partial matrix with `ERR(<kind>)` cells and exit 0).
//! - `--deadline-secs <s>`: per-cell wall-clock watchdog.
//! - `--retries <n>`: per-cell retries for retryable failures (default 1,
//!   hard-capped at 3).
//! - `--engine <legacy|block>`: retire loop for every cell (default
//!   `block`, the pre-decoded basic-block engine; both produce identical
//!   tables — see `tests/engine_differential.rs`).
//! - `--fusion`: arm the macro-op fusion pass as a third scenario axis
//!   (workload x compiler x ISA x fusion): every cell additionally
//!   reports per-pair-kind fusion counts and the effective (fused)
//!   dynamic path length. `table1`/`all` print the fused-vs-unfused
//!   comparison table, matrix runs write `results/fusion.csv`, and
//!   `results/fig1.csv` gains effective-count columns. Fused cells
//!   journal and resume separately from unfused ones; a shared
//!   `--trace-dir` serves both (traces are fusion-independent).
//! - `--inject <workload/compiler/isa:fault>`: deterministically inject a
//!   fault into matching cells, e.g. `STREAM/gcc-12.2/RISC-V:trap@1000`
//!   (fault grammar: `trap@N`, `fetch@N[:MASK]`, `read@N[:BIT]`).
//! - `--campaign <seed>:<n-faults>`: seeded multi-fault campaign injected
//!   into every cell; the sampled schedule is written to
//!   `results/campaign.json` for exact replay.
//! - `--resume <matrix.json>`: recover a prior run. If a cell journal
//!   (`results/matrix.journal.jsonl`) exists — i.e. the prior run was
//!   killed mid-matrix — every journaled outcome (cells *and* failures)
//!   is kept and only the unrecorded combinations run, re-arming any
//!   campaign from the journal's manifest; the finished matrix is
//!   byte-identical to an uninterrupted run. Otherwise the named matrix
//!   JSON is healed: cells kept, recorded failures re-run. Mutually
//!   exclusive with `--campaign`.
//!
//! Crash safety: matrix runs append each completed cell to
//! `results/matrix.journal.jsonl` (fsync per record) as they finish, so a
//! SIGKILL loses at most the cells in flight. SIGINT/SIGTERM drain the
//! worker pool gracefully, flush a partial `results/matrix.json`, keep the
//! journal, and exit 130. With `--deadline-secs`, a watchdog-tripped cell
//! leaves a resumable machine snapshot under `results/snapshots/` (see
//! `run_elf --restore`). All result files are written atomically and
//! durably (tmp + fsync + rename).
//!
//! Trace capture/replay (matrix experiments):
//! - `--trace-dir <dir>`: capture each cell's retired-instruction stream to
//!   `<dir>/{workload}-{compiler}-{isa}-{size}.trace` on the first run and
//!   replay the cached trace (no compile, no emulation) on later runs.
//!   Stale or corrupt traces fall back to a live run that recaptures.
//!   Ignored while `--inject`/`--campaign` are armed. The `--metrics`
//!   report carries `trace_replays`/`trace_captures` counters and a
//!   `trace_replay_speedup` gauge.

use std::fs;
use std::path::Path;
use std::sync::{Arc, Mutex};

use bench::cli;
use isacmp::{
    compile, continue_matrix, durable, read_journal, resume_matrix_journaled, run_cell,
    run_matrix_journaled, run_matrix_opts, run_pipeline, run_pipeline_full, shutdown,
    CacheConfig, CampaignManifest, CellJournal, ExperimentCell,
    IsaKind, JournalContents, MatrixOptions, Personality, PipelineConfig, ResultMatrix,
    SizeClass, Workload,
};

/// Where matrix runs journal completed cells for crash recovery. Fused
/// runs journal to a separate file: a fused and an unfused cell are
/// different measurements under different provenance keys, and a resume
/// must never splice one axis's outcomes into the other's matrix.
const JOURNAL_PATH: &str = "results/matrix.journal.jsonl";
const FUSED_JOURNAL_PATH: &str = "results/matrix-fused.journal.jsonl";

/// The crash journal for this run's scenario axis.
fn journal_path(fusion: bool) -> &'static str {
    if fusion {
        FUSED_JOURNAL_PATH
    } else {
        JOURNAL_PATH
    }
}

/// CLI parse failures are usage errors: report and exit 2.
fn or_usage<T>(r: Result<T, String>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// Build the matrix fault-tolerance options from the shared CLI grammar
/// (`bench::cli`). Also returns the sampled campaign manifest (when
/// `--campaign` is armed) so matrix runs can pin it into the cell
/// journal's `begin` record.
fn parse_matrix_opts(args: &[String]) -> (MatrixOptions, Option<CampaignManifest>) {
    let flags = or_usage(cli::MatrixFlags::parse(args));
    let mut campaign_manifest = None;
    let campaign = flags.campaign.map(|spec| {
        // Sample through the manifest so the schedule we inject is byte-
        // identical to the one recorded in results/campaign.json.
        let manifest = CampaignManifest::sample(spec);
        fs::create_dir_all("results").ok();
        write_out("results/campaign.json", manifest.to_json());
        eprintln!(
            "campaign: seed {:#x}, {} fault(s) per cell; manifest written to results/campaign.json",
            manifest.seed,
            manifest.specs.len()
        );
        let armed = or_usage(manifest.campaign());
        campaign_manifest = Some(manifest);
        armed
    });
    if let Some(dir) = &flags.trace_dir {
        fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("cannot create trace dir {}: {e}", dir.display());
            std::process::exit(2);
        });
    }
    // Watchdog-tripped cells leave a resumable snapshot behind whenever a
    // deadline is armed.
    let checkpoint_dir =
        flags.deadline.map(|_| std::path::PathBuf::from("results/snapshots"));
    let opts = MatrixOptions {
        deadline: flags.deadline,
        retries: flags.retries,
        inject: flags.inject,
        campaign,
        trace_dir: flags.trace_dir,
        heed_shutdown: true,
        checkpoint_dir,
        engine: flags.engine,
        fusion: flags.fusion,
    };
    (opts, campaign_manifest)
}

/// Atomic, durable write (tmp + fsync + rename) with an actionable
/// diagnostic instead of a panic: result files are never seen torn, even
/// across SIGKILL or power loss.
fn write_out(path: &str, contents: impl AsRef<[u8]>) {
    durable::durable_write(Path::new(path), contents.as_ref()).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
}

/// Measure one standalone cell (ablation rows); a failure here is fatal
/// but reported with its typed kind rather than a panic trace.
fn cell_or_die(w: Workload, isa: IsaKind, p: &Personality, size: SizeClass) -> ExperimentCell {
    run_cell(w, isa, p, size).unwrap_or_else(|e| {
        eprintln!("ERR({}) {} on {}: {e}", e.kind(), w.name(), isacmp::isa_label(isa));
        std::process::exit(1);
    })
}

/// How a `--resume` run recovers prior work: a crash journal (strict
/// continuation) or a finished-but-partial matrix JSON (healing).
enum ResumeSource {
    Journal(JournalContents),
    Matrix(ResultMatrix),
}

/// Open the cell journal for a matrix run, degrading to journal-less
/// operation (with a warning) if the path is unwritable. The journal is
/// `Arc`-shared because cells run as owned tasks on the process-wide
/// shard pool.
fn open_journal(
    jpath: &str,
    open: impl FnOnce() -> std::io::Result<CellJournal>,
) -> Option<Arc<Mutex<CellJournal>>> {
    match open() {
        Ok(j) => Some(Arc::new(Mutex::new(j))),
        Err(e) => {
            eprintln!("warning: cannot open {jpath}: {e} (running without crash journal)");
            None
        }
    }
}

fn matrix(
    size: SizeClass,
    opts: &MatrixOptions,
    manifest: Option<&CampaignManifest>,
    resume_from: Option<&ResumeSource>,
) -> ResultMatrix {
    fs::create_dir_all("results").ok();
    let total = 4 * Workload::ALL.len();
    let jpath = journal_path(opts.fusion);
    let m = match resume_from {
        Some(ResumeSource::Journal(j)) => {
            let done = j.matrix.cells.len() + j.matrix.failures.len();
            eprintln!(
                "resuming from journal: {done} recorded outcome(s) kept ({} cells, {} failures{}), {} cell(s) to run ...",
                j.matrix.cells.len(),
                j.matrix.failures.len(),
                if j.torn_tail { ", torn tail discarded" } else { "" },
                total.saturating_sub(done),
            );
            let journal = open_journal(jpath, || CellJournal::append_to(Path::new(jpath)));
            continue_matrix(&Workload::ALL, size, opts, &j.matrix, journal.as_ref())
        }
        Some(ResumeSource::Matrix(prior)) => {
            eprintln!(
                "resuming matrix: {} healthy cell(s) kept, {} failure(s) re-run ...",
                prior.cells.len(),
                prior.failures.len()
            );
            // Seed a fresh journal with the kept cells so a crash mid-heal
            // is itself journal-resumable.
            let journal = open_journal(jpath, || {
                let mut j = CellJournal::create(Path::new(jpath), size.name(), None)?;
                for c in &prior.cells {
                    j.record_cell(c)?;
                }
                Ok(j)
            });
            resume_matrix_journaled(prior, size, opts, journal.as_ref())
        }
        None => {
            eprintln!("running the experiment matrix (5 workloads x 2 compilers x 2 ISAs) ...");
            let journal = open_journal(jpath, || {
                CellJournal::create(Path::new(jpath), size.name(), manifest)
            });
            run_matrix_journaled(&Workload::ALL, size, opts, journal.as_ref())
        }
    };
    if !m.is_complete() {
        eprint!(
            "{} of {} cells failed (degraded matrix):\n{}",
            m.failures.len(),
            m.cells.len() + m.failures.len(),
            m.failure_summary()
        );
    }
    write_out("results/matrix.json", m.to_json());
    if m.has_fused() {
        write_out("results/fusion.csv", m.fusion_csv());
        eprintln!("fusion pair counts written to results/fusion.csv");
    }
    if shutdown::requested() {
        eprintln!(
            "interrupted: partial matrix ({} of {total} cells) flushed to results/matrix.json; \
             journal kept at {jpath} — finish with `--resume results/matrix.json`",
            m.cells.len() + m.failures.len(),
        );
    } else {
        // The durable matrix.json now carries everything; the journal has
        // served its purpose.
        let _ = fs::remove_file(jpath);
    }
    m
}

fn ablation(size: SizeClass) -> String {
    // Experiment E6: toggle the paper's section 3.3 idioms one at a time.
    let mut out = String::from(
        "Idiom ablation (STREAM, instruction counts; paper sections 3.3 and 7)\n",
    );
    let base = Personality::gcc122();
    let mut post = base;
    post.arm_post_index = true;
    let mut noreg = base;
    noreg.arm_register_offset = false;
    let mut nofuse = base;
    nofuse.riscv_fused_compare_branch = false;
    let rows: [(&str, IsaKind, Personality); 5] = [
        ("AArch64 gcc-12.2 (register offset)", IsaKind::AArch64, base),
        ("AArch64 + post-index (paper's 'optimal')", IsaKind::AArch64, post),
        ("AArch64 - register offset (pointer bump)", IsaKind::AArch64, noreg),
        ("RISC-V gcc-12.2 (fused compare-branch)", IsaKind::RiscV, base),
        ("RISC-V - fused compare-branch", IsaKind::RiscV, nofuse),
    ];
    let baseline =
        cell_or_die(Workload::Stream, IsaKind::AArch64, &base, size).path_length as f64;
    for (label, isa, p) in rows {
        let cell = cell_or_die(Workload::Stream, isa, &p, size);
        out.push_str(&format!(
            "{label:<44} {:>12}  ({:+.1}% vs AArch64 gcc-12.2)\n",
            cell.path_length,
            (cell.path_length as f64 / baseline - 1.0) * 100.0
        ));
    }

    // The GCC-version mechanism (constant-offset folding) on the most
    // offset-heavy benchmark: minisweep's upwind stencil pays an address
    // add per non-canonical access when folding is off (GCC 9.2).
    out.push_str("\nOffset-folding ablation (minisweep, RISC-V)\n");
    let mut unfolded = Personality::gcc122();
    unfolded.fold_const_offsets = false;
    let folded_cell = cell_or_die(Workload::Minisweep, IsaKind::RiscV, &Personality::gcc122(), size);
    let unfolded_cell = cell_or_die(Workload::Minisweep, IsaKind::RiscV, &unfolded, size);
    out.push_str(&format!(
        "{:<44} {:>12}\n{:<44} {:>12}  ({:+.1}%)\n",
        "folded offsets (gcc-12.2)",
        folded_cell.path_length,
        "unfolded offsets (gcc-9.2 mechanism)",
        unfolded_cell.path_length,
        (unfolded_cell.path_length as f64 / folded_cell.path_length as f64 - 1.0) * 100.0
    ));
    out
}

fn mix(size: SizeClass) -> String {
    // Extension E8: instruction mixes, critical-chain composition and
    // branch-prediction behaviour per ISA (GCC 12.2).
    use isacmp::{
        execute, BimodalPredictor, CacheConfig, CacheModel, CpComposition, DepDistance,
        GsharePredictor, InstMix, Observer,
    };
    let p = Personality::gcc122();
    let mut out = String::from(
        "Instruction mix, chain composition and branch prediction (GCC 12.2)
",
    );
    for w in Workload::ALL {
        for isa in [IsaKind::AArch64, IsaKind::RiscV] {
            let prog = w.build(size);
            let compiled = compile(&prog, isa, &p);
            let mut mixo = InstMix::new();
            let mut comp = CpComposition::new();
            let mut bim = BimodalPredictor::new(12);
            let mut gs = GsharePredictor::new(12, 12);
            let mut dep = DepDistance::new();
            let mut l1d = CacheModel::new(CacheConfig::l1d_32k());
            {
                let mut obs: Vec<&mut dyn Observer> =
                    vec![&mut mixo, &mut comp, &mut bim, &mut gs, &mut dep, &mut l1d];
                execute(&compiled, &mut obs);
            }
            out.push_str(&format!(
                "
--- {} / {} ---
{}",
                w.name(),
                isacmp::isa_label(isa),
                mixo.table()
            ));
            out.push_str(&format!(
                "branches: {:.1}% of path ({:.1}% taken); bimodal {:.2}% | gshare {:.2}% accurate ({:.2} | {:.2} MPKI)
",
                100.0 * mixo.branch_fraction(),
                100.0 * mixo.taken_rate(),
                100.0 * bim.stats().accuracy(),
                100.0 * gs.stats().accuracy(),
                bim.stats().mpki(mixo.total()),
                gs.stats().mpki(mixo.total()),
            ));
            let comp_str: Vec<String> = comp
                .composition()
                .iter()
                .take(4)
                .map(|(g, c)| format!("{g:?}:{c}"))
                .collect();
            out.push_str(&format!(
                "critical chain (len {}): {} (fp share {:.0}%)\n",
                comp.critical_path(),
                comp_str.join(" "),
                100.0 * comp.fp_share()
            ));
            out.push_str(&format!(
                "dependency distance: mean {:.2}; {:.1}% within 4, {:.1}% within 16 (paper 6.2: larger spread favours small-window ILP)\n",
                dep.mean(),
                100.0 * dep.fraction_within(4),
                100.0 * dep.fraction_within(16),
            ));
            out.push_str(&format!(
                "L1D (32K/8w/64B): {:.2}% hit rate over {} accesses; AMAT {:.2} cycles (hit 4, miss 100)\n",
                100.0 * l1d.stats().hit_rate(),
                l1d.stats().accesses,
                l1d.stats().amat(4.0, 100.0),
            ));
        }
    }
    out
}

fn pipeline(size: SizeClass) -> String {
    // Experiment E7 (Future Work): realistic-resource runtime estimates.
    let mut out = String::from(
        "Pipeline estimates (GCC 12.2, TX2 latencies, cycles; paper section 8)\n",
    );
    out.push_str(&format!(
        "{:<12} {:<8} {:>14} {:>14} {:>15} {:>14}\n",
        "workload", "isa", "in-order(A55)", "OoO(TX2)", "OoO(Firestorm)", "OoO(TX2)+L1D"
    ));
    let p = Personality::gcc122();
    for w in Workload::ALL {
        for isa in [IsaKind::AArch64, IsaKind::RiscV] {
            let ino = run_pipeline(w, isa, &p, size, PipelineConfig::a55(), false);
            let tx2 = run_pipeline(w, isa, &p, size, PipelineConfig::tx2(), true);
            let fs = run_pipeline(w, isa, &p, size, PipelineConfig::firestorm(), true);
            let cached = run_pipeline_full(
                w,
                isa,
                &p,
                size,
                PipelineConfig::tx2(),
                true,
                Some((CacheConfig::l1d_32k(), 100)),
            );
            out.push_str(&format!(
                "{:<12} {:<8} {:>14} {:>14} {:>15} {:>14}\n",
                w.name(),
                isacmp::isa_label(isa),
                ino.cycles,
                tx2.cycles,
                fs.cycles,
                cached.cycles
            ));
        }
    }
    out
}

fn check(size: SizeClass, opts: &MatrixOptions) -> String {
    // Automated verification of the paper's qualitative findings (the
    // EXPERIMENTS.md tables, executable). Exit status reflects the verdict.
    let m = run_matrix_opts(&Workload::ALL, size, opts);
    if !m.is_complete() {
        eprint!(
            "shape checks need a complete matrix; {} cells failed:\n{}",
            m.failures.len(),
            m.failure_summary()
        );
        std::process::exit(1);
    }
    let mut out = String::from("Paper-shape checks (see EXPERIMENTS.md)\n");
    let mut ok = true;
    let mut check = |label: &str, pass: bool, detail: String| {
        out.push_str(&format!("{} {:<58} {}\n", if pass { "PASS" } else { "FAIL" }, label, detail));
        ok &= pass;
    };

    let cell = |w: &str, c: &str, i: &str| m.get(w, c, i).expect("complete matrix").clone();

    // E1: compiler deltas on STREAM.
    let (a92, a122) = (cell("STREAM", "gcc-9.2", "AArch64"), cell("STREAM", "gcc-12.2", "AArch64"));
    let (r92, r122) = (cell("STREAM", "gcc-9.2", "RISC-V"), cell("STREAM", "gcc-12.2", "RISC-V"));
    check(
        "gcc 9.2 -> 12.2 shortens AArch64 STREAM (loop-exit cmp)",
        a92.path_length > a122.path_length,
        format!("{} -> {}", a92.path_length, a122.path_length),
    );
    check(
        "RISC-V STREAM identical across compilers",
        r92.path_length == r122.path_length,
        format!("{} / {}", r92.path_length, r122.path_length),
    );
    // E1: path lengths within band for every workload.
    let mut worst: f64 = 1.0;
    for w in m.workloads() {
        let a = cell(&w, "gcc-12.2", "AArch64").path_length as f64;
        let r = cell(&w, "gcc-12.2", "RISC-V").path_length as f64;
        worst = worst.max(r / a).max(a / r);
    }
    check(
        "path lengths within ~20% across ISAs (gcc 12.2)",
        worst <= 1.25,
        format!("worst ratio {worst:.3}"),
    );
    // E2: STREAM CP equal across ISAs.
    check(
        "STREAM critical paths equal across ISAs",
        (a122.critical_path as f64 / r122.critical_path as f64 - 1.0).abs() < 0.01,
        format!("{} vs {}", a122.critical_path, r122.critical_path),
    );
    // E3: scaled CP >= CP everywhere; STREAM scales ~6x.
    let factor = a122.scaled_cp as f64 / a122.critical_path as f64;
    check(
        "STREAM scaled CP ~ 6x unit CP (fadd chain)",
        (4.0..=6.5).contains(&factor),
        format!("x{factor:.2}"),
    );
    // E4: RISC-V leads at the smallest window on STREAM.
    let small_r = r122.windows.first().map(|&(_, _, ilp)| ilp).unwrap_or(0.0);
    let small_a = a122.windows.first().map(|&(_, _, ilp)| ilp).unwrap_or(0.0);
    check(
        "RISC-V has more ILP at window 4 (STREAM)",
        small_r > small_a,
        format!("{small_r:.2} vs {small_a:.2}"),
    );
    out.push_str(if ok { "\nAll shape checks passed.\n" } else { "\nSHAPE CHECKS FAILED.\n" });
    if !ok {
        eprint!("{out}");
        std::process::exit(1);
    }
    out
}

fn main() {
    // Graceful interruption: SIGINT/SIGTERM raise a flag the retire loop
    // and worker pool poll, so an interrupted run flushes partial results
    // and keeps its journal instead of dying mid-write.
    shutdown::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(|s| s.as_str()).unwrap_or("all");
    let size = or_usage(cli::parse_size(&args));
    let metrics_path = cli::flag_value(&args, "--metrics");
    // Reject contradictory flags before parse_matrix_opts samples (and
    // writes) a campaign manifest for a run that will never happen.
    if cli::has_flag(&args, "--campaign") && cli::has_flag(&args, "--resume") {
        eprintln!("--campaign and --resume are mutually exclusive");
        std::process::exit(2);
    }
    let (mut matrix_opts, campaign_manifest) = parse_matrix_opts(&args);
    let strict = cli::has_flag(&args, "--strict");
    let resume_src = cli::flag_value(&args, "--resume").map(|p| {
        // A surviving journal means the prior run was killed mid-matrix;
        // it supersedes the (older or partial) matrix JSON. The journal
        // consulted is the one for this run's scenario axis: a fused
        // resume never splices unfused outcomes in, and vice versa.
        let jpath = journal_path(matrix_opts.fusion);
        if Path::new(jpath).exists() {
            match read_journal(Path::new(jpath)) {
                Ok(j) => {
                    if j.size != size.name() {
                        eprintln!(
                            "journal at {jpath} was recorded at --size {}, this run asks --size {}; \
                             re-run with the matching size or delete the journal",
                            j.size,
                            size.name()
                        );
                        std::process::exit(2);
                    }
                    return ResumeSource::Journal(j);
                }
                Err(e) => {
                    eprintln!("cannot recover journal {jpath}: {e}");
                    eprintln!("delete it to resume from the matrix JSON instead");
                    std::process::exit(2);
                }
            }
        }
        let text = fs::read_to_string(&p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(2);
        });
        let prior = ResultMatrix::from_json(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {p}: {e}");
            std::process::exit(2);
        });
        ResumeSource::Matrix(prior)
    });
    // A journal-resumed campaign sweep re-arms the exact recorded
    // schedule from the begin record.
    if let Some(ResumeSource::Journal(j)) = &resume_src {
        if let Some(m) = &j.campaign {
            eprintln!(
                "campaign re-armed from journal: seed {:#x}, {} fault(s) per cell",
                m.seed,
                m.specs.len()
            );
            matrix_opts.campaign = Some(m.campaign().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            }));
        }
    }
    cli::apply_progress_env(&args);

    let tel = isacmp::telemetry::global();
    let run_start = std::time::Instant::now();
    let main_span = tel.enter(what);

    // Failed matrix cells seen by any experiment this run; under
    // `--strict` they flip the exit code (after results and the metrics
    // report are written).
    let mut failed_cells = 0usize;
    let mut matrix = |size| {
        let m = matrix(size, &matrix_opts, campaign_manifest.as_ref(), resume_src.as_ref());
        failed_cells += m.failures.len();
        m
    };

    match what {
        "table1" => {
            let m = matrix(size);
            write_out("results/basicCPResult.txt", m.cp_result_txt(false));
            println!("{}", m.table1());
            if m.has_fused() {
                println!("{}", m.fusion_table());
            }
        }
        "table2" => {
            let m = matrix(size);
            write_out("results/scaledCPResult.txt", m.cp_result_txt(true));
            println!("{}", m.table2());
        }
        "fig1" => {
            let m = matrix(size);
            write_out("results/fig1.csv", m.fig1_csv());
            println!("{}", m.fig1_csv());
            eprintln!("written to results/fig1.csv");
        }
        "fig2" => {
            let m = matrix(size);
            write_out("results/fig2.csv", m.fig2_csv());
            write_out("results/fig2.gnuplot", m.fig2_gnuplot());
            write_out("results/windowAverages.txt", m.window_averages_txt());
            println!("{}", m.fig2_csv());
            eprintln!(
                "written to results/fig2.csv (+ fig2.gnuplot, windowAverages.txt)"
            );
        }
        "ablation" => println!("{}", ablation(size)),
        "elves" => {
            // Emit every (workload, compiler, ISA) binary as a static ELF —
            // the equivalent of the paper artifact's precompiled binaries.
            fs::create_dir_all("results/bin").unwrap_or_else(|e| {
                eprintln!("cannot create results/bin: {e}");
                std::process::exit(1);
            });
            for w in Workload::ALL {
                for p in [Personality::gcc92(), Personality::gcc122()] {
                    for (isa, tag) in [(IsaKind::AArch64, "aarch64"), (IsaKind::RiscV, "riscv64")]
                    {
                        let c = compile(&w.build(size), isa, &p);
                        let path = format!(
                            "results/bin/{}-{}-{tag}.elf",
                            w.name().to_lowercase(),
                            p.label()
                        );
                        write_out(&path, c.program.to_elf());
                        println!("{path}");
                    }
                }
            }
        }
        "pipeline" => println!("{}", pipeline(size)),
        "mix" => println!("{}", mix(size)),
        "check" => println!("{}", check(size, &matrix_opts)),
        "all" => {
            let m = matrix(size);
            write_out("results/basicCPResult.txt", m.cp_result_txt(false));
            write_out("results/scaledCPResult.txt", m.cp_result_txt(true));
            println!("{}", m.table1());
            println!("{}", m.table2());
            if m.has_fused() {
                println!("{}", m.fusion_table());
            }
            write_out("results/fig1.csv", m.fig1_csv());
            write_out("results/fig2.csv", m.fig2_csv());
            write_out("results/fig2.gnuplot", m.fig2_gnuplot());
            write_out("results/windowAverages.txt", m.window_averages_txt());
            eprintln!(
                "figure data written to results/fig1.csv, fig2.csv, fig2.gnuplot, windowAverages.txt"
            );
            println!("{}", ablation(size));
            println!("{}", pipeline(size));
            println!("{}", mix(size));
        }
        other => {
            eprintln!(
                "unknown experiment {other}; one of: table1 table2 fig1 fig2 ablation pipeline mix elves check all"
            );
            std::process::exit(2);
        }
    }

    drop(main_span);
    if let Some(path) = metrics_path {
        let retired = tel.counter("instructions_retired");
        let mut report = isacmp::RunReport::new(&format!("make_tables {}", args.join(" ")))
            .with_run(run_start.elapsed(), retired, None)
            .finish_from(tel);
        let (replays, captures) = (tel.counter("trace_replays"), tel.counter("trace_captures"));
        if replays + captures > 0 {
            let speedup = tel
                .metrics_snapshot()
                .gauge("trace_replay_speedup")
                .map(|s| format!(", replay speedup x{s:.1}"))
                .unwrap_or_default();
            report = report.note(&format!(
                "trace cache: {replays} replay(s), {captures} capture(s){speedup}"
            ));
        }
        report
            .write_file(std::path::Path::new(&path))
            .unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
        eprintln!("telemetry report written to {path} ({})", report.summary());
    }
    if let Some(path) = cli::flag_value(&args, "--events") {
        match tel.events().drain_to_file(std::path::Path::new(&path)) {
            Ok(0) => eprintln!("structured events: none emitted"),
            Ok(n) => eprintln!("structured events: {n} written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    // After all artifacts (results, metrics, events) are flushed, an
    // interrupted run reports the conventional SIGINT exit status.
    if shutdown::requested() {
        eprintln!("interrupted by signal; partial results flushed (exit {})",
            shutdown::EXIT_INTERRUPTED);
        std::process::exit(shutdown::EXIT_INTERRUPTED);
    }
    if strict && failed_cells > 0 {
        eprintln!("--strict: {failed_cells} matrix cell(s) failed");
        std::process::exit(3);
    }
}
