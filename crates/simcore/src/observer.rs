//! Retirement-stream observers.

use crate::retire::RetiredInst;

/// An analysis pass that consumes the retirement stream.
///
/// The emulation core calls [`Observer::on_retire`] once per retired
/// instruction, in program order. Observers are deliberately streaming: the
/// paper's traces run to billions of instructions, so analyses must not
/// buffer the whole trace (the windowed critical path keeps only a bounded
/// ring of the most recent records).
pub trait Observer {
    /// Called after each instruction retires.
    fn on_retire(&mut self, ri: &RetiredInst);

    /// Called once when the program exits; default does nothing.
    fn on_finish(&mut self) {}

    /// Whether this observer needs the per-instruction
    /// [`Observer::on_retire`] stream. The block engine only takes its
    /// fast path (no retirement records materialized) when **every**
    /// attached observer returns `false`; those observers then receive
    /// [`Observer::on_batch`] instead. Defaults to `true`, so existing
    /// observers keep exact per-instruction semantics unchanged.
    fn wants_retires(&self) -> bool {
        true
    }

    /// Called with the size of each retired batch when the block engine
    /// runs its fast path (see [`Observer::wants_retires`]). An observer
    /// returning `false` from `wants_retires` must account for `n`
    /// retirements here; the default does nothing.
    fn on_batch(&mut self, n: u64) {
        let _ = n;
    }
}

/// A no-op observer, useful for raw speed measurements.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline]
    fn on_retire(&mut self, _ri: &RetiredInst) {}

    /// Needs nothing per instruction, so it never forces the slow path.
    fn wants_retires(&self) -> bool {
        false
    }
}

/// An observer that simply counts retirements; the cheapest possible
/// path-length measurement when no per-kernel breakdown is needed.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingObserver {
    /// Number of instructions retired so far.
    pub retired: u64,
}

impl Observer for CountingObserver {
    #[inline]
    fn on_retire(&mut self, _ri: &RetiredInst) {
        self.retired += 1;
    }

    /// Counting needs only batch sizes, not records.
    fn wants_retires(&self) -> bool {
        false
    }

    #[inline]
    fn on_batch(&mut self, n: u64) {
        self.retired += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retire::{InstGroup, RetiredInst};

    #[test]
    fn counting_observer_counts() {
        let mut c = CountingObserver::default();
        let ri = RetiredInst::new(0, InstGroup::IntAlu);
        for _ in 0..5 {
            c.on_retire(&ri);
        }
        assert_eq!(c.retired, 5);
    }
}
