//! Simulation errors.

/// Errors raised while loading or executing a guest program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A load touched memory no store or loader section ever wrote.
    UnmappedRead {
        /// Faulting guest address.
        addr: u64,
    },
    /// The fetch unit could not decode the instruction word.
    Decode {
        /// PC of the undecodable word.
        pc: u64,
        /// The raw 32-bit instruction word.
        word: u32,
        /// Human-readable reason.
        msg: String,
    },
    /// The guest invoked a syscall number the trap layer does not implement.
    UnimplementedSyscall {
        /// PC of the trap instruction.
        pc: u64,
        /// Syscall number (Linux generic ABI).
        num: u64,
    },
    /// The PC became misaligned (not 4-byte aligned).
    MisalignedPc {
        /// The bad PC value.
        pc: u64,
    },
    /// The run exceeded the caller-supplied instruction budget.
    InstructionBudgetExceeded {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// The run exceeded the caller-supplied wall-clock deadline (the
    /// watchdog complement to the instruction budget: it also catches
    /// guests that are *slow* rather than merely long).
    WallClockExceeded {
        /// The deadline that was exceeded, in milliseconds.
        limit_ms: u64,
        /// Instructions retired when the watchdog fired.
        retired: u64,
    },
    /// The run was stopped by an operator shutdown request (SIGINT /
    /// SIGTERM via [`crate::shutdown`]): the guest did not fault, the
    /// harness stopped it at a clean step boundary so its state could be
    /// checkpointed.
    Interrupted {
        /// Instructions retired when the shutdown flag was observed.
        retired: u64,
    },
    /// The guest executed an explicit trap/breakpoint instruction.
    Breakpoint {
        /// PC of the breakpoint.
        pc: u64,
    },
    /// The guest raised an arithmetic or semantic fault (e.g. an atomic on a
    /// misaligned address).
    Fault {
        /// PC of the faulting instruction.
        pc: u64,
        /// Human-readable reason.
        msg: String,
    },
}

impl SimError {
    /// True for the two watchdog variants (instruction budget and wall
    /// clock): the guest did not fault, the harness gave up on it.
    pub fn is_watchdog(&self) -> bool {
        matches!(
            self,
            SimError::InstructionBudgetExceeded { .. } | SimError::WallClockExceeded { .. }
        )
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnmappedRead { addr } => {
                write!(f, "read of unmapped guest memory at {addr:#x}")
            }
            SimError::Decode { pc, word, msg } => {
                write!(f, "undecodable instruction {word:#010x} at pc {pc:#x}: {msg}")
            }
            SimError::UnimplementedSyscall { pc, num } => {
                write!(f, "unimplemented syscall {num} at pc {pc:#x}")
            }
            SimError::MisalignedPc { pc } => write!(f, "misaligned pc {pc:#x}"),
            SimError::InstructionBudgetExceeded { budget } => {
                write!(f, "instruction budget of {budget} exceeded")
            }
            SimError::WallClockExceeded { limit_ms, retired } => {
                write!(f, "wall-clock deadline of {limit_ms} ms exceeded after {retired} retirements")
            }
            SimError::Interrupted { retired } => {
                write!(f, "interrupted by shutdown request after {retired} retirements")
            }
            SimError::Breakpoint { pc } => write!(f, "breakpoint at pc {pc:#x}"),
            SimError::Fault { pc, msg } => write!(f, "fault at pc {pc:#x}: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}
