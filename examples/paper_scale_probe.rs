//! Measure one workload cell at the paper's full parameters (used to fill
//! EXPERIMENTS.md's paper-scale section; STREAM at N=10M x 10 iterations
//! retires ~2.5G instructions).
//!
//! ```sh
//! cargo run --release --example paper_scale_probe -- STREAM
//! ```

use isacmp::{run_cell, IsaKind, Personality, SizeClass, Workload};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "STREAM".into());
    let w = Workload::ALL
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(&name))
        .expect("workload name");
    for isa in [IsaKind::AArch64, IsaKind::RiscV] {
        let t = std::time::Instant::now();
        let cell = match run_cell(w, isa, &Personality::gcc122(), SizeClass::Paper) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("ERR({}) {}: {e}", e.kind(), w.name());
                std::process::exit(1);
            }
        };
        println!(
            "{} {}: path={} cp={} scaled={} ilp={:.0} runtime2GHz={:.2}ms wall={:.0}s",
            cell.workload,
            cell.isa,
            cell.path_length,
            cell.critical_path,
            cell.scaled_cp,
            cell.ilp(),
            cell.runtime_ms(),
            t.elapsed().as_secs_f64()
        );
    }
}
