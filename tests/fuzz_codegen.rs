//! Whole-stack differential fuzzing: random kernel-IR programs are
//! compiled by both ISA back-ends under both compiler personalities and
//! executed in the emulator; every run must reproduce the reference
//! interpreter's checksum bit-for-bit.
//!
//! This exercises, in one property: IR validation, both instruction
//! selectors, register allocation, the assemblers and encoders, both
//! decoders and executors, the loader, the syscall layer and the checksum
//! plumbing.
//!
//! Generated programs avoid NaN-producing operations (division and raw
//! square roots), and every statement's value is clamped to ±1e10 so
//! repeated feedback through arrays cannot overflow to infinity (inf-inf
//! would mint NaNs, whose min/max handling legitimately differs between
//! the interpreter's number semantics and each ISA's architectural rules).
//! Everything else must agree bit-exactly.

use isa_aarch64::AArch64Executor;
use isa_riscv::RiscVExecutor;
use kernelgen::{
    compile, interpret, Access, ArrayId, ArrayInit, BinOp, CmpOp, Expr, Kernel, KernelProgram,
    Personality, Stmt, TempId, UnOp,
};
use proptest::prelude::*;
use simcore::{CpuState, EmulationCore, IsaKind};

const NUM_ARRAYS: usize = 3;
const ARRAY_LEN: u64 = 24;

/// A recipe for one expression node; depth-limited at construction.
#[derive(Debug, Clone)]
enum ExprSpec {
    Const(i32),
    Temp(u8),
    Load { arr: u8, offset: u8 },
    Un(u8, Box<ExprSpec>),
    Bin(u8, Box<ExprSpec>, Box<ExprSpec>),
    MulAdd(Box<ExprSpec>, Box<ExprSpec>, Box<ExprSpec>),
    Select(u8, Box<ExprSpec>, Box<ExprSpec>, Box<ExprSpec>, Box<ExprSpec>),
}

fn expr_spec() -> impl Strategy<Value = ExprSpec> {
    let leaf = prop_oneof![
        (-4i32..5).prop_map(ExprSpec::Const),
        (0u8..3).prop_map(ExprSpec::Temp),
        (0u8..NUM_ARRAYS as u8, 0u8..3).prop_map(|(arr, offset)| ExprSpec::Load { arr, offset }),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (0u8..2, inner.clone()).prop_map(|(op, a)| ExprSpec::Un(op, Box::new(a))),
            (0u8..5, inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| ExprSpec::Bin(op, Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| {
                ExprSpec::MulAdd(Box::new(a), Box::new(b), Box::new(c))
            }),
            (0u8..3, inner.clone(), inner.clone(), inner.clone(), inner).prop_map(
                |(cmp, a, b, t, e)| ExprSpec::Select(
                    cmp,
                    Box::new(a),
                    Box::new(b),
                    Box::new(t),
                    Box::new(e)
                )
            ),
        ]
    })
}

#[derive(Debug, Clone)]
enum StmtSpec {
    Def(ExprSpec),
    Store { arr: u8, offset: u8, value: ExprSpec },
    Accum { op: u8, value: ExprSpec },
}

fn stmt_spec() -> impl Strategy<Value = StmtSpec> {
    prop_oneof![
        expr_spec().prop_map(StmtSpec::Def),
        (0u8..NUM_ARRAYS as u8, 0u8..3, expr_spec())
            .prop_map(|(arr, offset, value)| StmtSpec::Store { arr, offset, value }),
        (0u8..2, expr_spec()).prop_map(|(op, value)| StmtSpec::Accum { op, value }),
    ]
}

#[derive(Debug, Clone)]
struct ProgramSpec {
    dims: Vec<u64>,
    stmts: Vec<StmtSpec>,
    repeat: u64,
    use_acc: bool,
}

fn program_spec() -> impl Strategy<Value = ProgramSpec> {
    (
        prop_oneof![
            (2u64..6).prop_map(|n| vec![n]),
            (2u64..4, 2u64..5).prop_map(|(a, b)| vec![a, b]),
            (2u64..3, 2u64..3, 2u64..4).prop_map(|(a, b, c)| vec![a, b, c]),
        ],
        proptest::collection::vec(stmt_spec(), 1..5),
        1u64..3,
        any::<bool>(),
    )
        .prop_map(|(dims, stmts, repeat, use_acc)| ProgramSpec { dims, stmts, repeat, use_acc })
}

/// Realise a spec as a valid IR program (defines temps before use, keeps
/// accesses in bounds, avoids NaN-producing operations).
fn realise(spec: &ProgramSpec) -> KernelProgram {
    let mut p = KernelProgram::new("fuzz");
    let arrays: Vec<ArrayId> = (0..NUM_ARRAYS)
        .map(|i| {
            p.array(
                &format!("a{i}"),
                ARRAY_LEN,
                ArrayInit::Linear { start: 0.25 + i as f64, step: 0.5 },
            )
        })
        .collect();
    let out = p.array("out", 1, ArrayInit::Zero);

    let ndim = spec.dims.len();
    // Unit stride on the innermost dim only: max index = offset + dim-1;
    // keep offsets+trips within ARRAY_LEN.
    let strides: Vec<i64> = (0..ndim).map(|d| if d == ndim - 1 { 1 } else { 2 }).collect();
    let span: i64 = spec
        .dims
        .iter()
        .zip(strides.iter())
        .map(|(&t, &s)| (t as i64 - 1) * s)
        .sum();
    let max_off = (ARRAY_LEN as i64 - 1 - span).max(0) as u8;

    let access = |arr: u8, offset: u8| Access {
        arr: arrays[arr as usize % NUM_ARRAYS],
        strides: strides.clone(),
        offset: (offset % (max_off + 1)) as i64,
    };

    fn build(e: &ExprSpec, defined: u8, access: &dyn Fn(u8, u8) -> Access) -> Expr {
        match e {
            ExprSpec::Const(v) => Expr::Const(*v as f64 * 0.5),
            ExprSpec::Temp(t) => {
                if defined == 0 {
                    Expr::Const(1.0)
                } else {
                    Expr::Temp(TempId((*t % defined) as usize))
                }
            }
            ExprSpec::Load { arr, offset } => Expr::Load(access(*arr, *offset)),
            ExprSpec::Un(op, a) => {
                let a = build(a, defined, access);
                match op % 2 {
                    0 => Expr::neg(a),
                    _ => Expr::abs(a),
                }
            }
            ExprSpec::Bin(op, a, b) => {
                let a = build(a, defined, access);
                let b = build(b, defined, access);
                match op % 5 {
                    0 => Expr::add(a, b),
                    1 => Expr::sub(a, b),
                    2 => Expr::mul(a, b),
                    3 => Expr::min(a, b),
                    _ => Expr::max(a, b),
                }
            }
            ExprSpec::MulAdd(a, b, c) => Expr::mul_add(
                build(a, defined, access),
                build(b, defined, access),
                build(c, defined, access),
            ),
            ExprSpec::Select(cmp, a, b, t, e2) => Expr::Select {
                cmp: match cmp % 3 {
                    0 => CmpOp::Lt,
                    1 => CmpOp::Le,
                    _ => CmpOp::Eq,
                },
                a: Box::new(build(a, defined, access)),
                b: Box::new(build(b, defined, access)),
                t: Box::new(build(t, defined, access)),
                e: Box::new(build(e2, defined, access)),
            },
        }
    }

    // Clamp to a magnitude where even a 27-leaf product of clamped values
    // (or of accumulators, which sum a few dozen clamped terms) stays far
    // below f64::MAX: no infinities, hence no NaNs.
    let clamp = |v: Expr| Expr::min(Expr::max(v, Expr::Const(-1e6)), Expr::Const(1e6));

    let mut body = Vec::new();
    let mut defined: u8 = 0;
    for s in &spec.stmts {
        match s {
            StmtSpec::Def(e) => {
                if defined < 3 {
                    body.push(Stmt::Def {
                        temp: TempId(defined as usize),
                        expr: clamp(build(e, defined, &access)),
                    });
                    defined += 1;
                }
            }
            StmtSpec::Store { arr, offset, value } => {
                body.push(Stmt::Store {
                    access: access(*arr, *offset),
                    value: clamp(build(value, defined, &access)),
                });
            }
            StmtSpec::Accum { op, value } => {
                if spec.use_acc {
                    body.push(Stmt::Accum {
                        acc: kernelgen::AccId(0),
                        op: if op % 2 == 0 { BinOp::Add } else { BinOp::Max },
                        value: clamp(build(value, defined, &access)),
                    });
                }
            }
        }
    }
    if body.is_empty() {
        body.push(Stmt::Store { access: access(0, 0), value: Expr::Const(1.0) });
    }
    let accs = if spec.use_acc {
        vec![kernelgen::AccDecl { init: 0.0, store_to: Some((out, 0)) }]
    } else {
        vec![]
    };
    p.kernel(Kernel { name: "fuzzed".into(), dims: spec.dims.clone(), accs, body });
    p.repeat = spec.repeat;
    p.checksum_arrays = vec![arrays[0], arrays[1], arrays[2], out];
    // Sanity: the realised program must validate.
    p.validate();
    // Avoid the Sqrt NaN path entirely (arch NaN propagation differs);
    // keep UnOp::Sqrt out of the generated set (see module docs).
    let _ = UnOp::Sqrt;
    p
}

fn run_on(prog: &KernelProgram, isa: IsaKind, p: &Personality) -> f64 {
    let c = compile(prog, isa, p);
    let mut st = CpuState::new();
    c.program.load(&mut st).unwrap();
    match isa {
        IsaKind::RiscV => EmulationCore::new(RiscVExecutor::new()).run(&mut st, &mut []).unwrap(),
        IsaKind::AArch64 => {
            EmulationCore::new(AArch64Executor::new()).run(&mut st, &mut []).unwrap()
        }
    };
    st.mem.read_f64(c.checksum_addr).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_programs_agree_everywhere(spec in program_spec()) {
        let prog = realise(&spec);
        for personality in [Personality::gcc92(), Personality::gcc122()] {
            let expected = interpret(&prog, &personality).checksum;
            prop_assert!(expected.is_finite(), "generator must keep values finite");
            for isa in [IsaKind::RiscV, IsaKind::AArch64] {
                let got = run_on(&prog, isa, &personality);
                prop_assert_eq!(
                    got.to_bits(),
                    expected.to_bits(),
                    "{:?} {} mismatch: got {}, expected {} for {:?}",
                    isa,
                    personality.label(),
                    got,
                    expected,
                    spec
                );
            }
        }
    }

    #[test]
    fn ablation_personalities_preserve_semantics(spec in program_spec()) {
        let prog = realise(&spec);
        let base = interpret(&prog, &Personality::gcc122()).checksum;
        let mut post = Personality::gcc122();
        post.arm_post_index = true;
        let mut noreg = Personality::gcc122();
        noreg.arm_register_offset = false;
        let mut nofuse = Personality::gcc122();
        nofuse.riscv_fused_compare_branch = false;
        prop_assert_eq!(run_on(&prog, IsaKind::AArch64, &post).to_bits(), base.to_bits());
        prop_assert_eq!(run_on(&prog, IsaKind::AArch64, &noreg).to_bits(), base.to_bits());
        prop_assert_eq!(run_on(&prog, IsaKind::RiscV, &nofuse).to_bits(), base.to_bits());
    }
}
