//! A64 logical (bitmask) immediates.
//!
//! Logical immediate operands are encoded as `(N, immr, imms)` describing a
//! repeating pattern of rotated runs of ones. This module implements both
//! directions of the transformation as specified by the Arm ARM's
//! `DecodeBitMasks` pseudocode.

/// Decode `(n, immr, imms)` into the 64-bit (or 32-bit, replicated) mask.
///
/// Returns `None` for reserved encodings.
pub fn decode_bitmask(sf: bool, n: u32, immr: u32, imms: u32) -> Option<u64> {
    // Element size is determined by the highest set bit of (N : NOT(imms)).
    let combined = ((n << 6) | (!imms & 0x3F)) & 0x7F;
    if combined == 0 {
        return None;
    }
    let esize = 1u32 << (31 - combined.leading_zeros());
    if esize > 64 || (!sf && esize > 32) {
        return None;
    }
    let levels = esize - 1;
    let s = imms & levels;
    let r = immr & levels;
    if s == levels {
        return None; // all-ones run is reserved
    }
    let ones = s + 1;
    // Element: `ones` low bits set, rotated right by r.
    let mut elem: u64 = if ones == 64 { u64::MAX } else { (1u64 << ones) - 1 };
    if r != 0 {
        let e = esize as u64;
        elem = ((elem >> r) | (elem << (e as u32 - r))) & if esize == 64 { u64::MAX } else { (1u64 << esize) - 1 };
    }
    // Replicate to 64 bits.
    let mut mask = 0u64;
    let mut shift = 0;
    while shift < 64 {
        mask |= elem << shift;
        shift += esize;
    }
    if !sf {
        mask &= 0xFFFF_FFFF;
    }
    Some(mask)
}

/// Encode a value as a logical immediate, returning `(n, immr, imms)`.
///
/// Returns `None` if the value is not representable (e.g. 0, all-ones, or a
/// non-repeating pattern).
pub fn encode_bitmask(sf: bool, value: u64) -> Option<(u32, u32, u32)> {
    let value = if sf { value } else { value & 0xFFFF_FFFF };
    let width: u32 = if sf { 64 } else { 32 };
    if !sf && value >> 32 != 0 {
        return None;
    }
    // 0 and all-ones are not encodable.
    let all = if sf { u64::MAX } else { 0xFFFF_FFFF };
    if value == 0 || value == all {
        return None;
    }
    // Find the smallest element size whose replication yields the value.
    let mut esize = width;
    let mut e = width / 2;
    while e >= 2 {
        let mask = if e == 64 { u64::MAX } else { (1u64 << e) - 1 };
        let elem = value & mask;
        // Check replication.
        let mut reproduced = 0u64;
        let mut shift = 0;
        while shift < width {
            reproduced |= elem << shift;
            shift += e;
        }
        let full = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        if reproduced & full == value {
            esize = e;
        }
        e /= 2;
    }
    let mask = if esize == 64 { u64::MAX } else { (1u64 << esize) - 1 };
    let elem = value & mask;
    // The element must be a rotated run of ones: count ones, find rotation.
    let ones = elem.count_ones();
    if ones == 0 || ones == esize {
        return None;
    }
    // Rotate left until we get the canonical low-run form.
    let rot_left = |v: u64, r: u32| -> u64 {
        if r == 0 {
            v & mask
        } else {
            ((v << r) | (v >> (esize - r))) & mask
        }
    };
    let canonical = if ones == 64 { u64::MAX } else { (1u64 << ones) - 1 };
    let mut r_found = None;
    for r in 0..esize {
        if rot_left(elem, r) == canonical {
            // elem == canonical rotated right by r
            r_found = Some(r);
            break;
        }
    }
    let r = r_found?;
    let s = ones - 1;
    let n: u32 = u32::from(esize == 64);
    // imms top bits encode the element size: 0b0xxxxx style.
    let imms = match esize {
        64 => s,
        32 => s,
        16 => 0b100000 | s,
        8 => 0b110000 | s,
        4 => 0b111000 | s,
        2 => 0b111100 | s,
        _ => return None,
    };
    // For 32-bit element in sf=1 context imms is just s with pattern 0b0xxxxx
    // (N=0). The esize is implied by the highest bit pattern; 64 needs N=1.
    let imms = if esize == 32 { s & 0x1F } else { imms };
    Some((n, r % esize, imms & 0x3F))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple_masks() {
        for &v in &[
            0xFFu64,
            0xFF00,
            0x0F0F_0F0F_0F0F_0F0F,
            0x5555_5555_5555_5555,
            0xFFFF_0000_FFFF_0000,
            1,
            0x8000_0000_0000_0000,
            0x7FFF_FFFF_FFFF_FFFF,
            0xFFFF_FFFF_0000_0000,
            0x3FF8,
        ] {
            let (n, immr, imms) = encode_bitmask(true, v)
                .unwrap_or_else(|| panic!("{v:#x} should be encodable"));
            let back = decode_bitmask(true, n, immr, imms).unwrap();
            assert_eq!(back, v, "round trip of {v:#x}");
        }
    }

    #[test]
    fn unencodable_values() {
        assert!(encode_bitmask(true, 0).is_none());
        assert!(encode_bitmask(true, u64::MAX).is_none());
        assert!(encode_bitmask(true, 0xDEAD_BEEF).is_none(), "not a rotated run");
        assert!(encode_bitmask(false, 0x1_0000_0000).is_none(), "out of 32-bit range");
    }

    #[test]
    fn round_trip_32bit() {
        for &v in &[0xFFu64, 0xFFFF_0000, 0x0000_FFFF, 0xF0F0_F0F0, 0x8000_0000] {
            let (n, immr, imms) = encode_bitmask(false, v)
                .unwrap_or_else(|| panic!("{v:#x} should be encodable (32-bit)"));
            assert_eq!(n, 0, "32-bit immediates have N=0");
            let back = decode_bitmask(false, n, immr, imms).unwrap();
            assert_eq!(back, v, "round trip of {v:#x}");
        }
    }

    #[test]
    fn golden_decodings() {
        // and x0, x0, #0xff -> N=1? No: 0xff = esize 64? GNU encodes 0xff as
        // N=0, immr=0, imms=0b000111 with esize 8 replicated... decode both
        // conventions and confirm the values match.
        assert_eq!(decode_bitmask(true, 1, 0, 0b000111).unwrap(), 0xFF);
        // 0x5555...55: esize 2, s=0, r=0 -> imms=0b111100.
        assert_eq!(
            decode_bitmask(true, 0, 0, 0b111100).unwrap(),
            0x5555_5555_5555_5555
        );
    }

    #[test]
    fn exhaustive_encode_decode_consistency() {
        // For every valid (n, immr, imms): decode then re-encode then
        // re-decode must give the same mask.
        let mut checked = 0;
        for n in 0..=1u32 {
            for immr in 0..64u32 {
                for imms in 0..64u32 {
                    if let Some(mask) = decode_bitmask(true, n, immr, imms) {
                        let (n2, immr2, imms2) = encode_bitmask(true, mask)
                            .unwrap_or_else(|| panic!("decoded mask {mask:#x} must re-encode"));
                        let mask2 = decode_bitmask(true, n2, immr2, imms2).unwrap();
                        assert_eq!(mask, mask2);
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 1000, "should cover many encodings, got {checked}");
    }
}
