//! Replayable campaign manifests (`results/campaign.json`).
//!
//! A [`CampaignManifest`] is the serialized record of a seeded fault
//! schedule: the seed and sampling window it was drawn from, plus the
//! canonical spec string of every sampled plan (explicit masks and bit
//! indices — see `FaultPlan::spec`). Writing the manifest next to
//! `matrix.json` makes a coverage sweep a first-class artifact: the exact
//! schedule can be re-armed later with [`CampaignManifest::campaign`],
//! independent of any future change to the sampler.

use simcore::{Campaign, CampaignSpec, FaultPlan, DEFAULT_CAMPAIGN_WINDOW};
use telemetry::Json;

/// Serialized record of one sampled fault campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignManifest {
    /// SplitMix64 seed the schedule was drawn from.
    pub seed: u64,
    /// Sampling window the injection points were drawn over.
    pub window: u64,
    /// Canonical `FaultPlan::spec` string per scheduled fault.
    pub specs: Vec<String>,
}

impl CampaignManifest {
    /// Sample a schedule for a parsed `--campaign <seed>:<n>` spec, using
    /// the default window.
    pub fn sample(spec: CampaignSpec) -> Self {
        Self::sample_with_window(spec, DEFAULT_CAMPAIGN_WINDOW)
    }

    /// Sample a schedule over an explicit injection-point window.
    pub fn sample_with_window(spec: CampaignSpec, window: u64) -> Self {
        let campaign = Campaign::sample(spec.seed, spec.n_faults, window);
        CampaignManifest {
            seed: spec.seed,
            window,
            specs: campaign.plans().iter().map(FaultPlan::spec).collect(),
        }
    }

    /// Re-arm the recorded schedule as a live [`Campaign`].
    pub fn campaign(&self) -> Result<Campaign, String> {
        let plans = self
            .specs
            .iter()
            .map(|s| FaultPlan::parse(s))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("campaign manifest: {e}"))?;
        Ok(Campaign::from_plans(plans, self.seed))
    }

    /// Serialise. The seed is written as a hex *string* — a JSON number
    /// (f64) cannot hold every u64 seed exactly.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("seed", Json::Str(format!("{:#x}", self.seed))),
            ("window", Json::Num(self.window as f64)),
            (
                "faults",
                Json::Arr(self.specs.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
        ])
        .pretty()
    }

    /// Parse a manifest written by [`CampaignManifest::to_json`].
    pub fn from_json(s: &str) -> Result<Self, String> {
        let j = Json::parse(s)?;
        let seed_str = j
            .get("seed")
            .and_then(Json::as_str)
            .ok_or("campaign manifest: missing \"seed\" string")?;
        let seed = seed_str
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .or_else(|| seed_str.parse().ok())
            .ok_or_else(|| format!("campaign manifest: bad seed {seed_str:?}"))?;
        let window = j
            .get("window")
            .and_then(Json::as_u64)
            .ok_or("campaign manifest: missing \"window\"")?;
        let specs = j
            .get("faults")
            .and_then(Json::as_arr)
            .ok_or("campaign manifest: missing \"faults\" array")?
            .iter()
            .map(|v| v.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()
            .ok_or("campaign manifest: non-string fault spec")?;
        Ok(CampaignManifest { seed, window, specs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let spec = CampaignSpec { seed: 42, n_faults: 6 };
        let a = CampaignManifest::sample(spec);
        let b = CampaignManifest::sample(spec);
        assert_eq!(a, b);
        assert_eq!(a.specs.len(), 6);
        let c = CampaignManifest::sample(CampaignSpec { seed: 43, n_faults: 6 });
        assert_ne!(a.specs, c.specs);
    }

    #[test]
    fn json_round_trip_preserves_full_u64_seed() {
        let m = CampaignManifest::sample(CampaignSpec { seed: u64::MAX - 1, n_faults: 4 });
        let back = CampaignManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.seed, u64::MAX - 1);
    }

    #[test]
    fn manifest_re_arms_the_exact_schedule() {
        let m = CampaignManifest::sample(CampaignSpec { seed: 9, n_faults: 5 });
        let c = m.campaign().unwrap();
        assert_eq!(c.len(), 5);
        assert_eq!(c.seed(), 9);
        let respec: Vec<String> = c.plans().iter().map(FaultPlan::spec).collect();
        assert_eq!(respec, m.specs, "specs survive the round trip verbatim");
    }

    #[test]
    fn malformed_manifests_are_rejected() {
        assert!(CampaignManifest::from_json("{}").is_err());
        assert!(CampaignManifest::from_json("{\"seed\": \"zz\", \"window\": 4, \"faults\": []}").is_err());
        let bad_spec =
            "{\"seed\": \"0x1\", \"window\": 4, \"faults\": [\"bogus@1\"]}";
        let m = CampaignManifest::from_json(bad_spec).unwrap();
        assert!(m.campaign().is_err(), "unknown fault kinds fail at re-arm time");
    }
}
