//! The single-cycle emulation core.

use crate::error::SimError;
use crate::observer::Observer;
use crate::retire::RetiredInst;
use crate::state::CpuState;

/// Implemented by each ISA back-end: fetch, decode and execute exactly one
/// instruction, mutating `state` and describing what happened.
pub trait IsaExecutor {
    /// Execute the instruction at `state.pc`, advance the PC, and return the
    /// retirement record.
    fn step(&self, state: &mut CpuState) -> Result<RetiredInst, SimError>;

    /// Disassemble the 32-bit word at `pc` (for diagnostics and the paper's
    /// listing-level analysis).
    fn disassemble(&self, word: u32) -> String;

    /// Short ISA name ("rv64g", "aarch64").
    fn name(&self) -> &'static str;
}

/// Statistics from one emulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions retired (the paper's *path length*).
    pub retired: u64,
    /// Guest exit status.
    pub exit_code: i64,
}

/// The paper's measurement vehicle: SimEng's "emulation core model which
/// executes each instruction atomically to completion in a single cycle".
///
/// Runs a loaded [`CpuState`] until the guest exits, feeding every retired
/// instruction to the supplied observers in program order.
pub struct EmulationCore<E: IsaExecutor> {
    exec: E,
    /// Abort if this many instructions retire without the guest exiting.
    max_insts: u64,
}

impl<E: IsaExecutor> EmulationCore<E> {
    /// Default runaway-guest budget (no paper workload at our scaled sizes
    /// exceeds a few hundred million instructions).
    pub const DEFAULT_BUDGET: u64 = 5_000_000_000;

    /// Create a core around an ISA executor.
    pub fn new(exec: E) -> Self {
        EmulationCore {
            exec,
            max_insts: Self::DEFAULT_BUDGET,
        }
    }

    /// Override the instruction budget.
    pub fn with_budget(mut self, max_insts: u64) -> Self {
        self.max_insts = max_insts;
        self
    }

    /// Access the underlying executor (e.g. for disassembly).
    pub fn executor(&self) -> &E {
        &self.exec
    }

    /// Run until the guest exits, pumping retirements through `observers`.
    pub fn run(
        &self,
        state: &mut CpuState,
        observers: &mut [&mut dyn Observer],
    ) -> Result<RunStats, SimError> {
        let mut retired: u64 = 0;
        while state.exited.is_none() {
            if retired >= self.max_insts {
                return Err(SimError::InstructionBudgetExceeded {
                    budget: self.max_insts,
                });
            }
            let ri = self.exec.step(state)?;
            retired += 1;
            for obs in observers.iter_mut() {
                obs.on_retire(&ri);
            }
        }
        state.instret = retired;
        for obs in observers.iter_mut() {
            obs.on_finish();
        }
        Ok(RunStats {
            retired,
            exit_code: state.exited.unwrap_or(0),
        })
    }
}
