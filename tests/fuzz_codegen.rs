//! Whole-stack differential fuzzing: random kernel-IR programs are
//! compiled by both ISA back-ends under both compiler personalities and
//! executed in the emulator; every run must reproduce the reference
//! interpreter's checksum bit-for-bit.
//!
//! This exercises, in one property: IR validation, both instruction
//! selectors, register allocation, the assemblers and encoders, both
//! decoders and executors, the loader, the syscall layer and the checksum
//! plumbing.
//!
//! Generated programs avoid NaN-producing operations (division and raw
//! square roots), and every statement's value is clamped to ±1e10 so
//! repeated feedback through arrays cannot overflow to infinity (inf-inf
//! would mint NaNs, whose min/max handling legitimately differs between
//! the interpreter's number semantics and each ISA's architectural rules).
//! Everything else must agree bit-exactly.

use isa_aarch64::AArch64Executor;
use isa_riscv::RiscVExecutor;
use kernelgen::{
    compile, interpret, Access, ArrayId, ArrayInit, BinOp, CmpOp, Expr, Kernel, KernelProgram,
    Personality, Stmt, TempId, UnOp,
};
use proptest::prelude::*;
use simcore::{CpuState, EmulationCore, IsaKind};

const NUM_ARRAYS: usize = 3;
const ARRAY_LEN: u64 = 24;

/// A recipe for one expression node; depth-limited at construction.
#[derive(Debug, Clone)]
enum ExprSpec {
    Const(i32),
    Temp(u8),
    Load { arr: u8, offset: u8 },
    Un(u8, Box<ExprSpec>),
    Bin(u8, Box<ExprSpec>, Box<ExprSpec>),
    MulAdd(Box<ExprSpec>, Box<ExprSpec>, Box<ExprSpec>),
    Select(u8, Box<ExprSpec>, Box<ExprSpec>, Box<ExprSpec>, Box<ExprSpec>),
}

fn expr_spec() -> impl Strategy<Value = ExprSpec> {
    let leaf = prop_oneof![
        (-4i32..5).prop_map(ExprSpec::Const),
        (0u8..3).prop_map(ExprSpec::Temp),
        (0u8..NUM_ARRAYS as u8, 0u8..3).prop_map(|(arr, offset)| ExprSpec::Load { arr, offset }),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (0u8..2, inner.clone()).prop_map(|(op, a)| ExprSpec::Un(op, Box::new(a))),
            (0u8..5, inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| ExprSpec::Bin(op, Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| {
                ExprSpec::MulAdd(Box::new(a), Box::new(b), Box::new(c))
            }),
            (0u8..3, inner.clone(), inner.clone(), inner.clone(), inner).prop_map(
                |(cmp, a, b, t, e)| ExprSpec::Select(
                    cmp,
                    Box::new(a),
                    Box::new(b),
                    Box::new(t),
                    Box::new(e)
                )
            ),
        ]
    })
}

#[derive(Debug, Clone)]
enum StmtSpec {
    Def(ExprSpec),
    Store { arr: u8, offset: u8, value: ExprSpec },
    Accum { op: u8, value: ExprSpec },
}

fn stmt_spec() -> impl Strategy<Value = StmtSpec> {
    prop_oneof![
        expr_spec().prop_map(StmtSpec::Def),
        (0u8..NUM_ARRAYS as u8, 0u8..3, expr_spec())
            .prop_map(|(arr, offset, value)| StmtSpec::Store { arr, offset, value }),
        (0u8..2, expr_spec()).prop_map(|(op, value)| StmtSpec::Accum { op, value }),
    ]
}

#[derive(Debug, Clone)]
struct ProgramSpec {
    dims: Vec<u64>,
    stmts: Vec<StmtSpec>,
    repeat: u64,
    use_acc: bool,
}

fn program_spec() -> impl Strategy<Value = ProgramSpec> {
    (
        prop_oneof![
            (2u64..6).prop_map(|n| vec![n]),
            (2u64..4, 2u64..5).prop_map(|(a, b)| vec![a, b]),
            (2u64..3, 2u64..3, 2u64..4).prop_map(|(a, b, c)| vec![a, b, c]),
        ],
        proptest::collection::vec(stmt_spec(), 1..5),
        1u64..3,
        any::<bool>(),
    )
        .prop_map(|(dims, stmts, repeat, use_acc)| ProgramSpec { dims, stmts, repeat, use_acc })
}

/// Realise a spec as a valid IR program (defines temps before use, keeps
/// accesses in bounds, avoids NaN-producing operations).
fn realise(spec: &ProgramSpec) -> KernelProgram {
    let mut p = KernelProgram::new("fuzz");
    let arrays: Vec<ArrayId> = (0..NUM_ARRAYS)
        .map(|i| {
            p.array(
                &format!("a{i}"),
                ARRAY_LEN,
                ArrayInit::Linear { start: 0.25 + i as f64, step: 0.5 },
            )
        })
        .collect();
    let out = p.array("out", 1, ArrayInit::Zero);

    let ndim = spec.dims.len();
    // Unit stride on the innermost dim only: max index = offset + dim-1;
    // keep offsets+trips within ARRAY_LEN.
    let strides: Vec<i64> = (0..ndim).map(|d| if d == ndim - 1 { 1 } else { 2 }).collect();
    let span: i64 = spec
        .dims
        .iter()
        .zip(strides.iter())
        .map(|(&t, &s)| (t as i64 - 1) * s)
        .sum();
    let max_off = (ARRAY_LEN as i64 - 1 - span).max(0) as u8;

    let access = |arr: u8, offset: u8| Access {
        arr: arrays[arr as usize % NUM_ARRAYS],
        strides: strides.clone(),
        offset: (offset % (max_off + 1)) as i64,
    };

    fn build(e: &ExprSpec, defined: u8, access: &dyn Fn(u8, u8) -> Access) -> Expr {
        match e {
            ExprSpec::Const(v) => Expr::Const(*v as f64 * 0.5),
            ExprSpec::Temp(t) => {
                if defined == 0 {
                    Expr::Const(1.0)
                } else {
                    Expr::Temp(TempId((*t % defined) as usize))
                }
            }
            ExprSpec::Load { arr, offset } => Expr::Load(access(*arr, *offset)),
            ExprSpec::Un(op, a) => {
                let a = build(a, defined, access);
                match op % 2 {
                    0 => Expr::neg(a),
                    _ => Expr::abs(a),
                }
            }
            ExprSpec::Bin(op, a, b) => {
                let a = build(a, defined, access);
                let b = build(b, defined, access);
                match op % 5 {
                    0 => Expr::add(a, b),
                    1 => Expr::sub(a, b),
                    2 => Expr::mul(a, b),
                    3 => Expr::min(a, b),
                    _ => Expr::max(a, b),
                }
            }
            ExprSpec::MulAdd(a, b, c) => Expr::mul_add(
                build(a, defined, access),
                build(b, defined, access),
                build(c, defined, access),
            ),
            ExprSpec::Select(cmp, a, b, t, e2) => Expr::Select {
                cmp: match cmp % 3 {
                    0 => CmpOp::Lt,
                    1 => CmpOp::Le,
                    _ => CmpOp::Eq,
                },
                a: Box::new(build(a, defined, access)),
                b: Box::new(build(b, defined, access)),
                t: Box::new(build(t, defined, access)),
                e: Box::new(build(e2, defined, access)),
            },
        }
    }

    // Clamp to a magnitude where even a 27-leaf product of clamped values
    // (or of accumulators, which sum a few dozen clamped terms) stays far
    // below f64::MAX: no infinities, hence no NaNs.
    let clamp = |v: Expr| Expr::min(Expr::max(v, Expr::Const(-1e6)), Expr::Const(1e6));

    let mut body = Vec::new();
    let mut defined: u8 = 0;
    for s in &spec.stmts {
        match s {
            StmtSpec::Def(e) => {
                if defined < 3 {
                    body.push(Stmt::Def {
                        temp: TempId(defined as usize),
                        expr: clamp(build(e, defined, &access)),
                    });
                    defined += 1;
                }
            }
            StmtSpec::Store { arr, offset, value } => {
                body.push(Stmt::Store {
                    access: access(*arr, *offset),
                    value: clamp(build(value, defined, &access)),
                });
            }
            StmtSpec::Accum { op, value } => {
                if spec.use_acc {
                    body.push(Stmt::Accum {
                        acc: kernelgen::AccId(0),
                        op: if op % 2 == 0 { BinOp::Add } else { BinOp::Max },
                        value: clamp(build(value, defined, &access)),
                    });
                }
            }
        }
    }
    if body.is_empty() {
        body.push(Stmt::Store { access: access(0, 0), value: Expr::Const(1.0) });
    }
    let accs = if spec.use_acc {
        vec![kernelgen::AccDecl { init: 0.0, store_to: Some((out, 0)) }]
    } else {
        vec![]
    };
    p.kernel(Kernel { name: "fuzzed".into(), dims: spec.dims.clone(), accs, body });
    p.repeat = spec.repeat;
    p.checksum_arrays = vec![arrays[0], arrays[1], arrays[2], out];
    // Sanity: the realised program must validate.
    p.validate();
    // Avoid the Sqrt NaN path entirely (arch NaN propagation differs);
    // keep UnOp::Sqrt out of the generated set (see module docs).
    let _ = UnOp::Sqrt;
    p
}

fn run_on(prog: &KernelProgram, isa: IsaKind, p: &Personality) -> f64 {
    let c = compile(prog, isa, p);
    let mut st = CpuState::new();
    c.program.load(&mut st).unwrap();
    match isa {
        IsaKind::RiscV => EmulationCore::new(RiscVExecutor::new()).run(&mut st, &mut []).unwrap(),
        IsaKind::AArch64 => {
            EmulationCore::new(AArch64Executor::new()).run(&mut st, &mut []).unwrap()
        }
    };
    st.mem.read_f64(c.checksum_addr).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_programs_agree_everywhere(spec in program_spec()) {
        let prog = realise(&spec);
        for personality in [Personality::gcc92(), Personality::gcc122()] {
            let expected = interpret(&prog, &personality).checksum;
            prop_assert!(expected.is_finite(), "generator must keep values finite");
            for isa in [IsaKind::RiscV, IsaKind::AArch64] {
                let got = run_on(&prog, isa, &personality);
                prop_assert_eq!(
                    got.to_bits(),
                    expected.to_bits(),
                    "{:?} {} mismatch: got {}, expected {} for {:?}",
                    isa,
                    personality.label(),
                    got,
                    expected,
                    spec
                );
            }
        }
    }

    #[test]
    fn ablation_personalities_preserve_semantics(spec in program_spec()) {
        let prog = realise(&spec);
        let base = interpret(&prog, &Personality::gcc122()).checksum;
        let mut post = Personality::gcc122();
        post.arm_post_index = true;
        let mut noreg = Personality::gcc122();
        noreg.arm_register_offset = false;
        let mut nofuse = Personality::gcc122();
        nofuse.riscv_fused_compare_branch = false;
        prop_assert_eq!(run_on(&prog, IsaKind::AArch64, &post).to_bits(), base.to_bits());
        prop_assert_eq!(run_on(&prog, IsaKind::AArch64, &noreg).to_bits(), base.to_bits());
        prop_assert_eq!(run_on(&prog, IsaKind::RiscV, &nofuse).to_bits(), base.to_bits());
    }
}

/// Engine-differential fuzzing over *raw instruction sequences*: DeckRng-
/// generated branch-dense, self-branching, and block-boundary-straddling
/// code must retire identical (pc, instret, state-hash) streams on the
/// legacy per-instruction loop and the pre-decoded block engine — with
/// observers attached (block slow path) and bare (block fast path). On
/// the first divergence the failing sequence is shrunk by hand (prefix
/// truncation, then per-instruction nop substitution; the in-tree
/// proptest shim has no shrinker) before the panic reports it.
mod engine_fuzz {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    use simcore::{CpuState, EmulationCore, Engine, IsaExecutor, Observer, RetiredInst};

    const CODE_BASE: u64 = 0x1_0000;
    const SCRATCH: u64 = 0x8_0000;
    /// Retirement budget: bounds self-branching loops on both engines at
    /// the same count, so infinite loops are comparable, not fatal.
    const BUDGET: u64 = 4096;

    /// splitmix64, mirroring the workloads crate's (private) `DeckRng` so
    /// the generated decks here follow the repo's one blessed PRNG.
    struct DeckRng {
        state: u64,
    }

    impl DeckRng {
        fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        fn chance(&mut self, pct: u64) -> bool {
            self.below(100) < pct
        }
    }

    /// One generation profile per satellite concern.
    #[derive(Clone, Copy)]
    struct Profile {
        len: usize,
        branch_pct: u64,
        mem_pct: u64,
    }

    fn profile_for(seed: u64) -> Profile {
        match seed % 3 {
            // Branch-dense (including self-branches): every block is short.
            0 => Profile { len: 32, branch_pct: 40, mem_pct: 0 },
            // Straight-line runs longer than MAX_BLOCK_LEN (64): straddles
            // block boundaries, so fuel splits mid-run.
            1 => Profile { len: 96 + (seed as usize % 65), branch_pct: 4, mem_pct: 10 },
            // Mixed ALU/memory/branch soup.
            _ => Profile { len: 48, branch_pct: 20, mem_pct: 25 },
        }
    }

    /// Branch target: any slot in the sequence (self-branch when t == i)
    /// or one past the end (falls into zero-filled page → decode fault,
    /// which both engines must surface identically).
    fn target_offset(rng: &mut DeckRng, i: usize, len: usize) -> i64 {
        let t = rng.below(len as u64 + 1) as i64;
        (t - i as i64) * 4
    }

    fn gen_riscv(seed: u64) -> Vec<u32> {
        use isa_riscv::{encode, BranchOp, ImmOp, Inst, LoadOp, RegOp, StoreOp};
        let p = profile_for(seed);
        let mut rng = DeckRng::new(seed.wrapping_mul(0xA5A5_0001).wrapping_add(1));
        let reg = |rng: &mut DeckRng| 1 + rng.below(15) as u8;
        (0..p.len)
            .map(|i| {
                let inst = if rng.chance(p.branch_pct) {
                    let offset = target_offset(&mut rng, i, p.len);
                    if rng.chance(25) {
                        Inst::Jal { rd: reg(&mut rng), offset }
                    } else {
                        let op = match rng.below(6) {
                            0 => BranchOp::Beq,
                            1 => BranchOp::Bne,
                            2 => BranchOp::Blt,
                            3 => BranchOp::Bge,
                            4 => BranchOp::Bltu,
                            _ => BranchOp::Bgeu,
                        };
                        Inst::Branch { op, rs1: reg(&mut rng), rs2: reg(&mut rng), offset }
                    }
                } else if rng.chance(p.mem_pct) {
                    // x8 is preset to SCRATCH; keep accesses inside the page.
                    let offset = (rng.below(512) * 8) as i64;
                    if rng.chance(50) {
                        Inst::Load { op: LoadOp::Ld, rd: reg(&mut rng), rs1: 8, offset }
                    } else {
                        Inst::Store { op: StoreOp::Sd, rs2: reg(&mut rng), rs1: 8, offset }
                    }
                } else if rng.chance(50) {
                    let op = match rng.below(4) {
                        0 => ImmOp::Addi,
                        1 => ImmOp::Xori,
                        2 => ImmOp::Ori,
                        _ => ImmOp::Andi,
                    };
                    let imm = rng.below(256) as i64 - 128;
                    Inst::OpImm { op, rd: reg(&mut rng), rs1: reg(&mut rng), imm }
                } else {
                    let op = match rng.below(4) {
                        0 => RegOp::Add,
                        1 => RegOp::Sub,
                        2 => RegOp::Xor,
                        _ => RegOp::Sltu,
                    };
                    Inst::Op { op, rd: reg(&mut rng), rs1: reg(&mut rng), rs2: reg(&mut rng) }
                };
                encode(&inst)
            })
            .collect()
    }

    fn gen_aarch64(seed: u64) -> Vec<u32> {
        use isa_aarch64::{encode, Cond, Inst, LogicOp, MovOp, ShiftType};
        let p = profile_for(seed);
        let mut rng = DeckRng::new(seed.wrapping_mul(0x5A5A_0003).wrapping_add(2));
        let reg = |rng: &mut DeckRng| rng.below(15) as u8;
        (0..p.len)
            .map(|i| {
                let inst = if rng.chance(p.branch_pct) {
                    let offset = target_offset(&mut rng, i, p.len);
                    match rng.below(3) {
                        0 => Inst::B { link: false, offset },
                        1 => {
                            let cond = match rng.below(6) {
                                0 => Cond::Eq,
                                1 => Cond::Ne,
                                2 => Cond::Lt,
                                3 => Cond::Ge,
                                4 => Cond::Hi,
                                _ => Cond::Ls,
                            };
                            Inst::BCond { cond, offset }
                        }
                        _ => Inst::Cbz {
                            nonzero: rng.chance(50),
                            sf: true,
                            rt: reg(&mut rng),
                            offset,
                        },
                    }
                } else {
                    match rng.below(3) {
                        0 => Inst::AddSubImm {
                            sub: rng.chance(50),
                            set_flags: rng.chance(50),
                            sf: true,
                            rd: reg(&mut rng),
                            rn: reg(&mut rng),
                            imm12: rng.below(4096) as u16,
                            shift12: false,
                        },
                        1 => Inst::LogicalShifted {
                            op: if rng.chance(50) { LogicOp::Orr } else { LogicOp::Eor },
                            sf: true,
                            rd: reg(&mut rng),
                            rn: reg(&mut rng),
                            rm: reg(&mut rng),
                            shift: ShiftType::Lsl,
                            amount: rng.below(8) as u8,
                        },
                        _ => Inst::MovWide {
                            op: MovOp::Movz,
                            sf: true,
                            rd: reg(&mut rng),
                            imm16: rng.below(65536) as u16,
                            hw: rng.below(2) as u8,
                        },
                    }
                };
                encode(&inst)
            })
            .collect()
    }

    /// Streams every retired (pc, branch-taken) pair into a running hash.
    #[derive(Default)]
    struct PcStream {
        hash: u64,
        records: u64,
    }

    impl Observer for PcStream {
        fn on_retire(&mut self, ri: &RetiredInst) {
            let mut h = DefaultHasher::new();
            (self.hash, ri.pc, ri.is_branch, ri.taken).hash(&mut h);
            self.hash = h.finish();
            self.records += 1;
        }
    }

    /// Comparable fingerprint of one run: stop outcome, retirement count,
    /// final pc, final state hash, and (observed leg only) the pc stream.
    #[derive(Debug, PartialEq, Eq)]
    struct Fingerprint {
        result: Result<u64, String>,
        instret: u64,
        pc: u64,
        state_hash: u64,
        stream: Option<(u64, u64)>,
    }

    fn run_words<E: IsaExecutor>(
        words: &[u32],
        exec: E,
        engine: Engine,
        with_stream: bool,
    ) -> Fingerprint {
        let mut st = CpuState::new();
        st.pc = CODE_BASE;
        for (i, w) in words.iter().enumerate() {
            st.mem.write_u32(CODE_BASE + 4 * i as u64, *w).unwrap();
        }
        st.mem.write_bytes(SCRATCH, &[0u8; 4096]).unwrap();
        // Deterministic non-zero register file so compares and branches
        // see varied data; x8 doubles as the memory base.
        for i in 1..16 {
            st.x[i] = (i as u64).wrapping_mul(0x9E37_79B9) | 1;
        }
        st.x[8] = SCRATCH;
        let mut stream = PcStream::default();
        let mut obs: Vec<&mut dyn Observer> = Vec::new();
        if with_stream {
            obs.push(&mut stream);
        }
        let result = EmulationCore::new(exec)
            .with_engine(engine)
            .with_budget(BUDGET)
            .run(&mut st, &mut obs);
        Fingerprint {
            result: result.map(|s| s.retired).map_err(|e| e.to_string()),
            instret: st.instret,
            pc: st.pc,
            state_hash: st.state_hash(),
            stream: with_stream.then_some((stream.hash, stream.records)),
        }
    }

    /// `Some(description)` when the two engines disagree on `words`,
    /// checked on both the observed (slow) and bare (fast) paths.
    fn divergence(words: &[u32], riscv: bool) -> Option<String> {
        for with_stream in [true, false] {
            let (legacy, block) = if riscv {
                (
                    run_words(words, isa_riscv::RiscVExecutor::new(), Engine::Legacy, with_stream),
                    run_words(words, isa_riscv::RiscVExecutor::new(), Engine::Block, with_stream),
                )
            } else {
                (
                    run_words(
                        words,
                        isa_aarch64::AArch64Executor::new(),
                        Engine::Legacy,
                        with_stream,
                    ),
                    run_words(
                        words,
                        isa_aarch64::AArch64Executor::new(),
                        Engine::Block,
                        with_stream,
                    ),
                )
            };
            if legacy != block {
                return Some(format!(
                    "observers={with_stream}: legacy={legacy:?} block={block:?}"
                ));
            }
        }
        None
    }

    /// Hand-rolled shrinker: smallest still-diverging prefix first, then
    /// greedy per-instruction nop substitution.
    fn shrink(words: &[u32], riscv: bool, nop: u32) -> Vec<u32> {
        let mut cur: Vec<u32> = words.to_vec();
        for l in 1..cur.len() {
            if divergence(&cur[..l], riscv).is_some() {
                cur.truncate(l);
                break;
            }
        }
        for i in 0..cur.len() {
            let old = cur[i];
            if old == nop {
                continue;
            }
            cur[i] = nop;
            if divergence(&cur, riscv).is_none() {
                cur[i] = old;
            }
        }
        cur
    }

    fn check_seeds(riscv: bool, seeds: std::ops::Range<u64>) {
        let (nop, disasm): (u32, fn(u32) -> String) = if riscv {
            (
                isa_riscv::encode(&isa_riscv::Inst::OpImm {
                    op: isa_riscv::ImmOp::Addi,
                    rd: 0,
                    rs1: 0,
                    imm: 0,
                }),
                |w| match isa_riscv::decode(w) {
                    Ok(i) => isa_riscv::disassemble(&i),
                    Err(_) => format!("{w:#010x} (undecodable)"),
                },
            )
        } else {
            (
                isa_aarch64::encode(&isa_aarch64::Inst::MovWide {
                    op: isa_aarch64::MovOp::Movz,
                    sf: true,
                    rd: 20,
                    imm16: 0,
                    hw: 0,
                }),
                |w| match isa_aarch64::decode(w) {
                    Ok(i) => isa_aarch64::disassemble(&i),
                    Err(_) => format!("{w:#010x} (undecodable)"),
                },
            )
        };
        for seed in seeds {
            let words = if riscv { gen_riscv(seed) } else { gen_aarch64(seed) };
            if let Some(d) = divergence(&words, riscv) {
                let min = shrink(&words, riscv, nop);
                let listing: Vec<String> = min
                    .iter()
                    .enumerate()
                    .map(|(i, w)| format!("  {:#07x}: {}", CODE_BASE + 4 * i as u64, disasm(*w)))
                    .collect();
                panic!(
                    "engines diverged (seed {seed}, {} insts): {d}\n\
                     shrunk to {} insts:\n{}",
                    words.len(),
                    min.len(),
                    listing.join("\n")
                );
            }
        }
    }

    #[test]
    fn riscv_random_sequences_retire_identically_on_both_engines() {
        check_seeds(true, 0..60);
    }

    #[test]
    fn aarch64_random_sequences_retire_identically_on_both_engines() {
        check_seeds(false, 0..60);
    }
}
