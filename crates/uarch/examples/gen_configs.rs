fn main() {
    std::fs::write("configs/tx2.json", serde_json::to_string_pretty(&uarch::Tx2Latency::table()).unwrap()).unwrap();
    std::fs::write("configs/a64fx.json", serde_json::to_string_pretty(&uarch::A64fxLatency::table()).unwrap()).unwrap();
    println!("written");
}
