//! Critical-path (longest RAW dependency chain) analysis — the paper's §4
//! method, plus the §5 latency-scaled variant.
//!
//! Quoting the method: "Using an array to maintain the critical path length
//! to the value held in each register, and a map to keep track of path
//! lengths for each memory address used ... We take the longest of these
//! dependencies, add one for the instruction currently being executed, and
//! write this value to the array and map, indexed with the destination
//! registers and memory addresses."
//!
//! The scaled variant adds the instruction's execution latency instead of
//! one; loads and stores are *not* scaled ("we assume store forwarding in
//! most cases").
//!
//! Memory is tracked at 8-byte-word granularity (all workload FP traffic is
//! 8-byte aligned; sub-word accesses conservatively merge over the words
//! they touch).

use simcore::{InstGroup, Observer, RetireSource, RetiredInst, SimError, WordMap, NUM_REG_SLOTS};
use uarch::LatencyModel;

/// Result of a critical-path analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpResult {
    /// Length of the longest dependency chain, in cycles.
    pub critical_path: u64,
    /// Instructions retired.
    pub path_length: u64,
}

impl CpResult {
    /// Instruction-level parallelism: `path_length / critical_path`.
    pub fn ilp(&self) -> f64 {
        self.path_length as f64 / self.critical_path.max(1) as f64
    }

    /// Runtime estimate in ms at the paper's 2 GHz clock (runtime is purely
    /// a function of the CP on the ideal processor).
    pub fn runtime_ms(&self) -> f64 {
        crate::runtime_ms(self.critical_path)
    }
}

/// Streaming critical-path observer.
///
/// With `cost = Unit` this is the paper's ideal-CPI analysis (§4); with a
/// latency model it is the scaled critical path (§5).
pub struct CriticalPath {
    reg_chain: [u64; NUM_REG_SLOTS],
    mem_chain: WordMap<u64>,
    longest: u64,
    retired: u64,
    cost: Cost,
}

enum Cost {
    Unit,
    Scaled(Box<dyn LatencyModel + Send>),
}

impl CriticalPath {
    /// Unit-cost critical path (the paper's ideal processor).
    pub fn new() -> Self {
        CriticalPath {
            reg_chain: [0; NUM_REG_SLOTS],
            mem_chain: WordMap::default(),
            longest: 0,
            retired: 0,
            cost: Cost::Unit,
        }
    }

    /// Latency-scaled critical path. Loads and stores contribute one cycle
    /// regardless of the model (store-forwarding assumption, §5.1).
    pub fn scaled<M: LatencyModel + Send + 'static>(model: M) -> Self {
        CriticalPath {
            reg_chain: [0; NUM_REG_SLOTS],
            mem_chain: WordMap::default(),
            longest: 0,
            retired: 0,
            cost: Cost::Scaled(Box::new(model)),
        }
    }

    #[inline]
    fn cost_of(&self, group: InstGroup) -> u64 {
        match &self.cost {
            Cost::Unit => 1,
            Cost::Scaled(m) => match group {
                InstGroup::Load | InstGroup::Store => 1,
                g => m.latency(g),
            },
        }
    }

    /// Pump an entire retirement source (live run, replayed trace, or
    /// record slice) through this analysis.
    pub fn consume(&mut self, source: &mut dyn RetireSource) -> Result<u64, SimError> {
        let mut obs: [&mut dyn Observer; 1] = [self];
        source.drive(&mut obs)
    }

    /// Current result snapshot.
    pub fn result(&self) -> CpResult {
        CpResult { critical_path: self.longest, path_length: self.retired }
    }
}

impl Default for CriticalPath {
    fn default() -> Self {
        CriticalPath::new()
    }
}

impl Observer for CriticalPath {
    #[inline]
    fn on_retire(&mut self, ri: &RetiredInst) {
        self.retired += 1;
        let mut longest_src = 0u64;
        for r in ri.srcs.iter() {
            longest_src = longest_src.max(self.reg_chain[r.index()]);
        }
        for a in ri.mem_reads.iter() {
            let first = a.addr >> 3;
            let last = (a.addr + a.size.max(1) as u64 - 1) >> 3;
            for w in first..=last {
                if let Some(&c) = self.mem_chain.get(&w) {
                    longest_src = longest_src.max(c);
                }
            }
        }
        let depth = longest_src + self.cost_of(ri.group);
        for r in ri.dsts.iter() {
            self.reg_chain[r.index()] = depth;
        }
        for a in ri.mem_writes.iter() {
            let first = a.addr >> 3;
            let last = (a.addr + a.size.max(1) as u64 - 1) >> 3;
            for w in first..=last {
                self.mem_chain.insert(w, depth);
            }
        }
        if depth > self.longest {
            self.longest = depth;
        }
    }
}

/// Unit-cost and latency-scaled critical paths computed in one pass.
///
/// Functionally identical to running [`CriticalPath::new`] and
/// [`CriticalPath::scaled`] side by side, but shares the register table and
/// the memory map (one lookup per word instead of two) — at paper scale the
/// maps hold tens of millions of entries and dominate the analysis time.
pub struct DualCriticalPath {
    reg_chain: [(u64, u64); NUM_REG_SLOTS],
    mem_chain: WordMap<(u64, u64)>,
    longest_unit: u64,
    longest_scaled: u64,
    retired: u64,
    model: Box<dyn LatencyModel + Send>,
}

impl DualCriticalPath {
    /// Dual analysis with the given latency model for the scaled half.
    pub fn new<M: LatencyModel + Send + 'static>(model: M) -> Self {
        DualCriticalPath {
            reg_chain: [(0, 0); NUM_REG_SLOTS],
            mem_chain: WordMap::default(),
            longest_unit: 0,
            longest_scaled: 0,
            retired: 0,
            model: Box::new(model),
        }
    }

    /// Unit-cost result (the paper's Table 1).
    pub fn unit(&self) -> CpResult {
        CpResult { critical_path: self.longest_unit, path_length: self.retired }
    }

    /// Latency-scaled result (the paper's Table 2).
    pub fn scaled(&self) -> CpResult {
        CpResult { critical_path: self.longest_scaled, path_length: self.retired }
    }

    /// Pump an entire retirement source (live run, replayed trace, or
    /// record slice) through this analysis.
    pub fn consume(&mut self, source: &mut dyn RetireSource) -> Result<u64, SimError> {
        let mut obs: [&mut dyn Observer; 1] = [self];
        source.drive(&mut obs)
    }
}

impl Observer for DualCriticalPath {
    #[inline]
    fn on_retire(&mut self, ri: &RetiredInst) {
        self.retired += 1;
        let mut src_u = 0u64;
        let mut src_s = 0u64;
        for r in ri.srcs.iter() {
            let (u, s) = self.reg_chain[r.index()];
            src_u = src_u.max(u);
            src_s = src_s.max(s);
        }
        for a in ri.mem_reads.iter() {
            let first = a.addr >> 3;
            let last = (a.addr + a.size.max(1) as u64 - 1) >> 3;
            for w in first..=last {
                if let Some(&(u, s)) = self.mem_chain.get(&w) {
                    src_u = src_u.max(u);
                    src_s = src_s.max(s);
                }
            }
        }
        let scaled_cost = match ri.group {
            InstGroup::Load | InstGroup::Store => 1,
            g => self.model.latency(g),
        };
        let depth = (src_u + 1, src_s + scaled_cost);
        for r in ri.dsts.iter() {
            self.reg_chain[r.index()] = depth;
        }
        for a in ri.mem_writes.iter() {
            let first = a.addr >> 3;
            let last = (a.addr + a.size.max(1) as u64 - 1) >> 3;
            for w in first..=last {
                self.mem_chain.insert(w, depth);
            }
        }
        self.longest_unit = self.longest_unit.max(depth.0);
        self.longest_scaled = self.longest_scaled.max(depth.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{RegId, RegSet, RetiredInst};
    use uarch::Tx2Latency;

    fn op(group: InstGroup, srcs: &[RegId], dsts: &[RegId]) -> RetiredInst {
        let mut ri = RetiredInst::new(0, group);
        ri.srcs = RegSet::of(srcs);
        ri.dsts = RegSet::of(dsts);
        ri
    }

    #[test]
    fn serial_chain_equals_length() {
        let mut cp = CriticalPath::new();
        let x = RegId::Int(1);
        for _ in 0..10 {
            cp.on_retire(&op(InstGroup::IntAlu, &[x], &[x]));
        }
        let r = cp.result();
        assert_eq!(r.critical_path, 10);
        assert_eq!(r.path_length, 10);
        assert_eq!(r.ilp(), 1.0);
    }

    #[test]
    fn independent_instructions_dont_chain() {
        let mut cp = CriticalPath::new();
        for i in 0..10u8 {
            cp.on_retire(&op(InstGroup::IntAlu, &[], &[RegId::Int(i)]));
        }
        let r = cp.result();
        assert_eq!(r.critical_path, 1);
        assert_eq!(r.ilp(), 10.0);
    }

    #[test]
    fn chains_flow_through_memory() {
        let mut cp = CriticalPath::new();
        let x = RegId::Int(1);
        // x -> store -> load -> y
        cp.on_retire(&op(InstGroup::IntAlu, &[], &[x]));
        let mut st = op(InstGroup::Store, &[x], &[]);
        st.mem_writes.push(0x100, 8);
        cp.on_retire(&st);
        let mut ld = op(InstGroup::Load, &[], &[RegId::Int(2)]);
        ld.mem_reads.push(0x100, 8);
        cp.on_retire(&ld);
        assert_eq!(cp.result().critical_path, 3);
        // A load from elsewhere doesn't extend the chain.
        let mut ld2 = op(InstGroup::Load, &[], &[RegId::Int(3)]);
        ld2.mem_reads.push(0x800, 8);
        cp.on_retire(&ld2);
        assert_eq!(cp.result().critical_path, 3);
    }

    #[test]
    fn partial_word_overlap_conservative() {
        let mut cp = CriticalPath::new();
        let mut st = op(InstGroup::Store, &[], &[]);
        st.mem_writes.push(0x104, 4); // upper half of word 0x100
        cp.on_retire(&st);
        let mut ld = op(InstGroup::Load, &[], &[RegId::Int(1)]);
        ld.mem_reads.push(0x100, 4); // lower half: same 8-byte word
        cp.on_retire(&ld);
        assert_eq!(cp.result().critical_path, 2, "word granularity merges sub-word accesses");
    }

    #[test]
    fn scaled_uses_latencies_but_not_for_memory() {
        let mut cp = CriticalPath::scaled(Tx2Latency);
        let f = RegId::Fp(0);
        // fadd chain of 3: 18 cycles.
        for _ in 0..3 {
            cp.on_retire(&op(InstGroup::FpAdd, &[f], &[f]));
        }
        assert_eq!(cp.result().critical_path, 18);
        // A store/load appended adds 1+1, not the L1 latency.
        let mut st = op(InstGroup::Store, &[f], &[]);
        st.mem_writes.push(0x0, 8);
        cp.on_retire(&st);
        let mut ld = op(InstGroup::Load, &[], &[f]);
        ld.mem_reads.push(0x0, 8);
        cp.on_retire(&ld);
        assert_eq!(cp.result().critical_path, 20);
    }

    #[test]
    fn dual_matches_separate_passes() {
        // Differential: DualCriticalPath == (CriticalPath::new, ::scaled).
        let stream: Vec<RetiredInst> = (0..200)
            .map(|i| {
                let g = match i % 5 {
                    0 => InstGroup::FpAdd,
                    1 => InstGroup::Load,
                    2 => InstGroup::Store,
                    3 => InstGroup::IntMul,
                    _ => InstGroup::IntAlu,
                };
                let mut ri = op(g, &[RegId::Int((i % 7) as u8)], &[RegId::Int((i % 3) as u8)]);
                if g == InstGroup::Load {
                    ri.mem_reads.push(0x1000 + (i % 13) * 8, 8);
                }
                if g == InstGroup::Store {
                    ri.mem_writes.push(0x1000 + (i % 13) * 8, 8);
                }
                ri
            })
            .collect();
        let mut unit = CriticalPath::new();
        let mut scaled = CriticalPath::scaled(Tx2Latency);
        let mut dual = DualCriticalPath::new(Tx2Latency);
        for ri in &stream {
            unit.on_retire(ri);
            scaled.on_retire(ri);
            dual.on_retire(ri);
        }
        assert_eq!(dual.unit().critical_path, unit.result().critical_path);
        assert_eq!(dual.scaled().critical_path, scaled.result().critical_path);
        assert_eq!(dual.unit().path_length, 200);
    }

    #[test]
    fn scaled_never_below_unit() {
        // Scaled CP >= unit CP on the same stream.
        let stream: Vec<RetiredInst> = (0..50)
            .map(|i| {
                let g = if i % 3 == 0 { InstGroup::FpMul } else { InstGroup::IntAlu };
                op(g, &[RegId::Int(1)], &[RegId::Int(1)])
            })
            .collect();
        let mut unit = CriticalPath::new();
        let mut scaled = CriticalPath::scaled(Tx2Latency);
        for ri in &stream {
            unit.on_retire(ri);
            scaled.on_retire(ri);
        }
        assert!(scaled.result().critical_path >= unit.result().critical_path);
    }
}
