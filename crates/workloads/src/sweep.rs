//! Minisweep: the KBA wavefront sweep at the heart of Denovo Sn radiation
//! transport.
//!
//! For each angle, the sweep solves cells in lexicographic order; each
//! cell's angular flux depends on the upwind faces in x, y and z:
//!
//! ```text
//! v[a][z,y,x] = (source[z,y,x]
//!                + mu_a  * v[a][z,y,x-1]
//!                + eta_a * v[a][z,y-1,x]
//!                + xi_a  * v[a][z-1,y,x]) * recip_a
//! ```
//!
//! Structure mirrors the mini-app: angles are processed in vector groups of
//! four (one sweep kernel per group, four angles unrolled in the body —
//! minisweep's `NU`-style angle blocking), the whole sweep repeats once per
//! octant (8 times), and a final `outflow` kernel extracts the exiting-face
//! flux that the checksum (the mini-app's normsum) reduces. Flux arrays are
//! halo-padded by one plane per spatial dimension (vacuum boundary).
//!
//! Angle chains are mutually independent, so the measured ILP is the
//! highest of the five workloads — thousands at paper scale — exactly the
//! paper's Table 1 behaviour. The paper runs `-ncell_x 8 -ncell_y 16
//! -ncell_z 32 -ne 1 -na 32`; the energy dimension (ne=1) is folded into
//! the angle loop.

use crate::SizeClass;
use kernelgen::*;

/// Angles per vector group (minisweep's NU blocking).
const GROUP: u64 = 4;

/// Minisweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct SweepParams {
    /// Angles (x energy groups); must be a multiple of 4.
    pub na: u64,
    /// Cells in z.
    pub nz: u64,
    /// Cells in y.
    pub ny: u64,
    /// Cells in x.
    pub nx: u64,
    /// Octant sweeps (the mini-app sweeps all 8 octants per iteration).
    pub octants: u64,
}

impl SweepParams {
    /// Parameters per size class (Paper = na 32, 32x16x8 cells, 8 octants).
    pub fn for_size(size: SizeClass) -> Self {
        match size {
            SizeClass::Test => SweepParams { na: 4, nz: 4, ny: 4, nx: 4, octants: 2 },
            SizeClass::Small => SweepParams { na: 16, nz: 16, ny: 8, nx: 8, octants: 8 },
            SizeClass::Paper => SweepParams { na: 32, nz: 32, ny: 16, nx: 8, octants: 8 },
        }
    }
}

/// Build minisweep at the given size class.
pub fn build(size: SizeClass) -> KernelProgram {
    build_with(SweepParams::for_size(size))
}

/// Build minisweep with explicit parameters.
pub fn build_with(params: SweepParams) -> KernelProgram {
    let SweepParams { na, nz, ny, nx, octants } = params;
    assert_eq!(na % GROUP, 0, "na must be a multiple of {GROUP}");
    let groups = na / GROUP;
    // Padded spatial extents (one upwind halo plane per dimension).
    let (px, py, pz) = (nx + 1, ny + 1, nz + 1);
    let plane = py * px;
    let volume = pz * plane;

    let mut p = KernelProgram::new("minisweep");
    // One flux array per angle (group g, unrolled lane u => angle g*4+u).
    let mut v: Vec<ArrayId> = Vec::new();
    for a in 0..na {
        v.push(p.array(&format!("vflux{a}"), volume, ArrayInit::Zero));
    }
    // Isotropic source over the (padded) spatial grid.
    let source = p.array("source", volume, ArrayInit::Linear { start: 1.0, step: 0.001 });
    // Exiting-face flux per angle (the checksum / normsum target).
    let out = p.array("outflow", na * ny * nx, ArrayInit::Zero);

    let center = (plane + px + 1) as i64;
    let vat = |arr: ArrayId, dz: i64, dy: i64, dx: i64| Access {
        arr,
        strides: vec![plane as i64, px as i64, 1],
        offset: center + dz * plane as i64 + dy * px as i64 + dx,
    };

    // One sweep kernel per angle group, four angles unrolled per cell.
    for g in 0..groups {
        let mut body = Vec::new();
        for u in 0..GROUP {
            let a = (g * GROUP + u) as usize;
            // Per-angle direction cosines (quadrature stand-in).
            let mu = 0.30 + 0.03 * a as f64;
            let eta = 0.22 + 0.02 * a as f64;
            let xi = 0.12 + 0.01 * a as f64;
            let recip = 1.0 / (1.0 + mu + eta + xi);
            body.push(Stmt::Store {
                access: vat(v[a], 0, 0, 0),
                value: Expr::mul(
                    Expr::mul_add(
                        Expr::Const(xi),
                        Expr::Load(vat(v[a], -1, 0, 0)),
                        Expr::mul_add(
                            Expr::Const(eta),
                            Expr::Load(vat(v[a], 0, -1, 0)),
                            Expr::mul_add(
                                Expr::Const(mu),
                                Expr::Load(vat(v[a], 0, 0, -1)),
                                Expr::Load(vat(source, 0, 0, 0)),
                            ),
                        ),
                    ),
                    Expr::Const(recip),
                ),
            });
        }
        p.kernel(Kernel { name: "sweep".into(), dims: vec![nz, ny, nx], accs: vec![], body });
    }

    // Outflow extraction: copy the last z-plane of every angle into the
    // normsum target (runs once per octant; idempotent for identical
    // octants, exactly like re-running a sweep direction).
    for g in 0..groups {
        let mut body = Vec::new();
        for u in 0..GROUP {
            let a = (g * GROUP + u) as usize;
            body.push(Stmt::Store {
                access: Access {
                    arr: out,
                    strides: vec![nx as i64, 1],
                    offset: (a as u64 * ny * nx) as i64,
                },
                value: Expr::Load(Access {
                    arr: v[a],
                    strides: vec![px as i64, 1],
                    offset: ((pz - 1) * plane + px + 1) as i64,
                }),
            });
        }
        p.kernel(Kernel { name: "outflow".into(), dims: vec![ny, nx], accs: vec![], body });
    }

    p.repeat = octants;
    p.checksum_arrays = vec![out];
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavefront_dependency_holds() {
        let prm = SweepParams { na: 4, nz: 3, ny: 3, nx: 3, octants: 1 };
        let p = build_with(prm);
        let r = kernelgen::interpret(&p, &Personality::gcc122());
        let v = &r.arrays["vflux0"];
        let (px, py) = (4u64, 4u64);
        let plane = (px * py) as usize;
        let at = |z: u64, y: u64, x: u64| v[(z as usize) * plane + (y * px + x) as usize];
        // Deeper cells accumulate more upwind flux than the first cell.
        assert!(at(3, 3, 3) > at(1, 1, 1));
        assert!(at(1, 1, 1) > 0.0);
        // Halo stays vacuum.
        assert_eq!(at(0, 2, 2), 0.0);
    }

    #[test]
    fn outflow_reflects_final_plane() {
        let prm = SweepParams { na: 4, nz: 3, ny: 3, nx: 3, octants: 2 };
        let p = build_with(prm);
        let r = kernelgen::interpret(&p, &Personality::gcc122());
        let out = &r.arrays["outflow"];
        assert_eq!(out.len(), 4 * 9);
        for v in out {
            assert!(v.is_finite() && *v > 0.0, "outflow must be positive: {v}");
        }
        // Angle coefficients differ, so per-angle outflows differ.
        assert_ne!(out[0], out[9]);
    }

    #[test]
    fn kernel_structure() {
        let p = build(SizeClass::Test);
        let sweeps = p.kernels.iter().filter(|k| k.name == "sweep").count();
        let outflows = p.kernels.iter().filter(|k| k.name == "outflow").count();
        assert_eq!(sweeps, 1, "test size: na=4 => one group");
        assert_eq!(outflows, 1);
    }
}
