//! Differential conformance suite for the retire engines: every kernel ×
//! both ISAs × two size classes must produce byte-identical results on
//! the legacy per-instruction loop and the pre-decoded basic-block
//! engine — identical final architectural state hashes, identical
//! retirement streams, and identical `matrix.json` sweeps — including
//! under injected faults and seeded campaign schedules.
//!
//! The block engine deliberately *falls back* to the legacy loop when a
//! fault injector is armed (pre-step hooks need per-instruction
//! granularity), so the faulted legs here pin the dispatch contract:
//! whatever engine the caller requests, the observable run is the same.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use isacmp::{
    compile, run_matrix_opts, AArch64Executor, CampaignManifest, CampaignSpec, CpuState,
    EmulationCore, Engine, FaultInjector, FaultPlan, InjectSpec, IsaKind, MatrixOptions, Observer,
    Personality, RetiredInst, RiscVExecutor, SizeClass, Workload,
};

/// Folds the full retirement stream — every field of every record, in
/// order — into one hash. Requests per-instruction callbacks, so on the
/// block engine this also exercises the observer slow path.
#[derive(Default)]
struct StreamHash {
    hash: u64,
    records: u64,
}

impl Observer for StreamHash {
    fn on_retire(&mut self, ri: &RetiredInst) {
        let mut h = DefaultHasher::new();
        self.hash.hash(&mut h);
        format!("{ri:?}").hash(&mut h);
        self.hash = h.finish();
        self.records += 1;
    }
}

/// Everything observable about one run, comparable across engines.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    result: Result<u64, String>,
    state_hash: u64,
    instret: u64,
    pc: u64,
    stream: Option<(u64, u64)>,
}

fn run_one(
    workload: Workload,
    isa: IsaKind,
    size: SizeClass,
    engine: Engine,
    injector: Option<Box<dyn FaultInjector>>,
    with_stream: bool,
) -> Outcome {
    let compiled = compile(&workload.build(size), isa, &Personality::gcc122());
    let mut st = CpuState::new();
    compiled.program.load(&mut st).expect("program loads");
    let mut stream = StreamHash::default();
    let mut obs: Vec<&mut dyn Observer> = Vec::new();
    if with_stream {
        obs.push(&mut stream);
    }
    let result = match isa {
        IsaKind::RiscV => {
            let mut core = EmulationCore::new(RiscVExecutor::new()).with_engine(engine);
            if let Some(inj) = injector {
                core = core.with_injector(inj);
            }
            core.run(&mut st, &mut obs)
        }
        IsaKind::AArch64 => {
            let mut core = EmulationCore::new(AArch64Executor::new()).with_engine(engine);
            if let Some(inj) = injector {
                core = core.with_injector(inj);
            }
            core.run(&mut st, &mut obs)
        }
    };
    Outcome {
        result: result.map(|s| s.retired).map_err(|e| e.to_string()),
        state_hash: st.state_hash(),
        instret: st.instret,
        pc: st.pc,
        stream: with_stream.then_some((stream.hash, stream.records)),
    }
}

fn assert_engines_agree(
    workload: Workload,
    isa: IsaKind,
    size: SizeClass,
    fault: Option<&FaultPlan>,
    with_stream: bool,
) {
    let inj = |f: Option<&FaultPlan>| {
        f.map(|p| Box::new(p.clone()) as Box<dyn FaultInjector>)
    };
    let legacy = run_one(workload, isa, size, Engine::Legacy, inj(fault), with_stream);
    let block = run_one(workload, isa, size, Engine::Block, inj(fault), with_stream);
    assert_eq!(
        legacy,
        block,
        "engines diverge on {}/{:?}/{} fault={:?}",
        workload.name(),
        isa,
        size.name(),
        fault
    );
}

/// Every kernel × both ISAs at the small size class, bare (no
/// observers): final state hash, instret, pc, and stop outcome must be
/// identical. Bare runs take the block engine's batched fast path, so
/// this is the leg that actually exercises block-cached execution.
#[test]
fn small_runs_agree_bare_on_both_engines() {
    for workload in Workload::ALL {
        for isa in [IsaKind::RiscV, IsaKind::AArch64] {
            assert_engines_agree(workload, isa, SizeClass::Small, None, false);
        }
    }
}

/// Every kernel × both ISAs at the test size class with a
/// per-instruction stream observer attached: the full retirement streams
/// (every field of every record, in order) must hash identically.
#[test]
fn test_runs_agree_with_full_retirement_streams() {
    for workload in Workload::ALL {
        for isa in [IsaKind::RiscV, IsaKind::AArch64] {
            assert_engines_agree(workload, isa, SizeClass::Test, None, true);
        }
    }
}

/// Injected faults — a trap, a fetch corruption, and a read bit-flip —
/// must degrade both engines identically: same error (or same silent
/// corruption), same final state hash, same faulting retirement count.
#[test]
fn faulted_runs_agree_on_both_engines() {
    let faults = [
        FaultPlan::parse("trap@1000").unwrap(),
        FaultPlan::parse("fetch@500:0x4").unwrap(),
        FaultPlan::parse("read@40:62").unwrap(),
    ];
    for fault in &faults {
        for isa in [IsaKind::RiscV, IsaKind::AArch64] {
            assert_engines_agree(Workload::Stream, isa, SizeClass::Test, Some(fault), true);
        }
    }
}

/// A seeded campaign schedule (multiple faults per run) must fire at the
/// same retirement counts and leave the same wreckage on both engines.
#[test]
fn campaign_runs_agree_on_both_engines() {
    let spec = CampaignSpec::parse("7:3").unwrap();
    let manifest = CampaignManifest::sample(spec);
    for isa in [IsaKind::RiscV, IsaKind::AArch64] {
        let legacy = run_one(
            Workload::Lbm,
            isa,
            SizeClass::Test,
            Engine::Legacy,
            Some(Box::new(manifest.campaign().unwrap())),
            true,
        );
        let block = run_one(
            Workload::Lbm,
            isa,
            SizeClass::Test,
            Engine::Block,
            Some(Box::new(manifest.campaign().unwrap())),
            true,
        );
        assert_eq!(legacy, block, "campaign runs diverge on {isa:?}");
    }
}

/// Whole-sweep equivalence: `matrix.json` — the analysis tables' on-disk
/// form, cells and failure records both — must serialize byte-identically
/// whichever engine ran the sweep, clean, with a targeted `--inject`
/// fault, and under a `--campaign` schedule.
#[test]
fn matrix_json_is_byte_identical_across_engines() {
    let workloads = [Workload::Stream, Workload::Lbm];
    let sweep = |opts: &MatrixOptions| run_matrix_opts(&workloads, SizeClass::Test, opts).to_json();
    let with_engine = |base: &MatrixOptions, engine: Engine| MatrixOptions {
        engine,
        ..base.clone()
    };

    let clean = MatrixOptions::default();
    assert_eq!(
        sweep(&with_engine(&clean, Engine::Legacy)),
        sweep(&with_engine(&clean, Engine::Block)),
        "clean sweeps diverge"
    );

    let inject = MatrixOptions {
        inject: Some(InjectSpec::parse("STREAM/gcc-12.2/RISC-V:trap@1000").unwrap()),
        ..Default::default()
    };
    assert_eq!(
        sweep(&with_engine(&inject, Engine::Legacy)),
        sweep(&with_engine(&inject, Engine::Block)),
        "injected sweeps diverge"
    );

    let campaign = MatrixOptions {
        campaign: Some(CampaignManifest::sample(CampaignSpec::parse("7:3").unwrap())
            .campaign()
            .unwrap()),
        ..Default::default()
    };
    assert_eq!(
        sweep(&with_engine(&campaign, Engine::Legacy)),
        sweep(&with_engine(&campaign, Engine::Block)),
        "campaign sweeps diverge"
    );
}

/// Block-cache invalidation: the decoded-block cache lives in the
/// executor and is keyed by PC, so mutated instruction bytes are only
/// picked up after a decode-cache flush — exactly what a `fetch@N:MASK`
/// fault requests via `InjectAction::FlushDecodeCache`.
mod invalidation {
    use isa_riscv::{decode, encode, ImmOp, Inst};
    use isacmp::{CpuState, EmulationCore, Engine, FaultPlan, IsaExecutor, RiscVExecutor};

    const CODE: u64 = 0x1_0000;

    fn addi(rd: u8, rs1: u8, imm: i64) -> u32 {
        encode(&Inst::OpImm { op: ImmOp::Addi, rd, rs1, imm })
    }

    fn load(words: &[u32]) -> CpuState {
        let mut st = CpuState::new();
        st.pc = CODE;
        for (i, w) in words.iter().enumerate() {
            st.mem.write_u32(CODE + 4 * i as u64, *w).unwrap();
        }
        st
    }

    /// An explicit `flush_decode_cache` must drop cached blocks: after
    /// the program bytes at a warm PC change, a block-engine run must
    /// execute the new bytes, not the stale decode.
    #[test]
    fn flush_drops_cached_blocks_and_redecodes() {
        let exec = RiscVExecutor::new();

        // Warm the block cache with the original program.
        let mut st = load(&[addi(1, 0, 5)]);
        let _ = EmulationCore::new(&exec).run(&mut st, &mut []);
        assert_eq!(st.x[1], 5);

        // Same PC, mutated bytes, same executor: without a flush the
        // stale block would replay the old immediate.
        exec.flush_decode_cache();
        let mut st = load(&[addi(1, 0, 9)]);
        let _ = EmulationCore::new(&exec).run(&mut st, &mut []);
        assert_eq!(st.x[1], 9, "flush must force a re-decode of the mutated bytes");
    }

    /// End-to-end: a `fetch@N:MASK` fault mutates the fetched word and
    /// flushes the decode caches. A later block-engine run on the same
    /// executor, over the mutated program image, must execute the
    /// mutated semantics — the pre-fault block cached at the same PC
    /// (with the original bytes) must not survive.
    #[test]
    fn fetch_fault_flushes_the_block_cache() {
        let w_orig = addi(1, 0, 5);
        const MASK: u32 = 0x0400_0000; // flips imm bit 6: 5 ^ 64 = 69
        let w_mut = w_orig ^ MASK;
        assert_eq!(
            decode(w_mut).unwrap(),
            Inst::OpImm { op: ImmOp::Addi, rd: 1, rs1: 0, imm: 69 },
            "mask must yield a decodable mutated instruction"
        );
        let program = [addi(2, 0, 1), w_orig];

        let exec = RiscVExecutor::new();

        // Warm the block cache with the pristine program.
        let mut st = load(&program);
        let _ = EmulationCore::new(&exec).run(&mut st, &mut []);
        assert_eq!(st.x[1], 5);

        // Fault at retirement 1: the word at CODE+4 is XOR-masked in
        // guest memory and the decode caches are flushed.
        let plan = FaultPlan::parse(&format!("fetch@1:{MASK:#x}")).unwrap();
        let mut st = load(&program);
        let _ = EmulationCore::new(&exec)
            .with_injector(Box::new(plan))
            .run(&mut st, &mut []);
        assert_eq!(st.x[1], 69, "the corrupted fetch must execute the mutated immediate");
        assert_eq!(st.mem.read_u32(CODE + 4).unwrap(), w_mut, "the fault mutates guest memory");

        // Block-engine run over a mutated image at the warm PC: only the
        // fault's cache flush makes this re-decode instead of replaying
        // the pristine block cached in step one.
        let mut st = load(&[program[0], w_mut]);
        let _ = EmulationCore::new(&exec)
            .with_engine(Engine::Block)
            .run(&mut st, &mut []);
        assert_eq!(st.x[1], 69, "stale pre-fault block must not survive the flush");
    }
}
