//! Instruction-class execution latencies.

use simcore::InstGroup;
use telemetry::Json;

/// Maps an instruction group to its execution latency in cycles.
pub trait LatencyModel {
    /// Execution latency of `group`, in cycles.
    fn latency(&self, group: InstGroup) -> u64;

    /// Model name for reports.
    fn name(&self) -> &str;
}

/// Every instruction takes one cycle — the paper's ideal-CPI model (§4).
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitLatency;

impl LatencyModel for UnitLatency {
    fn latency(&self, _group: InstGroup) -> u64 {
        1
    }
    fn name(&self) -> &str {
        "unit"
    }
}

/// A configurable latency table (the equivalent of SimEng's yaml
/// `Latency` blocks; serialisable so experiments can ship their configs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyTable {
    /// Model name.
    pub name: String,
    /// Integer ALU (add/sub/move/address generation).
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide.
    pub int_div: u64,
    /// Shifts/rotates.
    pub shift: u64,
    /// Bitwise logic.
    pub logical: u64,
    /// Branches.
    pub branch: u64,
    /// Loads (L1 hit).
    pub load: u64,
    /// Stores.
    pub store: u64,
    /// FP add/sub.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP fused multiply-add.
    pub fp_fma: u64,
    /// FP divide.
    pub fp_div: u64,
    /// FP square root.
    pub fp_sqrt: u64,
    /// FP compare.
    pub fp_cmp: u64,
    /// FP <-> int conversion.
    pub fp_cvt: u64,
    /// FP register moves.
    pub fp_move: u64,
    /// Atomics.
    pub atomic: u64,
    /// System instructions.
    pub system: u64,
}

impl LatencyModel for LatencyTable {
    fn latency(&self, group: InstGroup) -> u64 {
        match group {
            InstGroup::IntAlu => self.int_alu,
            InstGroup::IntMul => self.int_mul,
            InstGroup::IntDiv => self.int_div,
            InstGroup::Shift => self.shift,
            InstGroup::Logical => self.logical,
            InstGroup::Branch => self.branch,
            InstGroup::Load => self.load,
            InstGroup::Store => self.store,
            InstGroup::FpAdd => self.fp_add,
            InstGroup::FpMul => self.fp_mul,
            InstGroup::FpFma => self.fp_fma,
            InstGroup::FpDiv => self.fp_div,
            InstGroup::FpSqrt => self.fp_sqrt,
            InstGroup::FpCmp => self.fp_cmp,
            InstGroup::FpCvt => self.fp_cvt,
            InstGroup::FpMove => self.fp_move,
            InstGroup::Atomic => self.atomic,
            InstGroup::System => self.system,
        }
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// ThunderX2 (Vulcan)-derived latencies, after SimEng's `tx2` core model —
/// the table the paper's scaled critical path uses for both ISAs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tx2Latency;

impl Tx2Latency {
    /// The underlying table (for serialisation / inspection).
    pub fn table() -> LatencyTable {
        LatencyTable {
            name: "tx2".into(),
            int_alu: 1,
            int_mul: 5,
            int_div: 23,
            shift: 1,
            logical: 1,
            branch: 1,
            load: 4,
            store: 1,
            fp_add: 6,
            fp_mul: 6,
            fp_fma: 6,
            fp_div: 23,
            fp_sqrt: 31,
            fp_cmp: 5,
            fp_cvt: 7,
            fp_move: 5,
            atomic: 4,
            system: 1,
        }
    }
}

impl LatencyModel for Tx2Latency {
    fn latency(&self, group: InstGroup) -> u64 {
        Self::table().latency(group)
    }
    fn name(&self) -> &str {
        "tx2"
    }
}

/// Fujitsu A64FX-derived latencies, after SimEng's `a64fx` core model —
/// the paper names it as one of SimEng's validated cores. Useful as an
/// alternative scaling model for sensitivity studies.
#[derive(Debug, Clone, Copy, Default)]
pub struct A64fxLatency;

impl A64fxLatency {
    /// The underlying table (for serialisation / inspection).
    pub fn table() -> LatencyTable {
        LatencyTable {
            name: "a64fx".into(),
            int_alu: 1,
            int_mul: 5,
            int_div: 41,
            shift: 1,
            logical: 1,
            branch: 1,
            load: 5,
            store: 1,
            fp_add: 9,
            fp_mul: 9,
            fp_fma: 9,
            fp_div: 43,
            fp_sqrt: 52,
            fp_cmp: 4,
            fp_cvt: 9,
            fp_move: 4,
            atomic: 5,
            system: 1,
        }
    }
}

impl LatencyModel for A64fxLatency {
    fn latency(&self, group: InstGroup) -> u64 {
        Self::table().latency(group)
    }
    fn name(&self) -> &str {
        "a64fx"
    }
}

/// The numeric fields of [`LatencyTable`] in declaration order; expands
/// `$m!(field, ...)` so the JSON code never drifts from the struct.
macro_rules! latency_fields {
    ($m:ident) => {
        $m!(
            int_alu, int_mul, int_div, shift, logical, branch, load, store, fp_add, fp_mul,
            fp_fma, fp_div, fp_sqrt, fp_cmp, fp_cvt, fp_move, atomic, system
        )
    };
}

impl LatencyTable {
    /// Serialize to the flat SimEng-style JSON object (`{"name": ...,
    /// "int_alu": 1, ...}`) the `configs/` files use.
    pub fn to_json(&self) -> Json {
        let mut members = vec![("name".to_string(), Json::Str(self.name.clone()))];
        macro_rules! put {
            ($($f:ident),*) => {
                $( members.push((stringify!($f).to_string(), Json::Num(self.$f as f64))); )*
            };
        }
        latency_fields!(put);
        Json::Obj(members)
    }

    /// Parse the object form written by [`LatencyTable::to_json`]; every
    /// field must be present.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let field = |name: &str| -> Result<u64, String> {
            j.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("latency table: missing or non-integer field {name:?}"))
        };
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .ok_or("latency table: missing \"name\"")?
            .to_string();
        macro_rules! read {
            ($($f:ident),*) => {
                Ok(LatencyTable { name, $( $f: field(stringify!($f))?, )* })
            };
        }
        latency_fields!(read)
    }

    /// Load a latency table from a SimEng-style JSON config file.
    pub fn from_json_file(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path:?}: {e}"))?;
        let j = Json::parse(&text).map_err(|e| format!("{path:?}: {e}"))?;
        Self::from_json(&j).map_err(|e| format!("{path:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_is_always_one() {
        for g in InstGroup::ALL {
            assert_eq!(UnitLatency.latency(g), 1);
        }
    }

    #[test]
    fn tx2_values_sane() {
        let m = Tx2Latency;
        assert_eq!(m.latency(InstGroup::IntAlu), 1);
        assert_eq!(m.latency(InstGroup::FpAdd), 6);
        assert_eq!(m.latency(InstGroup::FpSqrt), 31);
        assert!(m.latency(InstGroup::FpDiv) > m.latency(InstGroup::FpMul));
        for g in InstGroup::ALL {
            assert!(m.latency(g) >= 1, "{g:?} latency must be positive");
        }
    }

    #[test]
    fn a64fx_slower_fp_than_tx2() {
        assert!(A64fxLatency.latency(InstGroup::FpAdd) > Tx2Latency.latency(InstGroup::FpAdd));
        assert!(A64fxLatency.latency(InstGroup::FpSqrt) > Tx2Latency.latency(InstGroup::FpSqrt));
    }

    #[test]
    fn table_round_trips_through_json() {
        let t = Tx2Latency::table();
        let json = t.to_json().pretty();
        let back = LatencyTable::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let j = Json::parse(r#"{"name": "x", "int_alu": 1}"#).unwrap();
        let err = LatencyTable::from_json(&j).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }
}
