#![warn(missing_docs)]
//! `isacmp` — the public API for reproducing "An Empirical Comparison of
//! the RISC-V and AArch64 Instruction Sets" (Weaver & McIntosh-Smith,
//! SC-W 2023).
//!
//! The facade wires the whole stack together:
//!
//! 1. a workload ([`Workload`]) is built as a loop-kernel IR program,
//! 2. a compiler personality ([`Personality`]) lowers it to real machine
//!    code for an ISA ([`IsaKind`]),
//! 3. the single-cycle emulation core executes the binary while analysis
//!    observers stream over the retirement trace,
//! 4. results land in an [`ExperimentCell`] / [`ResultMatrix`] with
//!    formatters for every table and figure in the paper.
//!
//! # Quickstart
//!
//! ```
//! use isacmp::{run_cell, IsaKind, Personality, SizeClass, Workload};
//!
//! let cell = run_cell(Workload::Stream, IsaKind::RiscV, &Personality::gcc122(), SizeClass::Test)
//!     .expect("cell measures");
//! println!("path length = {}", cell.path_length);
//! println!("ILP = {:.0}", cell.ilp());
//! assert!(cell.critical_path <= cell.path_length);
//! ```
//!
//! # Fault tolerance
//!
//! [`run_cell`] returns a typed [`CellError`] instead of panicking, and
//! [`run_matrix`] degrades gracefully: a failed cell becomes an
//! `ERR(<kind>)` entry in a partial [`ResultMatrix`] while the other cells
//! still measure. [`CellOptions`]/[`MatrixOptions`] add per-cell wall-clock
//! watchdogs, bounded retries, and deterministic fault injection
//! ([`FaultPlan`]) for proving all of that works.

mod campaign;
mod error;
mod journal;
pub mod pool;
mod tracecache;

pub use campaign::CampaignManifest;
pub use pool::{PoolStats, ShardPool};
pub use error::{
    CellError, CellOptions, CellSelector, InjectSpec, MatrixOptions, MAX_CELL_RETRIES,
};
pub use journal::{read_journal, CellJournal, JournalContents, JOURNAL_SCHEMA};
pub use trace::{TraceError, TraceMeta, TraceReader, TraceSummary, TraceWriter};
pub use tracecache::{cell_meta, replay_cell, trace_path};

pub use analysis::{
    runtime_ms, CellAnalyses, CellFailure, CpComposition, CpResult, CriticalPath, DepDistance,
    DualCriticalPath, ExperimentCell, FusedCell, InstMix, PathLength,
    ResultMatrix, WindowStats, WindowedCp, CLOCK_GHZ, PAPER_WINDOW_SIZES,
};
pub use fusion::{FusionPass, FusionReport, PairKind};
pub use isa_aarch64::AArch64Executor;
pub use isa_riscv::RiscVExecutor;
pub use kernelgen::{compile, interpret, Compiled, KernelProgram, Personality};
pub use simcore::{
    durable, host_mips, shutdown, Campaign, CampaignSpec, CampaignState, Checkpoint,
    CheckpointError, CpuState, EmulationCore, Engine, FaultInjector, FaultKind,
    FaultPlan, InjectAction, InstGroup, IsaExecutor, IsaKind, Observer, Phase, PhaseNanos,
    Program, RegSet, RetiredInst, RunStats, Sample, SampleSnapshot,
    SimError, StopReason, TraceMark, DEFAULT_CAMPAIGN_WINDOW, DEFAULT_FAULT_SEED,
};
pub use uarch::{
    run_guest, BimodalPredictor, BranchStats, CacheConfig, CacheModel, CacheStats,
    GsharePredictor, InOrderCore, LatencyModel, OoOCore,
    PipelineConfig, PipelineStats, Tx2Latency, UnitLatency,
};
pub use telemetry;
pub use telemetry::{ProfilingObserver, RunReport};
pub use workloads::{SizeClass, Workload};

/// ISA display label matching the paper's tables.
pub fn isa_label(isa: IsaKind) -> &'static str {
    match isa {
        IsaKind::AArch64 => "AArch64",
        IsaKind::RiscV => "RISC-V",
    }
}

/// Canonical `workload/ISA/compiler` cell label, matching the span names
/// (`cell:<label>`), the per-cell telemetry gauges (`cell_mips:<label>`),
/// and structured-event payloads.
fn cell_label(workload: Workload, isa: IsaKind, personality: &Personality) -> String {
    format!("{}/{}/{}", workload.name(), isa_label(isa), personality.label())
}

/// Execute a compiled program, streaming retirements through `observers`,
/// with typed errors: load failures, guest faults, watchdog trips and
/// non-zero exits all come back as a [`CellError`] instead of a panic.
///
/// `deadline` attaches a wall-clock watchdog; `fault` injects a
/// deterministic [`FaultPlan`] into the run.
pub fn try_execute(
    compiled: &Compiled,
    observers: &mut [&mut dyn Observer],
    deadline: Option<std::time::Duration>,
    fault: Option<&FaultPlan>,
) -> Result<(CpuState, RunStats), CellError> {
    let injector: Option<Box<dyn FaultInjector>> =
        fault.map(|p| Box::new(p.clone()) as Box<dyn FaultInjector>);
    try_execute_with(compiled, observers, deadline, injector)
}

/// [`try_execute`] with an explicit retire-loop [`Engine`] — the knob the
/// bench tools and the differential conformance suite use to pit the
/// legacy and block engines against each other on identical cells.
pub fn try_execute_engine(
    compiled: &Compiled,
    observers: &mut [&mut dyn Observer],
    deadline: Option<std::time::Duration>,
    fault: Option<&FaultPlan>,
    engine: Engine,
) -> Result<(CpuState, RunStats), CellError> {
    let injector: Option<Box<dyn FaultInjector>> =
        fault.map(|p| Box::new(p.clone()) as Box<dyn FaultInjector>);
    try_execute_inner(compiled, observers, deadline, injector, false, engine)
        .map_err(|(e, _)| e)
}

/// [`try_execute`] with an arbitrary [`FaultInjector`] (e.g. a whole
/// [`Campaign`]) instead of a single plan.
pub fn try_execute_with(
    compiled: &Compiled,
    observers: &mut [&mut dyn Observer],
    deadline: Option<std::time::Duration>,
    injector: Option<Box<dyn FaultInjector>>,
) -> Result<(CpuState, RunStats), CellError> {
    try_execute_inner(compiled, observers, deadline, injector, false, Engine::default())
        .map_err(|(e, _)| e)
}

/// The execution engine behind [`try_execute_with`]: same typed errors,
/// but the failing machine state rides along with the error so callers
/// can snapshot it (watchdog-trip checkpoints need the state the guest
/// died in, not a fresh one).
fn try_execute_inner(
    compiled: &Compiled,
    observers: &mut [&mut dyn Observer],
    deadline: Option<std::time::Duration>,
    injector: Option<Box<dyn FaultInjector>>,
    heed_shutdown: bool,
    engine: Engine,
) -> Result<(CpuState, RunStats), (CellError, Box<CpuState>)> {
    let _span = telemetry::global().enter("emulate");
    let mut st = CpuState::new();
    if let Err(e) = compiled.program.load(&mut st) {
        return Err((CellError::Load(e), Box::new(st)));
    }

    fn build_core<E: IsaExecutor>(
        exec: E,
        deadline: Option<std::time::Duration>,
        injector: Option<Box<dyn FaultInjector>>,
        heed_shutdown: bool,
        engine: Engine,
    ) -> EmulationCore<E> {
        let mut core = EmulationCore::new(exec).with_engine(engine);
        if let Some(d) = deadline {
            core = core.with_deadline(d);
        }
        if let Some(inj) = injector {
            core = core.with_injector(inj);
        }
        if heed_shutdown {
            core = core.with_shutdown();
        }
        core
    }

    let result = match compiled.program.isa {
        IsaKind::RiscV => {
            build_core(RiscVExecutor::new(), deadline, injector, heed_shutdown, engine)
                .run(&mut st, observers)
        }
        IsaKind::AArch64 => {
            build_core(AArch64Executor::new(), deadline, injector, heed_shutdown, engine)
                .run(&mut st, observers)
        }
    };
    let stats = match result {
        Ok(stats) => stats,
        Err(err) => {
            let instret = st.instret;
            let e = match err {
                SimError::Interrupted { .. } => CellError::Interrupted { instret },
                err if err.is_watchdog() => CellError::Timeout { err, instret },
                err => CellError::Sim { err, instret },
            };
            return Err((e, Box::new(st)));
        }
    };
    if stats.exit_code != 0 {
        return Err((CellError::NonZeroExit { code: stats.exit_code }, Box::new(st)));
    }
    telemetry::global().counter_add("instructions_retired", stats.retired);
    Ok((st, stats))
}

/// Execute a compiled program, streaming retirements through `observers`.
///
/// Returns the final CPU state and run statistics. Convenience wrapper
/// around [`try_execute`]: panics if the guest cannot load, faults, or
/// exits non-zero — tools that need to survive those use [`try_execute`].
pub fn execute(
    compiled: &Compiled,
    observers: &mut [&mut dyn Observer],
) -> (CpuState, RunStats) {
    try_execute(compiled, observers, None, None)
        .unwrap_or_else(|e| panic!("execute({}): {e}", compiled.program.isa))
}

/// One measurement attempt for a cell, with every failure mode typed.
///
/// When `opts.trace_dir` names a cache directory (and no fault is armed),
/// a matching capture is replayed instead of emulating, and a live run
/// captures its retirement stream for next time. The analyses themselves
/// are source-agnostic ([`CellAnalyses`]), so live and replayed
/// measurements are bit-identical.
fn run_cell_attempt(
    workload: Workload,
    isa: IsaKind,
    personality: &Personality,
    size: SizeClass,
    opts: &CellOptions,
) -> Result<ExperimentCell, CellError> {
    let tel = telemetry::global();
    // Tracing (capture and replay) only applies to clean measurement runs:
    // an injected-fault run is not reusable, and a replay cannot reproduce
    // the fault.
    let tracing = opts.trace_dir.as_ref().filter(|_| opts.fault.is_none() && opts.campaign.is_none());
    if let Some(dir) = tracing {
        let path = tracecache::trace_path(dir, workload, personality, isa, size);
        if path.exists() {
            let trace = telemetry::Json::Str(path.display().to_string());
            match tracecache::replay_cell(&path, workload, personality, isa, size, opts.fusion) {
                Ok(Some(cell)) => return Ok(cell),
                // Stale provenance: fall through and recapture.
                Ok(None) => {
                    tel.counter_add("trace_stale", 1);
                    tel.event("trace_stale", &[("path", trace)]);
                }
                // Damaged trace: count it, fall back to a live run.
                Err(e) => {
                    tel.counter_add("trace_replay_errors", 1);
                    tel.event(
                        "trace_replay_error",
                        &[("path", trace), ("error", telemetry::Json::Str(e.to_string()))],
                    );
                }
            }
        }
    }

    // The builder and compiler report bugs by panicking; contain them to
    // this cell.
    let compiled_or = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let prog = workload.build(size);
        let compiled = tel.time("compile", || compile(&prog, isa, personality));
        (prog, compiled)
    }));
    let (prog, compiled) =
        compiled_or.map_err(|p| CellError::Compile { msg: error::panic_message(p) })?;

    let mut analyses = CellAnalyses::new(&compiled.program.regions);
    // The fusion pass is an ordinary observer riding next to the bundle:
    // it sees the exact stream the trace format carries, so a live fused
    // cell and a replayed one are byte-identical.
    let mut fusion_pass =
        opts.fusion.then(|| fusion::FusionPass::new(isa, &compiled.program.regions));
    // Capture goes to a `.tmp` sibling first; only a verified run renames
    // it into place, so the cache never holds a half-written file.
    let mut capture = match tracing {
        Some(dir) => {
            let meta =
                cell_meta(workload, personality, isa, size, &compiled.program.regions);
            let final_path = tracecache::trace_path(dir, workload, personality, isa, size);
            let tmp_path = final_path.with_extension("trace.tmp");
            let _ = std::fs::create_dir_all(dir);
            match TraceWriter::create(&tmp_path, &meta) {
                Ok(w) => Some((w, tmp_path, final_path)),
                Err(_) => {
                    // Unwritable cache dir: measure live, skip capture.
                    tel.counter_add("trace_capture_errors", 1);
                    None
                }
            }
        }
        None => None,
    };
    let run_result = {
        let mut obs = analyses.observers();
        if let Some(p) = fusion_pass.as_mut() {
            obs.push(p);
        }
        if let Some((w, _, _)) = capture.as_mut() {
            obs.push(w);
        }
        // Arm the fault schedule fresh for this attempt; the shared fired
        // counter lets us account for injections even when the run dies.
        let armed = opts.armed_campaign();
        if let Some(c) = &armed {
            tel.counter_add("faults_scheduled", c.len() as u64);
        }
        let injector: Option<Box<dyn FaultInjector>> =
            armed.as_ref().map(|c| Box::new(c.clone()) as Box<dyn FaultInjector>);
        let emu_start = std::time::Instant::now();
        let run = try_execute_inner(&compiled, &mut obs, opts.deadline, injector, opts.heed_shutdown, opts.engine)
            .map_err(|(e, st)| {
                // A watchdog-tripped cell leaves a resumable snapshot behind:
                // the state it died in plus the armed schedule, so the slow
                // cell can be continued (`run_elf --restore`) rather than
                // re-run from scratch under a bigger deadline.
                if matches!(e, CellError::Timeout { .. }) {
                    if let Some(dir) = &opts.checkpoint_dir {
                        write_timeout_snapshot(dir, workload, personality, isa, size, &st, armed.as_ref());
                    }
                }
                e
            });
        if let Some(c) = &armed {
            let fired = c.fired_count();
            tel.counter_add("faults_fired", fired);
            if fired > 0 {
                tel.event(
                    "faults_fired",
                    &[
                        ("cell", telemetry::Json::Str(cell_label(workload, isa, personality))),
                        ("fired", telemetry::Json::Num(fired as f64)),
                        ("scheduled", telemetry::Json::Num(c.len() as f64)),
                    ],
                );
            }
        }
        run.map(|(st, stats)| (st, stats, emu_start.elapsed())).and_then(|(st, stats, wall)| {
            // Cross-check the guest checksum against the reference
            // interpreter: every measured cell is also a correctness test,
            // and the gate that turns injected silent corruption into a
            // loud, typed failure.
            let _verify_span = tel.enter("verify");
            let expected = interpret(&prog, personality).checksum;
            let got = st.mem.read_f64(compiled.checksum_addr).map_err(|err| CellError::Sim {
                err,
                instret: st.instret,
            })?;
            if got.to_bits() != expected.to_bits() {
                return Err(CellError::ChecksumMismatch {
                    expected_bits: expected.to_bits(),
                    got_bits: got.to_bits(),
                });
            }
            // Faults that fired yet left the measurement verifiably correct.
            if let Some(c) = &armed {
                tel.counter_add("faults_survived", c.fired_count());
            }
            Ok((st, stats, wall))
        })
    };
    match run_result {
        Ok((st, stats, wall)) => {
            // rvr-style host-cost attribution for every verified live run:
            // MIPS per cell as a gauge, ns-per-guest-op in a histogram, and
            // (when the `phase-timers` feature is on) the retire-loop phase
            // breakdown as counters. These live only in telemetry — the
            // matrix JSON stays byte-identical between live and replayed
            // runs.
            tel.gauge_set(
                &format!("cell_mips:{}", cell_label(workload, isa, personality)),
                stats.host_mips(),
            );
            if stats.retired > 0 {
                tel.histogram_record(
                    "host_ns_per_op",
                    stats.wall.as_nanos() as u64 / stats.retired,
                );
            }
            for (name, ns) in stats.phases.entries() {
                if ns > 0 {
                    tel.counter_add(&format!("phase_{name}_ns"), ns);
                }
            }
            // The run is verified: commit the capture into the cache
            // durably (fsync + rename + dir fsync), so a later crash can
            // never leave a torn trace under the final name.
            if let Some((w, tmp_path, final_path)) = capture.take() {
                let committed = w
                    .finish(st.state_hash(), wall)
                    .and_then(|_| durable::commit(&tmp_path, &final_path));
                match committed {
                    Ok(()) => tel.counter_add("trace_captures", 1),
                    Err(_) => {
                        tel.counter_add("trace_capture_errors", 1);
                        let _ = std::fs::remove_file(&tmp_path);
                    }
                }
            }
        }
        Err(e) => {
            if let Some((w, tmp_path, _)) = capture.take() {
                drop(w);
                let _ = std::fs::remove_file(&tmp_path);
            }
            return Err(e);
        }
    }

    let mut cell = analyses.into_cell(workload.name(), personality.label(), isa_label(isa));
    if let Some(p) = fusion_pass {
        cell.fused = Some(p.report().to_fused_cell());
    }
    Ok(cell)
}

/// Durably write a resumable snapshot of a watchdog-tripped cell:
/// `<dir>/<workload>-<compiler>-<isa>-<size>.ckpt`. Best-effort — a
/// snapshot failure is counted and logged, never escalated (the cell is
/// already being recorded as `ERR(timeout)`).
fn write_timeout_snapshot(
    dir: &std::path::Path,
    workload: Workload,
    personality: &Personality,
    isa: IsaKind,
    size: SizeClass,
    st: &CpuState,
    campaign: Option<&Campaign>,
) {
    let tel = telemetry::global();
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!(
        "{}-{}-{}-{}.ckpt",
        workload.name(),
        personality.label(),
        isa_label(isa),
        size.name()
    ));
    let ckpt = Checkpoint::capture(st, campaign, TraceMark::default());
    match ckpt.write(&path) {
        Ok(bytes) => {
            tel.counter_add("checkpoint_writes", 1);
            tel.counter_add("checkpoint_bytes", bytes);
            tel.event(
                "timeout_snapshot",
                &[
                    ("cell", telemetry::Json::Str(cell_label(workload, isa, personality))),
                    ("path", telemetry::Json::Str(path.display().to_string())),
                    ("instret", telemetry::Json::Num(st.instret as f64)),
                ],
            );
        }
        Err(e) => {
            tel.counter_add("checkpoint_errors", 1);
            tel.event(
                "checkpoint_error",
                &[("error", telemetry::Json::Str(e.to_string()))],
            );
        }
    }
}

/// [`run_cell`] with explicit fault-tolerance options: a wall-clock
/// deadline, bounded retries for retryable failures, and (for testing the
/// harness itself) a deterministic injected fault.
///
/// Telemetry counters: `cells_run`, `cells_failed`, `cell_retries`,
/// `watchdog_trips`, `faults_injected`.
pub fn run_cell_opts(
    workload: Workload,
    isa: IsaKind,
    personality: &Personality,
    size: SizeClass,
    opts: &CellOptions,
) -> Result<ExperimentCell, CellError> {
    let tel = telemetry::global();
    let _cell_span =
        tel.enter(&format!("cell:{}/{}/{}", workload.name(), isa_label(isa), personality.label()));
    let cell_start = std::time::Instant::now();
    if opts.fault.is_some() {
        tel.counter_add("faults_injected", 1);
    }
    let max_retries = opts.effective_retries();
    let mut attempt = 0u32;
    loop {
        // Panics from the emulator or observers degrade to a typed,
        // per-cell error rather than unwinding through the worker pool.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_cell_attempt(workload, isa, personality, size, opts)
        }))
        .unwrap_or_else(|p| Err(CellError::Panic { msg: error::panic_message(p) }));
        match outcome {
            Ok(cell) => {
                tel.counter_add("cells_run", 1);
                tel.histogram_record("cell_wall_ms", cell_start.elapsed().as_millis() as u64);
                return Ok(cell);
            }
            Err(e) => {
                let label = telemetry::Json::Str(cell_label(workload, isa, personality));
                // A signal-interrupted cell is not a measurement failure:
                // no `cells_failed`, no retry — it simply was not run to
                // completion, and a resumed matrix re-attempts it.
                if matches!(e, CellError::Interrupted { .. }) {
                    tel.event("cell_interrupted", &[("cell", label)]);
                    return Err(e);
                }
                if matches!(e, CellError::Timeout { .. }) {
                    tel.counter_add("watchdog_trips", 1);
                    tel.event(
                        "watchdog_trip",
                        &[
                            ("cell", label.clone()),
                            ("detail", telemetry::Json::Str(e.to_string())),
                        ],
                    );
                }
                if e.retryable() && attempt < max_retries {
                    attempt += 1;
                    tel.counter_add("cell_retries", 1);
                    tel.event(
                        "cell_retry",
                        &[
                            ("cell", label),
                            ("attempt", telemetry::Json::Num(attempt as f64)),
                            ("kind", telemetry::Json::Str(e.kind().to_string())),
                        ],
                    );
                    continue;
                }
                tel.counter_add("cells_failed", 1);
                tel.event(
                    "cell_failed",
                    &[
                        ("cell", label),
                        ("kind", telemetry::Json::Str(e.kind().to_string())),
                        ("detail", telemetry::Json::Str(e.to_string())),
                    ],
                );
                return Err(e);
            }
        }
    }
}

/// Run the full measurement set for one (workload, ISA, compiler) cell:
/// path length (total + per kernel), critical path, TX2-scaled critical
/// path and the windowed critical path, in a single emulation pass.
pub fn run_cell(
    workload: Workload,
    isa: IsaKind,
    personality: &Personality,
    size: SizeClass,
) -> Result<ExperimentCell, CellError> {
    run_cell_opts(workload, isa, personality, size, &CellOptions::default())
}

/// Run the paper's full experiment matrix: all five workloads x
/// {GCC 9.2, GCC 12.2} x {AArch64, RISC-V}, cells in parallel on the
/// process-wide work-stealing shard pool ([`pool::global`]). Failed cells
/// degrade to [`ResultMatrix::failures`] entries; the other cells still
/// measure.
pub fn run_matrix(size: SizeClass) -> ResultMatrix {
    run_matrix_for(&Workload::ALL, size)
}

/// Run the matrix for a subset of workloads.
pub fn run_matrix_for(workloads: &[Workload], size: SizeClass) -> ResultMatrix {
    run_matrix_opts(workloads, size, &MatrixOptions::default())
}

/// Run the matrix with fault-tolerance options (per-cell deadline,
/// retries, targeted fault injection).
pub fn run_matrix_opts(
    workloads: &[Workload],
    size: SizeClass,
    opts: &MatrixOptions,
) -> ResultMatrix {
    run_matrix_journaled(workloads, size, opts, None)
}

/// The paper's canonical cell order: workloads x {GCC 9.2, GCC 12.2} x
/// {AArch64, RISC-V}. Every matrix entry point — including the `isacmpd`
/// daemon's job planner — iterates combinations in this order, which is
/// what makes resumed, uninterrupted, and daemon-served matrices
/// byte-identical.
pub fn matrix_combos(workloads: &[Workload]) -> Vec<(Workload, Personality, IsaKind)> {
    workloads
        .iter()
        .flat_map(|&w| {
            [Personality::gcc92(), Personality::gcc122()]
                .into_iter()
                .flat_map(move |p| {
                    [IsaKind::AArch64, IsaKind::RiscV].into_iter().map(move |isa| (w, p, isa))
                })
        })
        .collect()
}

/// [`run_matrix_opts`] with a crash-safe [`CellJournal`]: each cell's
/// outcome is durably appended as it completes, before the worker moves
/// on, so a SIGKILL mid-matrix loses at most the cells still in flight.
/// When `opts.heed_shutdown` is set, SIGINT/SIGTERM drains the worker
/// pool gracefully: unstarted combos are skipped (returned matrix simply
/// lacks them) and interrupted cells are neither recorded nor journaled.
///
/// The journal rides in an `Arc` because cells run as `'static` tasks on
/// the process-wide [`pool::global`] shard pool (shared with the daemon),
/// not on a scoped per-call pool.
pub fn run_matrix_journaled(
    workloads: &[Workload],
    size: SizeClass,
    opts: &MatrixOptions,
    journal: Option<&std::sync::Arc<std::sync::Mutex<CellJournal>>>,
) -> ResultMatrix {
    let _span = telemetry::global().enter("matrix");
    let combos = matrix_combos(workloads);
    let outcomes = run_combos(&combos, size, opts, journal);
    let mut matrix = ResultMatrix::default();
    for ((w, p, isa), outcome) in combos.iter().zip(outcomes) {
        if let Some(outcome) = outcome {
            record_outcome(&mut matrix, w.name(), p.label(), isa_label(*isa), outcome, opts.retries);
        }
    }
    matrix
}

/// Run a set of combinations on the shared shard pool, journaling each
/// outcome as it completes. `None` slots are combos never started because
/// a shutdown was requested. Tasks own everything they touch (combos are
/// `Copy`, options are cloned per cell, the journal is `Arc`-shared), so
/// they can outlive this stack frame on the persistent pool — though
/// `run_batch` in fact blocks until every slot resolves.
#[allow(clippy::type_complexity)]
fn run_combos(
    combos: &[(Workload, Personality, IsaKind)],
    size: SizeClass,
    opts: &MatrixOptions,
    journal: Option<&std::sync::Arc<std::sync::Mutex<CellJournal>>>,
) -> Vec<Option<Result<Result<ExperimentCell, CellError>, String>>> {
    let tasks: Vec<Box<dyn FnOnce() -> Result<ExperimentCell, CellError> + Send>> = combos
        .iter()
        .map(|&(w, p, isa)| {
            let cell_opts = opts.cell_options(w.name(), p.label(), isa_label(isa));
            let journal = journal.cloned();
            let retries = opts.retries;
            Box::new(move || {
                let outcome = run_cell_opts(w, isa, &p, size, &cell_opts);
                journal_outcome(
                    journal.as_deref(),
                    w.name(),
                    p.label(),
                    isa_label(isa),
                    &outcome,
                    retries,
                );
                outcome
            }) as Box<dyn FnOnce() -> Result<ExperimentCell, CellError> + Send>
        })
        .collect();
    pool::global().run_batch(tasks, opts.heed_shutdown)
}

/// Durably append one completed cell outcome to the journal (if one is
/// attached). Interrupted cells are deliberately *not* journaled: the
/// absence of a record is what marks the combo for re-running on resume.
/// Journal I/O failures are counted and logged, never escalated — the
/// in-memory matrix still carries the outcome.
///
/// Public because the `isacmpd` daemon journals cells it runs on the
/// shared pool through exactly this path, so daemon-written journals are
/// indistinguishable from `make_tables` ones.
pub fn journal_outcome(
    journal: Option<&std::sync::Mutex<CellJournal>>,
    workload: &str,
    compiler: &str,
    isa: &str,
    outcome: &Result<ExperimentCell, CellError>,
    retries_asked: u32,
) {
    let Some(journal) = journal else { return };
    let lock = || journal.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let written = match outcome {
        Ok(cell) => lock().record_cell(cell),
        Err(CellError::Interrupted { .. }) => return,
        Err(e) => {
            // Mirror `record_outcome`'s retries accounting exactly, so a
            // journal-recovered failure is byte-identical to one recorded
            // by an uninterrupted run.
            let retries = if e.retryable() { retries_asked.min(MAX_CELL_RETRIES) } else { 0 };
            let f = e.to_failure(workload, compiler, isa, retries as u64);
            lock().record_failure(&f)
        }
    };
    if let Err(io) = written {
        let tel = telemetry::global();
        tel.counter_add("journal_errors", 1);
        tel.event(
            "journal_error",
            &[("error", telemetry::Json::Str(io.to_string()))],
        );
    }
}

/// Fold one worker outcome into the matrix: a measured cell, a typed
/// failure, or (worst case) a panic that escaped even `run_cell`'s
/// catch_unwind / a lost worker — recorded, never fatal.
///
/// Public because the `isacmpd` daemon assembles served matrices through
/// this exact path; that shared fold (plus [`matrix_combos`] order) is
/// what makes a daemon-served `matrix.json` byte-identical to a one-shot
/// `make_tables` run.
pub fn record_outcome(
    matrix: &mut ResultMatrix,
    workload: &str,
    compiler: &str,
    isa: &str,
    outcome: Result<Result<ExperimentCell, CellError>, String>,
    retries_asked: u32,
) {
    match outcome {
        Ok(Ok(cell)) => matrix.cells.push(cell),
        // Interrupted is not an outcome: the cell was cut short by a
        // shutdown signal and will be re-attempted by a resumed run.
        Ok(Err(CellError::Interrupted { .. })) => {}
        Ok(Err(e)) => {
            let retries = if e.retryable() { retries_asked.min(MAX_CELL_RETRIES) } else { 0 };
            matrix.failures.push(e.to_failure(workload, compiler, isa, retries as u64));
        }
        Err(msg) => {
            let e = CellError::Panic { msg };
            matrix.failures.push(e.to_failure(workload, compiler, isa, 0));
        }
    }
}

/// Map a failure record's labels back to a runnable combination. `None`
/// for labels this build does not know (e.g. a matrix produced by a newer
/// workload set) — those are carried forward untouched by a resume.
fn combo_for(workload: &str, compiler: &str, isa: &str) -> Option<(Workload, Personality, IsaKind)> {
    let w = Workload::ALL.iter().copied().find(|w| w.name() == workload)?;
    let p = [Personality::gcc92(), Personality::gcc122()]
        .into_iter()
        .find(|p| p.label() == compiler)?;
    let i = [IsaKind::AArch64, IsaKind::RiscV].into_iter().find(|&i| isa_label(i) == isa)?;
    Some((w, p, i))
}

/// Resume a partial matrix: keep every measured cell from `prior` and
/// re-run only its recorded `failures` (in parallel, with `opts`).
/// Failures whose labels this build cannot map to a combination are
/// carried forward unchanged rather than silently dropped.
///
/// Telemetry counters: `cells_skipped` (prior healthy cells kept) and
/// `cells_resumed` (failed cells re-run).
pub fn resume_matrix(prior: &ResultMatrix, size: SizeClass, opts: &MatrixOptions) -> ResultMatrix {
    resume_matrix_journaled(prior, size, opts, None)
}

/// [`resume_matrix`] with a crash-safe [`CellJournal`] attached to the
/// re-run cells (kept prior cells are the caller's to seed into the
/// journal — see `make_tables`).
pub fn resume_matrix_journaled(
    prior: &ResultMatrix,
    size: SizeClass,
    opts: &MatrixOptions,
    journal: Option<&std::sync::Arc<std::sync::Mutex<CellJournal>>>,
) -> ResultMatrix {
    let tel = telemetry::global();
    let _span = tel.enter("matrix_resume");
    let mut matrix =
        ResultMatrix { cells: prior.cells.clone(), failures: Vec::new() };
    tel.counter_add("cells_skipped", prior.cells.len() as u64);
    let mut reruns: Vec<(Workload, Personality, IsaKind)> = Vec::new();
    for f in &prior.failures {
        match combo_for(&f.workload, &f.compiler, &f.isa) {
            Some(combo) => reruns.push(combo),
            None => matrix.failures.push(f.clone()),
        }
    }
    tel.counter_add("cells_resumed", reruns.len() as u64);
    let outcomes = run_combos(&reruns, size, opts, journal);
    for ((w, p, isa), outcome) in reruns.iter().zip(outcomes) {
        if let Some(outcome) = outcome {
            record_outcome(&mut matrix, w.name(), p.label(), isa_label(*isa), outcome, opts.retries);
        }
    }
    matrix
}

/// Continue an interrupted matrix run from journal-recovered outcomes.
///
/// Unlike [`resume_matrix`] (which *heals* a finished-but-partial matrix
/// by re-running its failures), this is a strict continuation: every
/// recorded cell AND failure from `prior` is kept verbatim, and only the
/// combinations with no record at all are run. The result is reassembled
/// in canonical matrix order, so a run that was SIGKILLed and resumed
/// produces a `matrix.json` byte-identical to one that was never
/// interrupted. Records whose labels this build cannot map to a known
/// combination are carried forward unchanged at the end.
///
/// Telemetry: counters `cells_skipped` / `cells_resumed` /
/// `journal_resumes`, event `journal_resume`.
pub fn continue_matrix(
    workloads: &[Workload],
    size: SizeClass,
    opts: &MatrixOptions,
    prior: &ResultMatrix,
    journal: Option<&std::sync::Arc<std::sync::Mutex<CellJournal>>>,
) -> ResultMatrix {
    let tel = telemetry::global();
    let _span = tel.enter("matrix_continue");
    let combos = matrix_combos(workloads);
    let key = |w: &str, c: &str, i: &str| (w.to_string(), c.to_string(), i.to_string());
    let done: std::collections::HashSet<_> = prior
        .cells
        .iter()
        .map(|c| key(&c.workload, &c.compiler, &c.isa))
        .chain(prior.failures.iter().map(|f| key(&f.workload, &f.compiler, &f.isa)))
        .collect();
    let missing: Vec<(Workload, Personality, IsaKind)> = combos
        .iter()
        .filter(|(w, p, isa)| !done.contains(&key(w.name(), p.label(), isa_label(*isa))))
        .cloned()
        .collect();
    tel.counter_add("cells_skipped", (prior.cells.len() + prior.failures.len()) as u64);
    tel.counter_add("cells_resumed", missing.len() as u64);
    tel.counter_add("journal_resumes", 1);
    tel.event(
        "journal_resume",
        &[
            ("recovered", telemetry::Json::Num(done.len() as f64)),
            ("remaining", telemetry::Json::Num(missing.len() as f64)),
        ],
    );

    let outcomes = run_combos(&missing, size, opts, journal);
    let mut fresh: std::collections::HashMap<_, _> = missing
        .iter()
        .zip(outcomes)
        .filter_map(|((w, p, isa), o)| {
            o.map(|o| (key(w.name(), p.label(), isa_label(*isa)), o))
        })
        .collect();

    // Reassemble in canonical order: kept records slot back into exactly
    // the position an uninterrupted run would have produced them in.
    let mut matrix = ResultMatrix::default();
    for (w, p, isa) in &combos {
        let (wn, pl, il) = (w.name(), p.label(), isa_label(*isa));
        if let Some(c) = prior.get(wn, pl, il) {
            matrix.cells.push(c.clone());
        } else if let Some(f) = prior.get_failure(wn, pl, il) {
            matrix.failures.push(f.clone());
        } else if let Some(outcome) = fresh.remove(&key(wn, pl, il)) {
            record_outcome(&mut matrix, wn, pl, il, outcome, opts.retries);
        }
        // else: skipped because shutdown was requested again — still
        // missing from the journal, so the next resume re-attempts it.
    }
    let known: std::collections::HashSet<_> = combos
        .iter()
        .map(|(w, p, isa)| key(w.name(), p.label(), isa_label(*isa)))
        .collect();
    for c in &prior.cells {
        if !known.contains(&key(&c.workload, &c.compiler, &c.isa)) {
            matrix.cells.push(c.clone());
        }
    }
    for f in &prior.failures {
        if !known.contains(&key(&f.workload, &f.compiler, &f.isa)) {
            matrix.failures.push(f.clone());
        }
    }
    matrix
}

/// Either pipeline flavour behind one observer interface, so the guest-run
/// plumbing below is written once.
enum AnyPipeline {
    InOrder(InOrderCore<Tx2Latency>),
    OoO(OoOCore<Tx2Latency>),
}

impl AnyPipeline {
    fn build(config: PipelineConfig, out_of_order: bool, dcache: Option<(CacheConfig, u64)>) -> Self {
        if out_of_order {
            let mut core = OoOCore::new(Tx2Latency, config);
            if let Some((cfg, penalty)) = dcache {
                core = core.with_dcache(cfg, penalty);
            }
            AnyPipeline::OoO(core)
        } else {
            let mut core = InOrderCore::new(Tx2Latency, config);
            if let Some((cfg, penalty)) = dcache {
                core = core.with_dcache(cfg, penalty);
            }
            AnyPipeline::InOrder(core)
        }
    }

    fn observer(&mut self) -> &mut dyn Observer {
        match self {
            AnyPipeline::InOrder(c) => c,
            AnyPipeline::OoO(c) => c,
        }
    }

    fn stats(&self) -> PipelineStats {
        match self {
            AnyPipeline::InOrder(c) => c.stats(),
            AnyPipeline::OoO(c) => c.stats(),
        }
    }
}

/// [`run_pipeline_full`] with typed errors and the same fault hooks as the
/// emulation path: the guest is driven through `uarch::run_guest`, so a
/// wall-clock deadline and a [`FaultInjector`] (plan or whole campaign)
/// apply to the pipeline-timed run exactly as they do to [`try_execute`].
/// Returns the final architectural state alongside the timing stats so
/// differential tests can compare the two paths.
pub fn try_run_pipeline_full(
    workload: Workload,
    isa: IsaKind,
    personality: &Personality,
    size: SizeClass,
    config: PipelineConfig,
    out_of_order: bool,
    dcache: Option<(CacheConfig, u64)>,
    deadline: Option<std::time::Duration>,
    injector: Option<Box<dyn FaultInjector>>,
) -> Result<(CpuState, PipelineStats), CellError> {
    let _span = telemetry::global().enter("pipeline");
    let prog = workload.build(size);
    let compiled = compile(&prog, isa, personality);
    let mut st = CpuState::new();
    compiled.program.load(&mut st).map_err(CellError::Load)?;
    let mut core = AnyPipeline::build(config, out_of_order, dcache);
    let result = match compiled.program.isa {
        IsaKind::RiscV => {
            uarch::run_guest(
                core.observer(),
                RiscVExecutor::new(),
                &mut st,
                deadline,
                injector,
                Engine::default(),
            )
        }
        IsaKind::AArch64 => {
            uarch::run_guest(
                core.observer(),
                AArch64Executor::new(),
                &mut st,
                deadline,
                injector,
                Engine::default(),
            )
        }
    };
    let stats = result.map_err(|err| {
        let instret = st.instret;
        if err.is_watchdog() {
            CellError::Timeout { err, instret }
        } else {
            CellError::Sim { err, instret }
        }
    })?;
    if stats.exit_code != 0 {
        return Err(CellError::NonZeroExit { code: stats.exit_code });
    }
    Ok((st, core.stats()))
}

/// Run a workload through a trace-driven pipeline model (experiment E7,
/// the paper's Future Work). `dcache` optionally attaches an L1D model:
/// `(geometry, miss penalty in cycles)`. Convenience wrapper around
/// [`try_run_pipeline_full`]; panics on guest failure.
pub fn run_pipeline_full(
    workload: Workload,
    isa: IsaKind,
    personality: &Personality,
    size: SizeClass,
    config: PipelineConfig,
    out_of_order: bool,
    dcache: Option<(CacheConfig, u64)>,
) -> PipelineStats {
    try_run_pipeline_full(workload, isa, personality, size, config, out_of_order, dcache, None, None)
        .map(|(_, stats)| stats)
        .unwrap_or_else(|e| panic!("run_pipeline_full({}): {e}", isa_label(isa)))
}

/// [`run_pipeline_full`] with ideal (single-cycle-hit) memory — the
/// configuration matching the paper's assumptions.
pub fn run_pipeline(
    workload: Workload,
    isa: IsaKind,
    personality: &Personality,
    size: SizeClass,
    config: PipelineConfig,
    out_of_order: bool,
) -> PipelineStats {
    run_pipeline_full(workload, isa, personality, size, config, out_of_order, None)
}

/// Disassemble the instructions of a named kernel region (the paper's §3.3
/// listing-level analysis). Returns `(pc, text)` pairs.
pub fn disassemble_region(compiled: &Compiled, region: &str) -> Vec<(u64, String)> {
    let program = &compiled.program;
    let mut st = CpuState::new();
    if let Err(e) = program.load(&mut st) {
        // A listing tool shouldn't panic: surface the reason in-band.
        return vec![(0, format!("<load failed: {e}>"))];
    }
    let mut out = Vec::new();
    for r in program.regions.iter().filter(|r| r.name == region) {
        for pc in (r.start..r.end).step_by(4) {
            let text = match st.mem.read_u32(pc) {
                Ok(word) => match program.isa {
                    IsaKind::RiscV => RiscVExecutor::new().disassemble(word),
                    IsaKind::AArch64 => AArch64Executor::new().disassemble(word),
                },
                Err(_) => "<unmapped>".to_string(),
            };
            out.push((pc, text));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_cell_invariants() {
        let cell = run_cell(
            Workload::Stream,
            IsaKind::RiscV,
            &Personality::gcc122(),
            SizeClass::Test,
        )
        .expect("healthy cell measures");
        assert!(cell.critical_path <= cell.path_length);
        assert!(cell.scaled_cp >= cell.critical_path);
        assert!(cell.ilp() >= 1.0);
        let kernel_sum: u64 = cell.kernels.iter().map(|(_, c)| c).sum();
        assert!(kernel_sum <= cell.path_length);
        assert!(!cell.windows.is_empty());
    }

    #[test]
    fn disassembly_of_stream_copy() {
        let prog = Workload::Stream.build(SizeClass::Test);
        let c = compile(&prog, IsaKind::AArch64, &Personality::gcc122());
        let listing = disassemble_region(&c, "copy");
        assert!(!listing.is_empty());
        let text: String = listing.iter().map(|(_, t)| format!("{t}\n")).collect();
        // The paper's Listing 1 register-offset idiom must appear.
        assert!(text.contains("lsl #3"), "expected register-offset addressing:\n{text}");
        assert!(text.contains("b.ne"), "loop back edge:\n{text}");
    }

    #[test]
    fn matrix_runs_one_workload() {
        let m = run_matrix_for(&[Workload::Stream], SizeClass::Test);
        assert_eq!(m.cells.len(), 4);
        assert!(m.is_complete(), "no failures expected: {}", m.failure_summary());
        assert!(m.get("STREAM", "gcc-9.2", "AArch64").is_some());
        assert!(m.table1().contains("STREAM"));
    }

    #[test]
    fn injected_trap_degrades_one_cell() {
        let inject = InjectSpec::parse("STREAM/gcc-12.2/RISC-V:trap@1000").unwrap();
        let opts = MatrixOptions { inject: Some(inject), ..Default::default() };
        let m = run_matrix_opts(&[Workload::Stream], SizeClass::Test, &opts);
        assert_eq!(m.cells.len(), 3, "three healthy cells still measure");
        assert_eq!(m.failures.len(), 1);
        let f = m.get_failure("STREAM", "gcc-12.2", "RISC-V").expect("targeted cell failed");
        assert_eq!(f.kind, "sim");
        assert!(f.detail.contains("injected fault"), "detail: {}", f.detail);
        assert!(m.table1().contains("ERR(sim)"), "table renders the failed cell");
    }

    #[test]
    fn zero_deadline_times_out() {
        let opts = CellOptions {
            deadline: Some(std::time::Duration::ZERO),
            ..Default::default()
        };
        let err = run_cell_opts(
            Workload::Stream,
            IsaKind::RiscV,
            &Personality::gcc122(),
            SizeClass::Test,
            &opts,
        )
        .expect_err("zero deadline must trip the watchdog");
        assert_eq!(err.kind(), "timeout");
    }

    #[test]
    fn canonical_combo_order_is_stable() {
        let combos = matrix_combos(&[Workload::Stream]);
        let labels: Vec<String> = combos
            .iter()
            .map(|(w, p, isa)| format!("{}/{}/{}", w.name(), p.label(), isa_label(*isa)))
            .collect();
        assert_eq!(
            labels,
            [
                "STREAM/gcc-9.2/AArch64",
                "STREAM/gcc-9.2/RISC-V",
                "STREAM/gcc-12.2/AArch64",
                "STREAM/gcc-12.2/RISC-V",
            ]
        );
    }
}
