//! The on-disk trace format: constants, varint/zigzag primitives, the
//! checksum, and the provenance header.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header : "ICTR" | u16 version | u16 reserved | u32 meta_len | meta JSON
//! block  : 'B' | u32 n_records | u32 payload_len | u64 first_pc
//!              | u64 payload_checksum | payload
//! trailer: 'E' | u64 total_records | u64 state_hash | u64 capture_wall_us
//!              | u64 trailer_checksum
//! ```
//!
//! Within a block payload each record is encoded as:
//!
//! ```text
//! flags   u8      bit0 is_branch, bit1 taken,
//!                 bits2-3 #mem reads (0..=2), bits4-5 #mem writes (0..=2)
//! group   u8      InstGroup::code()
//! pc      varint  zigzag(pc - prev_pc); prev_pc starts at the block's
//!                 first_pc, so the first record's delta is zero
//! srcs    u8 n + n slot bytes (RegId::index, 0..=64)
//! dsts    u8 n + n slot bytes
//! mem     per access (reads then writes):
//!         varint zigzag(addr - prev_addr) + u8 size; prev_addr starts at 0
//!         per block and is shared by reads and writes
//! ```
//!
//! Delta-encoded PCs make straight-line code cost one byte per record for
//! the PC; the shared address predictor makes streaming access patterns
//! (the dominant case in all five workloads) one or two bytes per access.
//!
//! Versioning policy: `VERSION` bumps on any change to the header, block,
//! or record layout. Readers reject other versions outright — traces are
//! cheap to regenerate, so there is no cross-version migration path.

use simcore::Region;
use telemetry::Json;

/// File magic: "ICTR" (Isa-Comparison TRace).
pub const MAGIC: [u8; 4] = *b"ICTR";

/// Current format version; readers accept exactly this.
pub const VERSION: u16 = 1;

/// Tag byte introducing a record block.
pub const BLOCK_TAG: u8 = b'B';

/// Tag byte introducing the trailer.
pub const TRAILER_TAG: u8 = b'E';

/// Records per block. Bounds reader memory (one decoded block at a time)
/// and sets the granularity of checksum verification.
pub const BLOCK_RECORDS: usize = 4096;

/// FNV-1a 64-bit checksum over a byte slice — the per-block and trailer
/// integrity check. Not cryptographic; it guards against truncation and
/// bit-rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// Append an LEB128 varint.
#[inline]
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an LEB128 varint from `bytes` at `*pos`, advancing it.
#[inline]
pub fn get_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None; // over-long encoding
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Zigzag-map a signed delta so small magnitudes of either sign stay small.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Provenance carried in the trace header: enough to key a trace cache, to
/// rebuild per-kernel attribution without recompiling, and for
/// `trace_tool info` to say what a file is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Workload name ("STREAM", ...), or a free-form label for ELF runs.
    pub workload: String,
    /// Compiler personality label ("gcc-12.2", ...).
    pub compiler: String,
    /// ISA label ("AArch64" / "RISC-V").
    pub isa: String,
    /// Size-class name ("test" / "small" / "paper"), or "elf".
    pub size: String,
    /// Named kernel regions of the traced program, so replay-side
    /// path-length attribution needs no compile step.
    pub regions: Vec<Region>,
}

impl TraceMeta {
    /// Serialize to the header JSON blob.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::Str(self.workload.clone())),
            ("compiler", Json::Str(self.compiler.clone())),
            ("isa", Json::Str(self.isa.clone())),
            ("size", Json::Str(self.size.clone())),
            (
                "regions",
                Json::Arr(
                    self.regions
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("name", Json::Str(r.name.clone())),
                                ("start", Json::Num(r.start as f64)),
                                ("end", Json::Num(r.end as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse the header JSON blob.
    pub fn from_json(j: &Json) -> Option<TraceMeta> {
        Some(TraceMeta {
            workload: j.get("workload")?.as_str()?.to_string(),
            compiler: j.get("compiler")?.as_str()?.to_string(),
            isa: j.get("isa")?.as_str()?.to_string(),
            size: j.get("size")?.as_str()?.to_string(),
            regions: j
                .get("regions")?
                .as_arr()?
                .iter()
                .map(|r| {
                    Some(Region {
                        name: r.get("name")?.as_str()?.to_string(),
                        start: r.get("start")?.as_u64()?,
                        end: r.get("end")?.as_u64()?,
                    })
                })
                .collect::<Option<Vec<Region>>>()?,
        })
    }

    /// Whether this trace was captured for the given cell coordinates —
    /// the cache-hit test `make_tables --trace-dir` uses.
    pub fn matches_cell(&self, workload: &str, compiler: &str, isa: &str, size: &str) -> bool {
        self.workload == workload
            && self.compiler == compiler
            && self.isa == isa
            && self.size == size
    }
}

/// The trailer: totals and the capture run's provenance hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceTrailer {
    /// Total records across all blocks.
    pub total_records: u64,
    /// [`simcore::CpuState::state_hash`] of the final architectural state
    /// of the captured run (0 when the capturer had no state, e.g. a
    /// synthetic stream).
    pub state_hash: u64,
    /// Wall-clock microseconds the capture run spent emulating — replay
    /// speedup is measured against this.
    pub capture_wall_us: u64,
}

impl TraceTrailer {
    /// The 24 bytes covered by the trailer checksum.
    pub fn checked_bytes(&self) -> [u8; 24] {
        let mut b = [0u8; 24];
        b[0..8].copy_from_slice(&self.total_records.to_le_bytes());
        b[8..16].copy_from_slice(&self.state_hash.to_le_bytes());
        b[16..24].copy_from_slice(&self.capture_wall_us.to_le_bytes());
        b
    }

    /// Checksum over [`TraceTrailer::checked_bytes`].
    pub fn checksum(&self) -> u64 {
        fnv1a64(&self.checked_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 0xFFFF, u64::MAX / 2, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_truncation_is_none() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 4, -4, i64::MAX, i64::MIN, 0x1234_5678] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes encode small: |v| <= 63 fits one varint byte.
        assert!(zigzag(-63) < 128);
        assert!(zigzag(63) < 128);
    }

    #[test]
    fn meta_json_round_trip() {
        let meta = TraceMeta {
            workload: "STREAM".into(),
            compiler: "gcc-12.2".into(),
            isa: "RISC-V".into(),
            size: "test".into(),
            regions: vec![Region { name: "copy".into(), start: 0x100, end: 0x180 }],
        };
        let text = meta.to_json().pretty();
        let parsed = TraceMeta::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, meta);
        assert!(parsed.matches_cell("STREAM", "gcc-12.2", "RISC-V", "test"));
        assert!(!parsed.matches_cell("STREAM", "gcc-9.2", "RISC-V", "test"));
    }

    #[test]
    fn trailer_checksum_changes_with_fields() {
        let a = TraceTrailer { total_records: 10, state_hash: 1, capture_wall_us: 5 };
        let b = TraceTrailer { total_records: 11, ..a };
        assert_ne!(a.checksum(), b.checksum());
    }
}
