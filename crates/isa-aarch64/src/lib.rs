#![warn(missing_docs)]
//! AArch64 (Armv8-a) scalar subset: binary encoder, decoder, assembler,
//! disassembler and functional executor.
//!
//! This is the Arm half of the paper's comparison. The paper compiled with
//! `-march=armv8-a+nosimd -mtune=cortex-a55`, i.e. the scalar A64
//! instruction set with NEON disabled, so this crate implements the integer
//! data-processing, load/store (including the register-offset and pre/post-
//! indexed addressing modes whose path-length advantages §3.3 analyses),
//! branch, and scalar floating-point instruction classes.
//!
//! Register 31 is context-dependent exactly as in the real encoding: the
//! stack pointer for address operands and non-flag-setting immediate
//! arithmetic, the zero register elsewhere. The NZCV flags are modelled as
//! one extra register slot ([`simcore::RegId::Flags`]) so dependency
//! analyses see `cmp` -> `b.ne` chains — the extra-instruction penalty for
//! conditional branching the paper attributes to AArch64.

pub mod asm;
pub mod bitmask;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod exec;
pub mod inst;

pub use asm::A64Asm;
pub use decode::decode;
pub use disasm::disassemble;
pub use encode::encode;
pub use exec::AArch64Executor;
pub use inst::*;
