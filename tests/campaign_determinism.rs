//! Property tests for campaign replayability: the whole point of a seeded
//! fault schedule is that `<seed>:<n>` names one exact experiment. Same
//! seed + same matrix configuration must reproduce the schedule, the
//! manifest, and the full result matrix (including its `failures` set)
//! byte for byte; different seeds must explore different schedules.

use isacmp::{
    run_matrix_opts, CampaignManifest, CampaignSpec, MatrixOptions, SizeClass, Workload,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn same_seed_reproduces_the_manifest(seed in any::<u64>(), n in 4usize..16) {
        let spec = CampaignSpec { seed, n_faults: n };
        let a = CampaignManifest::sample(spec);
        let b = CampaignManifest::sample(spec);
        // Compare the schedules themselves, not just the (trivially equal)
        // seed fields — and the serialized artifact byte for byte.
        prop_assert_eq!(&a.specs, &b.specs);
        prop_assert_eq!(a.to_json(), b.to_json());
        prop_assert_eq!(a.specs.len(), n);

        // The manifest survives its own serialization, full u64 seed and all.
        let back = CampaignManifest::from_json(&a.to_json())
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(back, a);
    }

    #[test]
    fn different_seeds_sample_different_schedules(seed in any::<u64>(), n in 4usize..16) {
        let a = CampaignManifest::sample(CampaignSpec { seed, n_faults: n });
        let b = CampaignManifest::sample(CampaignSpec {
            seed: seed.wrapping_add(1),
            n_faults: n,
        });
        // With >= 4 sampled (kind, instret, argument) draws, two SplitMix64
        // streams colliding on every fault would be astronomical.
        prop_assert!(a.specs != b.specs, "seeds {seed} and {} collided: {:?}", seed.wrapping_add(1), a.specs);
    }
}

proptest! {
    // Each case runs the 4-cell STREAM matrix twice under injection; keep
    // the case count low so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn seeded_matrix_runs_are_byte_identical(seed in any::<u64>(), n in 2usize..6) {
        let manifest = CampaignManifest::sample(CampaignSpec { seed, n_faults: n });
        let opts = MatrixOptions {
            campaign: Some(manifest.campaign().map_err(TestCaseError::fail)?),
            ..Default::default()
        };
        let a = run_matrix_opts(&[Workload::Stream], SizeClass::Test, &opts);
        let b = run_matrix_opts(&[Workload::Stream], SizeClass::Test, &opts);
        // Every cell and every typed failure record — one serialized blob.
        prop_assert_eq!(a.to_json(), b.to_json());
        prop_assert_eq!(a.cells.len() + a.failures.len(), 4, "all four cells accounted for");
    }
}
