//! Hot-block sampling profiler.
//!
//! The guest-side [`ProfilingObserver`](crate::ProfilingObserver) counts
//! *retirements* per region — it says where the guest spent instructions,
//! not where the *host* spent time. This module answers the host-cost
//! question: the emulation core publishes `(pc, instret)` into a
//! [`simcore::SampleSnapshot`] every `2^k` retirements (see
//! `EmulationCore::with_sampling`), and a background [`Sampler`] thread
//! wakes on a fixed wall-clock period, reads the snapshot, and charges one
//! period of host time to the guest PC it finds there. Sampled PCs
//! resolve to symbols via the program's named [`Region`]s, then bucket
//! into [`Sampler::BLOCK_BYTES`]-aligned "blocks" for display.
//!
//! A sample is charged only when `instret` advanced since the previous
//! read — a stale snapshot means the core is not running (finished, or
//! stuck outside the run loop), and charging its last PC would fabricate
//! cost. Stale reads are tallied separately as *idle*.
//!
//! The output side ([`HotBlockProfile`]) renders a top-N table, a JSON
//! object, and collapsed-stack lines (`sampler;symbol;block <us>`) that
//! concatenate directly with [`Timeline::to_collapsed`](crate::Timeline::to_collapsed)
//! output into one flamegraph.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use simcore::{Region, SampleSnapshot};

use crate::json::Json;

/// Raw sampling state accumulated by the sampler thread.
struct RawCounts {
    /// Samples per exact guest PC, attributed while the core ran. Block
    /// bucketing happens at attribution time so a region starting
    /// mid-block still claims its PCs.
    pcs: HashMap<u64, u64>,
    /// Reads where `instret` had not advanced (core idle/finished).
    idle: u64,
}

/// Background thread periodically reading a [`SampleSnapshot`].
///
/// ```no_run
/// # use std::sync::Arc;
/// # use simcore::SampleSnapshot;
/// # use telemetry::sampler::Sampler;
/// let snap = Arc::new(SampleSnapshot::new());
/// let sampler = Sampler::start(Arc::clone(&snap), Sampler::DEFAULT_PERIOD);
/// // ... run an EmulationCore built with .with_sampling(snap, 8) ...
/// let profile = sampler.stop();
/// println!("{}", profile.attribute(&[]).table(10));
/// ```
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<RawCounts>,
    period: Duration,
}

impl Sampler {
    /// Default sampling period: 250 µs — ~4000 samples/s, comfortably
    /// coarser than the publish stride at emulation speeds of a few MIPS.
    pub const DEFAULT_PERIOD: Duration = Duration::from_micros(250);

    /// PC bucket width defining a "block": 64 bytes (16 instructions),
    /// matching `ProfilingObserver::DEFAULT_BUCKET_BYTES` so the two
    /// profiles line up.
    pub const BLOCK_BYTES: u64 = 64;

    /// Spawn the sampler thread reading `snapshot` every `period`
    /// (clamped to at least 50 µs so a mistyped period cannot spin a CPU).
    pub fn start(snapshot: Arc<SampleSnapshot>, period: Duration) -> Sampler {
        let period = period.max(Duration::from_micros(50));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("hotblock-sampler".into())
            .spawn(move || {
                let mut counts = RawCounts { pcs: HashMap::new(), idle: 0 };
                let mut last_instret: Option<u64> = None;
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    let Some(s) = snapshot.read() else { continue };
                    if last_instret == Some(s.instret) {
                        counts.idle += 1;
                    } else {
                        last_instret = Some(s.instret);
                        *counts.pcs.entry(s.pc).or_insert(0) += 1;
                    }
                }
                counts
            })
            .expect("spawn sampler thread");
        Sampler { stop, handle, period }
    }

    /// Stop the thread and collect its counts.
    pub fn stop(self) -> SampleProfile {
        self.stop.store(true, Ordering::Relaxed);
        let counts = self.handle.join().expect("sampler thread panicked");
        SampleProfile { period: self.period, pcs: counts.pcs, idle: counts.idle }
    }
}

/// Raw sample counts from one [`Sampler`] run, before symbol attribution.
pub struct SampleProfile {
    period: Duration,
    pcs: HashMap<u64, u64>,
    idle: u64,
}

impl SampleProfile {
    /// Build a profile from pre-counted samples — the deterministic entry
    /// point for tests and offline tools (`pcs` maps a sampled guest PC to
    /// its sample count; PCs need not be block-aligned).
    pub fn from_parts(period: Duration, pcs: HashMap<u64, u64>, idle: u64) -> Self {
        SampleProfile { period, pcs, idle }
    }

    /// Samples attributed to guest PCs.
    pub fn total_samples(&self) -> u64 {
        self.pcs.values().sum()
    }

    /// Reads that found the core idle (not charged to any PC).
    pub fn idle_samples(&self) -> u64 {
        self.idle
    }

    /// Resolve samples to symbols via `regions` (pass `&program.regions`;
    /// an empty slice leaves every block unresolved). Symbols resolve from
    /// the exact sampled PC *before* block bucketing, so a block straddling
    /// a region boundary splits into one row per symbol.
    pub fn attribute(&self, regions: &[Region]) -> HotBlockProfile {
        let mut sorted: Vec<&Region> = regions.iter().collect();
        sorted.sort_by_key(|r| r.start);
        let symbol_of = |pc: u64| -> Option<String> {
            let idx = sorted.partition_point(|r| r.start <= pc);
            let r = sorted.get(idx.checked_sub(1)?)?;
            r.contains(pc).then(|| r.name.clone())
        };
        let mut bucketed: HashMap<(u64, Option<String>), u64> = HashMap::new();
        for (&pc, &samples) in &self.pcs {
            let block = pc & !(Sampler::BLOCK_BYTES - 1);
            *bucketed.entry((block, symbol_of(pc))).or_insert(0) += samples;
        }
        let mut blocks: Vec<HotBlock> = bucketed
            .into_iter()
            .map(|((start, symbol), samples)| HotBlock { start, samples, symbol })
            .collect();
        blocks.sort_by(|a, b| {
            b.samples
                .cmp(&a.samples)
                .then(a.start.cmp(&b.start))
                .then(a.symbol.cmp(&b.symbol))
        });
        let mut by_symbol: HashMap<&str, u64> = HashMap::new();
        let mut other = 0u64;
        for b in &blocks {
            match &b.symbol {
                Some(s) => *by_symbol.entry(s.as_str()).or_insert(0) += b.samples,
                None => other += b.samples,
            }
        }
        let mut symbols: Vec<(String, u64)> =
            by_symbol.into_iter().map(|(s, n)| (s.to_string(), n)).collect();
        symbols.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        HotBlockProfile {
            period_us: self.period.as_micros() as u64,
            idle_samples: self.idle,
            blocks,
            symbols,
            other,
        }
    }
}

/// One sampled block: a [`Sampler::BLOCK_BYTES`]-aligned guest PC range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotBlock {
    /// Block start PC.
    pub start: u64,
    /// Samples charged to the block.
    pub samples: u64,
    /// Region/symbol containing the block, when one matched.
    pub symbol: Option<String>,
}

/// Symbol-attributed sampling profile: the renderable end product.
pub struct HotBlockProfile {
    /// Sampling period in microseconds (each sample ≈ this much host time).
    pub period_us: u64,
    /// Reads that found the core idle.
    pub idle_samples: u64,
    /// Blocks, most-sampled first.
    pub blocks: Vec<HotBlock>,
    /// Per-symbol sample totals, most-sampled first.
    pub symbols: Vec<(String, u64)>,
    /// Samples in blocks outside every named region.
    pub other: u64,
}

impl HotBlockProfile {
    /// Total attributed samples.
    pub fn total_samples(&self) -> u64 {
        self.blocks.iter().map(|b| b.samples).sum()
    }

    /// Samples charged to the named symbol.
    pub fn symbol_samples(&self, name: &str) -> u64 {
        self.symbols.iter().find(|(s, _)| s == name).map(|(_, n)| *n).unwrap_or(0)
    }

    /// Fraction of attributed samples falling in any of `names` (0 when
    /// nothing was attributed).
    pub fn symbol_fraction(&self, names: &[&str]) -> f64 {
        let total = self.total_samples();
        if total == 0 {
            return 0.0;
        }
        let hit: u64 = names.iter().map(|n| self.symbol_samples(n)).sum();
        hit as f64 / total as f64
    }

    /// Human-readable top-`n` hot-block table with estimated host time.
    pub fn table(&self, n: usize) -> String {
        let total = self.total_samples();
        let mut out = format!(
            "hot blocks: {total} samples @ {} us (~{:.1} ms attributed, {} idle reads)\n",
            self.period_us,
            total as f64 * self.period_us as f64 / 1e3,
            self.idle_samples,
        );
        if total == 0 {
            out.push_str("  (no samples: run too short for the sampling period)\n");
            return out;
        }
        out.push_str(&format!(
            "  {:<18} {:<12} {:>8} {:>9} {:>7}\n",
            "block", "symbol", "samples", "time(ms)", "pct"
        ));
        for b in self.blocks.iter().take(n) {
            out.push_str(&format!(
                "  {:<18} {:<12} {:>8} {:>9.2} {:>6.1}%\n",
                format!("{:#x}", b.start),
                b.symbol.as_deref().unwrap_or("?"),
                b.samples,
                b.samples as f64 * self.period_us as f64 / 1e3,
                b.samples as f64 * 100.0 / total as f64,
            ));
        }
        out.push_str("  per-symbol: ");
        let mut parts: Vec<String> = self
            .symbols
            .iter()
            .map(|(s, c)| format!("{s} {:.0}%", *c as f64 * 100.0 / total as f64))
            .collect();
        if self.other > 0 {
            parts.push(format!("? {:.0}%", self.other as f64 * 100.0 / total as f64));
        }
        out.push_str(&parts.join(" | "));
        out.push('\n');
        out
    }

    /// Collapsed-stack lines (`sampler;symbol;0xPC <us>`), sorted for
    /// determinism. The `sampler;` root keeps guest-time frames visually
    /// separate from host span frames when both feed one flamegraph, and
    /// the grammar matches [`Timeline::to_collapsed`](crate::Timeline::to_collapsed)
    /// so outputs concatenate.
    pub fn to_collapsed(&self) -> String {
        let mut merged: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for b in &self.blocks {
            let stack = format!(
                "sampler;{};{:#x}",
                b.symbol.as_deref().unwrap_or("?"),
                b.start
            );
            *merged.entry(stack).or_insert(0) += b.samples * self.period_us;
        }
        let mut out = String::new();
        for (stack, us) in merged {
            out.push_str(&format!("{stack} {us}\n"));
        }
        out
    }

    /// JSON object: period, totals, top-`n` blocks, per-symbol totals.
    pub fn to_json(&self, n: usize) -> Json {
        Json::obj(vec![
            ("period_us", Json::Num(self.period_us as f64)),
            ("total_samples", Json::Num(self.total_samples() as f64)),
            ("idle_samples", Json::Num(self.idle_samples as f64)),
            (
                "hot_blocks",
                Json::Arr(
                    self.blocks
                        .iter()
                        .take(n)
                        .map(|b| {
                            Json::obj(vec![
                                ("pc", Json::Str(format!("{:#x}", b.start))),
                                (
                                    "symbol",
                                    match &b.symbol {
                                        Some(s) => Json::Str(s.clone()),
                                        None => Json::Null,
                                    },
                                ),
                                ("samples", Json::Num(b.samples as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "symbols",
                Json::Obj(
                    self.symbols
                        .iter()
                        .map(|(s, c)| (s.clone(), Json::Num(*c as f64)))
                        .collect(),
                ),
            ),
            ("other_samples", Json::Num(self.other as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(name: &str, start: u64, end: u64) -> Region {
        Region { name: name.into(), start, end }
    }

    fn profile() -> SampleProfile {
        let mut blocks = HashMap::new();
        blocks.insert(0x1000, 60u64); // inside "triad"
        blocks.insert(0x1040, 25); // inside "triad"
        blocks.insert(0x2000, 10); // inside "copy"
        blocks.insert(0x9000, 5); // outside any region
        SampleProfile::from_parts(Duration::from_micros(250), blocks, 3)
    }

    fn regions() -> Vec<Region> {
        vec![region("triad", 0x1000, 0x1080), region("copy", 0x2000, 0x2040)]
    }

    #[test]
    fn attribution_and_fractions() {
        let p = profile();
        assert_eq!(p.total_samples(), 100);
        assert_eq!(p.idle_samples(), 3);
        let hb = p.attribute(&regions());
        assert_eq!(hb.total_samples(), 100);
        assert_eq!(hb.symbol_samples("triad"), 85);
        assert_eq!(hb.symbol_samples("copy"), 10);
        assert_eq!(hb.other, 5);
        assert!((hb.symbol_fraction(&["triad"]) - 0.85).abs() < 1e-12);
        assert!((hb.symbol_fraction(&["triad", "copy"]) - 0.95).abs() < 1e-12);
        // Blocks sorted by samples descending.
        assert_eq!(hb.blocks[0].start, 0x1000);
        assert_eq!(hb.blocks[0].symbol.as_deref(), Some("triad"));
        // Symbols sorted descending too.
        assert_eq!(hb.symbols[0].0, "triad");
    }

    #[test]
    fn region_starting_mid_block_still_claims_its_pcs() {
        // Block 0x1000..0x1040 holds an unlabelled entry stub (0x1000) and
        // the first instructions of "copy" (0x1020): the block must split
        // into one row per symbol instead of charging everything to "?".
        let mut pcs = HashMap::new();
        pcs.insert(0x1000u64, 4u64);
        pcs.insert(0x1020, 6);
        let hb = SampleProfile::from_parts(Duration::from_micros(250), pcs, 0)
            .attribute(&[region("copy", 0x1020, 0x1100)]);
        assert_eq!(hb.symbol_samples("copy"), 6);
        assert_eq!(hb.other, 4);
        assert_eq!(hb.blocks.len(), 2);
        assert!(hb.blocks.iter().all(|b| b.start == 0x1000));
    }

    #[test]
    fn no_regions_leaves_blocks_unresolved() {
        let hb = profile().attribute(&[]);
        assert!(hb.blocks.iter().all(|b| b.symbol.is_none()));
        assert_eq!(hb.other, 100);
        assert_eq!(hb.symbol_fraction(&["triad"]), 0.0);
    }

    #[test]
    fn table_and_json_render() {
        let hb = profile().attribute(&regions());
        let t = hb.table(3);
        assert!(t.contains("100 samples @ 250 us"), "{t}");
        assert!(t.contains("triad"), "{t}");
        assert!(t.contains("60.0%"), "{t}");
        assert!(t.contains("per-symbol: triad 85% | copy 10% | ? 5%"), "{t}");
        let j = hb.to_json(2);
        assert_eq!(j.get("total_samples").unwrap().as_u64(), Some(100));
        assert_eq!(j.get("hot_blocks").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(j.get("symbols").unwrap().get("triad").unwrap().as_u64(), Some(85));
        // Empty profile renders a hint instead of a header-only table.
        let empty = SampleProfile::from_parts(Duration::from_micros(250), HashMap::new(), 0)
            .attribute(&[]);
        assert!(empty.table(5).contains("no samples"));
    }

    #[test]
    fn collapsed_output_matches_span_grammar() {
        let hb = profile().attribute(&regions());
        let out = hb.to_collapsed();
        assert!(out.contains("sampler;triad;0x1000 15000\n"), "{out}");
        assert!(out.contains("sampler;?;0x9000 1250\n"), "{out}");
        for line in out.lines() {
            let (stack, n) = line.rsplit_once(' ').unwrap();
            assert!(stack.starts_with("sampler;"));
            n.parse::<u64>().expect("numeric self time");
        }
    }

    #[test]
    fn live_sampler_thread_charges_running_core() {
        let snap = Arc::new(SampleSnapshot::new());
        let sampler = Sampler::start(Arc::clone(&snap), Duration::from_micros(100));
        // Emulate a core advancing instret at a fixed pc bucket.
        for i in 0..100u64 {
            snap.publish(0x4000 + (i % 16) * 4, i * 64);
            std::thread::sleep(Duration::from_micros(200));
        }
        let profile = sampler.stop();
        assert!(profile.total_samples() > 0, "sampler never saw the advancing core");
        let hb = profile.attribute(&[region("kernel", 0x4000, 0x4100)]);
        assert_eq!(hb.other, 0, "all samples must land in the kernel region");
        assert!(hb.symbol_fraction(&["kernel"]) > 0.99);
    }

    #[test]
    fn stale_snapshot_counts_as_idle() {
        let snap = Arc::new(SampleSnapshot::new());
        snap.publish(0x4000, 42);
        let sampler = Sampler::start(Arc::clone(&snap), Duration::from_micros(100));
        std::thread::sleep(Duration::from_millis(20));
        let profile = sampler.stop();
        // First read attributes once; every later read sees the same
        // instret and must count as idle.
        assert_eq!(profile.total_samples(), 1);
        assert!(profile.idle_samples() > 0);
    }
}
