//! Decoded RV64G instruction representation.

use simcore::InstGroup;

/// Conditional branch comparison (B-type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchOp {
    /// `beq` — branch if equal.
    Beq,
    /// `bne` — branch if not equal.
    Bne,
    /// `blt` — branch if less than (signed).
    Blt,
    /// `bge` — branch if greater or equal (signed).
    Bge,
    /// `bltu` — branch if less than (unsigned).
    Bltu,
    /// `bgeu` — branch if greater or equal (unsigned).
    Bgeu,
}

/// Integer load width/extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOp {
    /// `lb` — load byte, sign-extend.
    Lb,
    /// `lh` — load half, sign-extend.
    Lh,
    /// `lw` — load word, sign-extend.
    Lw,
    /// `ld` — load doubleword.
    Ld,
    /// `lbu` — load byte, zero-extend.
    Lbu,
    /// `lhu` — load half, zero-extend.
    Lhu,
    /// `lwu` — load word, zero-extend.
    Lwu,
}

impl LoadOp {
    /// Access width in bytes.
    pub fn size(self) -> u8 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw | LoadOp::Lwu => 4,
            LoadOp::Ld => 8,
        }
    }
}

/// Integer store width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOp {
    /// `sb` — store byte.
    Sb,
    /// `sh` — store half.
    Sh,
    /// `sw` — store word.
    Sw,
    /// `sd` — store doubleword.
    Sd,
}

impl StoreOp {
    /// Access width in bytes.
    pub fn size(self) -> u8 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
            StoreOp::Sd => 8,
        }
    }
}

/// Register-immediate ALU operation (I-type, 64-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImmOp {
    /// `addi`.
    Addi,
    /// `slti` — set if less than, signed.
    Slti,
    /// `sltiu` — set if less than, unsigned.
    Sltiu,
    /// `xori`.
    Xori,
    /// `ori`.
    Ori,
    /// `andi`.
    Andi,
    /// `slli` — shift left logical immediate.
    Slli,
    /// `srli` — shift right logical immediate.
    Srli,
    /// `srai` — shift right arithmetic immediate.
    Srai,
}

/// Register-immediate ALU operation on 32-bit values (`*w` forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImmOp32 {
    /// `addiw`.
    Addiw,
    /// `slliw`.
    Slliw,
    /// `srliw`.
    Srliw,
    /// `sraiw`.
    Sraiw,
}

/// Register-register ALU operation (R-type, 64-bit), including the M
/// extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegOp {
    /// `add`.
    Add,
    /// `sub`.
    Sub,
    /// `sll`.
    Sll,
    /// `slt`.
    Slt,
    /// `sltu`.
    Sltu,
    /// `xor`.
    Xor,
    /// `srl`.
    Srl,
    /// `sra`.
    Sra,
    /// `or`.
    Or,
    /// `and`.
    And,
    /// `mul` (M).
    Mul,
    /// `mulh` (M) — upper 64 bits of signed x signed.
    Mulh,
    /// `mulhsu` (M) — upper 64 bits of signed x unsigned.
    Mulhsu,
    /// `mulhu` (M) — upper 64 bits of unsigned x unsigned.
    Mulhu,
    /// `div` (M).
    Div,
    /// `divu` (M).
    Divu,
    /// `rem` (M).
    Rem,
    /// `remu` (M).
    Remu,
}

/// Register-register ALU operation on 32-bit values (`*w` forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegOp32 {
    /// `addw`.
    Addw,
    /// `subw`.
    Subw,
    /// `sllw`.
    Sllw,
    /// `srlw`.
    Srlw,
    /// `sraw`.
    Sraw,
    /// `mulw` (M).
    Mulw,
    /// `divw` (M).
    Divw,
    /// `divuw` (M).
    Divuw,
    /// `remw` (M).
    Remw,
    /// `remuw` (M).
    Remuw,
}

/// Atomic memory operation (A extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmoOp {
    /// `amoswap`.
    Swap,
    /// `amoadd`.
    Add,
    /// `amoxor`.
    Xor,
    /// `amoand`.
    And,
    /// `amoor`.
    Or,
    /// `amomin` (signed).
    Min,
    /// `amomax` (signed).
    Max,
    /// `amominu`.
    Minu,
    /// `amomaxu`.
    Maxu,
}

/// Width of an atomic access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmoWidth {
    /// 32-bit (`.w`).
    W,
    /// 64-bit (`.d`).
    D,
}

impl AmoWidth {
    /// Access width in bytes.
    pub fn size(self) -> u8 {
        match self {
            AmoWidth::W => 4,
            AmoWidth::D => 8,
        }
    }
}

/// FP precision (F = single, D = double).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpWidth {
    /// Single precision (`.s`).
    S,
    /// Double precision (`.d`).
    D,
}

impl FpWidth {
    /// Access width in bytes.
    pub fn size(self) -> u8 {
        match self {
            FpWidth::S => 4,
            FpWidth::D => 8,
        }
    }
}

/// Two-source FP arithmetic ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpOp {
    /// `fadd`.
    Fadd,
    /// `fsub`.
    Fsub,
    /// `fmul`.
    Fmul,
    /// `fdiv`.
    Fdiv,
    /// `fsgnj` — copy sign.
    Fsgnj,
    /// `fsgnjn` — copy negated sign.
    Fsgnjn,
    /// `fsgnjx` — xor signs.
    Fsgnjx,
    /// `fmin`.
    Fmin,
    /// `fmax`.
    Fmax,
}

/// Fused multiply-add family (R4-type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FmaOp {
    /// `fmadd` — `rs1*rs2 + rs3`.
    Fmadd,
    /// `fmsub` — `rs1*rs2 - rs3`.
    Fmsub,
    /// `fnmsub` — `-(rs1*rs2) + rs3`.
    Fnmsub,
    /// `fnmadd` — `-(rs1*rs2) - rs3`.
    Fnmadd,
}

/// FP comparison ops (result to integer register).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpCmpOp {
    /// `feq`.
    Feq,
    /// `flt`.
    Flt,
    /// `fle`.
    Fle,
}

/// Integer type involved in an FP<->int conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntTy {
    /// 32-bit signed (`.w`).
    W,
    /// 32-bit unsigned (`.wu`).
    Wu,
    /// 64-bit signed (`.l`).
    L,
    /// 64-bit unsigned (`.lu`).
    Lu,
}

/// A decoded RV64G instruction.
///
/// Field names follow the ISA manual's operand nomenclature (`rd`, `rs1`,
/// `rs2`, `frd`, `imm`, `offset`, ...), documented once here rather than
/// per field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Inst {
    /// `lui rd, imm20` — load upper immediate (`imm` is already shifted and
    /// sign-extended).
    Lui { rd: u8, imm: i64 },
    /// `auipc rd, imm20` — add upper immediate to PC.
    Auipc { rd: u8, imm: i64 },
    /// `jal rd, offset`.
    Jal { rd: u8, offset: i64 },
    /// `jalr rd, offset(rs1)`.
    Jalr { rd: u8, rs1: u8, offset: i64 },
    /// Conditional branch.
    Branch { op: BranchOp, rs1: u8, rs2: u8, offset: i64 },
    /// Integer load.
    Load { op: LoadOp, rd: u8, rs1: u8, offset: i64 },
    /// Integer store.
    Store { op: StoreOp, rs2: u8, rs1: u8, offset: i64 },
    /// Register-immediate ALU (I-type; for shifts `imm` is the shamt 0..63).
    OpImm { op: ImmOp, rd: u8, rs1: u8, imm: i64 },
    /// 32-bit register-immediate ALU.
    OpImm32 { op: ImmOp32, rd: u8, rs1: u8, imm: i64 },
    /// Register-register ALU.
    Op { op: RegOp, rd: u8, rs1: u8, rs2: u8 },
    /// 32-bit register-register ALU.
    Op32 { op: RegOp32, rd: u8, rs1: u8, rs2: u8 },
    /// `fence` (no-op in a single-hart model).
    Fence,
    /// `ecall` — environment call (syscall).
    Ecall,
    /// `ebreak` — breakpoint.
    Ebreak,
    /// `lr.w/.d rd, (rs1)` — load-reserved.
    Lr { width: AmoWidth, rd: u8, rs1: u8 },
    /// `sc.w/.d rd, rs2, (rs1)` — store-conditional.
    Sc { width: AmoWidth, rd: u8, rs1: u8, rs2: u8 },
    /// AMO read-modify-write.
    Amo { op: AmoOp, width: AmoWidth, rd: u8, rs1: u8, rs2: u8 },
    /// `flw/fld frd, offset(rs1)`.
    FpLoad { width: FpWidth, frd: u8, rs1: u8, offset: i64 },
    /// `fsw/fsd frs2, offset(rs1)`.
    FpStore { width: FpWidth, frs2: u8, rs1: u8, offset: i64 },
    /// Two-source FP arithmetic.
    FpReg { op: FpOp, width: FpWidth, frd: u8, frs1: u8, frs2: u8 },
    /// Fused multiply-add.
    FpFma { op: FmaOp, width: FpWidth, frd: u8, frs1: u8, frs2: u8, frs3: u8 },
    /// `fsqrt`.
    FpSqrt { width: FpWidth, frd: u8, frs1: u8 },
    /// FP compare to integer register.
    FpCmp { op: FpCmpOp, width: FpWidth, rd: u8, frs1: u8, frs2: u8 },
    /// `fcvt.<int>.<fp>` — FP to integer (truncating, RTZ).
    FcvtIntFromFp { ty: IntTy, width: FpWidth, rd: u8, frs1: u8 },
    /// `fcvt.<fp>.<int>` — integer to FP.
    FcvtFpFromInt { ty: IntTy, width: FpWidth, frd: u8, rs1: u8 },
    /// `fcvt.s.d` / `fcvt.d.s` — FP to FP precision conversion.
    FcvtFpFp { to: FpWidth, from: FpWidth, frd: u8, frs1: u8 },
    /// `fmv.x.w`/`fmv.x.d` — FP bits to integer register.
    FmvToInt { width: FpWidth, rd: u8, frs1: u8 },
    /// `fmv.w.x`/`fmv.d.x` — integer bits to FP register.
    FmvToFp { width: FpWidth, frd: u8, rs1: u8 },
    /// `fclass` — classify FP value.
    Fclass { width: FpWidth, rd: u8, frs1: u8 },
}

impl Inst {
    /// Latency/issue classification for the µarch models.
    pub fn group(&self) -> InstGroup {
        use Inst::*;
        match self {
            Lui { .. } | Auipc { .. } => InstGroup::IntAlu,
            Jal { .. } | Jalr { .. } | Branch { .. } => InstGroup::Branch,
            Load { .. } | FpLoad { .. } => InstGroup::Load,
            Store { .. } | FpStore { .. } => InstGroup::Store,
            OpImm { op, .. } => match op {
                ImmOp::Slli | ImmOp::Srli | ImmOp::Srai => InstGroup::Shift,
                ImmOp::Xori | ImmOp::Ori | ImmOp::Andi => InstGroup::Logical,
                _ => InstGroup::IntAlu,
            },
            OpImm32 { op, .. } => match op {
                ImmOp32::Addiw => InstGroup::IntAlu,
                _ => InstGroup::Shift,
            },
            Op { op, .. } => match op {
                RegOp::Mul | RegOp::Mulh | RegOp::Mulhsu | RegOp::Mulhu => InstGroup::IntMul,
                RegOp::Div | RegOp::Divu | RegOp::Rem | RegOp::Remu => InstGroup::IntDiv,
                RegOp::Sll | RegOp::Srl | RegOp::Sra => InstGroup::Shift,
                RegOp::Xor | RegOp::Or | RegOp::And => InstGroup::Logical,
                _ => InstGroup::IntAlu,
            },
            Op32 { op, .. } => match op {
                RegOp32::Mulw => InstGroup::IntMul,
                RegOp32::Divw | RegOp32::Divuw | RegOp32::Remw | RegOp32::Remuw => {
                    InstGroup::IntDiv
                }
                RegOp32::Sllw | RegOp32::Srlw | RegOp32::Sraw => InstGroup::Shift,
                RegOp32::Addw | RegOp32::Subw => InstGroup::IntAlu,
            },
            Fence | Ecall | Ebreak => InstGroup::System,
            Lr { .. } | Sc { .. } | Amo { .. } => InstGroup::Atomic,
            FpReg { op, .. } => match op {
                FpOp::Fadd | FpOp::Fsub => InstGroup::FpAdd,
                FpOp::Fmul => InstGroup::FpMul,
                FpOp::Fdiv => InstGroup::FpDiv,
                FpOp::Fmin | FpOp::Fmax => InstGroup::FpCmp,
                FpOp::Fsgnj | FpOp::Fsgnjn | FpOp::Fsgnjx => InstGroup::FpMove,
            },
            FpFma { .. } => InstGroup::FpFma,
            FpSqrt { .. } => InstGroup::FpSqrt,
            FpCmp { .. } => InstGroup::FpCmp,
            FcvtIntFromFp { .. } | FcvtFpFromInt { .. } | FcvtFpFp { .. } => InstGroup::FpCvt,
            FmvToInt { .. } | FmvToFp { .. } => InstGroup::FpMove,
            Fclass { .. } => InstGroup::FpCmp,
        }
    }

    /// Whether this instruction may redirect control flow.
    pub fn is_branch(&self) -> bool {
        matches!(self, Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_classification_samples() {
        assert_eq!(
            Inst::Op { op: RegOp::Mul, rd: 1, rs1: 2, rs2: 3 }.group(),
            InstGroup::IntMul
        );
        assert_eq!(
            Inst::FpReg { op: FpOp::Fdiv, width: FpWidth::D, frd: 0, frs1: 1, frs2: 2 }.group(),
            InstGroup::FpDiv
        );
        assert_eq!(
            Inst::Branch { op: BranchOp::Bne, rs1: 1, rs2: 2, offset: -4 }.group(),
            InstGroup::Branch
        );
        assert!(Inst::Jal { rd: 0, offset: 8 }.is_branch());
        assert!(!Inst::Fence.is_branch());
    }

    #[test]
    fn widths() {
        assert_eq!(LoadOp::Lw.size(), 4);
        assert_eq!(StoreOp::Sd.size(), 8);
        assert_eq!(FpWidth::S.size(), 4);
        assert_eq!(AmoWidth::D.size(), 8);
    }
}
