//! The full per-cell analysis bundle, driven from any retirement source.
//!
//! Everything Table 1, Table 2 and Figure 2 need from one (workload,
//! compiler, ISA) cell — path length with per-kernel attribution, unit and
//! latency-scaled critical paths, and the windowed critical path — bundled
//! so the same measurement code runs off a live emulation pass *or* a
//! replayed trace ([`simcore::RetireSource`]).

use simcore::{Observer, Region, RetireSource, SimError};
use uarch::Tx2Latency;

use crate::critical_path::DualCriticalPath;
use crate::path_length::PathLength;
use crate::tables::ExperimentCell;
use crate::windowed::WindowedCp;

/// The paper's per-cell measurement set, as one bundle of streaming
/// observers.
pub struct CellAnalyses {
    /// Dynamic instruction counts, total and per kernel region.
    pub path_length: PathLength,
    /// Unit-cost and TX2-scaled critical paths, shared-table single pass.
    pub critical_path: DualCriticalPath,
    /// Windowed critical path over the paper's Figure 2 window sizes.
    pub windowed: WindowedCp,
}

impl CellAnalyses {
    /// Fresh bundle for a program with the given kernel regions.
    pub fn new(regions: &[Region]) -> Self {
        CellAnalyses {
            path_length: PathLength::new(regions),
            critical_path: DualCriticalPath::new(Tx2Latency),
            windowed: WindowedCp::paper(),
        }
    }

    /// The bundle as an observer list, ready for an emulation core run or
    /// a [`RetireSource::drive`] call.
    pub fn observers(&mut self) -> Vec<&mut dyn Observer> {
        vec![&mut self.path_length, &mut self.critical_path, &mut self.windowed]
    }

    /// Pump an entire retirement source through the bundle, returning the
    /// number of instructions analyzed.
    pub fn run(&mut self, source: &mut dyn RetireSource) -> Result<u64, SimError> {
        let mut obs = self.observers();
        source.drive(&mut obs)
    }

    /// Package the measurements as an [`ExperimentCell`] for the given
    /// cell coordinates.
    pub fn into_cell(self, workload: &str, compiler: &str, isa: &str) -> ExperimentCell {
        ExperimentCell {
            workload: workload.to_string(),
            compiler: compiler.to_string(),
            isa: isa.to_string(),
            path_length: self.path_length.total(),
            critical_path: self.critical_path.unit().critical_path,
            scaled_cp: self.critical_path.scaled().critical_path,
            kernels: self.path_length.by_kernel(),
            windows: self
                .windowed
                .stats()
                .iter()
                .map(|s| (s.size, s.mean_cp(), s.mean_ilp()))
                .collect(),
            // The fusion pass rides outside the bundle (crates/fusion
            // depends on this crate); the orchestration layer merges its
            // report in after `into_cell`.
            fused: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{InstGroup, RegId, RegSet, RetiredInst};

    fn stream(n: u64) -> Vec<RetiredInst> {
        (0..n)
            .map(|i| {
                let mut ri = RetiredInst::new(0x100 + (i % 16) * 4, InstGroup::IntAlu);
                ri.srcs = RegSet::of(&[RegId::Int((i % 4) as u8 + 1)]);
                ri.dsts = RegSet::of(&[RegId::Int((i % 4) as u8 + 1)]);
                ri
            })
            .collect()
    }

    #[test]
    fn bundle_matches_individual_observers() {
        let regions =
            vec![Region { name: "k".into(), start: 0x100, end: 0x120 }];
        let records = stream(500);

        let mut bundle = CellAnalyses::new(&regions);
        let mut src: &[RetiredInst] = &records;
        let n = bundle.run(&mut src).unwrap();
        assert_eq!(n, 500);

        let mut pl = PathLength::new(&regions);
        let mut cp = DualCriticalPath::new(Tx2Latency);
        for ri in &records {
            pl.on_retire(ri);
            cp.on_retire(ri);
        }
        let cell = bundle.into_cell("STREAM", "gcc-12.2", "RISC-V");
        assert_eq!(cell.path_length, pl.total());
        assert_eq!(cell.critical_path, cp.unit().critical_path);
        assert_eq!(cell.scaled_cp, cp.scaled().critical_path);
        assert_eq!(cell.kernels, pl.by_kernel());
        assert_eq!(cell.workload, "STREAM");
        assert!(!cell.windows.is_empty());
    }
}
