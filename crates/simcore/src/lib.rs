#![warn(missing_docs)]
//! SimEng-like simulation core shared by both ISA back-ends.
//!
//! This crate provides the pieces of the simulation environment that are
//! independent of any particular instruction set:
//!
//! * a sparse, paged [`Memory`] model,
//! * the architectural [`CpuState`] (integer + FP register files, PC, NZCV
//!   flags, memory, syscall plumbing),
//! * the unified [`RegId`] register-identifier space used by dependency
//!   analyses,
//! * the [`RetiredInst`] record emitted for every retired instruction and the
//!   [`Observer`] trait analyses implement to consume the retirement stream,
//! * the [`IsaExecutor`] trait each ISA crate implements, and the
//!   single-cycle [`EmulationCore`] driver (the paper's "emulation core
//!   model which executes each instruction atomically to completion in a
//!   single cycle"),
//! * a [`Program`] container + loader for statically linked images produced
//!   by the `kernelgen` assembler back-ends.
//!
//! The design mirrors the subset of SimEng the paper relies on: execute a
//! static binary instruction-by-instruction and hand each decoded, retired
//! instruction (registers read/written, memory touched, instruction group)
//! to analysis passes.
//!
//! ```
//! use simcore::{CountingObserver, CpuState, Memory};
//! use simcore::observer::Observer;
//!
//! // Guest memory is paged and allocate-on-write.
//! let mut mem = Memory::new();
//! mem.write_f64(0x1000, 3.5).unwrap();
//! assert_eq!(mem.read_f64(0x1000).unwrap(), 3.5);
//! assert!(mem.read_u64(0xDEAD_0000).is_err(), "unmapped reads fault");
//!
//! // Observers stream over retirements.
//! let mut count = CountingObserver::default();
//! count.on_retire(&simcore::RetiredInst::new(0, simcore::InstGroup::IntAlu));
//! assert_eq!(count.retired, 1);
//! ```

pub mod checkpoint;
pub mod core;
pub mod durable;
pub mod elf;
pub mod error;
pub mod fault;
pub mod hash;
pub mod mem;
pub mod observer;
pub mod phase;
pub mod program;
pub mod regid;
pub mod retire;
pub mod sample;
pub mod shutdown;
pub mod source;
pub mod state;

pub use crate::checkpoint::{CampaignState, Checkpoint, CheckpointError, TraceMark};
pub use crate::core::{host_mips, EmulationCore, Engine, IsaExecutor, RunStats, StopReason};
pub use crate::phase::{Phase, PhaseNanos};
pub use crate::sample::{Sample, SampleSnapshot};
pub use crate::error::SimError;
pub use crate::fault::{
    Campaign, CampaignSpec, FaultInjector, FaultKind, FaultPlan, InjectAction,
    DEFAULT_CAMPAIGN_WINDOW, DEFAULT_FAULT_SEED,
};
pub use crate::hash::{WordHasher, WordMap};
pub use crate::mem::Memory;
pub use crate::observer::{CountingObserver, NullObserver, Observer};
pub use crate::program::{IsaKind, Program, Region, Section};
pub use crate::regid::{RegId, RegSet, NUM_REG_SLOTS};
pub use crate::retire::{InstGroup, MemAccess, MemList, RetiredInst};
pub use crate::source::RetireSource;
pub use crate::state::CpuState;
