//! A minimal, dependency-free property-testing shim.
//!
//! This crate exposes the subset of the real `proptest` API that this
//! workspace's tests use — `Strategy` with `prop_map` / `prop_flat_map` /
//! `prop_filter_map` / `prop_recursive`, integer-range and tuple strategies,
//! `any::<T>()`, `Just`, `prop_oneof!`, `proptest::collection::vec`,
//! `proptest::option::of`, and the `proptest!` test macro — so the
//! workspace builds with no crates-io access.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking: a failing case panics with the generated value's Debug
//!   representation instead of a minimized one;
//! - deterministic seeding: each test derives its RNG seed from the test
//!   function's name, so runs are reproducible (set `PROPTEST_SEED` to
//!   explore a different sequence);
//! - `prop_recursive` builds a fixed-depth strategy eagerly instead of
//!   tracking a size budget.

use std::cell::RefCell;
use std::rc::Rc;

/// Deterministic 64-bit PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded directly.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// RNG seeded from a test name (FNV-1a hash), with an optional
    /// `PROPTEST_SEED` environment override mixed in.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01B3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h ^= extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        Self::from_seed(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no shrinking: `generate` produces one
/// value per call.
pub trait Strategy: Clone {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values `f` maps to `Some`; retries up to an internal limit
    /// and panics (citing `reason`) if the filter never accepts.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Value) -> Option<O> + Clone,
    {
        FilterMap { inner: self, f, reason }
    }

    /// Recursive strategy: at each of `depth` levels, pick either the leaf
    /// (`self`) or the strategy `recurse` builds from the inner levels.
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            cur = Union::new(vec![leaf.clone(), recurse(cur).boxed()]).boxed();
        }
        cur
    }

    /// Type-erase into a clonable [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy (clonable, single-threaded).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O> + Clone,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..1024 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map({:?}): no accepted value in 1024 attempts", self.reason);
    }
}

/// Always produces a clone of its payload.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T> Union<T> {
    /// Union over `arms`; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Full-range strategy for primitives; see [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Produce an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `T` (like proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary + Clone> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector whose length is uniform in `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`; see [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` (3 in 4) or `None` (1 in 4), like proptest's default weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Per-test configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

thread_local! {
    /// Debug rendering of the current case's inputs, for failure reports.
    pub static CURRENT_CASE: RefCell<String> = const { RefCell::new(String::new()) };
}

/// A test-case failure (returnable with `?` inside `proptest!` bodies).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError { message: reason.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Uniform choice among the listed strategies (all must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assertion inside a `proptest!` body (panics, reporting the case inputs).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => {
        assert!($($t)*)
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => {
        assert_eq!($($t)*)
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(128))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let __strategy = ($($strat,)+);
                for __case in 0..__config.cases {
                    let ($($pat,)+) = $crate::Strategy::generate(&__strategy, &mut __rng);
                    // Run the body in a Result context so `?` with
                    // TestCaseError works, as in real proptest.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("proptest case {} failed: {e}", __case);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let w = (-8i64..8).generate(&mut rng);
            assert!((-8..8).contains(&w));
            let x = (0u32..=3).generate(&mut rng);
            assert!(x <= 3);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r2 = TestRng::from_name("y");
        assert_ne!(a[0], r2.next_u64());
    }

    #[test]
    fn oneof_map_and_collections_compose() {
        let strat = prop_oneof![
            (0u8..4).prop_map(|v| v as u32),
            Just(99u32),
            (10u32..12, any::<bool>()).prop_map(|(v, b)| if b { v } else { v + 100 }),
        ];
        let lists = collection::vec(strat, 1..6);
        let mut rng = TestRng::from_seed(7);
        for _ in 0..200 {
            let l = lists.generate(&mut rng);
            assert!(!l.is_empty() && l.len() < 6);
            for v in l {
                assert!(v < 4 || v == 99 || (10..12).contains(&v) || (110..112).contains(&v));
            }
        }
    }

    #[test]
    fn filter_map_retries() {
        let evens = (0u32..100).prop_filter_map("odd", |v| (v % 2 == 0).then_some(v));
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            assert_eq!(evens.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::from_seed(11);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = tree.generate(&mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node);
    }

    proptest! {
        #[test]
        fn macro_draws_from_strategies(a in 0u32..50, b in 0u32..50) {
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn macro_honors_case_count(_v in 0u32..10) {
            // Body runs; count is verified by the config plumbed above
            // (would hang/fail to compile if the config arm didn't match).
        }
    }
}
