//! A64 binary encoder (scalar subset).

use crate::bitmask::encode_bitmask;
use crate::inst::*;

/// Expand an 8-bit VFP immediate to its `f64` value (`VFPExpandImm`).
pub fn fp_imm8_to_f64(imm8: u8) -> f64 {
    let imm = imm8 as u64;
    let sign = (imm >> 7) & 1;
    let b6 = (imm >> 6) & 1;
    let bits = (sign << 63)
        | ((b6 ^ 1) << 62)
        | (if b6 == 1 { 0xFF << 54 } else { 0 })
        | (((imm >> 4) & 0x3) << 52)
        | ((imm & 0xF) << 48);
    f64::from_bits(bits)
}

/// Encode an `f64` as an 8-bit VFP immediate if representable.
pub fn f64_to_fp_imm8(v: f64) -> Option<u8> {
    (0..=255u8).find(|&imm8| fp_imm8_to_f64(imm8).to_bits() == v.to_bits())
}

fn sf_bit(sf: bool) -> u32 {
    sf as u32
}

fn shift_bits(s: ShiftType) -> u32 {
    match s {
        ShiftType::Lsl => 0,
        ShiftType::Lsr => 1,
        ShiftType::Asr => 2,
        ShiftType::Ror => 3,
    }
}

fn mem_size_fields(size: MemSize) -> (u32, u32, u32) {
    // (size, opc_load, opc_store); opc_load of sign-extending forms is 10.
    match size {
        MemSize::B => (0b00, 0b01, 0b00),
        MemSize::H => (0b01, 0b01, 0b00),
        MemSize::W => (0b10, 0b01, 0b00),
        MemSize::X => (0b11, 0b01, 0b00),
        MemSize::Sb => (0b00, 0b10, 0b00),
        MemSize::Sh => (0b01, 0b10, 0b00),
        MemSize::Sw => (0b10, 0b10, 0b00),
    }
}

fn fp_size_fields(size: FpSize) -> u32 {
    match size {
        FpSize::S => 0b10,
        FpSize::D => 0b11,
    }
}

fn fp_type(size: FpSize) -> u32 {
    match size {
        FpSize::S => 0b00,
        FpSize::D => 0b01,
    }
}

fn idx_mode_bits(mode: IndexMode) -> u32 {
    match mode {
        IndexMode::Unscaled => 0b00,
        IndexMode::Post => 0b01,
        IndexMode::Pre => 0b11,
    }
}

fn logic_opc_n(op: LogicOp) -> (u32, u32) {
    match op {
        LogicOp::And => (0b00, 0),
        LogicOp::Bic => (0b00, 1),
        LogicOp::Orr => (0b01, 0),
        LogicOp::Orn => (0b01, 1),
        LogicOp::Eor => (0b10, 0),
        LogicOp::Eon => (0b10, 1),
        LogicOp::Ands => (0b11, 0),
        LogicOp::Bics => (0b11, 1),
    }
}

/// Encode a decoded instruction back to its 32-bit word.
///
/// Panics if a `LogicalImm` carries a mask that is not a valid bitmask
/// immediate, or a `FmovImm`'s value is out of the representable set — the
/// assembler checks these before constructing the instruction.
pub fn encode(inst: &Inst) -> u32 {
    use Inst::*;
    match *inst {
        AddSubImm { sub, set_flags, sf, rd, rn, imm12, shift12 } => {
            (sf_bit(sf) << 31)
                | ((sub as u32) << 30)
                | ((set_flags as u32) << 29)
                | (0b100010 << 23)
                | ((shift12 as u32) << 22)
                | ((imm12 as u32 & 0xFFF) << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        AddSubShifted { sub, set_flags, sf, rd, rn, rm, shift, amount } => {
            (sf_bit(sf) << 31)
                | ((sub as u32) << 30)
                | ((set_flags as u32) << 29)
                | (0b01011 << 24)
                | (shift_bits(shift) << 22)
                | ((rm as u32) << 16)
                | ((amount as u32 & 0x3F) << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        AddSubExtended { sub, set_flags, sf, rd, rn, rm, extend, amount } => {
            (sf_bit(sf) << 31)
                | ((sub as u32) << 30)
                | ((set_flags as u32) << 29)
                | (0b01011001 << 21)
                | ((rm as u32) << 16)
                | (extend.bits() << 13)
                | ((amount as u32 & 0x7) << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        LogicalImm { op, sf, rd, rn, imm } => {
            let (opc, n_must_be_zero) = match op {
                LogicOp::And => (0b00u32, false),
                LogicOp::Orr => (0b01, false),
                LogicOp::Eor => (0b10, false),
                LogicOp::Ands => (0b11, false),
                _ => panic!("{op:?} has no immediate form"),
            };
            let _ = n_must_be_zero;
            let (n, immr, imms) = encode_bitmask(sf, imm)
                .unwrap_or_else(|| panic!("{imm:#x} is not a valid bitmask immediate"));
            (sf_bit(sf) << 31)
                | (opc << 29)
                | (0b100100 << 23)
                | (n << 22)
                | (immr << 16)
                | (imms << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        LogicalShifted { op, sf, rd, rn, rm, shift, amount } => {
            let (opc, n) = logic_opc_n(op);
            (sf_bit(sf) << 31)
                | (opc << 29)
                | (0b01010 << 24)
                | (shift_bits(shift) << 22)
                | (n << 21)
                | ((rm as u32) << 16)
                | ((amount as u32 & 0x3F) << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        MovWide { op, sf, rd, imm16, hw } => {
            let opc = match op {
                MovOp::Movn => 0b00,
                MovOp::Movz => 0b10,
                MovOp::Movk => 0b11,
            };
            (sf_bit(sf) << 31)
                | (opc << 29)
                | (0b100101 << 23)
                | ((hw as u32 & 0x3) << 21)
                | ((imm16 as u32) << 5)
                | rd as u32
        }
        Adr { rd, offset } => {
            let imm = offset as u32 & 0x1F_FFFF;
            ((imm & 0x3) << 29) | (0b10000 << 24) | ((imm >> 2) << 5) | rd as u32
        }
        Adrp { rd, offset } => {
            let pages = (offset >> 12) as u32 & 0x1F_FFFF;
            (1 << 31) | ((pages & 0x3) << 29) | (0b10000 << 24) | ((pages >> 2) << 5) | rd as u32
        }
        Bitfield { op, sf, rd, rn, immr, imms } => {
            let opc = match op {
                BitfieldOp::Sbfm => 0b00,
                BitfieldOp::Bfm => 0b01,
                BitfieldOp::Ubfm => 0b10,
            };
            (sf_bit(sf) << 31)
                | (opc << 29)
                | (0b100110 << 23)
                | (sf_bit(sf) << 22) // N == sf
                | ((immr as u32) << 16)
                | ((imms as u32) << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        Extr { sf, rd, rn, rm, lsb } => {
            (sf_bit(sf) << 31)
                | (0b00100111 << 23)
                | (sf_bit(sf) << 22)
                | ((rm as u32) << 16)
                | ((lsb as u32) << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        MulAdd { sub, sf, rd, rn, rm, ra } => {
            (sf_bit(sf) << 31)
                | (0b0011011000 << 21)
                | ((rm as u32) << 16)
                | ((sub as u32) << 15)
                | ((ra as u32) << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        MulAddLong { sub, unsigned, rd, rn, rm, ra } => {
            (1 << 31)
                | (0b0011011 << 24)
                | ((unsigned as u32) << 23)
                | (0b01 << 21)
                | ((rm as u32) << 16)
                | ((sub as u32) << 15)
                | ((ra as u32) << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        MulHigh { unsigned, rd, rn, rm } => {
            (1 << 31)
                | (0b0011011 << 24)
                | ((unsigned as u32) << 23)
                | (0b10 << 21)
                | ((rm as u32) << 16)
                | (0b11111 << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        Div { unsigned, sf, rd, rn, rm } => {
            (sf_bit(sf) << 31)
                | (0b0011010110 << 21)
                | ((rm as u32) << 16)
                | (0b00001 << 11)
                | ((!unsigned as u32) << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        ShiftV { op, sf, rd, rn, rm } => {
            let op2 = match op {
                ShiftVOp::Lslv => 0b00,
                ShiftVOp::Lsrv => 0b01,
                ShiftVOp::Asrv => 0b10,
                ShiftVOp::Rorv => 0b11,
            };
            (sf_bit(sf) << 31)
                | (0b0011010110 << 21)
                | ((rm as u32) << 16)
                | (0b0010 << 12)
                | (op2 << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        Unary1 { op, sf, rd, rn } => {
            let opcode = match (op, sf) {
                (Unary1Op::Rbit, _) => 0b000000,
                (Unary1Op::Rev16, _) => 0b000001,
                (Unary1Op::Rev, false) => 0b000010,
                (Unary1Op::Rev32, true) => 0b000010,
                (Unary1Op::Rev, true) => 0b000011,
                (Unary1Op::Clz, _) => 0b000100,
                (Unary1Op::Cls, _) => 0b000101,
                (Unary1Op::Rev32, false) => panic!("rev32 requires sf=1"),
            };
            (sf_bit(sf) << 31)
                | (0b1011010110 << 21)
                | (opcode << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        CondSel { op, sf, rd, rn, rm, cond } => {
            let (o, op2) = match op {
                CselOp::Csel => (0, 0b00),
                CselOp::Csinc => (0, 0b01),
                CselOp::Csinv => (1, 0b00),
                CselOp::Csneg => (1, 0b01),
            };
            (sf_bit(sf) << 31)
                | (o << 30)
                | (0b011010100 << 21)
                | ((rm as u32) << 16)
                | (cond.bits() << 12)
                | (op2 << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        CondCmpReg { negative, sf, rn, rm, nzcv, cond } => {
            (sf_bit(sf) << 31)
                | ((!negative as u32) << 30)
                | (1 << 29)
                | (0b11010010 << 21)
                | ((rm as u32) << 16)
                | (cond.bits() << 12)
                | ((rn as u32) << 5)
                | (nzcv as u32 & 0xF)
        }
        CondCmpImm { negative, sf, rn, imm5, nzcv, cond } => {
            (sf_bit(sf) << 31)
                | ((!negative as u32) << 30)
                | (1 << 29)
                | (0b11010010 << 21)
                | ((imm5 as u32 & 0x1F) << 16)
                | (cond.bits() << 12)
                | (1 << 11)
                | ((rn as u32) << 5)
                | (nzcv as u32 & 0xF)
        }
        B { link, offset } => {
            ((link as u32) << 31) | (0b00101 << 26) | (((offset >> 2) as u32) & 0x03FF_FFFF)
        }
        BCond { cond, offset } => {
            0x5400_0000 | ((((offset >> 2) as u32) & 0x7_FFFF) << 5) | cond.bits()
        }
        Cbz { nonzero, sf, rt, offset } => {
            (sf_bit(sf) << 31)
                | (0b011010 << 25)
                | ((nonzero as u32) << 24)
                | ((((offset >> 2) as u32) & 0x7_FFFF) << 5)
                | rt as u32
        }
        Tbz { nonzero, rt, bit, offset } => {
            let b5 = (bit as u32 >> 5) & 1;
            let b40 = bit as u32 & 0x1F;
            (b5 << 31)
                | (0b011011 << 25)
                | ((nonzero as u32) << 24)
                | (b40 << 19)
                | ((((offset >> 2) as u32) & 0x3FFF) << 5)
                | rt as u32
        }
        BrReg { link, ret, rn } => {
            let opc = if ret { 0b10 } else if link { 0b01 } else { 0b00 };
            0xD600_0000 | (opc << 21) | (0b11111 << 16) | ((rn as u32) << 5)
        }
        LdrImm { size, rt, rn, imm12 } => {
            let (sz, opc, _) = mem_size_fields(size);
            (sz << 30)
                | (0b111 << 27)
                | (0b01 << 24)
                | (opc << 22)
                | ((imm12 as u32 & 0xFFF) << 10)
                | ((rn as u32) << 5)
                | rt as u32
        }
        StrImm { size, rt, rn, imm12 } => {
            let (sz, _, opc) = mem_size_fields(size);
            (sz << 30)
                | (0b111 << 27)
                | (0b01 << 24)
                | (opc << 22)
                | ((imm12 as u32 & 0xFFF) << 10)
                | ((rn as u32) << 5)
                | rt as u32
        }
        LdrIdx { size, mode, rt, rn, simm9 } => {
            let (sz, opc, _) = mem_size_fields(size);
            (sz << 30)
                | (0b111 << 27)
                | (opc << 22)
                | (((simm9 as u32) & 0x1FF) << 12)
                | (idx_mode_bits(mode) << 10)
                | ((rn as u32) << 5)
                | rt as u32
        }
        StrIdx { size, mode, rt, rn, simm9 } => {
            let (sz, _, opc) = mem_size_fields(size);
            (sz << 30)
                | (0b111 << 27)
                | (opc << 22)
                | (((simm9 as u32) & 0x1FF) << 12)
                | (idx_mode_bits(mode) << 10)
                | ((rn as u32) << 5)
                | rt as u32
        }
        LdrReg { size, rt, rn, rm, extend, shift } => {
            let (sz, opc, _) = mem_size_fields(size);
            (sz << 30)
                | (0b111 << 27)
                | (opc << 22)
                | (1 << 21)
                | ((rm as u32) << 16)
                | (extend.bits() << 13)
                | ((shift as u32) << 12)
                | (0b10 << 10)
                | ((rn as u32) << 5)
                | rt as u32
        }
        StrReg { size, rt, rn, rm, extend, shift } => {
            let (sz, _, opc) = mem_size_fields(size);
            (sz << 30)
                | (0b111 << 27)
                | (opc << 22)
                | (1 << 21)
                | ((rm as u32) << 16)
                | (extend.bits() << 13)
                | ((shift as u32) << 12)
                | (0b10 << 10)
                | ((rn as u32) << 5)
                | rt as u32
        }
        Ldp { sf, mode, rt, rt2, rn, imm7 } | Stp { sf, mode, rt, rt2, rn, imm7 } => {
            let load = matches!(inst, Ldp { .. });
            let opc = if sf { 0b10 } else { 0b00 };
            let idx = match mode {
                None => 0b10,
                Some(IndexMode::Post) => 0b01,
                Some(IndexMode::Pre) => 0b11,
                Some(IndexMode::Unscaled) => panic!("ldp/stp has no unscaled form"),
            };
            (opc << 30)
                | (0b101 << 27)
                | (idx << 23)
                | ((load as u32) << 22)
                | (((imm7 as u32) & 0x7F) << 15)
                | ((rt2 as u32) << 10)
                | ((rn as u32) << 5)
                | rt as u32
        }
        LdrFpImm { size, rt, rn, imm12 } => {
            (fp_size_fields(size) << 30)
                | (0b111 << 27)
                | (1 << 26)
                | (0b01 << 24)
                | (0b01 << 22)
                | ((imm12 as u32 & 0xFFF) << 10)
                | ((rn as u32) << 5)
                | rt as u32
        }
        StrFpImm { size, rt, rn, imm12 } => {
            (fp_size_fields(size) << 30)
                | (0b111 << 27)
                | (1 << 26)
                | (0b01 << 24)
                | ((imm12 as u32 & 0xFFF) << 10)
                | ((rn as u32) << 5)
                | rt as u32
        }
        LdrFpIdx { size, mode, rt, rn, simm9 } => {
            (fp_size_fields(size) << 30)
                | (0b111 << 27)
                | (1 << 26)
                | (0b01 << 22)
                | (((simm9 as u32) & 0x1FF) << 12)
                | (idx_mode_bits(mode) << 10)
                | ((rn as u32) << 5)
                | rt as u32
        }
        StrFpIdx { size, mode, rt, rn, simm9 } => {
            (fp_size_fields(size) << 30)
                | (0b111 << 27)
                | (1 << 26)
                | (((simm9 as u32) & 0x1FF) << 12)
                | (idx_mode_bits(mode) << 10)
                | ((rn as u32) << 5)
                | rt as u32
        }
        LdrFpReg { size, rt, rn, rm, extend, shift } => {
            (fp_size_fields(size) << 30)
                | (0b111 << 27)
                | (1 << 26)
                | (0b01 << 22)
                | (1 << 21)
                | ((rm as u32) << 16)
                | (extend.bits() << 13)
                | ((shift as u32) << 12)
                | (0b10 << 10)
                | ((rn as u32) << 5)
                | rt as u32
        }
        StrFpReg { size, rt, rn, rm, extend, shift } => {
            (fp_size_fields(size) << 30)
                | (0b111 << 27)
                | (1 << 26)
                | (1 << 21)
                | ((rm as u32) << 16)
                | (extend.bits() << 13)
                | ((shift as u32) << 12)
                | (0b10 << 10)
                | ((rn as u32) << 5)
                | rt as u32
        }
        FpBin { op, size, rd, rn, rm } => {
            let opcode = match op {
                FpBinOp::Fmul => 0b0000,
                FpBinOp::Fdiv => 0b0001,
                FpBinOp::Fadd => 0b0010,
                FpBinOp::Fsub => 0b0011,
                FpBinOp::Fmax => 0b0100,
                FpBinOp::Fmin => 0b0101,
                FpBinOp::Fmaxnm => 0b0110,
                FpBinOp::Fminnm => 0b0111,
                FpBinOp::Fnmul => 0b1000,
            };
            (0b00011110 << 24)
                | (fp_type(size) << 22)
                | (1 << 21)
                | ((rm as u32) << 16)
                | (opcode << 12)
                | (0b10 << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        FpUn { op, size, rd, rn } => {
            let opcode = match op {
                FpUnOp::Fmov => 0b000000,
                FpUnOp::Fabs => 0b000001,
                FpUnOp::Fneg => 0b000010,
                FpUnOp::Fsqrt => 0b000011,
            };
            (0b00011110 << 24)
                | (fp_type(size) << 22)
                | (1 << 21)
                | (opcode << 15)
                | (0b10000 << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        FcvtPrec { to, from, rd, rn } => {
            // opcode 0001 ++ to-type bit.
            let opcode = 0b000100 | fp_type(to);
            (0b00011110 << 24)
                | (fp_type(from) << 22)
                | (1 << 21)
                | (opcode << 15)
                | (0b10000 << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        FpFma { op, size, rd, rn, rm, ra } => {
            let (o1, o0) = match op {
                FpFmaOp::Fmadd => (0, 0),
                FpFmaOp::Fmsub => (0, 1),
                FpFmaOp::Fnmadd => (1, 0),
                FpFmaOp::Fnmsub => (1, 1),
            };
            (0b00011111 << 24)
                | (fp_type(size) << 22)
                | (o1 << 21)
                | ((rm as u32) << 16)
                | (o0 << 15)
                | ((ra as u32) << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        Fcmp { size, rn, rm, zero } => {
            let opcode2 = if zero { 0b01000 } else { 0b00000 };
            (0b00011110 << 24)
                | (fp_type(size) << 22)
                | (1 << 21)
                | ((rm as u32) << 16)
                | (0b001000 << 10)
                | ((rn as u32) << 5)
                | opcode2
        }
        Fcsel { size, rd, rn, rm, cond } => {
            (0b00011110 << 24)
                | (fp_type(size) << 22)
                | (1 << 21)
                | ((rm as u32) << 16)
                | (cond.bits() << 12)
                | (0b11 << 10)
                | ((rn as u32) << 5)
                | rd as u32
        }
        IntToFp { unsigned, sf, size, rd, rn } => {
            let opcode = 0b010 | unsigned as u32;
            (sf_bit(sf) << 31)
                | (0b0011110 << 24)
                | (fp_type(size) << 22)
                | (1 << 21)
                | (opcode << 16)
                | ((rn as u32) << 5)
                | rd as u32
        }
        FpToInt { unsigned, sf, size, rd, rn } => {
            let opcode = unsigned as u32;
            (sf_bit(sf) << 31)
                | (0b0011110 << 24)
                | (fp_type(size) << 22)
                | (1 << 21)
                | (0b11 << 19)
                | (opcode << 16)
                | ((rn as u32) << 5)
                | rd as u32
        }
        FmovIntFp { to_fp, sf, size, rd, rn } => {
            let opcode = 0b110 | to_fp as u32;
            ((sf_bit(sf) << 31)
                | (0b0011110 << 24)
                | (fp_type(size) << 22)
                | (1 << 21))
                | (opcode << 16)
                | ((rn as u32) << 5)
                | rd as u32
        }
        FmovImm { size, rd, imm8 } => {
            (0b00011110 << 24)
                | (fp_type(size) << 22)
                | (1 << 21)
                | ((imm8 as u32) << 13)
                | (0b100 << 10)
                | rd as u32
        }
        Nop => 0xD503_201F,
        Svc { imm16 } => 0xD400_0001 | ((imm16 as u32) << 5),
        Brk { imm16 } => 0xD420_0000 | ((imm16 as u32) << 5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Golden words cross-checked against GNU binutils output.
    #[test]
    fn golden_integer_encodings() {
        // add x0, x1, x2 -> 0x8b020020
        assert_eq!(
            encode(&Inst::AddSubShifted {
                sub: false,
                set_flags: false,
                sf: true,
                rd: 0,
                rn: 1,
                rm: 2,
                shift: ShiftType::Lsl,
                amount: 0
            }),
            0x8B02_0020
        );
        // add x0, x0, #1 -> 0x91000400
        assert_eq!(
            encode(&Inst::AddSubImm {
                sub: false,
                set_flags: false,
                sf: true,
                rd: 0,
                rn: 0,
                imm12: 1,
                shift12: false
            }),
            0x9100_0400
        );
        // cmp x0, x20 == subs xzr, x0, x20 -> 0xeb14001f
        assert_eq!(
            encode(&Inst::AddSubShifted {
                sub: true,
                set_flags: true,
                sf: true,
                rd: 31,
                rn: 0,
                rm: 20,
                shift: ShiftType::Lsl,
                amount: 0
            }),
            0xEB14_001F
        );
        // mul x0, x1, x2 == madd x0, x1, x2, xzr -> 0x9b027c20
        assert_eq!(
            encode(&Inst::MulAdd { sub: false, sf: true, rd: 0, rn: 1, rm: 2, ra: 31 }),
            0x9B02_7C20
        );
        // sdiv x0, x1, x2 -> 0x9ac20c20
        assert_eq!(
            encode(&Inst::Div { unsigned: false, sf: true, rd: 0, rn: 1, rm: 2 }),
            0x9AC2_0C20
        );
        // movz x0, #42 -> 0xd2800540
        assert_eq!(
            encode(&Inst::MovWide { op: MovOp::Movz, sf: true, rd: 0, imm16: 42, hw: 0 }),
            0xD280_0540
        );
        // ret -> 0xd65f03c0
        assert_eq!(encode(&Inst::BrReg { link: false, ret: true, rn: 30 }), 0xD65F_03C0);
        // nop
        assert_eq!(encode(&Inst::Nop), 0xD503_201F);
        // orr x0, x1, x2 -> 0xaa020020
        assert_eq!(
            encode(&Inst::LogicalShifted {
                op: LogicOp::Orr,
                sf: true,
                rd: 0,
                rn: 1,
                rm: 2,
                shift: ShiftType::Lsl,
                amount: 0
            }),
            0xAA02_0020
        );
        // and x0, x1, #0xff -> 0x92401c20
        assert_eq!(
            encode(&Inst::LogicalImm { op: LogicOp::And, sf: true, rd: 0, rn: 1, imm: 0xFF }),
            0x9240_1C20
        );
    }

    #[test]
    fn golden_memory_encodings() {
        // ldr d1, [x22, x0, lsl #3] -> 0xfc607ac1  (paper Listing 1)
        assert_eq!(
            encode(&Inst::LdrFpReg {
                size: FpSize::D,
                rt: 1,
                rn: 22,
                rm: 0,
                extend: Extend::Uxtx,
                shift: true
            }),
            0xFC60_7AC1
        );
        // str d1, [x19, x0, lsl #3] -> 0xfc207a61
        assert_eq!(
            encode(&Inst::StrFpReg {
                size: FpSize::D,
                rt: 1,
                rn: 19,
                rm: 0,
                extend: Extend::Uxtx,
                shift: true
            }),
            0xFC20_7A61
        );
        // ldr x0, [x1, #16] -> 0xf9400820
        assert_eq!(
            encode(&Inst::LdrImm { size: MemSize::X, rt: 0, rn: 1, imm12: 2 }),
            0xF940_0820
        );
        // str x0, [sp, #-16]! -> 0xf81f0fe0
        assert_eq!(
            encode(&Inst::StrIdx {
                size: MemSize::X,
                mode: IndexMode::Pre,
                rt: 0,
                rn: 31,
                simm9: -16
            }),
            0xF81F_0FE0
        );
        // ldp x29, x30, [sp], #16 -> 0xa8c17bfd
        assert_eq!(
            encode(&Inst::Ldp {
                sf: true,
                mode: Some(IndexMode::Post),
                rt: 29,
                rt2: 30,
                rn: 31,
                imm7: 2
            }),
            0xA8C1_7BFD
        );
        // ldr d0, [x0, #8] -> 0xfd400400
        assert_eq!(
            encode(&Inst::LdrFpImm { size: FpSize::D, rt: 0, rn: 0, imm12: 1 }),
            0xFD40_0400
        );
    }

    #[test]
    fn golden_branch_encodings() {
        // b.ne -8 -> 0x54ffffc1
        assert_eq!(encode(&Inst::BCond { cond: Cond::Ne, offset: -8 }), 0x54FF_FFC1);
        // cbnz x0, +8 -> 0xb5000040
        assert_eq!(
            encode(&Inst::Cbz { nonzero: true, sf: true, rt: 0, offset: 8 }),
            0xB500_0040
        );
        // b +16 -> 0x14000004
        assert_eq!(encode(&Inst::B { link: false, offset: 16 }), 0x1400_0004);
        // bl -4 -> 0x97ffffff
        assert_eq!(encode(&Inst::B { link: true, offset: -4 }), 0x97FF_FFFF);
    }

    #[test]
    fn golden_fp_encodings() {
        // fadd d0, d1, d2 -> 0x1e622820
        assert_eq!(
            encode(&Inst::FpBin { op: FpBinOp::Fadd, size: FpSize::D, rd: 0, rn: 1, rm: 2 }),
            0x1E62_2820
        );
        // fmul d0, d1, d2 -> 0x1e620820
        assert_eq!(
            encode(&Inst::FpBin { op: FpBinOp::Fmul, size: FpSize::D, rd: 0, rn: 1, rm: 2 }),
            0x1E62_0820
        );
        // fmadd d0, d1, d2, d3 -> 0x1f420c20
        assert_eq!(
            encode(&Inst::FpFma {
                op: FpFmaOp::Fmadd,
                size: FpSize::D,
                rd: 0,
                rn: 1,
                rm: 2,
                ra: 3
            }),
            0x1F42_0C20
        );
        // fcmp d0, d1 -> 0x1e612000
        assert_eq!(
            encode(&Inst::Fcmp { size: FpSize::D, rn: 0, rm: 1, zero: false }),
            0x1E61_2000
        );
        // scvtf d0, x1 -> 0x9e620020
        assert_eq!(
            encode(&Inst::IntToFp { unsigned: false, sf: true, size: FpSize::D, rd: 0, rn: 1 }),
            0x9E62_0020
        );
        // fcvtzs x0, d1 -> 0x9e780020
        assert_eq!(
            encode(&Inst::FpToInt { unsigned: false, sf: true, size: FpSize::D, rd: 0, rn: 1 }),
            0x9E78_0020
        );
        // fmov d0, x1 -> 0x9e670020
        assert_eq!(
            encode(&Inst::FmovIntFp { to_fp: true, sf: true, size: FpSize::D, rd: 0, rn: 1 }),
            0x9E67_0020
        );
        // fmov d0, #1.0 -> 0x1e6e1000
        assert_eq!(
            encode(&Inst::FmovImm { size: FpSize::D, rd: 0, imm8: 0x70 }),
            0x1E6E_1000
        );
    }

    #[test]
    fn fp_imm8_expansion() {
        assert_eq!(fp_imm8_to_f64(0x70), 1.0);
        assert_eq!(fp_imm8_to_f64(0xF0), -1.0);
        assert_eq!(fp_imm8_to_f64(0x60), 0.5);
        assert_eq!(fp_imm8_to_f64(0x00), 2.0);
        assert_eq!(f64_to_fp_imm8(1.0), Some(0x70));
        assert_eq!(f64_to_fp_imm8(0.1), None);
        assert_eq!(f64_to_fp_imm8(3.0), Some(0x08));
    }
}
