//! Guest-side profiling over the retirement stream.

use std::collections::HashMap;

use simcore::{InstGroup, Observer, Region, RetiredInst};

use crate::json::Json;

/// Position of `g` in [`InstGroup::ALL`] (explicit match, so the per-retire
/// path compiles to a jump table rather than a linear scan).
pub fn group_index(g: InstGroup) -> usize {
    match g {
        InstGroup::IntAlu => 0,
        InstGroup::IntMul => 1,
        InstGroup::IntDiv => 2,
        InstGroup::Shift => 3,
        InstGroup::Logical => 4,
        InstGroup::Branch => 5,
        InstGroup::Load => 6,
        InstGroup::Store => 7,
        InstGroup::FpAdd => 8,
        InstGroup::FpMul => 9,
        InstGroup::FpFma => 10,
        InstGroup::FpDiv => 11,
        InstGroup::FpSqrt => 12,
        InstGroup::FpCmp => 13,
        InstGroup::FpCvt => 14,
        InstGroup::FpMove => 15,
        InstGroup::Atomic => 16,
        InstGroup::System => 17,
    }
}

/// A streaming guest profiler: per-PC-bucket retirement histogram,
/// per-[`InstGroup`] mix, branch/memory statistics, and per-region counts
/// resolved against [`simcore::Program::regions`].
///
/// Memory is bounded like the windowed observer's ring: PC buckets start at
/// [`ProfilingObserver::DEFAULT_BUCKET_BYTES`] granularity and the bucket
/// map *coarsens itself* (doubling bucket size and rehashing) whenever it
/// would exceed [`ProfilingObserver::MAX_BUCKETS`] entries, so arbitrarily
/// large guests profile in O(1) space.
pub struct ProfilingObserver {
    /// Regions sorted by start PC, as `(name, start, end)`.
    regions: Vec<(String, u64, u64)>,
    region_counts: Vec<u64>,
    /// Index into `regions` last hit (PC locality makes this hit >90%).
    cached_region: usize,
    /// Retirements outside any named region.
    pub other_count: u64,
    buckets: HashMap<u64, u64>,
    shift: u32,
    group_counts: [u64; InstGroup::ALL.len()],
    retired: u64,
    branches: u64,
    taken: u64,
    loads: u64,
    stores: u64,
    bytes_read: u64,
    bytes_written: u64,
}

impl ProfilingObserver {
    /// Initial PC bucket width: 64 bytes (16 instructions).
    pub const DEFAULT_BUCKET_BYTES: u64 = 64;
    /// Bucket-map entry bound before the granularity doubles.
    pub const MAX_BUCKETS: usize = 1 << 14;

    /// Profiler attributing PCs to `regions` (pass `&program.regions`).
    pub fn new(regions: &[Region]) -> Self {
        let mut sorted: Vec<(String, u64, u64)> =
            regions.iter().map(|r| (r.name.clone(), r.start, r.end)).collect();
        sorted.sort_by_key(|&(_, start, _)| start);
        let n = sorted.len();
        ProfilingObserver {
            regions: sorted,
            region_counts: vec![0; n],
            cached_region: usize::MAX,
            other_count: 0,
            buckets: HashMap::new(),
            shift: Self::DEFAULT_BUCKET_BYTES.trailing_zeros(),
            group_counts: [0; InstGroup::ALL.len()],
            retired: 0,
            branches: 0,
            taken: 0,
            loads: 0,
            stores: 0,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    fn attribute_region(&mut self, pc: u64) {
        if self.cached_region != usize::MAX {
            let (_, start, end) = &self.regions[self.cached_region];
            if pc >= *start && pc < *end {
                self.region_counts[self.cached_region] += 1;
                return;
            }
        }
        // Binary search over sorted disjoint regions.
        let idx = self.regions.partition_point(|&(_, start, _)| start <= pc);
        if idx > 0 {
            let (_, start, end) = &self.regions[idx - 1];
            if pc >= *start && pc < *end {
                self.cached_region = idx - 1;
                self.region_counts[idx - 1] += 1;
                return;
            }
        }
        self.cached_region = usize::MAX;
        self.other_count += 1;
    }

    fn bump_bucket(&mut self, pc: u64) {
        *self.buckets.entry(pc >> self.shift).or_insert(0) += 1;
        if self.buckets.len() > Self::MAX_BUCKETS {
            // Coarsen: double the bucket width, halving the entry count.
            self.shift += 1;
            let mut merged: HashMap<u64, u64> = HashMap::with_capacity(self.buckets.len() / 2 + 1);
            for (b, n) in self.buckets.drain() {
                *merged.entry(b >> 1).or_insert(0) += n;
            }
            self.buckets = merged;
        }
    }

    /// Total retirements seen.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Current PC bucket width in bytes.
    pub fn bucket_bytes(&self) -> u64 {
        1 << self.shift
    }

    /// Instruction mix as `(group, count)`, non-zero groups only, in
    /// [`InstGroup::ALL`] order.
    pub fn group_mix(&self) -> Vec<(InstGroup, u64)> {
        InstGroup::ALL
            .iter()
            .map(|&g| (g, self.group_counts[group_index(g)]))
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// Top-`n` regions by retirement count, descending.
    pub fn hot_regions(&self, n: usize) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .regions
            .iter()
            .zip(self.region_counts.iter())
            .filter(|(_, &c)| c > 0)
            .map(|((name, _, _), &c)| (name.clone(), c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Top-`n` PC buckets by retirement count as `(bucket start PC, count)`.
    pub fn hot_buckets(&self, n: usize) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> =
            self.buckets.iter().map(|(&b, &c)| (b << self.shift, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Fraction of retirements that were branches (0 if empty).
    pub fn branch_fraction(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.branches as f64 / self.retired as f64
        }
    }

    /// Fraction of branches that were taken.
    pub fn taken_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.taken as f64 / self.branches as f64
        }
    }

    /// `(loads, stores, bytes read, bytes written)`.
    pub fn mem_stats(&self) -> (u64, u64, u64, u64) {
        (self.loads, self.stores, self.bytes_read, self.bytes_written)
    }

    /// JSON object with the full profile.
    pub fn to_json(&self, top_n: usize) -> Json {
        Json::obj(vec![
            ("retired", Json::Num(self.retired as f64)),
            (
                "group_mix",
                Json::Obj(
                    self.group_mix()
                        .into_iter()
                        .map(|(g, n)| (format!("{g:?}"), Json::Num(n as f64)))
                        .collect(),
                ),
            ),
            (
                "hot_regions",
                Json::Arr(
                    self.hot_regions(top_n)
                        .into_iter()
                        .map(|(name, n)| {
                            Json::obj(vec![
                                ("region", Json::Str(name)),
                                ("retired", Json::Num(n as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("other_retired", Json::Num(self.other_count as f64)),
            ("pc_bucket_bytes", Json::Num(self.bucket_bytes() as f64)),
            (
                "hot_pc_buckets",
                Json::Arr(
                    self.hot_buckets(top_n)
                        .into_iter()
                        .map(|(pc, n)| {
                            Json::obj(vec![
                                ("pc", Json::Str(format!("{pc:#x}"))),
                                ("retired", Json::Num(n as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("branches", Json::Num(self.branches as f64)),
            ("branch_taken_rate", Json::Num(self.taken_rate())),
            ("loads", Json::Num(self.loads as f64)),
            ("stores", Json::Num(self.stores as f64)),
            ("bytes_read", Json::Num(self.bytes_read as f64)),
            ("bytes_written", Json::Num(self.bytes_written as f64)),
        ])
    }
}

impl Observer for ProfilingObserver {
    fn on_retire(&mut self, ri: &RetiredInst) {
        self.retired += 1;
        self.group_counts[group_index(ri.group)] += 1;
        if !self.regions.is_empty() {
            self.attribute_region(ri.pc);
        } else {
            self.other_count += 1;
        }
        self.bump_bucket(ri.pc);
        if ri.is_branch {
            self.branches += 1;
            self.taken += ri.taken as u64;
        }
        for a in ri.mem_reads.iter() {
            self.loads += 1;
            self.bytes_read += a.size as u64;
        }
        for a in ri.mem_writes.iter() {
            self.stores += 1;
            self.bytes_written += a.size as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::InstGroup;

    fn region(name: &str, start: u64, end: u64) -> Region {
        Region { name: name.into(), start, end }
    }

    fn ri(pc: u64, group: InstGroup) -> RetiredInst {
        RetiredInst::new(pc, group)
    }

    #[test]
    fn region_attribution_synthetic_stream() {
        let regions =
            [region("copy", 0x100, 0x140), region("scale", 0x140, 0x180), region("triad", 0x200, 0x240)];
        let mut p = ProfilingObserver::new(&regions);
        // 10 in copy, 3 in scale, 5 in triad, 2 outside.
        for _ in 0..10 {
            p.on_retire(&ri(0x104, InstGroup::Load));
        }
        for _ in 0..3 {
            p.on_retire(&ri(0x17C, InstGroup::FpAdd));
        }
        for _ in 0..5 {
            p.on_retire(&ri(0x200, InstGroup::FpFma));
        }
        p.on_retire(&ri(0x50, InstGroup::Branch));
        p.on_retire(&ri(0x1000, InstGroup::Branch));
        assert_eq!(p.retired(), 20);
        assert_eq!(p.other_count, 2);
        assert_eq!(
            p.hot_regions(10),
            vec![("copy".into(), 10), ("triad".into(), 5), ("scale".into(), 3)]
        );
        assert_eq!(p.hot_regions(1).len(), 1);
        let mix = p.group_mix();
        assert!(mix.contains(&(InstGroup::Load, 10)));
        assert!(mix.contains(&(InstGroup::Branch, 2)));
    }

    #[test]
    fn region_boundaries_are_half_open() {
        let mut p = ProfilingObserver::new(&[region("k", 0x100, 0x104)]);
        p.on_retire(&ri(0x100, InstGroup::IntAlu)); // inside
        p.on_retire(&ri(0x104, InstGroup::IntAlu)); // one past the end
        assert_eq!(p.hot_regions(1), vec![("k".into(), 1)]);
        assert_eq!(p.other_count, 1);
    }

    #[test]
    fn branch_and_mem_stats() {
        let mut p = ProfilingObserver::new(&[]);
        let mut b = ri(0, InstGroup::Branch);
        b.is_branch = true;
        b.taken = true;
        p.on_retire(&b);
        b.taken = false;
        p.on_retire(&b);
        let mut l = ri(4, InstGroup::Load);
        l.mem_reads.push(0x1000, 8);
        p.on_retire(&l);
        let mut s = ri(8, InstGroup::Store);
        s.mem_writes.push(0x2000, 4);
        p.on_retire(&s);
        assert_eq!(p.branch_fraction(), 0.5);
        assert_eq!(p.taken_rate(), 0.5);
        assert_eq!(p.mem_stats(), (1, 1, 8, 4));
    }

    #[test]
    fn bucket_map_is_bounded() {
        let mut p = ProfilingObserver::new(&[]);
        // Touch far more distinct 64-byte buckets than MAX_BUCKETS.
        let n = (ProfilingObserver::MAX_BUCKETS as u64) * 4;
        for i in 0..n {
            p.on_retire(&ri(i * ProfilingObserver::DEFAULT_BUCKET_BYTES, InstGroup::IntAlu));
        }
        assert!(p.buckets.len() <= ProfilingObserver::MAX_BUCKETS);
        assert!(p.bucket_bytes() > ProfilingObserver::DEFAULT_BUCKET_BYTES);
        // No retirements were lost to coarsening.
        let total: u64 = p.buckets.values().sum();
        assert_eq!(total, n);
    }

    #[test]
    fn profile_json_has_expected_keys() {
        let mut p = ProfilingObserver::new(&[region("k", 0, 0x40)]);
        p.on_retire(&ri(0x10, InstGroup::FpFma));
        let j = p.to_json(5);
        assert_eq!(j.get("retired").unwrap().as_u64(), Some(1));
        assert!(j.get("group_mix").unwrap().get("FpFma").is_some());
        assert_eq!(j.get("hot_regions").unwrap().as_arr().unwrap().len(), 1);
    }
}
