//! A64 disassembler (GNU-style mnemonics with common aliases).

use crate::encode::fp_imm8_to_f64;
use crate::inst::*;

/// Name of general register `r` with 31 = ZR.
fn xz(sf: bool, r: u8) -> String {
    let prefix = if sf { "x" } else { "w" };
    if r == 31 {
        format!("{prefix}zr")
    } else {
        format!("{prefix}{r}")
    }
}

/// Name of general register `r` with 31 = SP.
fn xs(sf: bool, r: u8) -> String {
    if r == 31 {
        if sf { "sp".to_string() } else { "wsp".to_string() }
    } else {
        xz(sf, r)
    }
}

fn fpreg(size: FpSize, r: u8) -> String {
    match size {
        FpSize::S => format!("s{r}"),
        FpSize::D => format!("d{r}"),
    }
}

fn cond_name(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "eq",
        Cond::Ne => "ne",
        Cond::Cs => "cs",
        Cond::Cc => "cc",
        Cond::Mi => "mi",
        Cond::Pl => "pl",
        Cond::Vs => "vs",
        Cond::Vc => "vc",
        Cond::Hi => "hi",
        Cond::Ls => "ls",
        Cond::Ge => "ge",
        Cond::Lt => "lt",
        Cond::Gt => "gt",
        Cond::Le => "le",
        Cond::Al => "al",
        Cond::Nv => "nv",
    }
}

fn shift_name(s: ShiftType) -> &'static str {
    match s {
        ShiftType::Lsl => "lsl",
        ShiftType::Lsr => "lsr",
        ShiftType::Asr => "asr",
        ShiftType::Ror => "ror",
    }
}

fn extend_name(e: Extend) -> &'static str {
    match e {
        Extend::Uxtb => "uxtb",
        Extend::Uxth => "uxth",
        Extend::Uxtw => "uxtw",
        Extend::Uxtx => "uxtx",
        Extend::Sxtb => "sxtb",
        Extend::Sxth => "sxth",
        Extend::Sxtw => "sxtw",
        Extend::Sxtx => "sxtx",
    }
}

fn mem_mnemonic(size: MemSize, load: bool) -> &'static str {
    match (size, load) {
        (MemSize::B, true) => "ldrb",
        (MemSize::B, false) => "strb",
        (MemSize::H, true) => "ldrh",
        (MemSize::H, false) => "strh",
        (MemSize::Sb, _) => "ldrsb",
        (MemSize::Sh, _) => "ldrsh",
        (MemSize::Sw, _) => "ldrsw",
        (_, true) => "ldr",
        (_, false) => "str",
    }
}

fn mem_reg(size: MemSize, r: u8) -> String {
    // The transfer register is W for sub-64-bit accesses (except the
    // sign-extending-to-X loads which use X).
    match size {
        MemSize::X | MemSize::Sb | MemSize::Sh | MemSize::Sw => xz(true, r),
        _ => xz(false, r),
    }
}

/// Render a decoded instruction as assembly text.
pub fn disassemble(inst: &Inst) -> String {
    use Inst::*;
    match *inst {
        AddSubImm { sub, set_flags, sf, rd, rn, imm12, shift12 } => {
            let shift = if shift12 { ", lsl #12" } else { "" };
            match (sub, set_flags, rd) {
                (true, true, 31) => format!("cmp {}, #{imm12}{shift}", xs(sf, rn)),
                (false, true, 31) => format!("cmn {}, #{imm12}{shift}", xs(sf, rn)),
                _ => {
                    let m = match (sub, set_flags) {
                        (false, false) => "add",
                        (false, true) => "adds",
                        (true, false) => "sub",
                        (true, true) => "subs",
                    };
                    let rd_s = if set_flags { xz(sf, rd) } else { xs(sf, rd) };
                    format!("{m} {rd_s}, {}, #{imm12}{shift}", xs(sf, rn))
                }
            }
        }
        AddSubShifted { sub, set_flags, sf, rd, rn, rm, shift, amount } => {
            let sh = if amount != 0 {
                format!(", {} #{amount}", shift_name(shift))
            } else {
                String::new()
            };
            match (sub, set_flags, rd, rn) {
                (true, true, 31, _) => format!("cmp {}, {}{sh}", xz(sf, rn), xz(sf, rm)),
                (true, false, _, 31) => format!("neg {}, {}{sh}", xz(sf, rd), xz(sf, rm)),
                _ => {
                    let m = match (sub, set_flags) {
                        (false, false) => "add",
                        (false, true) => "adds",
                        (true, false) => "sub",
                        (true, true) => "subs",
                    };
                    format!("{m} {}, {}, {}{sh}", xz(sf, rd), xz(sf, rn), xz(sf, rm))
                }
            }
        }
        AddSubExtended { sub, set_flags, sf, rd, rn, rm, extend, amount } => {
            let m = match (sub, set_flags) {
                (false, false) => "add",
                (false, true) => "adds",
                (true, false) => "sub",
                (true, true) => "subs",
            };
            let sh = if amount != 0 { format!(" #{amount}") } else { String::new() };
            format!(
                "{m} {}, {}, {}, {}{sh}",
                xs(sf, rd),
                xs(sf, rn),
                xz(sf, rm),
                extend_name(extend)
            )
        }
        LogicalImm { op, sf, rd, rn, imm } => {
            let m = match op {
                LogicOp::And => "and",
                LogicOp::Orr => "orr",
                LogicOp::Eor => "eor",
                LogicOp::Ands => "ands",
                _ => unreachable!(),
            };
            if op == LogicOp::Orr && rn == 31 {
                return format!("mov {}, #{imm:#x}", xs(sf, rd));
            }
            format!("{m} {}, {}, #{imm:#x}", xs(sf, rd), xz(sf, rn))
        }
        LogicalShifted { op, sf, rd, rn, rm, shift, amount } => {
            let m = match op {
                LogicOp::And => "and",
                LogicOp::Bic => "bic",
                LogicOp::Orr => "orr",
                LogicOp::Orn => "orn",
                LogicOp::Eor => "eor",
                LogicOp::Eon => "eon",
                LogicOp::Ands => "ands",
                LogicOp::Bics => "bics",
            };
            if op == LogicOp::Orr && rn == 31 && amount == 0 {
                return format!("mov {}, {}", xz(sf, rd), xz(sf, rm));
            }
            let sh = if amount != 0 {
                format!(", {} #{amount}", shift_name(shift))
            } else {
                String::new()
            };
            format!("{m} {}, {}, {}{sh}", xz(sf, rd), xz(sf, rn), xz(sf, rm))
        }
        MovWide { op, sf, rd, imm16, hw } => {
            let m = match op {
                MovOp::Movn => "movn",
                MovOp::Movz => "movz",
                MovOp::Movk => "movk",
            };
            let sh = if hw != 0 { format!(", lsl #{}", 16 * hw) } else { String::new() };
            format!("{m} {}, #{imm16}{sh}", xz(sf, rd))
        }
        Adr { rd, offset } => format!("adr {}, {offset}", xz(true, rd)),
        Adrp { rd, offset } => format!("adrp {}, {offset}", xz(true, rd)),
        Bitfield { op, sf, rd, rn, immr, imms } => {
            let ds: u32 = if sf { 64 } else { 32 };
            // Recognise the common aliases.
            if op == BitfieldOp::Ubfm {
                if imms as u32 + 1 == immr as u32 {
                    return format!("lsl {}, {}, #{}", xz(sf, rd), xz(sf, rn), ds - 1 - imms as u32);
                }
                if imms as u32 == ds - 1 {
                    return format!("lsr {}, {}, #{immr}", xz(sf, rd), xz(sf, rn));
                }
                if immr == 0 && imms == 7 {
                    return format!("uxtb {}, {}", xz(sf, rd), xz(false, rn));
                }
                if immr == 0 && imms == 15 {
                    return format!("uxth {}, {}", xz(sf, rd), xz(false, rn));
                }
            }
            if op == BitfieldOp::Sbfm {
                if imms as u32 == ds - 1 {
                    return format!("asr {}, {}, #{immr}", xz(sf, rd), xz(sf, rn));
                }
                if immr == 0 && imms == 31 && sf {
                    return format!("sxtw {}, {}", xz(true, rd), xz(false, rn));
                }
            }
            let m = match op {
                BitfieldOp::Sbfm => "sbfm",
                BitfieldOp::Bfm => "bfm",
                BitfieldOp::Ubfm => "ubfm",
            };
            format!("{m} {}, {}, #{immr}, #{imms}", xz(sf, rd), xz(sf, rn))
        }
        Extr { sf, rd, rn, rm, lsb } => {
            if rn == rm {
                format!("ror {}, {}, #{lsb}", xz(sf, rd), xz(sf, rn))
            } else {
                format!("extr {}, {}, {}, #{lsb}", xz(sf, rd), xz(sf, rn), xz(sf, rm))
            }
        }
        MulAdd { sub, sf, rd, rn, rm, ra } => {
            if ra == 31 {
                let m = if sub { "mneg" } else { "mul" };
                format!("{m} {}, {}, {}", xz(sf, rd), xz(sf, rn), xz(sf, rm))
            } else {
                let m = if sub { "msub" } else { "madd" };
                format!("{m} {}, {}, {}, {}", xz(sf, rd), xz(sf, rn), xz(sf, rm), xz(sf, ra))
            }
        }
        MulAddLong { sub, unsigned, rd, rn, rm, ra } => {
            let m = match (unsigned, sub, ra) {
                (false, false, 31) => "smull",
                (true, false, 31) => "umull",
                (false, false, _) => "smaddl",
                (true, false, _) => "umaddl",
                (false, true, _) => "smsubl",
                (true, true, _) => "umsubl",
            };
            if ra == 31 && !sub {
                format!("{m} {}, {}, {}", xz(true, rd), xz(false, rn), xz(false, rm))
            } else {
                format!(
                    "{m} {}, {}, {}, {}",
                    xz(true, rd),
                    xz(false, rn),
                    xz(false, rm),
                    xz(true, ra)
                )
            }
        }
        MulHigh { unsigned, rd, rn, rm } => {
            let m = if unsigned { "umulh" } else { "smulh" };
            format!("{m} {}, {}, {}", xz(true, rd), xz(true, rn), xz(true, rm))
        }
        Div { unsigned, sf, rd, rn, rm } => {
            let m = if unsigned { "udiv" } else { "sdiv" };
            format!("{m} {}, {}, {}", xz(sf, rd), xz(sf, rn), xz(sf, rm))
        }
        ShiftV { op, sf, rd, rn, rm } => {
            let m = match op {
                ShiftVOp::Lslv => "lsl",
                ShiftVOp::Lsrv => "lsr",
                ShiftVOp::Asrv => "asr",
                ShiftVOp::Rorv => "ror",
            };
            format!("{m} {}, {}, {}", xz(sf, rd), xz(sf, rn), xz(sf, rm))
        }
        Unary1 { op, sf, rd, rn } => {
            let m = match op {
                Unary1Op::Rbit => "rbit",
                Unary1Op::Rev16 => "rev16",
                Unary1Op::Rev32 => "rev32",
                Unary1Op::Rev => "rev",
                Unary1Op::Clz => "clz",
                Unary1Op::Cls => "cls",
            };
            format!("{m} {}, {}", xz(sf, rd), xz(sf, rn))
        }
        CondSel { op, sf, rd, rn, rm, cond } => {
            if op == CselOp::Csinc && rn == 31 && rm == 31 {
                return format!("cset {}, {}", xz(sf, rd), cond_name(cond.invert()));
            }
            let m = match op {
                CselOp::Csel => "csel",
                CselOp::Csinc => "csinc",
                CselOp::Csinv => "csinv",
                CselOp::Csneg => "csneg",
            };
            format!(
                "{m} {}, {}, {}, {}",
                xz(sf, rd),
                xz(sf, rn),
                xz(sf, rm),
                cond_name(cond)
            )
        }
        CondCmpReg { negative, sf, rn, rm, nzcv, cond } => {
            let m = if negative { "ccmn" } else { "ccmp" };
            format!("{m} {}, {}, #{nzcv}, {}", xz(sf, rn), xz(sf, rm), cond_name(cond))
        }
        CondCmpImm { negative, sf, rn, imm5, nzcv, cond } => {
            let m = if negative { "ccmn" } else { "ccmp" };
            format!("{m} {}, #{imm5}, #{nzcv}, {}", xz(sf, rn), cond_name(cond))
        }
        B { link, offset } => format!("{} {offset}", if link { "bl" } else { "b" }),
        BCond { cond, offset } => format!("b.{} {offset}", cond_name(cond)),
        Cbz { nonzero, sf, rt, offset } => {
            let m = if nonzero { "cbnz" } else { "cbz" };
            format!("{m} {}, {offset}", xz(sf, rt))
        }
        Tbz { nonzero, rt, bit, offset } => {
            let m = if nonzero { "tbnz" } else { "tbz" };
            format!("{m} {}, #{bit}, {offset}", xz(true, rt))
        }
        BrReg { link, ret, rn } => {
            if ret {
                if rn == 30 { "ret".to_string() } else { format!("ret {}", xz(true, rn)) }
            } else if link {
                format!("blr {}", xz(true, rn))
            } else {
                format!("br {}", xz(true, rn))
            }
        }
        LdrImm { size, rt, rn, imm12 } => {
            let off = imm12 as u64 * size.bytes() as u64;
            fmt_mem_imm(mem_mnemonic(size, true), &mem_reg(size, rt), rn, off)
        }
        StrImm { size, rt, rn, imm12 } => {
            let off = imm12 as u64 * size.bytes() as u64;
            fmt_mem_imm(mem_mnemonic(size, false), &mem_reg(size, rt), rn, off)
        }
        LdrIdx { size, mode, rt, rn, simm9 } => {
            fmt_mem_idx(mem_mnemonic(size, true), &mem_reg(size, rt), rn, simm9, mode, true)
        }
        StrIdx { size, mode, rt, rn, simm9 } => {
            fmt_mem_idx(mem_mnemonic(size, false), &mem_reg(size, rt), rn, simm9, mode, false)
        }
        LdrReg { size, rt, rn, rm, extend, shift } => fmt_mem_reg(
            mem_mnemonic(size, true),
            &mem_reg(size, rt),
            rn,
            rm,
            extend,
            shift,
            size.bytes(),
        ),
        StrReg { size, rt, rn, rm, extend, shift } => fmt_mem_reg(
            mem_mnemonic(size, false),
            &mem_reg(size, rt),
            rn,
            rm,
            extend,
            shift,
            size.bytes(),
        ),
        Ldp { sf, mode, rt, rt2, rn, imm7 } => {
            fmt_pair("ldp", sf, rt, rt2, rn, imm7, mode)
        }
        Stp { sf, mode, rt, rt2, rn, imm7 } => {
            fmt_pair("stp", sf, rt, rt2, rn, imm7, mode)
        }
        LdrFpImm { size, rt, rn, imm12 } => {
            let off = imm12 as u64 * size.bytes() as u64;
            fmt_mem_imm("ldr", &fpreg(size, rt), rn, off)
        }
        StrFpImm { size, rt, rn, imm12 } => {
            let off = imm12 as u64 * size.bytes() as u64;
            fmt_mem_imm("str", &fpreg(size, rt), rn, off)
        }
        LdrFpIdx { size, mode, rt, rn, simm9 } => {
            fmt_mem_idx("ldr", &fpreg(size, rt), rn, simm9, mode, true)
        }
        StrFpIdx { size, mode, rt, rn, simm9 } => {
            fmt_mem_idx("str", &fpreg(size, rt), rn, simm9, mode, false)
        }
        LdrFpReg { size, rt, rn, rm, extend, shift } => {
            fmt_mem_reg("ldr", &fpreg(size, rt), rn, rm, extend, shift, size.bytes())
        }
        StrFpReg { size, rt, rn, rm, extend, shift } => {
            fmt_mem_reg("str", &fpreg(size, rt), rn, rm, extend, shift, size.bytes())
        }
        FpBin { op, size, rd, rn, rm } => {
            let m = match op {
                FpBinOp::Fadd => "fadd",
                FpBinOp::Fsub => "fsub",
                FpBinOp::Fmul => "fmul",
                FpBinOp::Fdiv => "fdiv",
                FpBinOp::Fmax => "fmax",
                FpBinOp::Fmin => "fmin",
                FpBinOp::Fmaxnm => "fmaxnm",
                FpBinOp::Fminnm => "fminnm",
                FpBinOp::Fnmul => "fnmul",
            };
            format!("{m} {}, {}, {}", fpreg(size, rd), fpreg(size, rn), fpreg(size, rm))
        }
        FpUn { op, size, rd, rn } => {
            let m = match op {
                FpUnOp::Fmov => "fmov",
                FpUnOp::Fabs => "fabs",
                FpUnOp::Fneg => "fneg",
                FpUnOp::Fsqrt => "fsqrt",
            };
            format!("{m} {}, {}", fpreg(size, rd), fpreg(size, rn))
        }
        FpFma { op, size, rd, rn, rm, ra } => {
            let m = match op {
                FpFmaOp::Fmadd => "fmadd",
                FpFmaOp::Fmsub => "fmsub",
                FpFmaOp::Fnmadd => "fnmadd",
                FpFmaOp::Fnmsub => "fnmsub",
            };
            format!(
                "{m} {}, {}, {}, {}",
                fpreg(size, rd),
                fpreg(size, rn),
                fpreg(size, rm),
                fpreg(size, ra)
            )
        }
        Fcmp { size, rn, rm, zero } => {
            if zero {
                format!("fcmp {}, #0.0", fpreg(size, rn))
            } else {
                format!("fcmp {}, {}", fpreg(size, rn), fpreg(size, rm))
            }
        }
        Fcsel { size, rd, rn, rm, cond } => format!(
            "fcsel {}, {}, {}, {}",
            fpreg(size, rd),
            fpreg(size, rn),
            fpreg(size, rm),
            cond_name(cond)
        ),
        FcvtPrec { to, from, rd, rn } => {
            format!("fcvt {}, {}", fpreg(to, rd), fpreg(from, rn))
        }
        IntToFp { unsigned, sf, size, rd, rn } => {
            let m = if unsigned { "ucvtf" } else { "scvtf" };
            format!("{m} {}, {}", fpreg(size, rd), xz(sf, rn))
        }
        FpToInt { unsigned, sf, size, rd, rn } => {
            let m = if unsigned { "fcvtzu" } else { "fcvtzs" };
            format!("{m} {}, {}", xz(sf, rd), fpreg(size, rn))
        }
        FmovIntFp { to_fp, sf, size, rd, rn } => {
            if to_fp {
                format!("fmov {}, {}", fpreg(size, rd), xz(sf, rn))
            } else {
                format!("fmov {}, {}", xz(sf, rd), fpreg(size, rn))
            }
        }
        FmovImm { size, rd, imm8 } => {
            format!("fmov {}, #{}", fpreg(size, rd), fp_imm8_to_f64(imm8))
        }
        Nop => "nop".to_string(),
        Svc { imm16 } => format!("svc #{imm16}"),
        Brk { imm16 } => format!("brk #{imm16}"),
    }
}

fn fmt_mem_imm(m: &str, rt: &str, rn: u8, off: u64) -> String {
    if off == 0 {
        format!("{m} {rt}, [{}]", xs(true, rn))
    } else {
        format!("{m} {rt}, [{}, #{off}]", xs(true, rn))
    }
}

fn fmt_mem_idx(m: &str, rt: &str, rn: u8, simm9: i16, mode: IndexMode, _load: bool) -> String {
    let base = xs(true, rn);
    match mode {
        IndexMode::Pre => format!("{m} {rt}, [{base}, #{simm9}]!"),
        IndexMode::Post => format!("{m} {rt}, [{base}], #{simm9}"),
        IndexMode::Unscaled => {
            let m = if m.starts_with("ldr") { "ldur" } else { "stur" };
            format!("{m} {rt}, [{base}, #{simm9}]")
        }
    }
}

fn fmt_mem_reg(m: &str, rt: &str, rn: u8, rm: u8, extend: Extend, shift: bool, bytes: u8) -> String {
    let base = xs(true, rn);
    let idx = match extend {
        Extend::Uxtx | Extend::Sxtx => xz(true, rm),
        _ => xz(false, rm),
    };
    let scale = bytes.trailing_zeros();
    match (extend, shift) {
        (Extend::Uxtx, false) => format!("{m} {rt}, [{base}, {idx}]"),
        (Extend::Uxtx, true) => format!("{m} {rt}, [{base}, {idx}, lsl #{scale}]"),
        (e, false) => format!("{m} {rt}, [{base}, {idx}, {}]", extend_name(e)),
        (e, true) => format!("{m} {rt}, [{base}, {idx}, {} #{scale}]", extend_name(e)),
    }
}

fn fmt_pair(m: &str, sf: bool, rt: u8, rt2: u8, rn: u8, imm7: i16, mode: Option<IndexMode>) -> String {
    let scale: i64 = if sf { 8 } else { 4 };
    let off = imm7 as i64 * scale;
    let (a, b, base) = (xz(sf, rt), xz(sf, rt2), xs(true, rn));
    match mode {
        None if off == 0 => format!("{m} {a}, {b}, [{base}]"),
        None => format!("{m} {a}, {b}, [{base}, #{off}]"),
        Some(IndexMode::Pre) => format!("{m} {a}, {b}, [{base}, #{off}]!"),
        Some(IndexMode::Post) => format!("{m} {a}, {b}, [{base}], #{off}"),
        Some(IndexMode::Unscaled) => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_listing_1_shapes() {
        // ldr d1, [x22, x0, lsl #3]
        assert_eq!(
            disassemble(&Inst::LdrFpReg {
                size: FpSize::D,
                rt: 1,
                rn: 22,
                rm: 0,
                extend: Extend::Uxtx,
                shift: true
            }),
            "ldr d1, [x22, x0, lsl #3]"
        );
        // str d1, [x19, x0, lsl #3]
        assert_eq!(
            disassemble(&Inst::StrFpReg {
                size: FpSize::D,
                rt: 1,
                rn: 19,
                rm: 0,
                extend: Extend::Uxtx,
                shift: true
            }),
            "str d1, [x19, x0, lsl #3]"
        );
        // add x0, x0, #1
        assert_eq!(
            disassemble(&Inst::AddSubImm {
                sub: false,
                set_flags: false,
                sf: true,
                rd: 0,
                rn: 0,
                imm12: 1,
                shift12: false
            }),
            "add x0, x0, #1"
        );
        // cmp x0, x20
        assert_eq!(
            disassemble(&Inst::AddSubShifted {
                sub: true,
                set_flags: true,
                sf: true,
                rd: 31,
                rn: 0,
                rm: 20,
                shift: ShiftType::Lsl,
                amount: 0
            }),
            "cmp x0, x20"
        );
        // b.ne -8
        assert_eq!(disassemble(&Inst::BCond { cond: Cond::Ne, offset: -8 }), "b.ne -8");
    }

    #[test]
    fn aliases() {
        assert_eq!(
            disassemble(&Inst::BrReg { link: false, ret: true, rn: 30 }),
            "ret"
        );
        assert_eq!(
            disassemble(&Inst::MulAdd { sub: false, sf: true, rd: 0, rn: 1, rm: 2, ra: 31 }),
            "mul x0, x1, x2"
        );
        // lsl x1, x2, #3 == ubfm x1, x2, #61, #60
        assert_eq!(
            disassemble(&Inst::Bitfield {
                op: BitfieldOp::Ubfm,
                sf: true,
                rd: 1,
                rn: 2,
                immr: 61,
                imms: 60
            }),
            "lsl x1, x2, #3"
        );
        assert_eq!(
            disassemble(&Inst::LogicalShifted {
                op: LogicOp::Orr,
                sf: true,
                rd: 3,
                rn: 31,
                rm: 4,
                shift: ShiftType::Lsl,
                amount: 0
            }),
            "mov x3, x4"
        );
    }

    #[test]
    fn pre_post_index_forms() {
        assert_eq!(
            disassemble(&Inst::LdrFpIdx {
                size: FpSize::D,
                mode: IndexMode::Post,
                rt: 0,
                rn: 1,
                simm9: 8
            }),
            "ldr d0, [x1], #8"
        );
        assert_eq!(
            disassemble(&Inst::StrIdx {
                size: MemSize::X,
                mode: IndexMode::Pre,
                rt: 0,
                rn: 31,
                simm9: -16
            }),
            "str x0, [sp, #-16]!"
        );
    }
}
