//! Integration: ELF round trips preserve measurement results, the
//! pipeline/cache extensions behave sensibly on real workloads, and the
//! pipeline-timed driver is architecturally identical to plain emulation —
//! with fault injection off *and* on.

use isacmp::{
    compile, execute, run_pipeline, run_pipeline_full, try_execute, try_run_pipeline_full,
    CacheConfig, CacheModel, CriticalPath, FaultInjector, FaultPlan, IsaKind, Observer,
    PathLength, Personality, PipelineConfig, Program, SizeClass, Workload,
};

#[test]
fn elf_round_trip_preserves_measurements() {
    for isa in [IsaKind::AArch64, IsaKind::RiscV] {
        let compiled = compile(&Workload::Stream.build(SizeClass::Test), isa, &Personality::gcc122());

        // Direct run.
        let mut pl_direct = PathLength::new(&compiled.program.regions);
        execute(&compiled, &mut [&mut pl_direct]);

        // Through ELF bytes.
        let elf = compiled.program.to_elf();
        let loaded = Program::from_elf(&elf).expect("parse own ELF");
        assert_eq!(loaded.isa, isa);
        assert_eq!(loaded.regions, compiled.program.regions, "region note survives");
        let reloaded = isacmp::Compiled {
            program: loaded,
            checksum_addr: compiled.checksum_addr,
            array_addrs: compiled.array_addrs.clone(),
        };
        let mut pl_elf = PathLength::new(&reloaded.program.regions);
        let mut cp = CriticalPath::new();
        let (st, _) = execute(&reloaded, &mut [&mut pl_elf, &mut cp]);

        assert_eq!(pl_elf.total(), pl_direct.total(), "identical execution after round trip");
        assert_eq!(pl_elf.by_kernel(), pl_direct.by_kernel());
        assert!(st.mem.read_f64(reloaded.checksum_addr).unwrap().is_finite());
    }
}

#[test]
fn cached_pipeline_never_faster_than_ideal() {
    for w in [Workload::Stream, Workload::CloverLeaf] {
        for isa in [IsaKind::AArch64, IsaKind::RiscV] {
            let p = Personality::gcc122();
            let ideal = run_pipeline(w, isa, &p, SizeClass::Test, PipelineConfig::tx2(), true);
            let cached = run_pipeline_full(
                w,
                isa,
                &p,
                SizeClass::Test,
                PipelineConfig::tx2(),
                true,
                Some((CacheConfig::l1d_32k(), 100)),
            );
            assert!(
                cached.cycles >= ideal.cycles,
                "{} {}: cache made it faster? {} < {}",
                w.name(),
                isacmp::isa_label(isa),
                cached.cycles,
                ideal.cycles
            );
            assert_eq!(cached.retired, ideal.retired);
        }
    }
}

#[test]
fn pipeline_configs_order_sanely() {
    // More resources => never slower, for every workload and ISA.
    let p = Personality::gcc122();
    for w in Workload::ALL {
        for isa in [IsaKind::AArch64, IsaKind::RiscV] {
            let ino = run_pipeline(w, isa, &p, SizeClass::Test, PipelineConfig::a55(), false);
            let tx2 = run_pipeline(w, isa, &p, SizeClass::Test, PipelineConfig::tx2(), true);
            let fs = run_pipeline(w, isa, &p, SizeClass::Test, PipelineConfig::firestorm(), true);
            assert!(tx2.cycles <= ino.cycles, "{}: TX2 {} > in-order {}", w.name(), tx2.cycles, ino.cycles);
            assert!(fs.cycles <= tx2.cycles, "{}: Firestorm {} > TX2 {}", w.name(), fs.cycles, tx2.cycles);
        }
    }
}

#[test]
fn pipeline_and_emulation_agree_architecturally() {
    // The pipeline models are timing observers over the same emulation
    // core, so the architectural outcome — retire count, final pc,
    // register files, guest checksum — must be bit-identical to a plain
    // emulation run for every seed kernel on both ISAs.
    let p = Personality::gcc122();
    for w in Workload::ALL {
        for isa in [IsaKind::AArch64, IsaKind::RiscV] {
            let compiled = compile(&w.build(SizeClass::Test), isa, &p);
            let (st_emu, stats) =
                try_execute(&compiled, &mut [], None, None).expect("emulation runs clean");
            let (st_pipe, pstats) = try_run_pipeline_full(
                w,
                isa,
                &p,
                SizeClass::Test,
                PipelineConfig::tx2(),
                true,
                None,
                None,
                None,
            )
            .expect("pipeline run is clean");
            let label = format!("{} / {}", w.name(), isacmp::isa_label(isa));
            assert_eq!(stats.retired, pstats.retired, "{label}: retire counts");
            assert_eq!(st_emu.instret, st_pipe.instret, "{label}: instret");
            assert_eq!(st_emu.pc, st_pipe.pc, "{label}: final pc");
            assert_eq!(st_emu.x, st_pipe.x, "{label}: integer registers");
            assert_eq!(st_emu.f, st_pipe.f, "{label}: fp registers");
            let sum_emu = st_emu.mem.read_f64(compiled.checksum_addr).unwrap();
            let sum_pipe = st_pipe.mem.read_f64(compiled.checksum_addr).unwrap();
            assert_eq!(sum_emu.to_bits(), sum_pipe.to_bits(), "{label}: checksum");
        }
    }
}

#[test]
fn pipeline_and_emulation_fail_identically_under_injection() {
    // Arm the same deterministic fault on both paths: each must degrade to
    // the same typed error at the same retirement point — the pipeline
    // models inherit the injection hook, they don't approximate it.
    let p = Personality::gcc122();
    for isa in [IsaKind::AArch64, IsaKind::RiscV] {
        let fault = FaultPlan::parse("trap@1000").unwrap();
        let compiled = compile(&Workload::Stream.build(SizeClass::Test), isa, &p);
        let err_emu = match try_execute(&compiled, &mut [], None, Some(&fault)) {
            Err(e) => e,
            Ok(_) => panic!("injected trap must fail emulation"),
        };
        let injector: Option<Box<dyn FaultInjector>> = Some(Box::new(fault.clone()));
        let err_pipe = match try_run_pipeline_full(
            Workload::Stream,
            isa,
            &p,
            SizeClass::Test,
            PipelineConfig::tx2(),
            true,
            None,
            None,
            injector,
        ) {
            Err(e) => e,
            Ok(_) => panic!("injected trap must fail the pipeline run"),
        };
        assert_eq!(err_emu.kind(), "sim");
        assert_eq!(err_emu.kind(), err_pipe.kind(), "same typed failure kind");
        assert_eq!(
            err_emu.to_string(),
            err_pipe.to_string(),
            "same fault, same pc, same instret on both paths"
        );
    }
}

#[test]
fn cache_hit_rates_isa_symmetric() {
    // The paper compares ISAs, not data layouts: identical kernels touch
    // identical data, so L1D hit rates must match closely across ISAs.
    for w in Workload::ALL {
        let mut rates = Vec::new();
        for isa in [IsaKind::AArch64, IsaKind::RiscV] {
            let compiled = compile(&w.build(SizeClass::Test), isa, &Personality::gcc122());
            let mut l1d = CacheModel::new(CacheConfig::l1d_32k());
            {
                let mut obs: Vec<&mut dyn Observer> = vec![&mut l1d];
                execute(&compiled, &mut obs);
            }
            rates.push(l1d.stats().hit_rate());
        }
        assert!(
            (rates[0] - rates[1]).abs() < 0.02,
            "{}: hit rates diverge across ISAs: {rates:?}",
            w.name()
        );
    }
}
