//! The single-cycle emulation core.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::SimError;
use crate::fault::{FaultInjector, InjectAction};
use crate::observer::Observer;
use crate::phase::{self, Phase, PhaseNanos};
use crate::retire::RetiredInst;
use crate::sample::SampleSnapshot;
use crate::state::CpuState;

/// Host emulation rate in million instructions per second. The single
/// definition used by [`RunStats::host_mips`], the telemetry reports, and
/// every CLI table — keep derived speed numbers consistent by routing all
/// of them through here.
pub fn host_mips(retired: u64, wall: Duration) -> f64 {
    if wall.is_zero() {
        0.0
    } else {
        retired as f64 / wall.as_secs_f64() / 1e6
    }
}

/// Which retire loop [`EmulationCore::run`] drives.
///
/// Both engines retire the exact same architectural instruction stream —
/// the differential conformance suite (`tests/engine_differential.rs`)
/// holds them byte-identical on state hashes, traces and matrices — they
/// differ only in how much per-retirement overhead the host pays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// The original per-instruction loop: one decode-cache lookup, one
    /// boundary-check bundle and one observer dispatch per retirement.
    Legacy,
    /// The pre-decoded basic-block engine: guest code is decoded once into
    /// cached blocks of micro-ops and retired in batches, with boundary
    /// checks amortized over whole blocks. Falls back to [`Engine::Legacy`]
    /// per run when the executor does not support blocks, a fault injector
    /// is attached, or armed read faults are pending (block pre-decode
    /// performs eager fetches that would perturb the nth-read count).
    #[default]
    Block,
}

impl Engine {
    /// Stable lowercase name, matching [`Engine::from_str`].
    pub fn name(self) -> &'static str {
        match self {
            Engine::Legacy => "legacy",
            Engine::Block => "block",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "legacy" => Ok(Engine::Legacy),
            "block" => Ok(Engine::Block),
            other => Err(format!("unknown engine '{other}' (expected legacy|block)")),
        }
    }
}

/// Implemented by each ISA back-end: fetch, decode and execute exactly one
/// instruction, mutating `state` and describing what happened.
pub trait IsaExecutor {
    /// Execute the instruction at `state.pc`, advance the PC, and return the
    /// retirement record.
    fn step(&self, state: &mut CpuState) -> Result<RetiredInst, SimError>;

    /// Disassemble the 32-bit word at `pc` (for diagnostics and the paper's
    /// listing-level analysis).
    fn disassemble(&self, word: u32) -> String;

    /// Short ISA name ("rv64g", "aarch64").
    fn name(&self) -> &'static str;

    /// Drop any cached decodes. Called by the core after instruction memory
    /// is mutated behind the executor's back (fault injection); the default
    /// suits executors that do not cache. Block-building executors must
    /// drop their block cache here too, not just per-instruction decodes.
    fn flush_decode_cache(&self) {}

    /// Whether [`IsaExecutor::run_block`] is a real pre-decoded block
    /// engine. The default (`false`) routes [`Engine::Block`] runs through
    /// the legacy loop, so executors without block support stay correct.
    fn supports_blocks(&self) -> bool {
        false
    }

    /// Retire up to `fuel` instructions (block by block), stopping early if
    /// the guest exits or an instruction faults. Returns how many retired
    /// and the fault, if any; on a fault `state.pc` addresses the faulting
    /// instruction, exactly as a failed [`IsaExecutor::step`] leaves it.
    /// When `sink` is present it receives every retirement record in
    /// program order (the observer slow path); when absent the engine may
    /// skip materializing records entirely (the fast path).
    ///
    /// The default implementation steps one instruction at a time, which is
    /// semantically exact but gains nothing; block engines override it.
    fn run_block(
        &self,
        state: &mut CpuState,
        fuel: u64,
        mut sink: Option<&mut dyn FnMut(&RetiredInst)>,
    ) -> (u64, Option<SimError>) {
        let mut done = 0u64;
        while done < fuel && state.exited.is_none() {
            match self.step(state) {
                Ok(ri) => {
                    done += 1;
                    if let Some(s) = sink.as_mut() {
                        s(&ri);
                    }
                }
                Err(e) => return (done, Some(e)),
            }
        }
        (done, None)
    }
}

/// Executors borrow-share cleanly: every trait method takes `&self`, so a
/// shared reference is itself an executor. This lets one executor (and
/// its decode/block caches) back several [`EmulationCore`]s in sequence —
/// the shape cache-invalidation tests and multi-run drivers need.
impl<E: IsaExecutor + ?Sized> IsaExecutor for &E {
    fn step(&self, state: &mut CpuState) -> Result<RetiredInst, SimError> {
        (**self).step(state)
    }

    fn disassemble(&self, word: u32) -> String {
        (**self).disassemble(word)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn flush_decode_cache(&self) {
        (**self).flush_decode_cache()
    }

    fn supports_blocks(&self) -> bool {
        (**self).supports_blocks()
    }

    fn run_block(
        &self,
        state: &mut CpuState,
        fuel: u64,
        sink: Option<&mut dyn FnMut(&RetiredInst)>,
    ) -> (u64, Option<SimError>) {
        (**self).run_block(state, fuel, sink)
    }
}

/// Why [`EmulationCore::run`] returned `Ok`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The guest exited; observers received `on_finish` and the run is
    /// complete.
    Exited,
    /// A periodic checkpoint came due (see
    /// [`EmulationCore::with_checkpoint_every`]): the run paused at a
    /// clean step boundary with `state.instret` holding the resume point.
    /// Observers did *not* receive `on_finish`; call `run` again on the
    /// same state to continue.
    CheckpointDue,
}

/// Statistics from one emulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions retired so far (the paper's *path length*). Counts
    /// from the state's initial `instret`, so a resumed run reports the
    /// absolute total, not just this segment.
    pub retired: u64,
    /// Guest exit status (0 for a [`StopReason::CheckpointDue`] pause).
    pub exit_code: i64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Host wall-clock time spent inside the run loop (this segment only).
    pub wall: Duration,
    /// Retire-loop phase breakdown; all-zero unless the crate is built with
    /// the `phase-timers` feature.
    pub phases: PhaseNanos,
}

impl RunStats {
    /// Host emulation rate in million instructions per second.
    pub fn host_mips(&self) -> f64 {
        host_mips(self.retired, self.wall)
    }
}

/// The paper's measurement vehicle: SimEng's "emulation core model which
/// executes each instruction atomically to completion in a single cycle".
///
/// Runs a loaded [`CpuState`] until the guest exits, feeding every retired
/// instruction to the supplied observers in program order.
///
/// When the `ISACMP_PROGRESS` environment variable is set to a retirement
/// interval (or to `1` for the default of 50M), the core prints a heartbeat
/// line to stderr every interval: instructions retired and host MIPS. The
/// hot loop pays a single integer compare per retirement for this — the
/// sentinel is `u64::MAX` when disabled, so the branch never takes.
pub struct EmulationCore<E: IsaExecutor> {
    exec: E,
    /// Abort if this many instructions retire without the guest exiting.
    max_insts: u64,
    /// Heartbeat interval in retirements; `u64::MAX` disables it.
    progress_every: u64,
    /// Wall-clock watchdog; checked every [`Self::DEADLINE_CHECK_INTERVAL`]
    /// retirements so the hot loop pays only an AND and a branch.
    deadline: Option<Duration>,
    /// Fault-injection hook, consulted before every step when present.
    /// `RefCell` keeps [`EmulationCore::run`] callable on a shared core.
    injector: Option<RefCell<Box<dyn FaultInjector>>>,
    /// Shared snapshot for the sampling profiler, written every
    /// `sample_mask + 1` retirements when attached.
    sample: Option<Arc<SampleSnapshot>>,
    /// `stride - 1` for the sampling publish check (stride is a power of
    /// two); `u64::MAX` when sampling is disabled, so — exactly like the
    /// deadline check — the hot loop pays one AND and one never-taken
    /// branch.
    sample_mask: u64,
    /// Pause for a checkpoint every this many retirements (rounded up to a
    /// multiple of [`Self::DEADLINE_CHECK_INTERVAL`] so pauses land on
    /// trace-block boundaries); `u64::MAX` disables checkpointing. The
    /// check lives inside the already-masked deadline block, so the
    /// disabled path adds nothing to the hot loop.
    checkpoint_every: u64,
    /// Poll [`crate::shutdown::requested`] at the masked check and stop
    /// with [`SimError::Interrupted`] when set. Off by default so library
    /// users and tests are unaffected by the process-wide flag.
    heed_shutdown: bool,
    /// Which retire loop to drive (see [`Engine`]); [`Engine::Block`] by
    /// default, degrading to the legacy loop whenever its preconditions
    /// do not hold.
    engine: Engine,
}

/// Default heartbeat interval when `ISACMP_PROGRESS` is set without a count.
const DEFAULT_PROGRESS_INTERVAL: u64 = 50_000_000;

fn progress_interval_from_env() -> u64 {
    match std::env::var("ISACMP_PROGRESS") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(0) | Err(_) => u64::MAX,
            Ok(1) => DEFAULT_PROGRESS_INTERVAL,
            Ok(n) => n,
        },
        Err(_) => u64::MAX,
    }
}

impl<E: IsaExecutor> EmulationCore<E> {
    /// Default runaway-guest budget (no paper workload at our scaled sizes
    /// exceeds a few hundred million instructions).
    pub const DEFAULT_BUDGET: u64 = 5_000_000_000;

    /// How often (in retirements) the wall-clock watchdog consults the
    /// host clock. Power of two so the check is a mask.
    pub const DEADLINE_CHECK_INTERVAL: u64 = 1 << 14;

    /// Create a core around an ISA executor.
    pub fn new(exec: E) -> Self {
        EmulationCore {
            exec,
            max_insts: Self::DEFAULT_BUDGET,
            progress_every: progress_interval_from_env(),
            deadline: None,
            injector: None,
            sample: None,
            sample_mask: u64::MAX,
            checkpoint_every: u64::MAX,
            heed_shutdown: false,
            engine: Engine::default(),
        }
    }

    /// Select the retire loop (defaults to [`Engine::Block`]).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Override the instruction budget.
    pub fn with_budget(mut self, max_insts: u64) -> Self {
        self.max_insts = max_insts;
        self
    }

    /// Attach a wall-clock watchdog: the run fails with
    /// [`SimError::WallClockExceeded`] once `deadline` elapses. The clock is
    /// polled every [`Self::DEADLINE_CHECK_INTERVAL`] retirements, so
    /// enforcement granularity is a few tens of microseconds of guest time.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a fault injector (e.g. a [`crate::FaultPlan`]), consulted
    /// before every step.
    pub fn with_injector(mut self, injector: Box<dyn FaultInjector>) -> Self {
        self.injector = Some(RefCell::new(injector));
        self
    }

    /// Override the heartbeat interval (`u64::MAX` disables; normally taken
    /// from `ISACMP_PROGRESS`).
    pub fn with_progress(mut self, every: u64) -> Self {
        self.progress_every = every.max(1);
        self
    }

    /// Attach a sampling-profiler snapshot: `(pc, instret)` is published
    /// into `snapshot` every `2^log2_stride` retirements. `log2_stride` is
    /// clamped to `[6, 30]` — below 64 the publish itself would distort the
    /// measurement, above 2^30 a short run would never publish.
    pub fn with_sampling(mut self, snapshot: Arc<SampleSnapshot>, log2_stride: u32) -> Self {
        self.sample = Some(snapshot);
        self.sample_mask = (1u64 << log2_stride.clamp(6, 30)) - 1;
        self
    }

    /// Pause the run every `every` retirements so the caller can snapshot
    /// the machine state, then call `run` again to continue. The interval
    /// is rounded **up** to a multiple of
    /// [`Self::DEADLINE_CHECK_INTERVAL`]; since that interval is a
    /// multiple of the trace block size, every pause lands exactly on a
    /// flushed-trace boundary — a restored capture stays a byte prefix of
    /// an uninterrupted one. Pass `u64::MAX` to disable (the default).
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = if every == u64::MAX {
            u64::MAX
        } else {
            every
                .max(1)
                .div_ceil(Self::DEADLINE_CHECK_INTERVAL)
                .saturating_mul(Self::DEADLINE_CHECK_INTERVAL)
        };
        self
    }

    /// Poll the process-wide [`crate::shutdown`] flag at the masked check
    /// and stop with [`SimError::Interrupted`] at a clean step boundary
    /// when it is set. Off by default.
    pub fn with_shutdown(mut self) -> Self {
        self.heed_shutdown = true;
        self
    }

    /// Access the underlying executor (e.g. for disassembly).
    pub fn executor(&self) -> &E {
        &self.exec
    }

    /// Run until the guest exits, pumping retirements through `observers`.
    ///
    /// On error, `state.instret` holds the retirement count reached and
    /// `state.pc` the faulting program counter, so callers can report how
    /// far the guest got.
    pub fn run(
        &self,
        state: &mut CpuState,
        observers: &mut [&mut dyn Observer],
    ) -> Result<RunStats, SimError> {
        // The block engine runs only when its equivalence preconditions
        // hold: the executor actually pre-decodes blocks, no injector needs
        // a before-every-step hook, and no armed read fault could be
        // miscounted by the block builder's eager fetches. Everything else
        // degrades to the legacy loop, which is always exact.
        if self.engine == Engine::Block
            && self.exec.supports_blocks()
            && self.injector.is_none()
            && !state.mem.read_fault_pending()
        {
            self.run_blocks(state, observers)
        } else {
            self.run_legacy(state, observers)
        }
    }

    /// The original per-instruction retire loop; the behavioral reference
    /// every other engine is held equivalent to.
    fn run_legacy(
        &self,
        state: &mut CpuState,
        observers: &mut [&mut dyn Observer],
    ) -> Result<RunStats, SimError> {
        let start = Instant::now();
        // A restored state resumes counting where the snapshot left off;
        // fresh states start at instret 0, so nothing changes for them.
        let start_retired = state.instret;
        let mut retired: u64 = start_retired;
        let next_checkpoint = if self.checkpoint_every == u64::MAX {
            u64::MAX
        } else {
            start_retired.saturating_add(self.checkpoint_every)
        };
        let mut next_beat = self.progress_every;
        // Reset this thread's phase accumulator so a prior (possibly failed)
        // run on the same worker thread cannot leak into our breakdown.
        let _ = phase::take();
        while state.exited.is_none() {
            if retired >= self.max_insts {
                state.instret = retired;
                return Err(SimError::InstructionBudgetExceeded {
                    budget: self.max_insts,
                });
            }
            if retired & (Self::DEADLINE_CHECK_INTERVAL - 1) == 0 {
                // Everything in this block runs once per 2^14 retirements,
                // so the checkpoint/shutdown polls are off the hot path;
                // with all three features disabled the loop pays exactly
                // the same single masked branch it always has.
                if retired >= next_checkpoint {
                    state.instret = retired;
                    return Ok(RunStats {
                        retired,
                        exit_code: 0,
                        stop: StopReason::CheckpointDue,
                        wall: start.elapsed(),
                        phases: phase::take(),
                    });
                }
                if self.heed_shutdown && crate::shutdown::requested() {
                    state.instret = retired;
                    return Err(SimError::Interrupted { retired });
                }
                if let Some(deadline) = self.deadline {
                    if start.elapsed() >= deadline {
                        state.instret = retired;
                        return Err(SimError::WallClockExceeded {
                            limit_ms: deadline.as_millis() as u64,
                            retired,
                        });
                    }
                }
            }
            if retired & self.sample_mask == 0 {
                if let Some(snap) = &self.sample {
                    snap.publish(state.pc, retired);
                }
            }
            if let Some(inj) = &self.injector {
                match inj.borrow_mut().before_step(state, retired) {
                    Ok(InjectAction::Continue) => {}
                    Ok(InjectAction::FlushDecodeCache) => self.exec.flush_decode_cache(),
                    Err(e) => {
                        state.instret = retired;
                        return Err(e);
                    }
                }
            }
            let ri = match self.exec.step(state) {
                Ok(ri) => ri,
                Err(e) => {
                    state.instret = retired;
                    return Err(e);
                }
            };
            retired += 1;
            if !observers.is_empty() {
                let _t = phase::scoped(Phase::Observe);
                for obs in observers.iter_mut() {
                    obs.on_retire(&ri);
                }
            }
            if retired == next_beat {
                let mips = host_mips(retired, start.elapsed());
                eprintln!(
                    "[{}] {retired} retired, {mips:.1} MIPS, pc={:#x}",
                    self.exec.name(),
                    state.pc
                );
                next_beat = next_beat.saturating_add(self.progress_every);
            }
        }
        state.instret = retired;
        for obs in observers.iter_mut() {
            obs.on_finish();
        }
        Ok(RunStats {
            retired,
            exit_code: state.exited.unwrap_or(0),
            stop: StopReason::Exited,
            wall: start.elapsed(),
            phases: phase::take(),
        })
    }

    /// The pre-decoded basic-block retire loop.
    ///
    /// Equivalence with [`Self::run_legacy`] hinges on one invariant: no
    /// loop-level event may fire at a different retirement count. The loop
    /// therefore computes, each iteration, the earliest retirement count at
    /// which *any* event is due — budget, masked boundary (checkpoint /
    /// shutdown / deadline), sampling boundary, heartbeat — and hands the
    /// executor exactly that much fuel. Blocks never straddle an event
    /// boundary, so every checkpoint pause, sample publish, watchdog trip
    /// and heartbeat lands at the same `instret` (and the same `state.pc`)
    /// the legacy loop produces.
    fn run_blocks(
        &self,
        state: &mut CpuState,
        observers: &mut [&mut dyn Observer],
    ) -> Result<RunStats, SimError> {
        let start = Instant::now();
        let start_retired = state.instret;
        let mut retired: u64 = start_retired;
        let next_checkpoint = if self.checkpoint_every == u64::MAX {
            u64::MAX
        } else {
            start_retired.saturating_add(self.checkpoint_every)
        };
        // The legacy heartbeat check is an equality against a counter that
        // starts at `progress_every`, so a resumed run that is already past
        // the first beat never beats again — mirror that exactly.
        let mut next_beat =
            if self.progress_every > start_retired { self.progress_every } else { u64::MAX };
        // The masked 2^14 boundary only matters when one of its three
        // tenants is live; otherwise blocks run straight through it, just
        // as the legacy loop's branch never does anything there.
        let masked_live =
            next_checkpoint != u64::MAX || self.heed_shutdown || self.deadline.is_some();
        // Observer fast path: when no attached observer wants per-
        // instruction records, the executor skips materializing them and
        // observers get one `on_batch` per block instead.
        let wants_retires = observers.iter().any(|o| o.wants_retires());
        let _ = phase::take();
        while state.exited.is_none() {
            if retired >= self.max_insts {
                state.instret = retired;
                return Err(SimError::InstructionBudgetExceeded {
                    budget: self.max_insts,
                });
            }
            if retired & (Self::DEADLINE_CHECK_INTERVAL - 1) == 0 {
                if retired >= next_checkpoint {
                    state.instret = retired;
                    return Ok(RunStats {
                        retired,
                        exit_code: 0,
                        stop: StopReason::CheckpointDue,
                        wall: start.elapsed(),
                        phases: phase::take(),
                    });
                }
                if self.heed_shutdown && crate::shutdown::requested() {
                    state.instret = retired;
                    return Err(SimError::Interrupted { retired });
                }
                if let Some(deadline) = self.deadline {
                    if start.elapsed() >= deadline {
                        state.instret = retired;
                        return Err(SimError::WallClockExceeded {
                            limit_ms: deadline.as_millis() as u64,
                            retired,
                        });
                    }
                }
            }
            if retired & self.sample_mask == 0 {
                if let Some(snap) = &self.sample {
                    snap.publish(state.pc, retired);
                }
            }
            // Earliest retirement count at which an event is due again.
            // Every candidate is strictly greater than `retired` (the
            // budget was just checked; the boundary expressions round up),
            // so the executor always gets at least one instruction of fuel.
            let mut stop = self.max_insts;
            if masked_live {
                stop = stop.min((retired | (Self::DEADLINE_CHECK_INTERVAL - 1)) + 1);
            }
            if self.sample_mask != u64::MAX {
                stop = stop.min((retired | self.sample_mask) + 1);
            }
            stop = stop.min(next_beat);
            let fuel = stop - retired;
            let (done, err) = if wants_retires {
                let mut sink = |ri: &RetiredInst| {
                    let _t = phase::scoped(Phase::Observe);
                    for obs in observers.iter_mut() {
                        obs.on_retire(ri);
                    }
                };
                self.exec.run_block(state, fuel, Some(&mut sink))
            } else {
                self.exec.run_block(state, fuel, None)
            };
            retired += done;
            if !wants_retires && done > 0 && !observers.is_empty() {
                let _t = phase::scoped(Phase::Observe);
                for obs in observers.iter_mut() {
                    obs.on_batch(done);
                }
            }
            if let Some(e) = err {
                state.instret = retired;
                return Err(e);
            }
            if done == 0 && state.exited.is_none() {
                // Forward-progress guard against a miscounting executor:
                // one legacy step either retires or surfaces the fault.
                match self.exec.step(state) {
                    Ok(ri) => {
                        retired += 1;
                        if !observers.is_empty() {
                            let _t = phase::scoped(Phase::Observe);
                            for obs in observers.iter_mut() {
                                if wants_retires {
                                    obs.on_retire(&ri);
                                } else {
                                    obs.on_batch(1);
                                }
                            }
                        }
                    }
                    Err(e) => {
                        state.instret = retired;
                        return Err(e);
                    }
                }
            }
            if retired == next_beat {
                let mips = host_mips(retired, start.elapsed());
                eprintln!(
                    "[{}] {retired} retired, {mips:.1} MIPS, pc={:#x}",
                    self.exec.name(),
                    state.pc
                );
                next_beat = next_beat.saturating_add(self.progress_every);
            }
        }
        state.instret = retired;
        for obs in observers.iter_mut() {
            obs.on_finish();
        }
        Ok(RunStats {
            retired,
            exit_code: state.exited.unwrap_or(0),
            stop: StopReason::Exited,
            wall: start.elapsed(),
            phases: phase::take(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::observer::CountingObserver;
    use crate::retire::InstGroup;
    use std::cell::Cell;

    /// Minimal executor: reads the word at pc (a real memory fetch, so read
    /// faults and fetch corruption are visible); word 0 = nop, anything
    /// else = exit with that word as the code.
    struct SpinExec {
        flushes: Cell<u32>,
    }

    impl SpinExec {
        fn new() -> Self {
            SpinExec { flushes: Cell::new(0) }
        }
    }

    impl IsaExecutor for SpinExec {
        fn step(&self, state: &mut CpuState) -> Result<RetiredInst, SimError> {
            let word = state.mem.read_u32(state.pc)?;
            if word != 0 {
                state.exited = Some(word as i64);
            }
            state.pc = state.pc.wrapping_add(4);
            Ok(RetiredInst::new(state.pc - 4, InstGroup::IntAlu))
        }

        fn disassemble(&self, _word: u32) -> String {
            "nop".into()
        }

        fn name(&self) -> &'static str {
            "spin"
        }

        fn flush_decode_cache(&self) {
            self.flushes.set(self.flushes.get() + 1);
        }
    }

    /// A looping guest: one mapped page of nops, pc wrapped back each 1024
    /// instructions by the test via a tiny budget instead.
    fn spinning_state() -> CpuState {
        let mut st = CpuState::new();
        st.pc = 0x1000;
        // Map several pages of nops so the spin runs for a while.
        for page in 0..64u64 {
            st.mem.write_u64(0x1000 + page * 4096, 0).unwrap();
        }
        st
    }

    #[test]
    fn wall_clock_watchdog_fires() {
        let mut st = spinning_state();
        let core = EmulationCore::new(SpinExec::new()).with_deadline(Duration::ZERO);
        let err = core.run(&mut st, &mut []).unwrap_err();
        assert!(
            matches!(err, SimError::WallClockExceeded { .. }),
            "expected WallClockExceeded, got {err}"
        );
        assert!(err.is_watchdog());
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let mut st = CpuState::new();
        st.pc = 0x1000;
        st.mem.write_u32(0x1000, 7).unwrap(); // immediate exit(7)
        let core =
            EmulationCore::new(SpinExec::new()).with_deadline(Duration::from_secs(3600));
        let stats = core.run(&mut st, &mut []).unwrap();
        assert_eq!(stats.exit_code, 7);
    }

    #[test]
    fn injected_trap_stops_run_at_target_instret() {
        let mut st = spinning_state();
        let plan = FaultPlan::parse("trap@5").unwrap();
        let core = EmulationCore::new(SpinExec::new()).with_injector(Box::new(plan));
        let err = core.run(&mut st, &mut []).unwrap_err();
        assert!(matches!(err, SimError::Fault { .. }), "{err}");
        assert_eq!(st.instret, 5, "trap must fire before the 6th instruction");
    }

    #[test]
    fn injected_fetch_corruption_flushes_and_alters_execution() {
        let mut st = spinning_state();
        // Corrupt the word fetched at retirement 3: nop (0) becomes
        // non-zero, which SpinExec treats as exit.
        let plan = FaultPlan::parse("fetch@3:0x2a").unwrap();
        let exec = SpinExec::new();
        let core = EmulationCore::new(exec).with_injector(Box::new(plan));
        let stats = core.run(&mut st, &mut []).unwrap();
        assert_eq!(stats.exit_code, 0x2a, "corrupted word drives the exit");
        assert_eq!(stats.retired, 4);
        assert_eq!(core.executor().flushes.get(), 1, "decode cache flushed once");
    }

    #[test]
    fn sampling_publishes_on_the_configured_stride() {
        let mut st = spinning_state();
        let snap = std::sync::Arc::new(crate::sample::SampleSnapshot::new());
        // Budget of 4096 retirements at stride 2^6 = 64 publishes (one per
        // stride boundary, starting at retirement 0).
        let core = EmulationCore::new(SpinExec::new())
            .with_budget(4096)
            .with_sampling(std::sync::Arc::clone(&snap), 6);
        let err = core.run(&mut st, &mut []).unwrap_err();
        assert!(matches!(err, SimError::InstructionBudgetExceeded { .. }));
        assert_eq!(snap.publishes(), 4096 / 64);
        let last = snap.read().expect("samples were published");
        assert_eq!(last.instret % 64, 0);
        assert!(last.pc >= 0x1000, "published pc must be a guest pc: {:#x}", last.pc);
    }

    #[test]
    fn no_sampling_means_zero_publishes() {
        let mut st = spinning_state();
        let snap = crate::sample::SampleSnapshot::new();
        let core = EmulationCore::new(SpinExec::new()).with_budget(4096);
        let _ = core.run(&mut st, &mut []);
        // The disabled path never touches a snapshot: the hot loop's mask is
        // the u64::MAX sentinel and no snapshot is attached.
        assert_eq!(snap.publishes(), 0);
        assert_eq!(snap.read(), None);
    }

    #[test]
    fn phase_breakdown_is_zero_without_the_feature() {
        let mut st = CpuState::new();
        st.pc = 0x1000;
        st.mem.write_u32(0x1000, 7).unwrap();
        let core = EmulationCore::new(SpinExec::new());
        let mut count = crate::observer::CountingObserver::default();
        let mut obs: [&mut dyn Observer; 1] = [&mut count];
        let stats = core.run(&mut st, &mut obs).unwrap();
        if crate::phase::enabled() {
            // With timers on, observer dispatch was inside an Observe scope.
            assert!(stats.phases.observe_ns > 0 || stats.retired == 0);
        } else {
            assert_eq!(stats.phases, crate::phase::PhaseNanos::default());
        }
    }

    #[test]
    fn checkpoint_pauses_land_on_masked_boundaries_and_resume_seamlessly() {
        let interval = EmulationCore::<SpinExec>::DEADLINE_CHECK_INTERVAL;
        let budget = interval * 3 + 100;
        let mut st = spinning_state();
        // Request a tiny interval: it must round UP to the masked interval.
        let core = EmulationCore::new(SpinExec::new())
            .with_budget(budget)
            .with_checkpoint_every(1);
        let mut pauses = 0;
        loop {
            match core.run(&mut st, &mut []) {
                Ok(stats) => {
                    assert_eq!(stats.stop, StopReason::CheckpointDue);
                    assert_eq!(
                        stats.retired % interval,
                        0,
                        "pause at {} is not a masked boundary",
                        stats.retired
                    );
                    assert_eq!(st.instret, stats.retired, "resume point recorded");
                    pauses += 1;
                }
                Err(SimError::InstructionBudgetExceeded { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert_eq!(pauses, 3, "one pause per interval before the budget trips");
        assert_eq!(st.instret, budget, "error path still records absolute instret");
    }

    #[test]
    fn disabled_checkpointing_never_pauses() {
        // The overhead assertion, in the same style as
        // no_sampling_means_zero_publishes: with checkpointing disabled the
        // run reaches its budget in one Ok-free pass — zero CheckpointDue
        // stops — because the sentinel comparison can never be true.
        let mut st = spinning_state();
        let core = EmulationCore::new(SpinExec::new())
            .with_budget(EmulationCore::<SpinExec>::DEADLINE_CHECK_INTERVAL * 2);
        let err = core.run(&mut st, &mut []).unwrap_err();
        assert!(matches!(err, SimError::InstructionBudgetExceeded { .. }));
    }

    #[test]
    fn resumed_run_counts_retirements_absolutely() {
        // A state claiming N prior retirements budgets and reports from N.
        let mut st = CpuState::new();
        st.pc = 0x1000;
        st.mem.write_u32(0x1000, 0).unwrap();
        st.mem.write_u32(0x1004, 9).unwrap(); // nop, then exit(9)
        st.instret = 1_000;
        let stats = EmulationCore::new(SpinExec::new()).run(&mut st, &mut []).unwrap();
        assert_eq!(stats.retired, 1_002);
        assert_eq!(stats.stop, StopReason::Exited);
        assert_eq!(st.instret, 1_002);
    }

    #[test]
    fn shutdown_flag_interrupts_at_a_clean_boundary_only_when_heeded() {
        let _guard =
            crate::shutdown::TEST_FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let interval = EmulationCore::<SpinExec>::DEADLINE_CHECK_INTERVAL;
        crate::shutdown::request();
        // Not heeded: the flag is ignored and the budget trips instead.
        let mut st = spinning_state();
        let core = EmulationCore::new(SpinExec::new()).with_budget(interval);
        assert!(matches!(
            core.run(&mut st, &mut []).unwrap_err(),
            SimError::InstructionBudgetExceeded { .. }
        ));
        // Heeded: the very first masked check (retired = 0) observes it.
        let mut st = spinning_state();
        let core = EmulationCore::new(SpinExec::new()).with_budget(interval).with_shutdown();
        let err = core.run(&mut st, &mut []).unwrap_err();
        assert_eq!(err, SimError::Interrupted { retired: 0 });
        assert_eq!(st.instret, 0);
        crate::shutdown::reset();
        // Flag cleared: the same core runs to its budget.
        let mut st = spinning_state();
        assert!(matches!(
            core.run(&mut st, &mut []).unwrap_err(),
            SimError::InstructionBudgetExceeded { .. }
        ));
    }

    #[test]
    fn injected_read_flip_reaches_the_guest() {
        let mut st = spinning_state();
        // Flip a low bit of the very first fetch: nop becomes exit(1<<b).
        let plan = FaultPlan::parse("read@1:0").unwrap();
        let core = EmulationCore::new(SpinExec::new()).with_injector(Box::new(plan));
        let stats = core.run(&mut st, &mut []).unwrap();
        assert_eq!(stats.exit_code, 1);
    }

    /// SpinExec with genuine block support: retires up to 16 instructions
    /// per `run_block` call (a fixed pretend block length), so fuel
    /// splitting, mid-block exits, and batch callbacks all get exercised
    /// without an ISA decoder.
    struct BlockSpinExec {
        inner: SpinExec,
        block_calls: Cell<u32>,
    }

    impl BlockSpinExec {
        fn new() -> Self {
            BlockSpinExec { inner: SpinExec::new(), block_calls: Cell::new(0) }
        }
    }

    impl IsaExecutor for BlockSpinExec {
        fn step(&self, state: &mut CpuState) -> Result<RetiredInst, SimError> {
            self.inner.step(state)
        }

        fn disassemble(&self, word: u32) -> String {
            self.inner.disassemble(word)
        }

        fn name(&self) -> &'static str {
            "block-spin"
        }

        fn supports_blocks(&self) -> bool {
            true
        }

        fn run_block(
            &self,
            state: &mut CpuState,
            fuel: u64,
            mut sink: Option<&mut dyn FnMut(&RetiredInst)>,
        ) -> (u64, Option<SimError>) {
            self.block_calls.set(self.block_calls.get() + 1);
            let take = fuel.min(16);
            let mut done = 0;
            while done < take && state.exited.is_none() {
                match self.step(state) {
                    Ok(ri) => {
                        done += 1;
                        if let Some(s) = sink.as_mut() {
                            s(&ri);
                        }
                    }
                    Err(e) => return (done, Some(e)),
                }
            }
            (done, None)
        }
    }

    /// A full-stream observer: `wants_retires` stays true, so the block
    /// engine must take its slow path and deliver every record.
    #[derive(Default)]
    struct EveryRecord {
        records: u64,
        last_pc: u64,
    }

    impl Observer for EveryRecord {
        fn on_retire(&mut self, ri: &RetiredInst) {
            self.records += 1;
            self.last_pc = ri.pc;
        }
    }

    #[test]
    fn block_engine_pauses_checkpoints_at_the_legacy_boundary() {
        let run = |engine: Engine| {
            let mut st = spinning_state();
            let exec = BlockSpinExec::new();
            let stats = EmulationCore::new(&exec)
                .with_engine(engine)
                .with_checkpoint_every(16384)
                .run(&mut st, &mut [])
                .expect("pause, not error");
            (stats.stop, stats.retired, st.instret, st.pc, exec.block_calls.get())
        };
        let (l_stop, l_ret, l_instret, l_pc, _) = run(Engine::Legacy);
        let (b_stop, b_ret, b_instret, b_pc, calls) = run(Engine::Block);
        assert_eq!(l_stop, StopReason::CheckpointDue);
        assert_eq!((l_stop, l_ret, l_instret, l_pc), (b_stop, b_ret, b_instret, b_pc));
        // 16384 = DEADLINE_CHECK_INTERVAL: pauses land on masked boundaries.
        assert_eq!(b_ret, 16384, "pause lands exactly on the masked boundary");
        assert!(calls > 0, "the block path must actually have run blocks");
    }

    #[test]
    fn block_engine_trips_the_budget_at_the_exact_count() {
        for engine in [Engine::Legacy, Engine::Block] {
            let mut st = spinning_state();
            let err = EmulationCore::new(BlockSpinExec::new())
                .with_engine(engine)
                .with_budget(1000)
                .run(&mut st, &mut [])
                .unwrap_err();
            assert!(
                matches!(err, SimError::InstructionBudgetExceeded { budget: 1000 }),
                "{engine}: {err}"
            );
            assert_eq!(st.instret, 1000, "{engine}: instret at the budget stop");
        }
    }

    #[test]
    fn block_engine_publishes_samples_on_the_legacy_stride() {
        let run = |engine: Engine| {
            let mut st = spinning_state();
            st.mem.write_u32(0x1000 + 200 * 4, 3).unwrap(); // exit at retirement 201
            let snap = std::sync::Arc::new(crate::sample::SampleSnapshot::new());
            EmulationCore::new(BlockSpinExec::new())
                .with_engine(engine)
                .with_sampling(std::sync::Arc::clone(&snap), 6)
                .run(&mut st, &mut [])
                .expect("run exits");
            (snap.read(), snap.publishes())
        };
        let legacy = run(Engine::Legacy);
        let block = run(Engine::Block);
        assert_eq!(legacy, block, "published samples and publish counts must match");
        assert!(legacy.1 > 0, "the stride must have published at least once");
    }

    #[test]
    fn block_engine_heartbeat_path_matches_legacy_results() {
        for engine in [Engine::Legacy, Engine::Block] {
            let mut st = spinning_state();
            st.mem.write_u32(0x1000 + 500 * 4, 9).unwrap();
            let stats = EmulationCore::new(BlockSpinExec::new())
                .with_engine(engine)
                .with_progress(64)
                .run(&mut st, &mut [])
                .expect("run exits");
            assert_eq!(stats.retired, 501, "{engine}");
            assert_eq!(stats.exit_code, 9, "{engine}");
        }
    }

    #[test]
    fn block_fast_path_batches_and_slow_path_delivers_every_record() {
        // Batch-only observer: fast path, one on_batch per block batch.
        let mut st = spinning_state();
        st.mem.write_u32(0x1000 + 100 * 4, 1).unwrap();
        let mut count = CountingObserver::default();
        let exec = BlockSpinExec::new();
        EmulationCore::new(&exec)
            .with_engine(Engine::Block)
            .run(&mut st, &mut [&mut count])
            .expect("run exits");
        assert_eq!(count.retired, 101, "batched counts must equal retirements");
        assert!(
            exec.block_calls.get() > 1,
            "a 101-instruction run must span several 16-instruction blocks"
        );

        // Record-hungry observer: slow path, every record delivered.
        let mut st = spinning_state();
        st.mem.write_u32(0x1000 + 100 * 4, 1).unwrap();
        let mut every = EveryRecord::default();
        EmulationCore::new(BlockSpinExec::new())
            .with_engine(Engine::Block)
            .run(&mut st, &mut [&mut every])
            .expect("run exits");
        assert_eq!(every.records, 101);
        assert_eq!(every.last_pc, 0x1000 + 100 * 4, "last record is the exiting instruction");
    }
}
