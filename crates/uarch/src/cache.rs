//! Set-associative cache model.
//!
//! The paper's analyses assume single-cycle loads ("perfect" memory); this
//! observer quantifies what that assumption hides by replaying the
//! retirement stream's memory accesses through an L1-data-cache model and
//! reporting hit rates and an average-memory-access-time estimate. Because
//! both ISAs traverse essentially the same data structures, near-identical
//! hit rates across ISAs are themselves a finding: the ISA comparison is
//! not perturbed by cache behaviour.

use simcore::{Observer, RetiredInst};

/// Cache geometry.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Associativity (ways).
    pub ways: usize,
}

impl CacheConfig {
    /// A 32 KiB, 8-way, 64-byte-line L1D (Cortex-A55 / TX2 class).
    pub fn l1d_32k() -> Self {
        CacheConfig { size: 32 * 1024, line: 64, ways: 8 }
    }
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (loads + stores).
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / self.accesses.max(1) as f64
    }

    /// Average memory access time for the given hit/miss latencies.
    pub fn amat(&self, hit_cycles: f64, miss_cycles: f64) -> f64 {
        let hr = self.hit_rate();
        hr * hit_cycles + (1.0 - hr) * miss_cycles
    }
}

/// LRU set-associative cache fed by the retirement stream (writes
/// allocate, as in the write-allocate L1s of the cores the paper models).
pub struct CacheModel {
    /// Tag store: `sets x ways` entries, `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    sets: usize,
    ways: usize,
    line_shift: u32,
    clock: u64,
    stats: CacheStats,
}

impl CacheModel {
    /// Build a cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line.is_power_of_two());
        let sets = config.size / (config.line * config.ways);
        assert!(sets.is_power_of_two() && sets > 0, "sets must be a power of two");
        CacheModel {
            tags: vec![u64::MAX; sets * config.ways],
            stamps: vec![0; sets * config.ways],
            sets,
            ways: config.ways,
            line_shift: config.line.trailing_zeros(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Probe one address: updates LRU state and statistics, returns
    /// whether it hit. Used directly by the pipeline models to derive
    /// per-access load latencies.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        // Hit?
        for w in 0..self.ways {
            if self.tags[base + w] == line {
                self.stamps[base + w] = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }
        // Miss: evict LRU.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Probe an access of `size` bytes at `addr` (straddles touch both
    /// lines); returns whether *all* touched lines hit.
    #[inline]
    pub fn access_sized(&mut self, addr: u64, size: u8) -> bool {
        let mut hit = self.access(addr);
        let last = addr + size.max(1) as u64 - 1;
        if last >> self.line_shift != addr >> self.line_shift {
            hit &= self.access(last);
        }
        hit
    }
}

impl Observer for CacheModel {
    #[inline]
    fn on_retire(&mut self, ri: &RetiredInst) {
        for a in ri.mem_reads.iter() {
            self.access_sized(a.addr, a.size);
        }
        for a in ri.mem_writes.iter() {
            self.access_sized(a.addr, a.size);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::InstGroup;

    fn load(addr: u64) -> RetiredInst {
        let mut ri = RetiredInst::new(0, InstGroup::Load);
        ri.mem_reads.push(addr, 8);
        ri
    }

    #[test]
    fn sequential_stream_hits_within_lines() {
        // 8 consecutive doubles share a 64-byte line: 1 miss + 7 hits.
        let mut c = CacheModel::new(CacheConfig::l1d_32k());
        for i in 0..8 {
            c.on_retire(&load(0x1000 + i * 8));
        }
        let s = c.stats();
        assert_eq!(s.accesses, 8);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheModel::new(CacheConfig::l1d_32k());
        c.on_retire(&load(0x40));
        c.on_retire(&load(0x40));
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn capacity_misses_on_oversized_working_set() {
        // Stride through 4x the cache size twice: second pass still misses.
        let cfg = CacheConfig { size: 4096, line: 64, ways: 2 };
        let mut c = CacheModel::new(cfg);
        for pass in 0..2 {
            for i in 0..(4 * 4096 / 64) {
                c.on_retire(&load(i as u64 * 64));
            }
            if pass == 0 {
                assert_eq!(c.stats().hits, 0, "cold pass misses everywhere");
            }
        }
        assert_eq!(c.stats().hits, 0, "working set 4x capacity: LRU never hits");
    }

    #[test]
    fn lru_keeps_hot_line() {
        // 2-way set: hot line A touched between fills of B and C survives.
        let cfg = CacheConfig { size: 8192, line: 64, ways: 2 };
        let sets = 8192 / (64 * 2); // 64 sets
        let stride = (sets * 64) as u64; // same-set stride
        let mut c = CacheModel::new(cfg);
        let a = 0x0;
        let b = stride;
        let cc = 2 * stride;
        c.on_retire(&load(a)); // miss
        c.on_retire(&load(b)); // miss
        c.on_retire(&load(a)); // hit, refresh A
        c.on_retire(&load(cc)); // miss, evicts B
        c.on_retire(&load(a)); // hit: A survived
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut c = CacheModel::new(CacheConfig::l1d_32k());
        let mut ri = RetiredInst::new(0, InstGroup::Load);
        ri.mem_reads.push(0x103C, 8); // crosses the 0x1040 line boundary
        c.on_retire(&ri);
        assert_eq!(c.stats().accesses, 2);
    }

    #[test]
    fn amat_formula() {
        let s = CacheStats { accesses: 100, hits: 90 };
        assert!((s.amat(4.0, 100.0) - (0.9 * 4.0 + 0.1 * 100.0)).abs() < 1e-12);
    }
}
