//! A small blocking client for `isacmpd`.
//!
//! Used by the `load_driver` load generator and the server end-to-end
//! tests; also the reference for anyone scripting against the daemon.
//! One connection, synchronous request/response, progress frames
//! surfaced through a callback.

use std::io;
use std::net::TcpStream;
use std::time::Duration;

use crate::proto::{self, ClientMsg, FrameReader, JobSpec, ProtoError, ReadOutcome, ServerMsg, StatsBody};

/// How a submitted job resolved.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The daemon served a complete matrix.
    Done {
        hits: u64,
        misses: u64,
        failures: u64,
        /// The full `ResultMatrix` JSON, byte-identical to what a
        /// one-shot `make_tables` run writes to `results/matrix.json`.
        matrix_json: String,
    },
    /// Admission control rejected the job; retry after a backoff.
    Busy { active: u64, limit: u64 },
    /// The daemon is draining; the job's journal is preserved server-side
    /// and resubmitting the same spec after a restart resumes it.
    Shutdown { signal: String },
}

/// A blocking connection to an `isacmpd` daemon.
///
/// The frame reader is part of the connection, not of any one read: a
/// server that bursts several frames into one socket read leaves the
/// extras buffered here for the next call instead of losing them.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
}

impl Client {
    /// Connect to `addr` (`host:port`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream, reader: FrameReader::new() })
    }

    /// Connect with a bound on how long to wait for the daemon to accept.
    pub fn connect_timeout(addr: &std::net::SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream, reader: FrameReader::new() })
    }

    /// Read the next server message (blocking).
    fn read_msg(&mut self) -> Result<ServerMsg, ProtoError> {
        loop {
            match self.reader.poll(&mut self.stream)? {
                ReadOutcome::Frame(j) => return ServerMsg::from_json(&j),
                ReadOutcome::Idle => continue,
                ReadOutcome::Closed => return Err(ProtoError::Truncated { have: 0 }),
            }
        }
    }

    /// Read the next server frame — for callers expecting an unsolicited
    /// frame, like the typed goodbye of a draining daemon.
    pub fn read_next(&mut self) -> Result<ServerMsg, ProtoError> {
        self.read_msg()
    }

    fn request(&mut self, msg: &ClientMsg) -> Result<ServerMsg, ProtoError> {
        proto::write_frame(&mut self.stream, &msg.to_json())?;
        self.read_msg()
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ProtoError> {
        match self.request(&ClientMsg::Ping)? {
            ServerMsg::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Daemon-side serving counters (jobs, cache, pool).
    pub fn stats(&mut self) -> Result<StatsBody, ProtoError> {
        match self.request(&ClientMsg::Stats)? {
            ServerMsg::Stats(body) => Ok(body),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Submit a job and block until it resolves. Progress frames invoke
    /// `on_progress(done, total, cell, cached)` as cells land.
    pub fn submit(
        &mut self,
        spec: &JobSpec,
        mut on_progress: impl FnMut(u64, u64, &str, bool),
    ) -> Result<JobOutcome, ProtoError> {
        proto::write_frame(&mut self.stream, &ClientMsg::Submit { job: spec.clone() }.to_json())?;
        loop {
            match self.read_msg()? {
                ServerMsg::Progress { done, total, cell, cached } => {
                    on_progress(done, total, &cell, cached)
                }
                ServerMsg::Result { hits, misses, failures, matrix_json } => {
                    return Ok(JobOutcome::Done { hits, misses, failures, matrix_json })
                }
                ServerMsg::Busy { active, limit } => return Ok(JobOutcome::Busy { active, limit }),
                ServerMsg::Shutdown { signal } => return Ok(JobOutcome::Shutdown { signal }),
                ServerMsg::Error { message } => {
                    return Err(ProtoError::BadFrame(format!("server rejected job: {message}")))
                }
                other => return Err(unexpected("progress/result", &other)),
            }
        }
    }
}

fn unexpected(wanted: &str, got: &ServerMsg) -> ProtoError {
    ProtoError::BadFrame(format!("expected {wanted} frame, got {:?}", frame_kind(got)))
}

fn frame_kind(msg: &ServerMsg) -> &'static str {
    match msg {
        ServerMsg::Progress { .. } => "progress",
        ServerMsg::Result { .. } => "result",
        ServerMsg::Busy { .. } => "busy",
        ServerMsg::Error { .. } => "error",
        ServerMsg::Shutdown { .. } => "shutdown",
        ServerMsg::Pong => "pong",
        ServerMsg::Stats(_) => "stats",
    }
}
