fn main() {
    std::fs::write("configs/tx2.json", uarch::Tx2Latency::table().to_json().pretty()).unwrap();
    std::fs::write("configs/a64fx.json", uarch::A64fxLatency::table().to_json().pretty()).unwrap();
    println!("written");
}
