#![warn(missing_docs)]
//! The paper's five HPC mini-app workloads, expressed in the `kernelgen`
//! loop-kernel IR.
//!
//! | Paper workload | Module | Notes on the reproduction |
//! |---|---|---|
//! | STREAM (McCalpin) | [`stream`] | copy/scale/add/triad kernels, verbatim structure |
//! | CloverLeaf serial | [`clover`] | ideal-gas EOS, flux, PdV and upwind advection kernels on a haloed 2-D grid |
//! | miniBUDE | [`bude`] | poses x atom-pairs docking energy kernel with precomputed pose transforms |
//! | LBM d2q9-bgk | [`lbm`] | accelerate/propagate/collide-rebound on a halo-padded (non-periodic) grid |
//! | Minisweep | [`sweep`] | KBA wavefront sweep over (angle, z, y, x) with upwind dependencies |
//!
//! Each builder returns a [`kernelgen::KernelProgram`] whose kernels carry
//! the region names used in the paper's Figure 1 breakdown. Three size
//! classes are provided: [`SizeClass::Test`] (unit tests, < 1 ms),
//! [`SizeClass::Small`] (default for analyses/benches, seconds) and
//! [`SizeClass::Paper`] (the paper's parameters — hours on the emulation
//! core, provided for completeness).
//!
//! Substitutions from the paper's setup (see DESIGN.md section 2): arrays are
//! initialised by the loader rather than by guest startup code, LBM uses
//! bounce-back walls instead of periodic wrap (the IR is affine), and
//! miniBUDE's per-pose trigonometric transforms are precomputed on the host
//! — the same role the input deck plays in the real mini-app.

pub mod bude;
pub mod clover;
pub mod lbm;
pub mod stream;
pub mod sweep;

use kernelgen::KernelProgram;

/// Problem-size class for a workload build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// Tiny: unit tests and doc examples.
    Test,
    /// Default: large enough for meaningful path-length/CP statistics while
    /// the whole experiment matrix runs in seconds.
    Small,
    /// The paper's parameters (STREAM N=10M etc.). Slow on the emulation
    /// core; provided for full-fidelity runs.
    Paper,
}

impl SizeClass {
    /// Short lower-case label, used in trace filenames and provenance
    /// headers.
    pub fn name(&self) -> &'static str {
        match self {
            SizeClass::Test => "test",
            SizeClass::Small => "small",
            SizeClass::Paper => "paper",
        }
    }
}

/// The five benchmarks of the paper's section 2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// STREAM memory-bandwidth kernels.
    Stream,
    /// CloverLeaf serial (compressible Euler, 2-D Cartesian grid).
    CloverLeaf,
    /// miniBUDE molecular-docking energy evaluation.
    MiniBude,
    /// Lattice Boltzmann d2q9-bgk.
    Lbm,
    /// Minisweep radiation-transport wavefront sweep.
    Minisweep,
}

impl Workload {
    /// All workloads, in the paper's presentation order.
    pub const ALL: [Workload; 5] = [
        Workload::Stream,
        Workload::CloverLeaf,
        Workload::MiniBude,
        Workload::Lbm,
        Workload::Minisweep,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Stream => "STREAM",
            Workload::CloverLeaf => "CloverLeaf",
            Workload::MiniBude => "miniBUDE",
            Workload::Lbm => "LBM",
            Workload::Minisweep => "minisweep",
        }
    }

    /// Build the IR program for this workload at the given size.
    pub fn build(&self, size: SizeClass) -> KernelProgram {
        match self {
            Workload::Stream => stream::build(size),
            Workload::CloverLeaf => clover::build(size),
            Workload::MiniBude => bude::build(size),
            Workload::Lbm => lbm::build(size),
            Workload::Minisweep => sweep::build(size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_validate_at_test_size() {
        for w in Workload::ALL {
            let p = w.build(SizeClass::Test);
            p.validate();
            assert!(!p.kernels.is_empty(), "{} has kernels", w.name());
            assert!(!p.checksum_arrays.is_empty(), "{} has checksum arrays", w.name());
        }
    }

    #[test]
    fn small_size_validates() {
        for w in Workload::ALL {
            w.build(SizeClass::Small).validate();
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Workload::Stream.name(), "STREAM");
        assert_eq!(Workload::MiniBude.name(), "miniBUDE");
    }
}
