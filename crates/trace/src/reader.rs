//! Memory-bounded trace replay.

use std::io::{self, Read};
use std::path::Path;

use simcore::{MemList, Observer, RegSet, RetireSource, RetiredInst, SimError};
use telemetry::Json;

use crate::format::{
    fnv1a64, get_varint, unzigzag, TraceMeta, TraceTrailer, BLOCK_RECORDS, BLOCK_TAG, MAGIC,
    TRAILER_TAG, VERSION,
};

/// Everything that can go wrong reading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the trace magic.
    BadMagic,
    /// The file's format version is not the one this build writes.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The header metadata blob failed to parse.
    BadMeta(String),
    /// A block or the trailer failed its checksum, or a record failed to
    /// decode — the file is damaged.
    Corrupt {
        /// Zero-based index of the damaged block (`u64::MAX` for the
        /// trailer).
        block: u64,
        /// What was wrong.
        detail: String,
    },
    /// The file ended before the trailer (an interrupted capture).
    Truncated,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace format version {found} (this build reads {VERSION})")
            }
            TraceError::BadMeta(msg) => write!(f, "unreadable trace header: {msg}"),
            TraceError::Corrupt { block, detail } if *block == u64::MAX => {
                write!(f, "corrupt trace trailer: {detail}")
            }
            TraceError::Corrupt { block, detail } => {
                write!(f, "corrupt trace block {block}: {detail}")
            }
            TraceError::Truncated => write!(f, "truncated trace (capture was interrupted)"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::Truncated
        } else {
            TraceError::Io(e)
        }
    }
}

/// What a full verification pass learned about a trace.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Header provenance.
    pub meta: TraceMeta,
    /// Format version of the file.
    pub version: u16,
    /// Records decoded.
    pub records: u64,
    /// Blocks decoded.
    pub blocks: u64,
    /// Trailer (totals + state hash + capture wall time).
    pub trailer: TraceTrailer,
}

/// Streaming decoder: holds exactly one decoded block ([`BLOCK_RECORDS`]
/// records) in memory regardless of trace length, verifying each block's
/// checksum before yielding its records.
///
/// Use as an `Iterator<Item = Result<RetiredInst, TraceError>>`, or drive a
/// set of observers directly via the [`RetireSource`] impl.
pub struct TraceReader<R: Read> {
    input: R,
    meta: TraceMeta,
    version: u16,
    block: Vec<RetiredInst>,
    next_in_block: usize,
    blocks_read: u64,
    records_read: u64,
    trailer: Option<TraceTrailer>,
    failed: bool,
}

impl TraceReader<io::BufReader<std::fs::File>> {
    /// Open a trace file and parse its header.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        let file = std::fs::File::open(path)?;
        TraceReader::new(io::BufReader::new(file))
    }
}

fn read_exact_arr<const N: usize>(input: &mut impl Read) -> Result<[u8; N], TraceError> {
    let mut buf = [0u8; N];
    input.read_exact(&mut buf)?;
    Ok(buf)
}

impl<R: Read> TraceReader<R> {
    /// Wrap a byte stream and parse the header.
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let magic: [u8; 4] = read_exact_arr(&mut input)?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = u16::from_le_bytes(read_exact_arr(&mut input)?);
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion { found: version });
        }
        let _reserved = u16::from_le_bytes(read_exact_arr::<2>(&mut input)?);
        let meta_len = u32::from_le_bytes(read_exact_arr(&mut input)?) as usize;
        // A capture never writes megabytes of metadata; a huge length here
        // means a damaged header, not a big program.
        if meta_len > 16 << 20 {
            return Err(TraceError::BadMeta(format!("implausible header size {meta_len}")));
        }
        let mut meta_bytes = vec![0u8; meta_len];
        input.read_exact(&mut meta_bytes)?;
        let meta_text =
            String::from_utf8(meta_bytes).map_err(|e| TraceError::BadMeta(e.to_string()))?;
        let meta_json = Json::parse(&meta_text).map_err(TraceError::BadMeta)?;
        let meta = TraceMeta::from_json(&meta_json)
            .ok_or_else(|| TraceError::BadMeta("missing provenance fields".into()))?;
        Ok(TraceReader {
            input,
            meta,
            version,
            block: Vec::new(),
            next_in_block: 0,
            blocks_read: 0,
            records_read: 0,
            trailer: None,
            failed: false,
        })
    }

    /// Header provenance.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Format version of the file being read.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The trailer, available once iteration has reached the end of file.
    pub fn trailer(&self) -> Option<&TraceTrailer> {
        self.trailer.as_ref()
    }

    /// Records yielded so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Blocks decoded so far.
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read
    }

    /// Decode one record from `payload` at `pos`.
    fn decode_record(
        payload: &[u8],
        pos: &mut usize,
        prev_pc: &mut u64,
        prev_addr: &mut u64,
    ) -> Option<RetiredInst> {
        let flags = *payload.get(*pos)?;
        *pos += 1;
        let group = simcore::InstGroup::from_code(*payload.get(*pos)?)?;
        *pos += 1;
        let delta = unzigzag(get_varint(payload, pos)?);
        let pc = prev_pc.wrapping_add(delta as u64);
        *prev_pc = pc;
        let mut ri = RetiredInst::new(pc, group);
        ri.is_branch = flags & 1 != 0;
        ri.taken = flags & 2 != 0;
        for set in [&mut ri.srcs, &mut ri.dsts] {
            let n = *payload.get(*pos)?;
            *pos += 1;
            if n as usize > simcore::NUM_REG_SLOTS {
                return None;
            }
            let mut s = RegSet::empty();
            for _ in 0..n {
                let slot = *payload.get(*pos)?;
                *pos += 1;
                if slot as usize >= simcore::NUM_REG_SLOTS {
                    return None;
                }
                s.insert(simcore::RegId::from_index(slot as usize));
            }
            *set = s;
        }
        let n_reads = (flags >> 2) & 0x3;
        let n_writes = (flags >> 4) & 0x3;
        if n_reads > 2 || n_writes > 2 {
            return None;
        }
        for (n, list) in
            [(n_reads, &mut ri.mem_reads), (n_writes, &mut ri.mem_writes)]
        {
            let mut l = MemList::empty();
            for _ in 0..n {
                let delta = unzigzag(get_varint(payload, pos)?);
                let addr = prev_addr.wrapping_add(delta as u64);
                *prev_addr = addr;
                let size = *payload.get(*pos)?;
                *pos += 1;
                l.push(addr, size);
            }
            *list = l;
        }
        Some(ri)
    }

    /// Read and decode the next block. Returns `false` once the trailer has
    /// been consumed (end of trace).
    fn next_block(&mut self) -> Result<bool, TraceError> {
        let tag: [u8; 1] = read_exact_arr(&mut self.input)?;
        match tag[0] {
            BLOCK_TAG => {}
            TRAILER_TAG => {
                let trailer = TraceTrailer {
                    total_records: u64::from_le_bytes(read_exact_arr(&mut self.input)?),
                    state_hash: u64::from_le_bytes(read_exact_arr(&mut self.input)?),
                    capture_wall_us: u64::from_le_bytes(read_exact_arr(&mut self.input)?),
                };
                let stored = u64::from_le_bytes(read_exact_arr(&mut self.input)?);
                if stored != trailer.checksum() {
                    return Err(TraceError::Corrupt {
                        block: u64::MAX,
                        detail: format!(
                            "trailer checksum {stored:#018x} != computed {:#018x}",
                            trailer.checksum()
                        ),
                    });
                }
                if trailer.total_records != self.records_read {
                    return Err(TraceError::Corrupt {
                        block: u64::MAX,
                        detail: format!(
                            "trailer claims {} records, file holds {}",
                            trailer.total_records, self.records_read
                        ),
                    });
                }
                self.trailer = Some(trailer);
                return Ok(false);
            }
            other => {
                return Err(TraceError::Corrupt {
                    block: self.blocks_read,
                    detail: format!("unknown section tag {other:#04x}"),
                })
            }
        }
        let n_records = u32::from_le_bytes(read_exact_arr(&mut self.input)?) as usize;
        let payload_len = u32::from_le_bytes(read_exact_arr(&mut self.input)?) as usize;
        let first_pc = u64::from_le_bytes(read_exact_arr(&mut self.input)?);
        let stored_checksum = u64::from_le_bytes(read_exact_arr(&mut self.input)?);
        if n_records == 0 || n_records > BLOCK_RECORDS {
            return Err(TraceError::Corrupt {
                block: self.blocks_read,
                detail: format!("implausible record count {n_records}"),
            });
        }
        // Worst-case record encoding is well under 64 bytes; anything
        // larger is a corrupt length that would drive a huge allocation.
        if payload_len > n_records * 64 {
            return Err(TraceError::Corrupt {
                block: self.blocks_read,
                detail: format!("implausible payload length {payload_len} for {n_records} records"),
            });
        }
        let mut payload = vec![0u8; payload_len];
        self.input.read_exact(&mut payload)?;
        let computed = fnv1a64(&payload);
        if computed != stored_checksum {
            return Err(TraceError::Corrupt {
                block: self.blocks_read,
                detail: format!("checksum {stored_checksum:#018x} != computed {computed:#018x}"),
            });
        }
        self.block.clear();
        self.block.reserve(n_records);
        let mut pos = 0usize;
        let mut prev_pc = first_pc;
        let mut prev_addr = 0u64;
        for i in 0..n_records {
            match Self::decode_record(&payload, &mut pos, &mut prev_pc, &mut prev_addr) {
                Some(ri) => self.block.push(ri),
                None => {
                    return Err(TraceError::Corrupt {
                        block: self.blocks_read,
                        detail: format!("record {i} of {n_records} failed to decode"),
                    })
                }
            }
        }
        if pos != payload.len() {
            return Err(TraceError::Corrupt {
                block: self.blocks_read,
                detail: format!("{} trailing payload bytes after the last record", payload.len() - pos),
            });
        }
        self.next_in_block = 0;
        self.blocks_read += 1;
        Ok(true)
    }

    /// Decode the whole trace, verifying every checksum and the trailer.
    /// Consumes the reader; the records themselves are discarded.
    pub fn verify(mut self) -> Result<TraceSummary, TraceError> {
        for r in self.by_ref() {
            r?;
        }
        let trailer = self.trailer.ok_or(TraceError::Truncated)?;
        Ok(TraceSummary {
            meta: self.meta,
            version: self.version,
            records: self.records_read,
            blocks: self.blocks_read,
            trailer,
        })
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<RetiredInst, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        while self.next_in_block >= self.block.len() {
            if self.trailer.is_some() {
                return None;
            }
            match self.next_block() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        let ri = self.block[self.next_in_block];
        self.next_in_block += 1;
        self.records_read += 1;
        Some(Ok(ri))
    }
}

impl<R: Read> RetireSource for TraceReader<R> {
    /// Replay the trace through `observers`. Corruption surfaces as a
    /// [`SimError::Fault`] naming the damaged block, so replay failures
    /// flow through the same typed error paths as live-simulation faults.
    fn drive(&mut self, observers: &mut [&mut dyn Observer]) -> Result<u64, SimError> {
        let start = self.records_read;
        loop {
            match self.next() {
                Some(Ok(ri)) => {
                    for obs in observers.iter_mut() {
                        obs.on_retire(&ri);
                    }
                }
                Some(Err(e)) => {
                    return Err(SimError::Fault { pc: 0, msg: format!("trace replay: {e}") })
                }
                None => break,
            }
        }
        if self.trailer.is_none() {
            return Err(SimError::Fault {
                pc: 0,
                msg: format!("trace replay: {}", TraceError::Truncated),
            });
        }
        for obs in observers.iter_mut() {
            obs.on_finish();
        }
        Ok(self.records_read - start)
    }

    fn source_name(&self) -> &'static str {
        "trace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use simcore::{InstGroup, MemList, RegId, RegSet};

    fn meta() -> TraceMeta {
        TraceMeta {
            workload: "synthetic".into(),
            compiler: "none".into(),
            isa: "RISC-V".into(),
            size: "test".into(),
            regions: vec![],
        }
    }

    fn sample_stream(n: usize) -> Vec<RetiredInst> {
        (0..n)
            .map(|i| {
                let group = InstGroup::ALL[i % InstGroup::ALL.len()];
                let mut ri = RetiredInst::new(0x1_0000 + (i as u64) * 4, group);
                ri.srcs = RegSet::of(&[RegId::Int((i % 31) as u8 + 1)]);
                ri.dsts = RegSet::of(&[RegId::Fp((i % 32) as u8)]);
                if group == InstGroup::Load {
                    ri.mem_reads = MemList::one(0x20_0000 + (i as u64 % 64) * 8, 8);
                }
                if group == InstGroup::Store {
                    let mut l = MemList::one(0x30_0000 + (i as u64 % 64) * 8, 8);
                    l.push(0x30_0000 + (i as u64 % 64) * 8 + 8, 8);
                    ri.mem_writes = l;
                }
                ri.is_branch = group == InstGroup::Branch;
                ri.taken = ri.is_branch && i % 3 == 0;
                ri
            })
            .collect()
    }

    fn capture(stream: &[RetiredInst]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, &meta()).unwrap();
        for ri in stream {
            w.on_retire(ri);
        }
        w.finish(0xDEAD_BEEF, std::time::Duration::from_micros(123)).unwrap();
        buf
    }

    #[test]
    fn round_trip_bit_identity() {
        let stream = sample_stream(10_000);
        let buf = capture(&stream);
        let reader = TraceReader::new(io::Cursor::new(&buf)).unwrap();
        let decoded: Vec<RetiredInst> = reader.map(|r| r.unwrap()).collect();
        assert_eq!(decoded, stream);
    }

    #[test]
    fn trailer_and_meta_survive() {
        let stream = sample_stream(100);
        let buf = capture(&stream);
        let mut reader = TraceReader::new(io::Cursor::new(&buf)).unwrap();
        assert_eq!(reader.meta().workload, "synthetic");
        while reader.next().is_some() {}
        let t = reader.trailer().expect("trailer read");
        assert_eq!(t.total_records, 100);
        assert_eq!(t.state_hash, 0xDEAD_BEEF);
        assert_eq!(t.capture_wall_us, 123);
    }

    #[test]
    fn corrupted_block_is_detected() {
        let stream = sample_stream(5000);
        let mut buf = capture(&stream);
        // Flip a byte well inside the first block's payload.
        let idx = buf.len() / 3;
        buf[idx] ^= 0x40;
        let reader = TraceReader::new(io::Cursor::new(&buf)).unwrap();
        let err = reader.verify().expect_err("corruption must be caught");
        assert!(matches!(err, TraceError::Corrupt { .. }), "got: {err}");
    }

    #[test]
    fn truncated_trace_is_detected() {
        let stream = sample_stream(5000);
        let buf = capture(&stream);
        let cut = &buf[..buf.len() - 40];
        let reader = TraceReader::new(io::Cursor::new(cut)).unwrap();
        let err = reader.verify().expect_err("truncation must be caught");
        assert!(
            matches!(err, TraceError::Truncated | TraceError::Corrupt { .. }),
            "got: {err}"
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let err = TraceReader::new(io::Cursor::new(b"NOPE....".to_vec()))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, TraceError::BadMagic));
    }

    #[test]
    fn wrong_version_rejected() {
        let stream = sample_stream(10);
        let mut buf = capture(&stream);
        buf[4] = 0xFF; // version low byte
        let err = TraceReader::new(io::Cursor::new(&buf)).map(|_| ()).unwrap_err();
        assert!(matches!(err, TraceError::UnsupportedVersion { .. }));
    }

    #[test]
    fn drive_feeds_observers_and_counts() {
        let stream = sample_stream(2500);
        let buf = capture(&stream);
        let mut reader = TraceReader::new(io::Cursor::new(&buf)).unwrap();
        let mut count = simcore::CountingObserver::default();
        let n = {
            let mut obs: Vec<&mut dyn Observer> = vec![&mut count];
            reader.drive(&mut obs).unwrap()
        };
        assert_eq!(n, 2500);
        assert_eq!(count.retired, 2500);
    }

    #[test]
    fn two_captures_are_byte_identical() {
        let stream = sample_stream(1000);
        assert_eq!(capture(&stream), capture(&stream), "capture is deterministic");
    }
}
