//! Named counters, gauges and log2-bucketed histograms.

use std::collections::BTreeMap;

use crate::json::Json;

/// A histogram over `u64` samples with power-of-two bucket boundaries:
/// bucket 0 holds the value 0, bucket `i` (1..=64) holds values in
/// `[2^(i-1), 2^i)`. Fixed 65-slot storage — recording is O(1) and the
/// memory footprint is constant regardless of sample count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

/// Index of the bucket holding `v`: 0 for 0, else `ilog2(v) + 1`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_low(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in 0..=1): the inclusive lower bound of the
    /// first bucket at which the cumulative count reaches `q * count`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_low(i);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive lower bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_low(i), n))
            .collect()
    }

    /// JSON summary (count/sum/min/max/mean/p50/p99 + bucket list).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Num(self.count as f64)),
            ("sum", Json::Num(self.sum as f64)),
            ("min", Json::Num(self.min() as f64)),
            ("max", Json::Num(self.max as f64)),
            ("mean", Json::Num(self.mean())),
            ("p50", Json::Num(self.quantile(0.5) as f64)),
            ("p99", Json::Num(self.quantile(0.99) as f64)),
            (
                "buckets",
                Json::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(low, n)| {
                            Json::Arr(vec![Json::Num(low as f64), Json::Num(n as f64)])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A registry of named counters (monotonic `u64`), gauges (`f64` last-value)
/// and [`Histogram`]s. Names are free-form; `BTreeMap` keys keep report
/// output deterministically sorted.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to the named counter (creating it at 0).
    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set the named gauge to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Current gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record a sample into the named histogram (creating it if needed).
    pub fn histogram_record(&mut self, name: &str, v: u64) {
        self.histograms.entry(name.to_string()).or_default().record(v);
    }

    /// Read access to a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// JSON object with `counters`, `gauges` and `histograms` members.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "counters",
                Json::Obj(
                    self.counters.iter().map(|(k, &v)| (k.clone(), Json::Num(v as f64))).collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(self.gauges.iter().map(|(k, &v)| (k.clone(), Json::Num(v))).collect()),
            ),
            (
                "histograms",
                Json::Obj(self.histograms.iter().map(|(k, h)| (k.clone(), h.to_json())).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Low bound of the bucket containing v is always <= v.
        for v in [0u64, 1, 2, 3, 7, 8, 1 << 40, u64::MAX] {
            assert!(bucket_low(bucket_index(v)) <= v, "{v}");
        }
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1106.0 / 6.0).abs() < 1e-9);
        assert_eq!(h.quantile(0.0), 0);
        // p100 lands in the top non-empty bucket (lower bound 512 for 1000).
        assert_eq!(h.quantile(1.0), 512);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn registry_basics() {
        let mut r = MetricsRegistry::new();
        r.counter_add("retired", 10);
        r.counter_add("retired", 5);
        r.gauge_set("mips", 123.5);
        r.histogram_record("cell_ms", 8);
        assert_eq!(r.counter("retired"), 15);
        assert_eq!(r.gauge("mips"), Some(123.5));
        assert_eq!(r.histogram("cell_ms").unwrap().count(), 1);
        assert_eq!(r.counter("missing"), 0);
        let j = r.to_json().to_string();
        assert!(j.contains("\"retired\": 15"), "{j}");
    }
}
