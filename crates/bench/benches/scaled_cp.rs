//! Experiment E3 (paper Table 2): latency-scaled critical path using the
//! ThunderX2 latency model, loads/stores unscaled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isacmp::{compile, execute, CriticalPath, IsaKind, Personality, SizeClass, Tx2Latency, Workload};

fn bench_scaled_cp(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaled_cp");
    group.sample_size(10);
    for w in Workload::ALL {
        for isa in [IsaKind::AArch64, IsaKind::RiscV] {
            let prog = w.build(SizeClass::Test);
            let compiled = compile(&prog, isa, &Personality::gcc122());
            let mut scp = CriticalPath::scaled(Tx2Latency);
            execute(&compiled, &mut [&mut scp]);
            let r = scp.result();
            println!(
                "# table2: {} {} scaledCP={} ILP={:.0}",
                w.name(),
                isacmp::isa_label(isa),
                r.critical_path,
                r.ilp()
            );
            group.bench_with_input(
                BenchmarkId::new(w.name(), isacmp::isa_label(isa)),
                &compiled,
                |b, compiled| {
                    b.iter(|| {
                        let mut scp = CriticalPath::scaled(Tx2Latency);
                        execute(compiled, &mut [&mut scp]);
                        scp.result().critical_path
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaled_cp);
criterion_main!(benches);
