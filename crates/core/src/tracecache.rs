//! The per-cell trace cache behind `CellOptions::trace_dir`.
//!
//! Capture-then-replay: the first measurement of a cell emulates the guest
//! and streams the retirements into a `.trace` file next to the results;
//! every later measurement of the same cell replays that file through the
//! identical analysis bundle — no workload build, no compile, no emulation.
//! A cache hit requires the header provenance (workload / compiler / ISA /
//! size class) *and* the format version to match; anything else — missing
//! file, stale provenance, corruption, truncation — falls back to a live
//! run that recaptures.

use std::path::{Path, PathBuf};
use std::time::Instant;

use analysis::{CellAnalyses, ExperimentCell};
use kernelgen::Personality;
use simcore::{IsaKind, RetireSource};
use trace::{TraceMeta, TraceReader};
use workloads::{SizeClass, Workload};

use crate::error::CellError;
use crate::isa_label;

/// The cache file for one cell: `{workload}-{compiler}-{isa}-{size}.trace`.
pub fn trace_path(
    dir: &Path,
    workload: Workload,
    personality: &Personality,
    isa: IsaKind,
    size: SizeClass,
) -> PathBuf {
    dir.join(format!(
        "{}-{}-{}-{}.trace",
        workload.name(),
        personality.label(),
        isa_label(isa),
        size.name()
    ))
}

/// The provenance header a capture of this cell must carry.
pub fn cell_meta(
    workload: Workload,
    personality: &Personality,
    isa: IsaKind,
    size: SizeClass,
    regions: &[simcore::Region],
) -> TraceMeta {
    TraceMeta {
        workload: workload.name().to_string(),
        compiler: personality.label().to_string(),
        isa: isa_label(isa).to_string(),
        size: size.name().to_string(),
        regions: regions.to_vec(),
    }
}

/// Replay a cached trace into a fresh [`CellAnalyses`] bundle.
///
/// Returns `Ok(None)` when the file's provenance does not match the cell
/// (stale cache — caller should run live and recapture). Corruption or I/O
/// trouble comes back as a [`CellError::Sim`] so the caller can count it
/// and likewise fall back.
///
/// Telemetry: counter `trace_replays`, histogram `trace_replay_ms`, and
/// gauge `trace_replay_speedup` (capture emulation wall time over replay
/// wall time, from the trailer).
///
/// Trace files are fusion-independent — they carry the raw retired stream
/// — so one capture serves both the plain and the `fusion` scenario; the
/// flag only decides whether a [`fusion::FusionPass`] rides alongside the
/// analysis bundle during this replay.
pub fn replay_cell(
    path: &Path,
    workload: Workload,
    personality: &Personality,
    isa: IsaKind,
    size: SizeClass,
    fuse: bool,
) -> Result<Option<ExperimentCell>, CellError> {
    let tel = telemetry::global();
    let _span = tel.enter("trace_replay");
    let start = Instant::now();
    let to_cell_err = |e: trace::TraceError| CellError::Sim {
        err: simcore::SimError::Fault { pc: 0, msg: format!("trace replay: {e}") },
        instret: 0,
    };
    let mut reader = TraceReader::open(path).map_err(to_cell_err)?;
    if !reader.meta().matches_cell(
        workload.name(),
        personality.label(),
        isa_label(isa),
        size.name(),
    ) {
        return Ok(None);
    }
    let regions = reader.meta().regions.clone();
    let mut analyses = CellAnalyses::new(&regions);
    let mut pass = fuse.then(|| fusion::FusionPass::new(isa, &regions));
    {
        let mut obs = analyses.observers();
        if let Some(p) = pass.as_mut() {
            obs.push(p);
        }
        reader.drive(&mut obs).map_err(|err| CellError::Sim { err, instret: 0 })?;
    }
    let trailer = *reader.trailer().expect("drive() validated the trailer");
    let elapsed = start.elapsed();
    tel.counter_add("trace_replays", 1);
    tel.counter_add("trace_records_replayed", trailer.total_records);
    tel.histogram_record("trace_replay_ms", elapsed.as_millis() as u64);
    if trailer.capture_wall_us > 0 {
        let speedup = trailer.capture_wall_us as f64 / elapsed.as_micros().max(1) as f64;
        tel.gauge_set("trace_replay_speedup", speedup);
    }
    let mut cell = analyses.into_cell(workload.name(), personality.label(), isa_label(isa));
    if let Some(p) = pass {
        cell.fused = Some(p.report().to_fused_cell());
    }
    Ok(Some(cell))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_scheme_is_stable() {
        let p = trace_path(
            Path::new("/tmp/traces"),
            Workload::Stream,
            &Personality::gcc122(),
            IsaKind::RiscV,
            SizeClass::Test,
        );
        assert_eq!(p, PathBuf::from("/tmp/traces/STREAM-gcc-12.2-RISC-V-test.trace"));
    }

    #[test]
    fn replay_of_missing_file_is_sim_error() {
        let err = replay_cell(
            Path::new("/nonexistent/x.trace"),
            Workload::Stream,
            &Personality::gcc122(),
            IsaKind::RiscV,
            SizeClass::Test,
            false,
        )
        .expect_err("missing file is an error, not a silent miss");
        assert_eq!(err.kind(), "sim");
    }
}
