//! Producer-consumer dependency-distance analysis.
//!
//! The paper explains the Figure 2 crossover (§6.2) by observing that
//! "local dependent instructions are more distantly spread for RISC-V
//! which could allow for increased throughput in OoO processors". This
//! observer measures that spread directly: for every retired instruction,
//! the distance (in retired instructions) back to the most recent producer
//! of each of its sources, bucketed into a histogram.

use simcore::{Observer, RetireSource, RetiredInst, SimError, WordMap, NUM_REG_SLOTS};

/// Histogram bucket upper bounds (inclusive), in retired instructions.
pub const DIST_BUCKETS: [u64; 8] = [1, 2, 4, 8, 16, 64, 256, u64::MAX];

/// Dependency-distance histogram over the retirement stream.
pub struct DepDistance {
    /// Retirement index of the last writer per register slot.
    reg_writer: [u64; NUM_REG_SLOTS],
    reg_valid: [bool; NUM_REG_SLOTS],
    /// Retirement index of the last writer per 8-byte memory word.
    mem_writer: WordMap<u64>,
    /// Histogram: edges whose distance falls in each bucket.
    buckets: [u64; DIST_BUCKETS.len()],
    /// Total dependency edges observed.
    edges: u64,
    /// Sum of distances (for the mean).
    dist_sum: u64,
    index: u64,
}

impl DepDistance {
    /// Fresh analyzer.
    pub fn new() -> Self {
        DepDistance {
            reg_writer: [0; NUM_REG_SLOTS],
            reg_valid: [false; NUM_REG_SLOTS],
            mem_writer: WordMap::default(),
            buckets: [0; DIST_BUCKETS.len()],
            edges: 0,
            dist_sum: 0,
            index: 0,
        }
    }

    #[inline]
    fn record(&mut self, producer_index: u64) {
        let dist = self.index - producer_index;
        self.edges += 1;
        self.dist_sum += dist;
        for (i, &ub) in DIST_BUCKETS.iter().enumerate() {
            if dist <= ub {
                self.buckets[i] += 1;
                break;
            }
        }
    }

    /// Pump an entire retirement source (live run, replayed trace, or
    /// record slice) through this analysis.
    pub fn consume(&mut self, source: &mut dyn RetireSource) -> Result<u64, SimError> {
        let mut obs: [&mut dyn Observer; 1] = [self];
        source.drive(&mut obs)
    }

    /// Mean producer-consumer distance.
    pub fn mean(&self) -> f64 {
        self.dist_sum as f64 / self.edges.max(1) as f64
    }

    /// Fraction of dependency edges with distance `<= bound`.
    pub fn fraction_within(&self, bound: u64) -> f64 {
        let mut within = 0u64;
        for (i, &ub) in DIST_BUCKETS.iter().enumerate() {
            if ub <= bound {
                within += self.buckets[i];
            }
        }
        within as f64 / self.edges.max(1) as f64
    }

    /// Histogram as `(upper_bound, count)` pairs.
    pub fn histogram(&self) -> Vec<(u64, u64)> {
        DIST_BUCKETS.iter().copied().zip(self.buckets.iter().copied()).collect()
    }

    /// Total dependency edges observed.
    pub fn edges(&self) -> u64 {
        self.edges
    }
}

impl Default for DepDistance {
    fn default() -> Self {
        DepDistance::new()
    }
}

impl Observer for DepDistance {
    #[inline]
    fn on_retire(&mut self, ri: &RetiredInst) {
        self.index += 1;
        for r in ri.srcs.iter() {
            let idx = r.index();
            if self.reg_valid[idx] {
                let w = self.reg_writer[idx];
                self.record(w);
            }
        }
        for a in ri.mem_reads.iter() {
            let first = a.addr >> 3;
            let last = (a.addr + a.size.max(1) as u64 - 1) >> 3;
            for w in first..=last {
                if let Some(&p) = self.mem_writer.get(&w) {
                    self.record(p);
                }
            }
        }
        for r in ri.dsts.iter() {
            self.reg_writer[r.index()] = self.index;
            self.reg_valid[r.index()] = true;
        }
        for a in ri.mem_writes.iter() {
            let first = a.addr >> 3;
            let last = (a.addr + a.size.max(1) as u64 - 1) >> 3;
            for w in first..=last {
                self.mem_writer.insert(w, self.index);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{InstGroup, RegId};

    fn op(srcs: &[u8], dsts: &[u8]) -> RetiredInst {
        let mut ri = RetiredInst::new(0, InstGroup::IntAlu);
        ri.srcs = srcs.iter().map(|&r| RegId::Int(r)).collect();
        ri.dsts = dsts.iter().map(|&r| RegId::Int(r)).collect();
        ri
    }

    #[test]
    fn adjacent_chain_distance_one() {
        let mut d = DepDistance::new();
        d.on_retire(&op(&[], &[1]));
        for _ in 0..9 {
            d.on_retire(&op(&[1], &[1]));
        }
        assert_eq!(d.edges(), 9);
        assert_eq!(d.mean(), 1.0);
        assert_eq!(d.fraction_within(1), 1.0);
    }

    #[test]
    fn interleaving_spreads_distances() {
        // Two interleaved chains: every dependence skips one instruction.
        let mut d = DepDistance::new();
        d.on_retire(&op(&[], &[1]));
        d.on_retire(&op(&[], &[2]));
        for i in 0..10u8 {
            let r = 1 + (i % 2);
            d.on_retire(&op(&[r], &[r]));
        }
        assert_eq!(d.mean(), 2.0);
        assert_eq!(d.fraction_within(1), 0.0);
        assert_eq!(d.fraction_within(2), 1.0);
    }

    #[test]
    fn unwritten_sources_produce_no_edges() {
        let mut d = DepDistance::new();
        d.on_retire(&op(&[5], &[]));
        assert_eq!(d.edges(), 0);
    }

    #[test]
    fn memory_edges_counted() {
        let mut d = DepDistance::new();
        let mut st = RetiredInst::new(0, InstGroup::Store);
        st.mem_writes.push(0x100, 8);
        let mut ld = RetiredInst::new(4, InstGroup::Load);
        ld.mem_reads.push(0x100, 8);
        d.on_retire(&st);
        d.on_retire(&RetiredInst::new(8, InstGroup::IntAlu));
        d.on_retire(&ld);
        assert_eq!(d.edges(), 1);
        assert_eq!(d.mean(), 2.0);
    }

    #[test]
    fn histogram_buckets_sum_to_edges() {
        let mut d = DepDistance::new();
        d.on_retire(&op(&[], &[1]));
        for i in 0..100u8 {
            d.on_retire(&op(&[1], &[(i % 3) + 1]));
        }
        let total: u64 = d.histogram().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, d.edges());
    }
}
