//! The provenance-keyed, single-flight result cache.
//!
//! One entry per experiment cell, keyed by everything that determines the
//! cell's measurements: workload, compiler personality, ISA, size class
//! and retire engine ([`CellKey`]). Cell measurements are deterministic
//! (the emulator is), so a cached cell is byte-identical to a recomputed
//! one — which is what lets the daemon unify the in-memory cache, the
//! `core::tracecache` trace replay layer (cells run *through* the trace
//! cache when a job arms a trace dir) and one-shot `results/matrix.json`
//! artifacts (seeded in via [`ResultCache::warm`]) behind one lookup.
//!
//! Single-flight: the first claimant of a missing key becomes the
//! *leader* and computes the cell (on the shard pool); concurrent
//! claimants become *followers* and block — on their own connection
//! threads, never on pool workers (see `isacmp::pool`'s deadlock rule) —
//! until the leader completes. Failed or interrupted computations are
//! never cached: the entry is removed and the next claimant re-leads.
//!
//! Fault-armed cells (targeted injection or campaign) are *not*
//! cacheable — an injected-fault run is not a reusable measurement — and
//! never reach this module; the job runner computes them directly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use isacmp::{ExperimentCell, ResultMatrix};

/// Everything that determines one cell's measurements.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    pub workload: String,
    pub compiler: String,
    pub isa: String,
    pub size: String,
    pub engine: String,
    /// Whether the macro-op fusion pass was armed. Fused and unfused
    /// measurements of the same cell differ (the fused one carries the
    /// extra report), so they must never share a cache slot.
    pub fusion: bool,
}

impl CellKey {
    pub fn new(
        workload: &str,
        compiler: &str,
        isa: &str,
        size: &str,
        engine: &str,
        fusion: bool,
    ) -> CellKey {
        CellKey {
            workload: workload.into(),
            compiler: compiler.into(),
            isa: isa.into(),
            size: size.into(),
            engine: engine.into(),
            fusion,
        }
    }
}

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{}@{}/{}{}",
            self.workload,
            self.compiler,
            self.isa,
            self.size,
            self.engine,
            if self.fusion { "+fusion" } else { "" }
        )
    }
}

/// The slot a leader fills and followers wait on.
#[derive(Default)]
pub struct Flight {
    slot: Mutex<Option<Result<ExperimentCell, String>>>,
    cv: Condvar,
}

impl Flight {
    /// Wait up to `timeout` for the leader. `None` on timeout (caller
    /// should poll shutdown and either wait again or give up).
    pub fn wait_for(&self, timeout: Duration) -> Option<Result<ExperimentCell, String>> {
        let guard = self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(r) = guard.as_ref() {
            return Some(r.clone());
        }
        let (guard, _timeout) = self
            .cv
            .wait_timeout(guard, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.as_ref().cloned()
    }

    fn fill(&self, result: Result<ExperimentCell, String>) {
        let mut guard = self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *guard = Some(result);
        self.cv.notify_all();
    }
}

enum Entry {
    InFlight(Arc<Flight>),
    Done(ExperimentCell),
}

/// What a claim resolved to.
pub enum Claim {
    /// Cached: here is the cell. (Counted as a hit.)
    Hit(ExperimentCell),
    /// You lead: compute the cell and call [`ResultCache::complete`].
    /// (Counted as a miss.)
    Lead,
    /// Another job is computing this cell; wait on the flight — from a
    /// connection thread only. (Counted as a hit: nothing is recomputed.)
    Follow(Arc<Flight>),
}

/// The daemon-wide cell cache.
#[derive(Default)]
pub struct ResultCache {
    map: Mutex<HashMap<CellKey, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Resolve `key` to a hit, a leadership, or a flight to follow.
    pub fn claim(&self, key: &CellKey) -> Claim {
        let mut map = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match map.get(key) {
            Some(Entry::Done(cell)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Claim::Hit(cell.clone())
            }
            Some(Entry::InFlight(flight)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Claim::Follow(Arc::clone(flight))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                map.insert(key.clone(), Entry::InFlight(Arc::new(Flight::default())));
                Claim::Lead
            }
        }
    }

    /// Leader hand-off: cache a successful cell, or drop the entry on
    /// failure/interruption so a later claimant re-leads. Followers are
    /// woken either way (failures propagate to *this* flight's followers;
    /// they decide whether to re-claim).
    pub fn complete(&self, key: &CellKey, result: Result<ExperimentCell, String>) {
        let flight = {
            let mut map = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let flight = match map.remove(key) {
                Some(Entry::InFlight(f)) => Some(f),
                _ => None,
            };
            if let Ok(cell) = &result {
                map.insert(key.clone(), Entry::Done(cell.clone()));
            }
            flight
        };
        if let Some(f) = flight {
            f.fill(result);
        }
    }

    /// Seed the cache from a one-shot `matrix.json` artifact (only
    /// healthy cells; recorded failures are not reusable results).
    /// Returns how many cells were inserted.
    pub fn warm(&self, matrix: &ResultMatrix, size: &str, engine: &str) -> usize {
        let mut map = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut n = 0;
        for cell in &matrix.cells {
            // A cell carrying a fusion report seeds the fused slot; its
            // plain twin stays a miss (and vice versa) — the two are
            // different measurements.
            let key = CellKey::new(
                &cell.workload,
                &cell.compiler,
                &cell.isa,
                size,
                engine,
                cell.fused.is_some(),
            );
            if !matches!(map.get(&key), Some(Entry::Done(_))) {
                map.insert(key, Entry::Done(cell.clone()));
                n += 1;
            }
        }
        n
    }

    /// (hits, misses) so far. Follows count as hits — nothing was
    /// recomputed for them.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Completed (Done) cells currently cached.
    pub fn len(&self) -> usize {
        let map = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        map.values().filter(|e| matches!(e, Entry::Done(_))).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
