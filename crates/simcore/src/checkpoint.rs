//! Crash-safe machine-state checkpoints.
//!
//! A [`Checkpoint`] is a versioned binary snapshot of everything a paused
//! emulation needs to resume *byte-identically*: the architectural
//! [`CpuState`] (registers, pc, instret, NZCV, syscall plumbing), the
//! sparse memory image, the armed fault/campaign state with fired
//! counters, and the position of the trace capture the run was streaming
//! into. Snapshots are taken at retire-loop step boundaries (see
//! `EmulationCore::with_checkpoint_every`), serialized with per-section
//! FNV-1a checksums, and written via the [`crate::durable`] tmp+fsync+
//! rename discipline — a SIGKILL mid-write leaves either the previous
//! snapshot or the new one, never a torn file.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header : "ICKP" | u16 version | u16 reserved
//! section: tag u8 | u32 payload_len | payload | u64 fnv1a64(payload)
//! ```
//!
//! Sections, in fixed order: `C` cpu (pc/instret/nzcv/exited/brk/output +
//! both register files), `M` memory (page count, then sorted
//! `(page_index, 4096 bytes)` pairs), `F` fault (armed read-fault triples
//! + optional campaign seed/fired-count/spec+fired list), `T` trace mark
//! (records/blocks/bytes of the partial capture), `H` the capturing run's
//! [`CpuState::state_hash`], `Z` end (empty). Readers verify every
//! checksum, require all sections, and cross-check the embedded state
//! hash against the hash of the *reconstructed* state — a snapshot that
//! does not reproduce its own provenance hash is rejected with
//! [`CheckpointError::StateHashMismatch`].
//!
//! Versioning policy matches the trace format: `VERSION` bumps on any
//! layout change and readers reject other versions outright — checkpoints
//! are transient artifacts of a single run, not an archival format.

use std::path::Path;

use crate::durable;
use crate::fault::{Campaign, FaultPlan};
use crate::mem::PAGE_SIZE;
use crate::state::CpuState;

/// File magic: "ICKP" (Isa-Comparison ChecKPoint).
pub const MAGIC: [u8; 4] = *b"ICKP";

/// Current checkpoint format version; readers accept exactly this.
pub const VERSION: u16 = 1;

/// FNV-1a 64 over a byte slice — same polynomial as the trace format's
/// per-block checksum (duplicated here because `trace` depends on this
/// crate, not the other way around).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// Typed checkpoint read/validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Underlying I/O failure (message form of `std::io::Error`).
    Io(String),
    /// The file does not start with the "ICKP" magic.
    BadMagic,
    /// The file's version is not [`VERSION`].
    BadVersion(u16),
    /// The file ends mid-header or mid-section.
    Truncated,
    /// A section's payload failed its FNV-1a checksum.
    SectionChecksum(char),
    /// A required section is absent or out of order.
    MissingSection(char),
    /// A section decoded but its contents are inconsistent.
    BadData(String),
    /// The reconstructed state's hash does not match the embedded one.
    StateHashMismatch {
        /// Hash recorded at capture time.
        expected: u64,
        /// Hash of the state rebuilt from the snapshot.
        actual: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::BadVersion(v) => {
                write!(f, "checkpoint version {v} (this build reads version {VERSION})")
            }
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::SectionChecksum(tag) => {
                write!(f, "checkpoint section '{tag}' failed its checksum")
            }
            CheckpointError::MissingSection(tag) => {
                write!(f, "checkpoint section '{tag}' missing or out of order")
            }
            CheckpointError::BadData(msg) => write!(f, "checkpoint data invalid: {msg}"),
            CheckpointError::StateHashMismatch { expected, actual } => write!(
                f,
                "restored state hash {actual:#018x} does not match recorded {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e.to_string())
    }
}

/// Position of the partial trace capture at snapshot time, so a restored
/// run can truncate the trace file to a clean block boundary and resume
/// appending. All zero when the run captured no trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceMark {
    /// Records flushed to the trace file.
    pub records: u64,
    /// Blocks flushed.
    pub blocks: u64,
    /// Bytes written (header + flushed blocks) — the truncation offset.
    pub bytes: u64,
}

/// Armed campaign state at snapshot time: the schedule (as canonical
/// specs) plus which plans had already fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignState {
    /// Seed the campaign was sampled from / tagged with.
    pub seed: u64,
    /// Shared fired counter at snapshot time.
    pub fired_count: u64,
    /// `(canonical spec, fired)` per plan, in schedule order.
    pub plans: Vec<(String, bool)>,
}

impl CampaignState {
    /// Capture a campaign's state as of a step boundary where `retired`
    /// instructions have retired and the injector has *not yet* been
    /// polled for the next step. Fired flags are reconstructed from the
    /// deterministic polling discipline (see [`FaultPlan::fired_by`])
    /// because the live flags sit inside the boxed injector clone the
    /// core owns.
    pub fn capture(campaign: &Campaign, retired: u64) -> Self {
        let plans: Vec<(String, bool)> =
            campaign.plans().iter().map(|p| (p.spec(), p.fired_by(retired))).collect();
        let fired_count = plans.iter().filter(|(_, fired)| *fired).count() as u64;
        CampaignState { seed: campaign.seed(), fired_count, plans }
    }

    /// Re-arm the captured schedule as a live [`Campaign`] with fired
    /// plans suppressed and the fired counter restored.
    pub fn rearm(&self) -> Result<Campaign, CheckpointError> {
        let plans = self
            .plans
            .iter()
            .map(|(spec, _)| FaultPlan::parse(spec))
            .collect::<Result<Vec<_>, _>>()
            .map_err(CheckpointError::BadData)?;
        let mut campaign = Campaign::from_plans(plans, self.seed);
        let flags: Vec<bool> = self.plans.iter().map(|(_, fired)| *fired).collect();
        campaign.restore_fired(&flags, self.fired_count);
        Ok(campaign)
    }
}

/// A full machine-state snapshot. See the module docs for the format.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Program counter.
    pub pc: u64,
    /// Retired-instruction count (the resume point).
    pub instret: u64,
    /// AArch64 NZCV flags.
    pub nzcv: u8,
    /// Exit status if the guest had already exited.
    pub exited: Option<i64>,
    /// Program-break address.
    pub brk: u64,
    /// Guest stdout captured so far.
    pub output: Vec<u8>,
    /// Integer register file.
    pub x: [u64; 32],
    /// FP register file (bit patterns).
    pub f: [u64; 32],
    /// Sparse memory image: `(page_index, page bytes)`, ascending.
    pub pages: Vec<(u64, Vec<u8>)>,
    /// Armed read-fault state: `(remaining, bit, fired)` per fault.
    pub read_faults: Vec<(u64, u32, bool)>,
    /// Armed campaign schedule, if the run injects faults.
    pub campaign: Option<CampaignState>,
    /// Partial-trace position.
    pub trace: TraceMark,
    /// [`CpuState::state_hash`] at snapshot time.
    pub state_hash: u64,
}

impl Checkpoint {
    /// Snapshot a paused run. `campaign` carries the armed schedule (with
    /// fired flags reconstructed for `state.instret`); `trace` marks the
    /// partial capture position.
    pub fn capture(state: &CpuState, campaign: Option<&Campaign>, trace: TraceMark) -> Self {
        Checkpoint {
            pc: state.pc,
            instret: state.instret,
            nzcv: state.nzcv,
            exited: state.exited,
            brk: state.brk,
            output: state.output.clone(),
            x: state.x,
            f: state.f,
            pages: state
                .mem
                .pages_sorted()
                .into_iter()
                .map(|(idx, bytes)| (idx, bytes.to_vec()))
                .collect(),
            read_faults: state.mem.read_fault_state(),
            campaign: campaign.map(|c| CampaignState::capture(c, state.instret)),
            trace,
            state_hash: state.state_hash(),
        }
    }

    /// Rebuild the architectural state. The reconstructed state's hash is
    /// cross-checked against the embedded one (memory is deliberately
    /// outside the hash; its integrity is covered by the `M` section
    /// checksum instead).
    pub fn restore_state(&self) -> Result<CpuState, CheckpointError> {
        let mut st = CpuState::new();
        st.pc = self.pc;
        st.instret = self.instret;
        st.nzcv = self.nzcv;
        st.exited = self.exited;
        st.brk = self.brk;
        st.output = self.output.clone();
        st.x = self.x;
        st.f = self.f;
        for (idx, bytes) in &self.pages {
            let page: [u8; PAGE_SIZE] = bytes
                .as_slice()
                .try_into()
                .map_err(|_| CheckpointError::BadData(format!("page {idx:#x} is not {PAGE_SIZE} bytes")))?;
            st.mem.install_page(*idx, page);
        }
        st.mem.restore_read_faults(&self.read_faults);
        let actual = st.state_hash();
        if actual != self.state_hash {
            return Err(CheckpointError::StateHashMismatch { expected: self.state_hash, actual });
        }
        Ok(st)
    }

    /// Serialize to the on-disk byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.pages.len() * (PAGE_SIZE + 8));
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());

        // 'C': architectural CPU state.
        let mut cpu = Vec::with_capacity(64 * 8 + 64 + self.output.len());
        cpu.extend_from_slice(&self.pc.to_le_bytes());
        cpu.extend_from_slice(&self.instret.to_le_bytes());
        cpu.push(self.nzcv);
        cpu.push(self.exited.is_some() as u8);
        cpu.extend_from_slice(&self.exited.unwrap_or(0).to_le_bytes());
        cpu.extend_from_slice(&self.brk.to_le_bytes());
        cpu.extend_from_slice(&(self.output.len() as u64).to_le_bytes());
        cpu.extend_from_slice(&self.output);
        for r in self.x.iter().chain(self.f.iter()) {
            cpu.extend_from_slice(&r.to_le_bytes());
        }
        push_section(&mut out, b'C', &cpu);

        // 'M': sparse memory pages, ascending page index.
        let mut mem = Vec::with_capacity(4 + self.pages.len() * (PAGE_SIZE + 8));
        mem.extend_from_slice(&(self.pages.len() as u32).to_le_bytes());
        for (idx, bytes) in &self.pages {
            mem.extend_from_slice(&idx.to_le_bytes());
            mem.extend_from_slice(bytes);
        }
        push_section(&mut out, b'M', &mem);

        // 'F': armed fault + campaign state.
        let mut fault = Vec::new();
        fault.extend_from_slice(&(self.read_faults.len() as u32).to_le_bytes());
        for (remaining, bit, fired) in &self.read_faults {
            fault.extend_from_slice(&remaining.to_le_bytes());
            fault.extend_from_slice(&bit.to_le_bytes());
            fault.push(*fired as u8);
        }
        match &self.campaign {
            None => fault.push(0),
            Some(c) => {
                fault.push(1);
                fault.extend_from_slice(&c.seed.to_le_bytes());
                fault.extend_from_slice(&c.fired_count.to_le_bytes());
                fault.extend_from_slice(&(c.plans.len() as u32).to_le_bytes());
                for (spec, fired) in &c.plans {
                    fault.extend_from_slice(&(spec.len() as u32).to_le_bytes());
                    fault.extend_from_slice(spec.as_bytes());
                    fault.push(*fired as u8);
                }
            }
        }
        push_section(&mut out, b'F', &fault);

        // 'T': partial-trace position.
        let mut trace = Vec::with_capacity(24);
        trace.extend_from_slice(&self.trace.records.to_le_bytes());
        trace.extend_from_slice(&self.trace.blocks.to_le_bytes());
        trace.extend_from_slice(&self.trace.bytes.to_le_bytes());
        push_section(&mut out, b'T', &trace);

        // 'H': provenance state hash.
        push_section(&mut out, b'H', &self.state_hash.to_le_bytes());

        // 'Z': end marker.
        push_section(&mut out, b'Z', &[]);
        out
    }

    /// Parse and fully validate the byte layout (magic, version, every
    /// section present, in order, checksummed).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let _reserved = r.u16()?;

        let cpu = r.section(b'C')?;
        let mem = r.section(b'M')?;
        let fault = r.section(b'F')?;
        let trace = r.section(b'T')?;
        let hash = r.section(b'H')?;
        let _end = r.section(b'Z')?;

        // 'C'
        let mut c = Reader { bytes: cpu, pos: 0 };
        let pc = c.u64()?;
        let instret = c.u64()?;
        let nzcv = c.u8()?;
        let has_exit = c.u8()?;
        let exit_code = c.u64()? as i64;
        let exited = if has_exit != 0 { Some(exit_code) } else { None };
        let brk = c.u64()?;
        let out_len = c.u64()? as usize;
        let output = c.take(out_len)?.to_vec();
        let mut x = [0u64; 32];
        let mut f = [0u64; 32];
        for r_ in x.iter_mut().chain(f.iter_mut()) {
            *r_ = c.u64()?;
        }
        c.done('C')?;

        // 'M'
        let mut m = Reader { bytes: mem, pos: 0 };
        let n_pages = m.u32()? as usize;
        let mut pages = Vec::with_capacity(n_pages);
        let mut prev_idx: Option<u64> = None;
        for _ in 0..n_pages {
            let idx = m.u64()?;
            if prev_idx.is_some_and(|p| p >= idx) {
                return Err(CheckpointError::BadData(format!(
                    "memory pages out of order at page {idx:#x}"
                )));
            }
            prev_idx = Some(idx);
            pages.push((idx, m.take(PAGE_SIZE)?.to_vec()));
        }
        m.done('M')?;

        // 'F'
        let mut fa = Reader { bytes: fault, pos: 0 };
        let n_faults = fa.u32()? as usize;
        let mut read_faults = Vec::with_capacity(n_faults);
        for _ in 0..n_faults {
            let remaining = fa.u64()?;
            let bit = fa.u32()?;
            let fired = fa.u8()? != 0;
            read_faults.push((remaining, bit, fired));
        }
        let campaign = match fa.u8()? {
            0 => None,
            1 => {
                let seed = fa.u64()?;
                let fired_count = fa.u64()?;
                let n_plans = fa.u32()? as usize;
                let mut plans = Vec::with_capacity(n_plans);
                for _ in 0..n_plans {
                    let spec_len = fa.u32()? as usize;
                    let spec = String::from_utf8(fa.take(spec_len)?.to_vec())
                        .map_err(|_| CheckpointError::BadData("non-UTF-8 fault spec".into()))?;
                    let fired = fa.u8()? != 0;
                    plans.push((spec, fired));
                }
                Some(CampaignState { seed, fired_count, plans })
            }
            other => {
                return Err(CheckpointError::BadData(format!(
                    "bad campaign presence byte {other}"
                )))
            }
        };
        fa.done('F')?;

        // 'T'
        let mut t = Reader { bytes: trace, pos: 0 };
        let trace_mark =
            TraceMark { records: t.u64()?, blocks: t.u64()?, bytes: t.u64()? };
        t.done('T')?;

        // 'H'
        let mut h = Reader { bytes: hash, pos: 0 };
        let state_hash = h.u64()?;
        h.done('H')?;

        Ok(Checkpoint {
            pc,
            instret,
            nzcv,
            exited,
            brk,
            output,
            x,
            f,
            pages,
            read_faults,
            campaign,
            trace: trace_mark,
            state_hash,
        })
    }

    /// Durably write the snapshot to `path` (tmp + fsync + rename +
    /// parent-dir fsync). Returns the serialized size, which callers feed
    /// into the `checkpoint_writes` / `checkpoint_bytes` telemetry
    /// counters (this crate sits below the telemetry crate).
    pub fn write(&self, path: &Path) -> Result<u64, CheckpointError> {
        let bytes = self.to_bytes();
        durable::durable_write(path, &bytes)?;
        Ok(bytes.len() as u64)
    }

    /// Read and validate a snapshot from `path`.
    pub fn read(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

fn push_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
}

/// Cursor over a byte slice with typed truncation errors.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read one `tag | len | payload | checksum` section, verifying the
    /// tag and the payload checksum. Returns the payload slice.
    fn section(&mut self, tag: u8) -> Result<&'a [u8], CheckpointError> {
        let got = self.u8()?;
        if got != tag {
            return Err(CheckpointError::MissingSection(tag as char));
        }
        let len = self.u32()? as usize;
        let payload = self.take(len)?;
        let checksum = self.u64()?;
        if checksum != fnv1a64(payload) {
            return Err(CheckpointError::SectionChecksum(tag as char));
        }
        Ok(payload)
    }

    /// Assert a section payload was fully consumed (no trailing garbage).
    fn done(&self, tag: char) -> Result<(), CheckpointError> {
        if self.pos != self.bytes.len() {
            return Err(CheckpointError::BadData(format!(
                "section '{tag}' has {} trailing bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Campaign;

    fn busy_state() -> CpuState {
        let mut st = CpuState::new();
        st.pc = 0x1440;
        st.instret = 98_304; // a multiple of the masked-check interval
        st.nzcv = 0b1010;
        st.brk = 0x4000_2000;
        st.output = b"partial guest output\n".to_vec();
        for i in 0..32 {
            st.x[i] = 0x1111_0000 + i as u64;
            st.f[i] = (i as u64) << 32 | 0xF0F0;
        }
        st.mem.write_u64(0x1000, 0xDEAD_BEEF).unwrap();
        st.mem.write_u64(0x8FF8, 0xCAFE).unwrap(); // crosses into a second page
        st.mem.arm_read_fault(10, 3);
        st
    }

    #[test]
    fn capture_restore_round_trip_is_identical() {
        let st = busy_state();
        let campaign = Campaign::sample(7, 3, 4096);
        let mark = TraceMark { records: 98_304, blocks: 24, bytes: 812_345 };
        let ckpt = Checkpoint::capture(&st, Some(&campaign), mark);

        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.to_bytes(), bytes, "re-serialization is byte-identical");

        let restored = back.restore_state().unwrap();
        assert_eq!(restored.state_hash(), st.state_hash());
        assert_eq!(restored.pc, st.pc);
        assert_eq!(restored.instret, st.instret);
        // Compare fault state BEFORE reading (reads consume fault slots).
        assert_eq!(restored.mem.read_fault_state(), st.mem.read_fault_state());
        assert_eq!(restored.mem.read_u64(0x8FF8).unwrap(), 0xCAFE);

        let rearmed = back.campaign.as_ref().unwrap().rearm().unwrap();
        assert_eq!(rearmed.seed(), 7);
        let specs: Vec<String> = rearmed.plans().iter().map(FaultPlan::spec).collect();
        let orig: Vec<String> = campaign.plans().iter().map(FaultPlan::spec).collect();
        assert_eq!(specs, orig);
    }

    #[test]
    fn fired_flags_reconstruct_from_retired_count() {
        let campaign = Campaign::from_plans(
            vec![
                FaultPlan::parse("trap@100").unwrap(),
                FaultPlan::parse("fetch@50000:0x1").unwrap(),
                FaultPlan::parse("read@5:0").unwrap(),
            ],
            1,
        );
        let mut st = busy_state(); // instret = 98_304
        st.instret = 16_384;
        let cs = CampaignState::capture(&campaign, st.instret);
        assert_eq!(
            cs.plans.iter().map(|(_, f)| *f).collect::<Vec<_>>(),
            vec![true, false, true],
            "trap@100 and the read arm fired before 16384; fetch@50000 has not"
        );
        assert_eq!(cs.fired_count, 2);
        let rearmed = cs.rearm().unwrap();
        assert_eq!(rearmed.fired_count(), 2);
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error() {
        let ckpt = Checkpoint::capture(&busy_state(), None, TraceMark::default());
        let bytes = ckpt.to_bytes();
        for cut in [0, 3, 4, 7, 9, bytes.len() / 2, bytes.len() - 1] {
            let err = Checkpoint::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated
                        | CheckpointError::BadMagic
                        | CheckpointError::SectionChecksum(_)
                        | CheckpointError::MissingSection(_)
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let ckpt = Checkpoint::capture(&busy_state(), None, TraceMark::default());
        let mut bytes = ckpt.to_bytes();
        bytes[0] ^= 0xFF;
        assert_eq!(Checkpoint::from_bytes(&bytes).unwrap_err(), CheckpointError::BadMagic);
        let mut bytes = ckpt.to_bytes();
        bytes[4] = 0xFE;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes).unwrap_err(),
            CheckpointError::BadVersion(_)
        ));
    }

    #[test]
    fn tampered_state_hash_is_caught_at_restore() {
        let st = busy_state();
        let mut ckpt = Checkpoint::capture(&st, None, TraceMark::default());
        ckpt.x[5] ^= 1; // register corruption with a stale embedded hash
        let err = ckpt.restore_state().err().expect("tampered state must not restore");
        assert!(matches!(err, CheckpointError::StateHashMismatch { .. }), "{err:?}");
    }

    #[test]
    fn durable_write_read_round_trip() {
        let dir = std::env::temp_dir().join(format!("isacmp-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let ckpt = Checkpoint::capture(&busy_state(), None, TraceMark::default());
        ckpt.write(&path).unwrap();
        let back = Checkpoint::read(&path).unwrap();
        assert_eq!(back, ckpt);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
