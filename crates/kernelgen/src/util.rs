//! Shared kernel-analysis helpers used by both back-ends.

use crate::ir::*;

/// Walk every expression in a kernel body, visiting each [`Access`].
pub(crate) fn for_each_access<'k>(k: &'k Kernel, f: &mut dyn FnMut(&'k Access)) {
    fn walk<'e>(e: &'e Expr, f: &mut dyn FnMut(&'e Access)) {
        match e {
            Expr::Load(a) => f(a),
            Expr::Un(_, a) => walk(a, f),
            Expr::Bin(_, a, b) => {
                walk(a, f);
                walk(b, f);
            }
            Expr::MulAdd(a, b, c) => {
                walk(a, f);
                walk(b, f);
                walk(c, f);
            }
            Expr::Select { cmp: _, a, b, t, e } => {
                walk(a, f);
                walk(b, f);
                walk(t, f);
                walk(e, f);
            }
            _ => {}
        }
    }
    for s in &k.body {
        match s {
            Stmt::Def { expr, .. } => walk(expr, f),
            Stmt::Store { access, value } => {
                f(access);
                walk(value, f);
            }
            Stmt::Accum { value, .. } => walk(value, f),
        }
    }
}

/// Collect every distinct constant (by bit pattern) in a kernel body.
pub(crate) fn collect_consts(k: &Kernel, out: &mut Vec<u64>) {
    fn walk(e: &Expr, out: &mut Vec<u64>) {
        match e {
            Expr::Const(v) => {
                let b = v.to_bits();
                if !out.contains(&b) {
                    out.push(b);
                }
            }
            Expr::Un(_, a) => walk(a, out),
            Expr::Bin(_, a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Expr::MulAdd(a, b, c) => {
                walk(a, out);
                walk(b, out);
                walk(c, out);
            }
            Expr::Select { cmp: _, a, b, t, e } => {
                walk(a, out);
                walk(b, out);
                walk(t, out);
                walk(e, out);
            }
            _ => {}
        }
    }
    for s in &k.body {
        match s {
            Stmt::Def { expr, .. } => walk(expr, out),
            Stmt::Store { value, .. } => walk(value, out),
            Stmt::Accum { value, .. } => walk(value, out),
        }
    }
}

/// Distinct arrays referenced by a kernel, in first-reference order.
pub(crate) fn arrays_used(k: &Kernel) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    for_each_access(k, &mut |a| {
        if !out.contains(&a.arr.0) {
            out.push(a.arr.0);
        }
    });
    out
}

/// Inner-dimension stride of an array within a kernel (asserts consistency
/// across accesses).
pub(crate) fn inner_stride(k: &Kernel, arr: usize) -> i64 {
    let mut stride: Option<i64> = None;
    for_each_access(k, &mut |a| {
        if a.arr.0 == arr {
            let s = *a.strides.last().unwrap();
            match stride {
                None => stride = Some(s),
                Some(prev) => assert_eq!(
                    prev, s,
                    "kernel {}: array accessed with differing inner strides",
                    k.name
                ),
            }
        }
    });
    stride.unwrap_or(0)
}

/// The (consistent) stride vector an array is accessed with in a kernel.
pub(crate) fn access_strides(k: &Kernel, arr: usize) -> Vec<i64> {
    let mut found: Option<Vec<i64>> = None;
    for_each_access(k, &mut |a| {
        if a.arr.0 == arr {
            match &found {
                None => found = Some(a.strides.clone()),
                Some(prev) => assert_eq!(
                    prev, &a.strides,
                    "kernel {}: array accessed with differing stride vectors",
                    k.name
                ),
            }
        }
    });
    found.unwrap_or_else(|| vec![0; k.dims.len()])
}

/// Distinct `(array, offset)` pairs accessed, in first-reference order.
pub(crate) fn distinct_access_sites(k: &Kernel) -> Vec<(usize, i64)> {
    let mut out: Vec<(usize, i64)> = Vec::new();
    for_each_access(k, &mut |a| {
        let key = (a.arr.0, a.offset);
        if !out.contains(&key) {
            out.push(key);
        }
    });
    out
}

/// Number of accesses (static sites, counting repeats) per array.
pub(crate) fn access_counts(k: &Kernel) -> std::collections::HashMap<usize, usize> {
    let mut out = std::collections::HashMap::new();
    for_each_access(k, &mut |a| {
        *out.entry(a.arr.0).or_insert(0) += 1;
    });
    out
}

/// Canonical (first-seen) constant offset per array: back-ends fold this
/// into the array's cursor so stencil accesses use small *relative*
/// offsets, exactly like GCC's induction-variable optimisation.
pub(crate) fn canonical_offsets(k: &Kernel) -> std::collections::HashMap<usize, i64> {
    let mut out = std::collections::HashMap::new();
    for_each_access(k, &mut |a| {
        out.entry(a.arr.0).or_insert(a.offset);
    });
    out
}
