#![warn(missing_docs)]
//! `isacmp` — the public API for reproducing "An Empirical Comparison of
//! the RISC-V and AArch64 Instruction Sets" (Weaver & McIntosh-Smith,
//! SC-W 2023).
//!
//! The facade wires the whole stack together:
//!
//! 1. a workload ([`Workload`]) is built as a loop-kernel IR program,
//! 2. a compiler personality ([`Personality`]) lowers it to real machine
//!    code for an ISA ([`IsaKind`]),
//! 3. the single-cycle emulation core executes the binary while analysis
//!    observers stream over the retirement trace,
//! 4. results land in an [`ExperimentCell`] / [`ResultMatrix`] with
//!    formatters for every table and figure in the paper.
//!
//! # Quickstart
//!
//! ```
//! use isacmp::{run_cell, IsaKind, Personality, SizeClass, Workload};
//!
//! let cell = run_cell(Workload::Stream, IsaKind::RiscV, &Personality::gcc122(), SizeClass::Test);
//! println!("path length = {}", cell.path_length);
//! println!("ILP = {:.0}", cell.ilp());
//! assert!(cell.critical_path <= cell.path_length);
//! ```

pub use analysis::{
    runtime_ms, CpComposition, CpResult, CriticalPath, DepDistance, DualCriticalPath,
    ExperimentCell, InstMix, PathLength,
    ResultMatrix, WindowStats, WindowedCp, CLOCK_GHZ, PAPER_WINDOW_SIZES,
};
pub use isa_aarch64::AArch64Executor;
pub use isa_riscv::RiscVExecutor;
pub use kernelgen::{compile, interpret, Compiled, KernelProgram, Personality};
pub use simcore::{
    CpuState, EmulationCore, InstGroup, IsaExecutor, IsaKind, Observer, Program, RetiredInst,
    RunStats,
};
pub use uarch::{
    BimodalPredictor, BranchStats, CacheConfig, CacheModel, CacheStats, GsharePredictor,
    InOrderCore, LatencyModel, OoOCore,
    PipelineConfig, PipelineStats, Tx2Latency, UnitLatency,
};
pub use telemetry;
pub use telemetry::{ProfilingObserver, RunReport};
pub use workloads::{SizeClass, Workload};

/// ISA display label matching the paper's tables.
pub fn isa_label(isa: IsaKind) -> &'static str {
    match isa {
        IsaKind::AArch64 => "AArch64",
        IsaKind::RiscV => "RISC-V",
    }
}

/// Execute a compiled program, streaming retirements through `observers`.
///
/// Returns the final CPU state and run statistics.
pub fn execute(
    compiled: &Compiled,
    observers: &mut [&mut dyn Observer],
) -> (CpuState, RunStats) {
    let _span = telemetry::global().enter("emulate");
    let mut st = CpuState::new();
    compiled.program.load(&mut st).expect("program loads");
    let stats = match compiled.program.isa {
        IsaKind::RiscV => EmulationCore::new(RiscVExecutor::new())
            .run(&mut st, observers)
            .expect("riscv run"),
        IsaKind::AArch64 => EmulationCore::new(AArch64Executor::new())
            .run(&mut st, observers)
            .expect("aarch64 run"),
    };
    assert_eq!(stats.exit_code, 0, "workload must exit cleanly");
    telemetry::global().counter_add("instructions_retired", stats.retired);
    (st, stats)
}

/// Run the full measurement set for one (workload, ISA, compiler) cell:
/// path length (total + per kernel), critical path, TX2-scaled critical
/// path and the windowed critical path, in a single emulation pass.
pub fn run_cell(
    workload: Workload,
    isa: IsaKind,
    personality: &Personality,
    size: SizeClass,
) -> ExperimentCell {
    let tel = telemetry::global();
    let _cell_span =
        tel.enter(&format!("cell:{}/{}/{}", workload.name(), isa_label(isa), personality.label()));
    let cell_start = std::time::Instant::now();
    let prog = workload.build(size);
    let compiled = tel.time("compile", || compile(&prog, isa, personality));

    let mut pl = PathLength::new(&compiled.program.regions);
    let mut cp = DualCriticalPath::new(Tx2Latency);
    let mut wcp = WindowedCp::paper();
    {
        let mut obs: Vec<&mut dyn Observer> = vec![&mut pl, &mut cp, &mut wcp];
        let (st, _stats) = execute(&compiled, &mut obs);
        // Cross-check the guest checksum against the reference interpreter:
        // every measured cell is also a correctness test.
        let _verify_span = tel.enter("verify");
        let expected = interpret(&prog, personality).checksum;
        let got = st.mem.read_f64(compiled.checksum_addr).expect("checksum readable");
        assert_eq!(
            got.to_bits(),
            expected.to_bits(),
            "{} on {}: checksum mismatch",
            workload.name(),
            isa_label(isa)
        );
    }

    tel.counter_add("cells_run", 1);
    tel.histogram_record("cell_wall_ms", cell_start.elapsed().as_millis() as u64);
    ExperimentCell {
        workload: workload.name().to_string(),
        compiler: personality.label().to_string(),
        isa: isa_label(isa).to_string(),
        path_length: pl.total(),
        critical_path: cp.unit().critical_path,
        scaled_cp: cp.scaled().critical_path,
        kernels: pl.by_kernel(),
        windows: wcp
            .stats()
            .iter()
            .map(|s| (s.size, s.mean_cp(), s.mean_ilp()))
            .collect(),
    }
}

/// Run the paper's full experiment matrix: all five workloads x
/// {GCC 9.2, GCC 12.2} x {AArch64, RISC-V}, cells in parallel across a
/// scoped thread pool sized to the host.
pub fn run_matrix(size: SizeClass) -> ResultMatrix {
    run_matrix_for(&Workload::ALL, size)
}

/// Run the matrix for a subset of workloads.
pub fn run_matrix_for(workloads: &[Workload], size: SizeClass) -> ResultMatrix {
    let _span = telemetry::global().enter("matrix");
    let combos: Vec<(Workload, Personality, IsaKind)> = workloads
        .iter()
        .flat_map(|&w| {
            [Personality::gcc92(), Personality::gcc122()]
                .into_iter()
                .flat_map(move |p| {
                    [IsaKind::AArch64, IsaKind::RiscV].into_iter().map(move |isa| (w, p, isa))
                })
        })
        .collect();
    let cells = par_map(&combos, |(w, p, isa)| run_cell(*w, *isa, p, size));
    ResultMatrix { cells }
}

/// Map `f` over `items` on a scoped worker pool (one thread per available
/// core, capped by the item count); results keep input order.
fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let slots_mutex = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                slots_mutex.lock().unwrap()[i] = Some(r);
            });
        }
    });
    slots.into_iter().map(|r| r.expect("worker filled every slot")).collect()
}

/// Run a workload through a trace-driven pipeline model (experiment E7,
/// the paper's Future Work). `dcache` optionally attaches an L1D model:
/// `(geometry, miss penalty in cycles)`.
pub fn run_pipeline_full(
    workload: Workload,
    isa: IsaKind,
    personality: &Personality,
    size: SizeClass,
    config: PipelineConfig,
    out_of_order: bool,
    dcache: Option<(CacheConfig, u64)>,
) -> PipelineStats {
    let prog = workload.build(size);
    let compiled = compile(&prog, isa, personality);
    if out_of_order {
        let mut core = OoOCore::new(Tx2Latency, config);
        if let Some((cfg, penalty)) = dcache {
            core = core.with_dcache(cfg, penalty);
        }
        let mut obs: Vec<&mut dyn Observer> = vec![&mut core];
        execute(&compiled, &mut obs);
        core.stats()
    } else {
        let mut core = InOrderCore::new(Tx2Latency, config);
        if let Some((cfg, penalty)) = dcache {
            core = core.with_dcache(cfg, penalty);
        }
        let mut obs: Vec<&mut dyn Observer> = vec![&mut core];
        execute(&compiled, &mut obs);
        core.stats()
    }
}

/// [`run_pipeline_full`] with ideal (single-cycle-hit) memory — the
/// configuration matching the paper's assumptions.
pub fn run_pipeline(
    workload: Workload,
    isa: IsaKind,
    personality: &Personality,
    size: SizeClass,
    config: PipelineConfig,
    out_of_order: bool,
) -> PipelineStats {
    run_pipeline_full(workload, isa, personality, size, config, out_of_order, None)
}

/// Disassemble the instructions of a named kernel region (the paper's §3.3
/// listing-level analysis). Returns `(pc, text)` pairs.
pub fn disassemble_region(compiled: &Compiled, region: &str) -> Vec<(u64, String)> {
    let program = &compiled.program;
    let mut st = CpuState::new();
    program.load(&mut st).expect("program loads");
    let mut out = Vec::new();
    for r in program.regions.iter().filter(|r| r.name == region) {
        for pc in (r.start..r.end).step_by(4) {
            let word = st.mem.read_u32(pc).expect("text mapped");
            let text = match program.isa {
                IsaKind::RiscV => RiscVExecutor::new().disassemble(word),
                IsaKind::AArch64 => AArch64Executor::new().disassemble(word),
            };
            out.push((pc, text));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_cell_invariants() {
        let cell = run_cell(
            Workload::Stream,
            IsaKind::RiscV,
            &Personality::gcc122(),
            SizeClass::Test,
        );
        assert!(cell.critical_path <= cell.path_length);
        assert!(cell.scaled_cp >= cell.critical_path);
        assert!(cell.ilp() >= 1.0);
        let kernel_sum: u64 = cell.kernels.iter().map(|(_, c)| c).sum();
        assert!(kernel_sum <= cell.path_length);
        assert!(!cell.windows.is_empty());
    }

    #[test]
    fn disassembly_of_stream_copy() {
        let prog = Workload::Stream.build(SizeClass::Test);
        let c = compile(&prog, IsaKind::AArch64, &Personality::gcc122());
        let listing = disassemble_region(&c, "copy");
        assert!(!listing.is_empty());
        let text: String = listing.iter().map(|(_, t)| format!("{t}\n")).collect();
        // The paper's Listing 1 register-offset idiom must appear.
        assert!(text.contains("lsl #3"), "expected register-offset addressing:\n{text}");
        assert!(text.contains("b.ne"), "loop back edge:\n{text}");
    }

    #[test]
    fn matrix_runs_one_workload() {
        let m = run_matrix_for(&[Workload::Stream], SizeClass::Test);
        assert_eq!(m.cells.len(), 4);
        assert!(m.get("STREAM", "gcc-9.2", "AArch64").is_some());
        assert!(m.table1().contains("STREAM"));
    }
}
