//! Graceful-shutdown flag: a process-wide "please stop" bit set from
//! SIGINT/SIGTERM and polled at safe points (the retire loop's masked
//! check, the matrix worker pool's claim loop).
//!
//! The container has no crates.io access, so instead of the `signal-hook`
//! or `ctrlc` crates this is a minimal std-only FFI shim over `signal(2)`,
//! which libc always provides and std always links on Unix. The handler
//! does the only async-signal-safe thing possible: store into a static
//! `AtomicBool`. Everything else — checkpointing, partial-matrix flushes,
//! exit codes — happens at the next poll point on a normal thread.
//!
//! On non-Unix targets [`install`] is a no-op returning `false`; the flag
//! can still be set programmatically via [`request`] (which is also how
//! tests drive the interruption paths deterministically).

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

/// The process-wide shutdown request flag.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Which signal raised the flag (0 = none / programmatic [`request`]).
/// Long-lived processes (the `isacmpd` daemon) report it in their typed
/// `Shutdown` frame so clients can tell SIGTERM drain from Ctrl-C.
static LAST_SIGNAL: AtomicI32 = AtomicI32::new(0);

/// Conventional exit status for a run ended by SIGINT/SIGTERM (128 + 2).
pub const EXIT_INTERRUPTED: i32 = 130;

/// `SIGINT` signal number (keyboard interrupt).
pub const SIGINT: i32 = 2;
/// `SIGTERM` signal number (orderly termination, e.g. service managers).
pub const SIGTERM: i32 = 15;

#[cfg(unix)]
mod sys {
    use std::sync::atomic::Ordering;

    extern "C" {
        // `signal(2)` from libc, which std links unconditionally on Unix.
        // Semantics we rely on: one handler per signal, handler stays
        // installed (glibc/musl give BSD semantics), returns SIG_ERR
        // (usize::MAX as a pointer) on failure.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIG_ERR: usize = usize::MAX;

    extern "C" fn on_signal(signum: i32) {
        // Only async-signal-safe operations: relaxed atomic stores.
        super::LAST_SIGNAL.store(signum, Ordering::Relaxed);
        super::SHUTDOWN.store(true, Ordering::Relaxed);
    }

    pub fn install() -> bool {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        let a = unsafe { signal(super::SIGINT, handler) };
        let b = unsafe { signal(super::SIGTERM, handler) };
        a != SIG_ERR && b != SIG_ERR
    }
}

/// Install the SIGINT/SIGTERM handler. Returns `true` when both handlers
/// were installed (always `false` on non-Unix, where only [`request`] can
/// set the flag). Safe to call more than once.
pub fn install() -> bool {
    #[cfg(unix)]
    {
        sys::install()
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// Has a shutdown been requested (by signal or [`request`])?
#[inline]
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Programmatically request a shutdown — what the signal handler does,
/// callable from tests and from orchestration code that wants to stop
/// sibling workers.
pub fn request() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// The signal that raised the shutdown flag, when one did:
/// `Some(SIGINT)` / `Some(SIGTERM)` after a real signal, `None` when the
/// flag is down or was raised programmatically via [`request`].
pub fn last_signal() -> Option<i32> {
    match LAST_SIGNAL.load(Ordering::Relaxed) {
        0 => None,
        sig => Some(sig),
    }
}

/// Human-readable name for a shutdown signal number ("SIGINT",
/// "SIGTERM", or the number itself) — the label daemon `Shutdown` frames
/// and drain logs carry.
pub fn signal_name(sig: i32) -> String {
    match sig {
        SIGINT => "SIGINT".to_string(),
        SIGTERM => "SIGTERM".to_string(),
        other => format!("signal {other}"),
    }
}

/// Clear the flag (and the recorded signal). For tests and for long-lived
/// processes that survive an orderly interruption (the CLI bins exit
/// instead).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::Relaxed);
    LAST_SIGNAL.store(0, Ordering::Relaxed);
}

/// Serializes in-crate tests that toggle the process-wide flag, so they
/// cannot race each other under the parallel test runner.
#[cfg(test)]
pub(crate) static TEST_FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_and_reset_clears() {
        let _guard = TEST_FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        assert_eq!(last_signal(), None, "programmatic request records no signal");
        reset();
        assert!(!requested());
        assert_eq!(last_signal(), None);
    }

    #[test]
    fn signal_names_are_stable() {
        assert_eq!(signal_name(SIGINT), "SIGINT");
        assert_eq!(signal_name(SIGTERM), "SIGTERM");
        assert_eq!(signal_name(9), "signal 9");
    }

    #[cfg(unix)]
    #[test]
    fn real_signal_records_its_number() {
        let _guard = TEST_FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(install());
        reset();
        // Raise SIGTERM at ourselves through libc; the handler must set
        // both the flag and the signal number.
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        assert_eq!(unsafe { raise(SIGTERM) }, 0);
        // signal delivery to the current thread is synchronous for raise().
        assert!(requested());
        assert_eq!(last_signal(), Some(SIGTERM));
        reset();
    }

    #[cfg(unix)]
    #[test]
    fn install_succeeds_on_unix() {
        let _guard = TEST_FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(install());
        reset();
    }
}
