//! The `isacmpd` wire protocol: length-prefixed JSON frames and the typed
//! messages that ride in them.
//!
//! A frame is a 4-byte big-endian payload length followed by exactly that
//! many bytes of UTF-8 JSON (`telemetry::json` — hand-rolled, std-only).
//! Payloads are capped at [`MAX_FRAME`]; anything larger is rejected with
//! a typed error before a single payload byte is buffered, so a hostile
//! or corrupt peer cannot balloon daemon memory. Malformed input of any
//! kind (truncated frame, bad UTF-8, bad JSON, unknown message type)
//! surfaces as a [`ProtoError`] — never a panic (see
//! `tests/proto_roundtrip.rs`, which fuzzes the reader with seeded random
//! bytes).
//!
//! [`FrameReader`] is deliberately poll-style: it owns the partial-frame
//! buffer, so a connection thread can interleave "is there a request
//! yet?" with shutdown-drain checks on a read-timeout socket without ever
//! losing mid-frame bytes.

use std::io::{Read, Write};

use bench::cli;
use isacmp::telemetry::Json;
use isacmp::{CampaignManifest, MatrixOptions, SizeClass};

/// Protocol version spoken by this build. Client messages carry it; a
/// mismatch is a typed error, not silent misinterpretation.
pub const PROTO_VERSION: u64 = 1;

/// Hard cap on a frame payload. A full paper-size `matrix.json` is ~100
/// KiB; 16 MiB leaves room for growth while keeping a hostile length
/// prefix harmless.
pub const MAX_FRAME: usize = 16 << 20;

/// Typed protocol failure. Everything a malformed peer can do lands here.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// Underlying socket error.
    Io(String),
    /// Peer closed the connection mid-frame (`n` bytes stranded).
    Truncated { have: usize },
    /// Length prefix exceeds [`MAX_FRAME`].
    Oversized { len: usize, max: usize },
    /// Payload is not valid UTF-8 JSON.
    BadJson(String),
    /// Frame or message structure is wrong (zero length, missing fields,
    /// unknown message type).
    BadFrame(String),
    /// Peer speaks a different protocol version.
    VersionMismatch { got: u64, want: u64 },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Truncated { have } => {
                write!(f, "connection closed mid-frame ({have} byte(s) stranded)")
            }
            ProtoError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            ProtoError::BadJson(e) => write!(f, "bad frame payload: {e}"),
            ProtoError::BadFrame(e) => write!(f, "bad frame: {e}"),
            ProtoError::VersionMismatch { got, want } => {
                write!(f, "protocol version {got} (this end speaks {want})")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// Write one frame (blocking).
pub fn write_frame(w: &mut impl Write, msg: &Json) -> Result<(), ProtoError> {
    let payload = msg.compact();
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(ProtoError::Oversized { len: bytes.len(), max: MAX_FRAME });
    }
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.extend_from_slice(bytes);
    w.write_all(&frame).map_err(|e| ProtoError::Io(e.to_string()))?;
    w.flush().map_err(|e| ProtoError::Io(e.to_string()))
}

/// One poll step's result.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame arrived.
    Frame(Json),
    /// The socket has no bytes right now (read timeout / would-block);
    /// any partial frame stays buffered for the next poll.
    Idle,
    /// Clean close at a frame boundary.
    Closed,
}

/// Incremental frame reader owning the partial-frame buffer.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Pull bytes from `r` until a full frame, idleness, close, or a
    /// protocol error. Safe to call again after `Idle` — mid-frame bytes
    /// are kept.
    pub fn poll(&mut self, r: &mut impl Read) -> Result<ReadOutcome, ProtoError> {
        let mut tmp = [0u8; 64 * 1024];
        loop {
            if let Some(frame) = self.try_extract()? {
                return Ok(ReadOutcome::Frame(frame));
            }
            match r.read(&mut tmp) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(ReadOutcome::Closed)
                    } else {
                        Err(ProtoError::Truncated { have: self.buf.len() })
                    }
                }
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(ReadOutcome::Idle)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ProtoError::Io(e.to_string())),
            }
        }
    }

    /// Parse one frame out of the buffer, if a complete one is there.
    /// The length prefix is validated *before* waiting for the payload.
    fn try_extract(&mut self) -> Result<Option<Json>, ProtoError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len == 0 {
            return Err(ProtoError::BadFrame("zero-length frame".into()));
        }
        if len > MAX_FRAME {
            return Err(ProtoError::Oversized { len, max: MAX_FRAME });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let text = std::str::from_utf8(&self.buf[4..4 + len])
            .map_err(|e| ProtoError::BadFrame(format!("payload is not UTF-8: {e}")))?;
        let json = Json::parse(text).map_err(ProtoError::BadJson)?;
        self.buf.drain(..4 + len);
        Ok(Some(json))
    }
}

/// Blocking read of exactly one frame, with a reader that dies with the
/// call — so any *extra* frames pulled into its buffer die too. Only use
/// this where at most one frame will ever arrive on the stream (e.g. the
/// goodbye frame of a draining daemon); conversations must keep one
/// [`FrameReader`] per connection (see `client::Client`).
pub fn read_frame(r: &mut impl Read) -> Result<Json, ProtoError> {
    let mut reader = FrameReader::new();
    loop {
        match reader.poll(r)? {
            ReadOutcome::Frame(j) => return Ok(j),
            ReadOutcome::Idle => continue,
            ReadOutcome::Closed => return Err(ProtoError::Truncated { have: 0 }),
        }
    }
}

/// What kind of work a job submission asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// The paper's experiment matrix (optionally with a targeted
    /// `--inject` fault).
    Matrix,
    /// A seeded multi-fault campaign swept over every cell (requires a
    /// campaign spec).
    Campaign,
    /// The matrix through the trace cache: first run captures each cell's
    /// retired-instruction stream, later runs replay it.
    TraceAnalysis,
    /// Trace analysis with the macro-op fusion pass armed: every cell
    /// additionally reports fused pair counts and effective path length.
    /// Served from the same trace cache as [`JobKind::TraceAnalysis`] —
    /// traces are fusion-independent — but cached under a distinct result
    /// provenance key.
    FusionReport,
}

impl JobKind {
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Matrix => "matrix",
            JobKind::Campaign => "campaign",
            JobKind::TraceAnalysis => "trace",
            JobKind::FusionReport => "fusion",
        }
    }

    pub fn parse(s: &str) -> Result<JobKind, String> {
        match s {
            "matrix" => Ok(JobKind::Matrix),
            "campaign" => Ok(JobKind::Campaign),
            "trace" => Ok(JobKind::TraceAnalysis),
            "fusion" => Ok(JobKind::FusionReport),
            other => {
                Err(format!("unknown job kind {other:?}; one of: matrix, campaign, trace, fusion"))
            }
        }
    }
}

/// A job submission: everything that determines a matrix run's output,
/// carried as the same canonical spec strings the `make_tables` CLI
/// takes, parsed and validated by the exact same `bench::cli` grammar —
/// so a spec the daemon accepts is a spec the one-shot CLI would run
/// identically.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub kind: JobKind,
    pub size: SizeClass,
    pub engine: isacmp::Engine,
    pub retries: u32,
    /// Per-cell watchdog, in (fractional) seconds.
    pub deadline_secs: Option<f64>,
    /// `workload/compiler/isa:fault` targeted injection spec.
    pub inject: Option<String>,
    /// `<seed>:<n-faults>` campaign spec.
    pub campaign: Option<String>,
    /// Arm the macro-op fusion pass (implied by
    /// [`JobKind::FusionReport`]; also legal on plain matrix jobs).
    pub fusion: bool,
}

impl JobSpec {
    /// A clean full-matrix job at the given size — the daemon-side
    /// equivalent of `make_tables table1 --size <s>` with defaults.
    pub fn matrix(size: SizeClass) -> JobSpec {
        JobSpec {
            kind: JobKind::Matrix,
            size,
            engine: isacmp::Engine::default(),
            retries: 1,
            deadline_secs: None,
            inject: None,
            campaign: None,
            fusion: false,
        }
    }

    /// Build a spec from CLI args via the shared `bench::cli` grammar
    /// (`--size`, `--engine`, `--retries`, `--deadline-secs`, `--inject`,
    /// `--campaign`, `--kind`). Values are validated here, client-side,
    /// with the same parsers the daemon re-runs server-side.
    pub fn from_args(args: &[String]) -> Result<JobSpec, String> {
        let flags = cli::MatrixFlags::parse(args)?;
        let kind = match cli::flag_value(args, "--kind") {
            Some(k) => JobKind::parse(&k)?,
            None if flags.campaign.is_some() => JobKind::Campaign,
            None => JobKind::Matrix,
        };
        let spec = JobSpec {
            kind,
            size: flags.size,
            engine: flags.engine,
            retries: flags.retries,
            deadline_secs: flags.deadline.map(|d| d.as_secs_f64()),
            inject: cli::flag_value(args, "--inject"),
            campaign: cli::flag_value(args, "--campaign"),
            fusion: flags.fusion || kind == JobKind::FusionReport,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Structural validation (kind/flag agreement). Value grammar is
    /// checked by [`JobSpec::matrix_options`] through `bench::cli`.
    pub fn validate(&self) -> Result<(), String> {
        match self.kind {
            JobKind::Campaign if self.campaign.is_none() => {
                Err("campaign jobs need a --campaign <seed>:<n-faults> spec".into())
            }
            JobKind::Matrix if self.campaign.is_some() => {
                Err("matrix jobs cannot carry a campaign spec (use kind \"campaign\")".into())
            }
            JobKind::TraceAnalysis if self.inject.is_some() || self.campaign.is_some() => {
                Err("trace jobs cannot inject faults (the trace cache ignores armed cells)".into())
            }
            JobKind::FusionReport if self.inject.is_some() || self.campaign.is_some() => {
                Err("fusion jobs cannot inject faults (fusion measures the clean stream)".into())
            }
            JobKind::FusionReport if !self.fusion => {
                Err("fusion jobs must carry the fusion flag".into())
            }
            _ => Ok(()),
        }
    }

    /// The provenance key: a stable canonical string of everything that
    /// determines this job's output. Identical cells across identical
    /// specs hit the cache; the per-job journal file is named by a hash
    /// of this string, which is how a restarted daemon finds the records
    /// of a killed run when the same spec is resubmitted.
    pub fn canonical(&self) -> String {
        let mut key = format!(
            "v{PROTO_VERSION}:{}:{}:{}:r{}:d{}:i{}:c{}",
            self.kind.name(),
            self.size.name(),
            self.engine.name(),
            self.retries,
            self.deadline_secs.map(|d| d.to_string()).unwrap_or_else(|| "-".into()),
            self.inject.as_deref().unwrap_or("-"),
            self.campaign.as_deref().unwrap_or("-"),
        );
        // Appended only when armed, so unfused keys (and the journal file
        // names hashed from them) are byte-identical to older builds'.
        if self.fusion {
            key.push_str(":f1");
        }
        key
    }

    /// Lower the spec into the core's [`MatrixOptions`], mirroring
    /// `make_tables`' `parse_matrix_opts` exactly (same defaults, same
    /// deterministic campaign sampling) — this is what makes a
    /// daemon-served matrix byte-identical to a one-shot run. Also
    /// returns the sampled campaign manifest for the job journal's begin
    /// record.
    pub fn matrix_options(
        &self,
        trace_dir: Option<std::path::PathBuf>,
    ) -> Result<(MatrixOptions, Option<CampaignManifest>), String> {
        self.validate()?;
        let inject = self.inject.as_deref().map(isacmp::InjectSpec::parse).transpose()?;
        let mut manifest = None;
        let campaign = self
            .campaign
            .as_deref()
            .map(|s| -> Result<_, String> {
                let spec = isacmp::CampaignSpec::parse(s)?;
                let m = CampaignManifest::sample(spec);
                let armed = m.campaign()?;
                manifest = Some(m);
                Ok(armed)
            })
            .transpose()?;
        let deadline = self
            .deadline_secs
            .map(|d| cli::deadline_from_secs(&d.to_string()))
            .transpose()?;
        let opts = MatrixOptions {
            deadline,
            retries: self.retries,
            inject,
            campaign,
            trace_dir: matches!(self.kind, JobKind::TraceAnalysis | JobKind::FusionReport)
                .then_some(trace_dir)
                .flatten(),
            heed_shutdown: true,
            checkpoint_dir: None,
            engine: self.engine,
            fusion: self.fusion,
        };
        Ok((opts, manifest))
    }

    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("kind", Json::Str(self.kind.name().into())),
            ("size", Json::Str(self.size.name().into())),
            ("engine", Json::Str(self.engine.name().into())),
            ("retries", Json::Num(self.retries as f64)),
        ];
        if let Some(d) = self.deadline_secs {
            fields.push(("deadline_secs", Json::Num(d)));
        }
        if let Some(i) = &self.inject {
            fields.push(("inject", Json::Str(i.clone())));
        }
        if let Some(c) = &self.campaign {
            fields.push(("campaign", Json::Str(c.clone())));
        }
        if self.fusion {
            fields.push(("fusion", Json::Bool(true)));
        }
        Json::obj(fields)
    }

    pub fn from_json(j: &Json) -> Result<JobSpec, ProtoError> {
        let bad = |m: &str| ProtoError::BadFrame(format!("job spec: {m}"));
        let s = |k: &str| j.get(k).and_then(Json::as_str).map(str::to_string);
        let kind = JobKind::parse(&s("kind").ok_or_else(|| bad("missing kind"))?)
            .map_err(|e| bad(&e))?;
        let size = cli::size_from_name(&s("size").ok_or_else(|| bad("missing size"))?)
            .map_err(|e| bad(&e))?;
        let engine: isacmp::Engine =
            s("engine").ok_or_else(|| bad("missing engine"))?.parse().map_err(|e: String| bad(&e))?;
        let retries = j
            .get("retries")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing retries"))? as u32;
        let deadline_secs = match j.get("deadline_secs") {
            None => None,
            Some(v) => Some(
                v.as_f64()
                    .filter(|d| d.is_finite() && *d >= 0.0)
                    .ok_or_else(|| bad("invalid deadline_secs"))?,
            ),
        };
        let spec = JobSpec {
            kind,
            size,
            engine,
            retries,
            deadline_secs,
            inject: s("inject"),
            campaign: s("campaign"),
            fusion: matches!(j.get("fusion"), Some(Json::Bool(true))),
        };
        spec.validate().map_err(|e| bad(&e))?;
        Ok(spec)
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    Submit { job: JobSpec },
    Ping,
    Stats,
}

impl ClientMsg {
    pub fn to_json(&self) -> Json {
        let proto = ("proto", Json::Num(PROTO_VERSION as f64));
        match self {
            ClientMsg::Submit { job } => Json::obj(vec![
                ("type", Json::Str("submit".into())),
                proto,
                ("job", job.to_json()),
            ]),
            ClientMsg::Ping => Json::obj(vec![("type", Json::Str("ping".into())), proto]),
            ClientMsg::Stats => Json::obj(vec![("type", Json::Str("stats".into())), proto]),
        }
    }

    pub fn from_json(j: &Json) -> Result<ClientMsg, ProtoError> {
        let ty = j
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::BadFrame("missing message type".into()))?;
        let proto = j
            .get("proto")
            .and_then(Json::as_u64)
            .ok_or_else(|| ProtoError::BadFrame("missing proto version".into()))?;
        if proto != PROTO_VERSION {
            return Err(ProtoError::VersionMismatch { got: proto, want: PROTO_VERSION });
        }
        match ty {
            "submit" => {
                let job = j
                    .get("job")
                    .ok_or_else(|| ProtoError::BadFrame("submit without a job".into()))?;
                Ok(ClientMsg::Submit { job: JobSpec::from_json(job)? })
            }
            "ping" => Ok(ClientMsg::Ping),
            "stats" => Ok(ClientMsg::Stats),
            other => Err(ProtoError::BadFrame(format!("unknown client message type {other:?}"))),
        }
    }
}

/// A server stats snapshot (also the `load_driver` hit-rate source).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsBody {
    pub jobs_total: u64,
    pub jobs_active: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_cells: u64,
    pub pool_workers: u64,
    pub pool_queued: u64,
    pub pool_executed: u64,
    pub pool_stolen: u64,
}

impl StatsBody {
    const FIELDS: [&'static str; 9] = [
        "jobs_total",
        "jobs_active",
        "cache_hits",
        "cache_misses",
        "cache_cells",
        "pool_workers",
        "pool_queued",
        "pool_executed",
        "pool_stolen",
    ];

    fn values(&self) -> [u64; 9] {
        [
            self.jobs_total,
            self.jobs_active,
            self.cache_hits,
            self.cache_misses,
            self.cache_cells,
            self.pool_workers,
            self.pool_queued,
            self.pool_executed,
            self.pool_stolen,
        ]
    }

    pub fn to_json(&self) -> Json {
        Json::obj(
            Self::FIELDS
                .iter()
                .zip(self.values())
                .map(|(k, v)| (*k, Json::Num(v as f64)))
                .collect(),
        )
    }

    pub fn from_json(j: &Json) -> Result<StatsBody, ProtoError> {
        let field = |k: &str| {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| ProtoError::BadFrame(format!("stats: missing {k}")))
        };
        Ok(StatsBody {
            jobs_total: field("jobs_total")?,
            jobs_active: field("jobs_active")?,
            cache_hits: field("cache_hits")?,
            cache_misses: field("cache_misses")?,
            cache_cells: field("cache_cells")?,
            pool_workers: field("pool_workers")?,
            pool_queued: field("pool_queued")?,
            pool_executed: field("pool_executed")?,
            pool_stolen: field("pool_stolen")?,
        })
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// One cell resolved (streamed as the job runs).
    Progress { done: u64, total: u64, cell: String, cached: bool },
    /// Job finished. `matrix_json` is the *exact* pretty-printed
    /// `results/matrix.json` text a one-shot `make_tables` run would have
    /// written — transported as a JSON string (the codec's escape
    /// round-trip is exact), so clients can write the bytes verbatim.
    Result { hits: u64, misses: u64, failures: u64, matrix_json: String },
    /// Admission control: too many jobs in flight; try again later.
    Busy { active: u64, limit: u64 },
    /// Typed failure (bad spec, protocol error, internal error).
    Error { message: String },
    /// Orderly daemon drain (SIGTERM/SIGINT); in-flight work is
    /// journaled. The connection closes after this frame.
    Shutdown { signal: String },
    Pong,
    Stats(StatsBody),
}

impl ServerMsg {
    pub fn to_json(&self) -> Json {
        match self {
            ServerMsg::Progress { done, total, cell, cached } => Json::obj(vec![
                ("type", Json::Str("progress".into())),
                ("done", Json::Num(*done as f64)),
                ("total", Json::Num(*total as f64)),
                ("cell", Json::Str(cell.clone())),
                ("cached", Json::Bool(*cached)),
            ]),
            ServerMsg::Result { hits, misses, failures, matrix_json } => Json::obj(vec![
                ("type", Json::Str("result".into())),
                ("hits", Json::Num(*hits as f64)),
                ("misses", Json::Num(*misses as f64)),
                ("failures", Json::Num(*failures as f64)),
                ("matrix_json", Json::Str(matrix_json.clone())),
            ]),
            ServerMsg::Busy { active, limit } => Json::obj(vec![
                ("type", Json::Str("busy".into())),
                ("active", Json::Num(*active as f64)),
                ("limit", Json::Num(*limit as f64)),
            ]),
            ServerMsg::Error { message } => Json::obj(vec![
                ("type", Json::Str("error".into())),
                ("message", Json::Str(message.clone())),
            ]),
            ServerMsg::Shutdown { signal } => Json::obj(vec![
                ("type", Json::Str("shutdown".into())),
                ("signal", Json::Str(signal.clone())),
            ]),
            ServerMsg::Pong => Json::obj(vec![("type", Json::Str("pong".into()))]),
            ServerMsg::Stats(body) => {
                let Json::Obj(mut fields) = body.to_json() else { unreachable!() };
                fields.insert(0, ("type".into(), Json::Str("stats".into())));
                Json::Obj(fields)
            }
        }
    }

    pub fn from_json(j: &Json) -> Result<ServerMsg, ProtoError> {
        let bad = |m: String| ProtoError::BadFrame(m);
        let ty = j
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing message type".into()))?;
        let num = |k: &str| {
            j.get(k).and_then(Json::as_u64).ok_or_else(|| bad(format!("{ty}: missing {k}")))
        };
        let text = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("{ty}: missing {k}")))
        };
        match ty {
            "progress" => Ok(ServerMsg::Progress {
                done: num("done")?,
                total: num("total")?,
                cell: text("cell")?,
                cached: matches!(j.get("cached"), Some(Json::Bool(true))),
            }),
            "result" => Ok(ServerMsg::Result {
                hits: num("hits")?,
                misses: num("misses")?,
                failures: num("failures")?,
                matrix_json: text("matrix_json")?,
            }),
            "busy" => Ok(ServerMsg::Busy { active: num("active")?, limit: num("limit")? }),
            "error" => Ok(ServerMsg::Error { message: text("message")? }),
            "shutdown" => Ok(ServerMsg::Shutdown { signal: text("signal")? }),
            "pong" => Ok(ServerMsg::Pong),
            "stats" => Ok(ServerMsg::Stats(StatsBody::from_json(j)?)),
            other => Err(bad(format!("unknown server message type {other:?}"))),
        }
    }
}

/// Send a typed server message (best-effort senders just drop the error).
pub fn send(w: &mut impl Write, msg: &ServerMsg) -> Result<(), ProtoError> {
    write_frame(w, &msg.to_json())
}
