//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes exactly one fault to inject into an emulation
//! run: force a trap at a chosen retirement count, corrupt the instruction
//! word about to be fetched, or flip a bit in the value returned by the Nth
//! guest memory read. Plans are parsed from compact CLI specs
//! (`trap@N`, `fetch@N[:MASK]`, `read@N[:BIT]`) and are fully
//! deterministic: unspecified bit positions and corruption masks are
//! derived from a SplitMix64 stream seeded by [`FaultPlan::with_seed`]
//! (default [`DEFAULT_FAULT_SEED`]), so the same spec + seed always
//! produces the same fault.
//!
//! A [`Campaign`] scales this from one fault to a seeded *schedule* of
//! many: `Campaign::sample(seed, n, window)` draws `n` fully explicit
//! plans from a SplitMix64 stream (the same generator as the workloads'
//! `DeckRng` input decks), so an entire coverage sweep is replayable from
//! its seed alone. Each plan's canonical spec is recoverable via
//! [`FaultPlan::spec`], which is what campaign manifests serialize.
//!
//! Injection is driven by the [`FaultInjector`] hook — the pre-step
//! counterpart of [`crate::Observer`] — which the
//! [`EmulationCore`](crate::EmulationCore) consults before every step when
//! an injector is attached (see `EmulationCore::with_injector`). The uarch
//! pipeline and cache cores accept the same hook through their `run_guest`
//! drivers. Read-value flips are armed directly on the
//! [`Memory`](crate::Memory) at the start of the run (several can be armed
//! at once).
//!
//! The layer exists to *prove* the harness's fault tolerance: checksum
//! verification must catch silent data corruption, and the experiment
//! matrix must degrade each injected failure to an `ERR` cell instead of
//! losing the whole run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::SimError;
use crate::state::CpuState;

/// Seed used when the caller does not pick one ("FA17" ~ "fault").
pub const DEFAULT_FAULT_SEED: u64 = 0xFA17_FA17_FA17_FA17;

/// One step of a SplitMix64 stream (same generator as the workloads'
/// `DeckRng` input decks — tiny, seedable, and identical everywhere).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What kind of fault a plan injects, and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Raise [`SimError::Fault`] just before the instruction at retirement
    /// count `at_instret` executes (a forced machine check).
    TrapAt {
        /// Retirement count at which the trap fires.
        at_instret: u64,
    },
    /// XOR the instruction word at the current PC with `mask` just before
    /// the instruction at retirement count `at_instret` executes — a
    /// persistent bit flip in instruction memory. `None` derives a
    /// non-zero mask from the seed.
    CorruptFetch {
        /// Retirement count at which the word is corrupted.
        at_instret: u64,
        /// XOR mask; `None` = derived from the seed.
        mask: Option<u32>,
    },
    /// Flip one bit of the value returned by the Nth guest memory read
    /// (1-based, counting every sized read including instruction fetches).
    /// The stored memory is untouched — a transient read upset. `None`
    /// derives the bit index from the seed.
    FlipRead {
        /// Which read to corrupt (1-based).
        nth: u64,
        /// Bit to flip (modulo the read width); `None` = derived.
        bit: Option<u32>,
    },
}

/// Action requested by a [`FaultInjector`] after mutating guest state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectAction {
    /// Nothing to do; proceed with the step.
    Continue,
    /// Instruction memory changed: the executor must drop cached decodes.
    FlushDecodeCache,
}

/// Pre-step hook consulted by the emulation core — the fault-injection
/// counterpart of [`crate::Observer`]. Called with the retirement count the
/// next step will have; may mutate state, request a decode-cache flush, or
/// abort the run with an injected [`SimError`].
pub trait FaultInjector {
    /// Called before each step; `retired` is the number of instructions
    /// retired so far (0 before the first).
    fn before_step(&mut self, state: &mut CpuState, retired: u64) -> Result<InjectAction, SimError>;
}

/// A deterministic single-fault plan. See the module docs for the spec
/// grammar. Cloning a plan re-arms it (the fired flag is per-instance), so
/// retries of a failed cell deterministically re-inject the same fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    kind: FaultKind,
    seed: u64,
    fired: bool,
}

impl FaultPlan {
    /// Build a plan from a kind, with the default seed.
    pub fn new(kind: FaultKind) -> Self {
        FaultPlan { kind, seed: DEFAULT_FAULT_SEED, fired: false }
    }

    /// Parse a CLI spec: `trap@N`, `fetch@N[:MASK]` (mask hex with `0x` or
    /// decimal), or `read@N[:BIT]`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (what, rest) = spec
            .split_once('@')
            .ok_or_else(|| format!("bad fault spec {spec:?}: expected <kind>@<n>[:arg]"))?;
        let (n_str, arg) = match rest.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (rest, None),
        };
        let n: u64 = n_str
            .parse()
            .map_err(|_| format!("bad fault spec {spec:?}: {n_str:?} is not a count"))?;
        let kind = match what {
            "trap" => {
                if arg.is_some() {
                    return Err(format!("bad fault spec {spec:?}: trap takes no argument"));
                }
                FaultKind::TrapAt { at_instret: n }
            }
            "fetch" => {
                let mask = arg
                    .map(|a| parse_u64_maybe_hex(a).map(|v| v as u32))
                    .transpose()
                    .map_err(|e| format!("bad fault spec {spec:?}: {e}"))?;
                if mask == Some(0) {
                    return Err(format!("bad fault spec {spec:?}: a zero mask flips nothing"));
                }
                FaultKind::CorruptFetch { at_instret: n, mask }
            }
            "read" => {
                let bit = arg
                    .map(|a| {
                        a.parse::<u32>().map_err(|_| format!("{a:?} is not a bit index"))
                    })
                    .transpose()
                    .map_err(|e| format!("bad fault spec {spec:?}: {e}"))?;
                if n == 0 {
                    return Err(format!("bad fault spec {spec:?}: reads are counted from 1"));
                }
                FaultKind::FlipRead { nth: n, bit }
            }
            other => {
                return Err(format!(
                    "bad fault spec {spec:?}: unknown kind {other:?} (trap, fetch, read)"
                ))
            }
        };
        Ok(FaultPlan::new(kind))
    }

    /// Replace the seed used to derive unspecified masks / bit indices.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The planned fault.
    pub fn kind(&self) -> &FaultKind {
        &self.kind
    }

    /// Whether this plan instance has already fired.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Force the fired flag (checkpoint-restore path: a restored run must
    /// not re-inject faults that fired before the snapshot).
    pub fn set_fired(&mut self, fired: bool) {
        self.fired = fired;
    }

    /// Whether this plan *would have fired* by the time `retired`
    /// instructions have retired, given the injector's polling discipline
    /// (`before_step` consulted with `retired` = 0, 1, 2, ... before each
    /// step). `FlipRead` arms on the very first poll; `trap`/`fetch` fire
    /// on the poll where `retired == at_instret`. This is how a checkpoint
    /// taken at a step boundary reconstructs fired flags without access to
    /// the boxed injector the core owns.
    pub fn fired_by(&self, retired: u64) -> bool {
        match self.kind {
            FaultKind::FlipRead { .. } => retired > 0,
            FaultKind::TrapAt { at_instret } | FaultKind::CorruptFetch { at_instret, .. } => {
                at_instret < retired
            }
        }
    }

    /// The XOR mask a `fetch` fault will apply (explicit or seed-derived,
    /// always non-zero).
    pub fn fetch_mask(&self) -> u32 {
        match self.kind {
            FaultKind::CorruptFetch { mask: Some(m), .. } => m,
            _ => {
                let mut s = self.seed;
                (splitmix64(&mut s) as u32) | 1
            }
        }
    }

    /// The bit index a `read` fault will flip (explicit or seed-derived;
    /// reduced modulo the read width when applied).
    pub fn read_bit(&self) -> u32 {
        match self.kind {
            FaultKind::FlipRead { bit: Some(b), .. } => b,
            _ => {
                let mut s = self.seed;
                let _ = splitmix64(&mut s); // first draw feeds fetch_mask
                (splitmix64(&mut s) % 64) as u32
            }
        }
    }

    /// Compact human description (for logs and `ERR` cell details).
    pub fn describe(&self) -> String {
        match &self.kind {
            FaultKind::TrapAt { at_instret } => format!("forced trap at instret {at_instret}"),
            FaultKind::CorruptFetch { at_instret, .. } => format!(
                "instruction word xor {:#010x} at instret {at_instret}",
                self.fetch_mask()
            ),
            FaultKind::FlipRead { nth, .. } => {
                format!("bit {} flip on memory read #{nth}", self.read_bit())
            }
        }
    }

    /// Canonical replayable spec for this plan, in the grammar accepted by
    /// [`FaultPlan::parse`]. Derived arguments are made explicit
    /// (`fetch@N:0xMASK`, `read@N:B`), so a spec written into a campaign
    /// manifest reproduces the exact same fault regardless of seed.
    pub fn spec(&self) -> String {
        match &self.kind {
            FaultKind::TrapAt { at_instret } => format!("trap@{at_instret}"),
            FaultKind::CorruptFetch { at_instret, .. } => {
                format!("fetch@{at_instret}:{:#x}", self.fetch_mask())
            }
            FaultKind::FlipRead { nth, .. } => format!("read@{nth}:{}", self.read_bit()),
        }
    }

    /// Draw one fully explicit plan from a SplitMix64 stream. Injection
    /// points are sampled uniformly from `1..=window` (retirement counts
    /// for `trap`/`fetch`, 1-based read ordinals for `read`); masks and bit
    /// indices are always made explicit so [`FaultPlan::spec`] round-trips.
    pub fn sample(stream: &mut u64, window: u64) -> Self {
        let window = window.max(1);
        let at = 1 + splitmix64(stream) % window;
        let kind = match splitmix64(stream) % 3 {
            0 => FaultKind::TrapAt { at_instret: at },
            1 => {
                let mask = (splitmix64(stream) as u32) | 1; // non-zero
                FaultKind::CorruptFetch { at_instret: at, mask: Some(mask) }
            }
            _ => {
                let bit = (splitmix64(stream) % 64) as u32;
                FaultKind::FlipRead { nth: at, bit: Some(bit) }
            }
        };
        FaultPlan::new(kind)
    }
}

/// Default sampling window for campaign injection points. Chosen so that
/// every Test-size workload (shortest path: ~4.3k retirements) executes
/// past any sampled target — a campaign fault always has the chance to
/// fire rather than landing beyond the end of the run.
pub const DEFAULT_CAMPAIGN_WINDOW: u64 = 4096;

/// Parsed form of the CLI campaign spec `<seed>:<n-faults>` (seed decimal
/// or `0x` hex).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignSpec {
    /// SplitMix64 seed the schedule is drawn from.
    pub seed: u64,
    /// How many faults to sample.
    pub n_faults: usize,
}

impl CampaignSpec {
    /// Parse `<seed>:<n-faults>`, e.g. `42:6` or `0xfa17:12`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (seed_str, n_str) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad campaign spec {spec:?}: expected <seed>:<n-faults>"))?;
        let seed = parse_u64_maybe_hex(seed_str)
            .map_err(|e| format!("bad campaign spec {spec:?}: {e}"))?;
        let n_faults: usize = n_str
            .parse()
            .map_err(|_| format!("bad campaign spec {spec:?}: {n_str:?} is not a fault count"))?;
        if n_faults == 0 {
            return Err(format!("bad campaign spec {spec:?}: a campaign needs at least one fault"));
        }
        Ok(CampaignSpec { seed, n_faults })
    }
}

/// A seeded schedule of many faults injected into one run.
///
/// Sampling is pure SplitMix64, so `Campaign::sample(seed, n, window)`
/// always yields the same schedule; the sampled plans are fully explicit
/// (see [`FaultPlan::sample`]) so the whole campaign serializes to specs
/// and replays exactly. The campaign implements [`FaultInjector`] by
/// polling every still-armed plan each step; clones share a fired counter
/// (an `Arc`), so the caller can observe how many faults actually fired
/// even after handing a boxed clone to a core.
#[derive(Debug, Clone)]
pub struct Campaign {
    plans: Vec<FaultPlan>,
    seed: u64,
    fired: Arc<AtomicU64>,
}

impl Campaign {
    /// Draw `n` plans from a SplitMix64 stream seeded with `seed`.
    pub fn sample(seed: u64, n: usize, window: u64) -> Self {
        let mut stream = seed;
        let plans = (0..n).map(|_| FaultPlan::sample(&mut stream, window)).collect();
        Campaign { plans, seed, fired: Arc::new(AtomicU64::new(0)) }
    }

    /// Build a campaign from explicit plans (e.g. replayed from a
    /// manifest's spec strings).
    pub fn from_plans(plans: Vec<FaultPlan>, seed: u64) -> Self {
        Campaign { plans, seed, fired: Arc::new(AtomicU64::new(0)) }
    }

    /// Append one more plan to the schedule.
    pub fn push(&mut self, plan: FaultPlan) {
        self.plans.push(plan);
    }

    /// The scheduled plans, in injection-priority order.
    pub fn plans(&self) -> &[FaultPlan] {
        &self.plans
    }

    /// The seed the schedule was sampled from (or tagged with).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// How many faults have fired so far, across every clone of this
    /// campaign (the counter is shared).
    pub fn fired_count(&self) -> u64 {
        self.fired.load(Ordering::SeqCst)
    }

    /// Compact human description (for logs and `ERR` cell details).
    pub fn describe(&self) -> String {
        format!("campaign seed {:#x}: {} fault(s) scheduled", self.seed, self.plans.len())
    }

    /// Restore per-plan fired flags and the shared fired counter from a
    /// checkpoint: plans marked fired will not re-inject, and
    /// [`Campaign::fired_count`] resumes from the snapshot's value.
    pub fn restore_fired(&mut self, fired_flags: &[bool], fired_count: u64) {
        for (plan, &fired) in self.plans.iter_mut().zip(fired_flags) {
            plan.set_fired(fired);
        }
        self.fired.store(fired_count, Ordering::SeqCst);
    }
}

impl FaultInjector for Campaign {
    fn before_step(&mut self, state: &mut CpuState, retired: u64) -> Result<InjectAction, SimError> {
        let mut action = InjectAction::Continue;
        for plan in &mut self.plans {
            if plan.fired {
                continue;
            }
            let res = plan.before_step(state, retired);
            if plan.fired {
                self.fired.fetch_add(1, Ordering::SeqCst);
            }
            match res? {
                InjectAction::Continue => {}
                InjectAction::FlushDecodeCache => action = InjectAction::FlushDecodeCache,
            }
        }
        Ok(action)
    }
}

fn parse_u64_maybe_hex(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| format!("{s:?} is not a number"))
}

impl FaultInjector for FaultPlan {
    fn before_step(&mut self, state: &mut CpuState, retired: u64) -> Result<InjectAction, SimError> {
        if self.fired {
            return Ok(InjectAction::Continue);
        }
        match self.kind {
            FaultKind::FlipRead { nth, .. } => {
                // Armed once, on the memory itself, before the first step.
                self.fired = true;
                state.mem.arm_read_fault(nth, self.read_bit());
                Ok(InjectAction::Continue)
            }
            FaultKind::TrapAt { at_instret } if retired == at_instret => {
                self.fired = true;
                Err(SimError::Fault {
                    pc: state.pc,
                    msg: format!("injected fault: {}", self.describe()),
                })
            }
            FaultKind::CorruptFetch { at_instret, .. } if retired == at_instret => {
                self.fired = true;
                let word = state.mem.read_u32(state.pc)?;
                state.mem.write_u32(state.pc, word ^ self.fetch_mask())?;
                Ok(InjectAction::FlushDecodeCache)
            }
            _ => Ok(InjectAction::Continue),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_moves() {
        let mut a = 42;
        let mut b = 42;
        let x = splitmix64(&mut a);
        assert_eq!(x, splitmix64(&mut b));
        assert_ne!(splitmix64(&mut a), x, "stream must advance");
    }

    #[test]
    fn parse_all_kinds() {
        assert_eq!(
            FaultPlan::parse("trap@1000").unwrap().kind(),
            &FaultKind::TrapAt { at_instret: 1000 }
        );
        assert_eq!(
            FaultPlan::parse("fetch@7:0xdead").unwrap().kind(),
            &FaultKind::CorruptFetch { at_instret: 7, mask: Some(0xDEAD) }
        );
        assert_eq!(
            FaultPlan::parse("read@5:63").unwrap().kind(),
            &FaultKind::FlipRead { nth: 5, bit: Some(63) }
        );
        assert_eq!(
            FaultPlan::parse("read@5").unwrap().kind(),
            &FaultKind::FlipRead { nth: 5, bit: None }
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in ["", "trap", "trap@", "trap@x", "trap@3:1", "boom@3", "read@0", "fetch@1:0x0", "fetch@1:zz"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn derived_values_are_seed_deterministic() {
        let a = FaultPlan::parse("fetch@10").unwrap();
        let b = FaultPlan::parse("fetch@10").unwrap();
        assert_eq!(a.fetch_mask(), b.fetch_mask());
        assert_ne!(a.fetch_mask(), 0);
        let c = FaultPlan::parse("fetch@10").unwrap().with_seed(1);
        assert_ne!(c.fetch_mask(), a.fetch_mask(), "different seed, different mask");
        let r1 = FaultPlan::parse("read@3").unwrap();
        let r2 = FaultPlan::parse("read@3").unwrap();
        assert_eq!(r1.read_bit(), r2.read_bit());
        assert!(r1.read_bit() < 64);
    }

    #[test]
    fn trap_fires_exactly_once_at_target() {
        let mut plan = FaultPlan::parse("trap@3").unwrap();
        let mut st = CpuState::new();
        for retired in 0..3 {
            assert_eq!(plan.before_step(&mut st, retired).unwrap(), InjectAction::Continue);
        }
        let err = plan.before_step(&mut st, 3).unwrap_err();
        assert!(matches!(err, SimError::Fault { .. }), "{err}");
        // Re-polling after firing is inert (the plan is one-shot).
        assert!(plan.before_step(&mut st, 3).is_ok());
    }

    #[test]
    fn spec_round_trips_through_parse() {
        let mut stream = 0xC0FF_EE00_u64;
        for _ in 0..64 {
            let plan = FaultPlan::sample(&mut stream, DEFAULT_CAMPAIGN_WINDOW);
            let reparsed = FaultPlan::parse(&plan.spec()).unwrap();
            assert_eq!(reparsed.spec(), plan.spec(), "spec must be canonical");
            assert_eq!(reparsed.kind(), plan.kind(), "explicit args must survive");
        }
        // Derived (None) arguments become explicit in the spec.
        let derived = FaultPlan::parse("fetch@9").unwrap();
        assert_eq!(derived.spec(), format!("fetch@9:{:#x}", derived.fetch_mask()));
        let derived = FaultPlan::parse("read@9").unwrap();
        assert_eq!(derived.spec(), format!("read@9:{}", derived.read_bit()));
    }

    #[test]
    fn sample_stays_inside_the_window() {
        let mut stream = 7u64;
        for _ in 0..256 {
            let plan = FaultPlan::sample(&mut stream, 100);
            let at = match *plan.kind() {
                FaultKind::TrapAt { at_instret } => at_instret,
                FaultKind::CorruptFetch { at_instret, mask } => {
                    assert!(mask.unwrap() != 0);
                    at_instret
                }
                FaultKind::FlipRead { nth, bit } => {
                    assert!(bit.unwrap() < 64);
                    nth
                }
            };
            assert!((1..=100).contains(&at), "target {at} outside window");
        }
    }

    #[test]
    fn campaign_spec_parses_seed_and_count() {
        assert_eq!(CampaignSpec::parse("42:6").unwrap(), CampaignSpec { seed: 42, n_faults: 6 });
        assert_eq!(
            CampaignSpec::parse("0xfa17:12").unwrap(),
            CampaignSpec { seed: 0xFA17, n_faults: 12 }
        );
        for bad in ["", "42", "42:", ":6", "42:0", "zz:6", "42:x"] {
            assert!(CampaignSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn campaign_sampling_is_seed_deterministic() {
        let a = Campaign::sample(99, 8, DEFAULT_CAMPAIGN_WINDOW);
        let b = Campaign::sample(99, 8, DEFAULT_CAMPAIGN_WINDOW);
        let specs = |c: &Campaign| c.plans().iter().map(FaultPlan::spec).collect::<Vec<_>>();
        assert_eq!(specs(&a), specs(&b));
        let c = Campaign::sample(100, 8, DEFAULT_CAMPAIGN_WINDOW);
        assert_ne!(specs(&a), specs(&c), "different seed, different schedule");
    }

    #[test]
    fn campaign_fires_each_plan_and_shares_the_counter() {
        let campaign = Campaign::from_plans(
            vec![FaultPlan::parse("fetch@1:0x1").unwrap(), FaultPlan::parse("fetch@2:0x2").unwrap()],
            0,
        );
        let mut live = campaign.clone(); // boxed-injector stand-in
        let mut st = CpuState::new();
        st.pc = 0x1000;
        st.mem.write_u32(0x1000, 0).unwrap();
        assert_eq!(live.before_step(&mut st, 0).unwrap(), InjectAction::Continue);
        assert_eq!(live.before_step(&mut st, 1).unwrap(), InjectAction::FlushDecodeCache);
        assert_eq!(live.before_step(&mut st, 2).unwrap(), InjectAction::FlushDecodeCache);
        assert_eq!(st.mem.read_u32(0x1000).unwrap(), 0x3);
        // The original observes the clone's firings through the shared Arc.
        assert_eq!(campaign.fired_count(), 2);
        assert_eq!(live.before_step(&mut st, 3).unwrap(), InjectAction::Continue);
        assert_eq!(campaign.fired_count(), 2, "one-shot plans stay fired");
    }

    #[test]
    fn campaign_trap_aborts_but_counts_first() {
        let campaign = Campaign::from_plans(vec![FaultPlan::parse("trap@0").unwrap()], 0);
        let mut live = campaign.clone();
        let mut st = CpuState::new();
        assert!(live.before_step(&mut st, 0).is_err());
        assert_eq!(campaign.fired_count(), 1);
    }

    #[test]
    fn fired_by_matches_live_polling() {
        // For each kind, drive a live plan through before_step and check
        // fired_by(retired) agrees with the real fired flag at every
        // checkpoint-eligible boundary.
        for spec in ["trap@3", "fetch@3:0x1", "read@2:0"] {
            let mut live = FaultPlan::parse(spec).unwrap();
            let reference = FaultPlan::parse(spec).unwrap();
            for retired in 0..6u64 {
                assert_eq!(
                    reference.fired_by(retired),
                    live.fired(),
                    "{spec}: divergence before poll at retired={retired}"
                );
                let mut st = CpuState::new();
                st.pc = 0x1000;
                st.mem.write_u32(0x1000, 0).unwrap();
                let _ = live.before_step(&mut st, retired);
            }
        }
    }

    #[test]
    fn restore_fired_suppresses_reinjection() {
        let mut campaign = Campaign::from_plans(
            vec![FaultPlan::parse("trap@1").unwrap(), FaultPlan::parse("trap@5").unwrap()],
            0,
        );
        campaign.restore_fired(&[true, false], 1);
        assert_eq!(campaign.fired_count(), 1);
        let mut st = CpuState::new();
        // trap@1 is marked fired: polling at retired=1 must NOT abort.
        assert!(campaign.before_step(&mut st, 1).is_ok());
        // trap@5 is still live.
        assert!(campaign.before_step(&mut st, 5).is_err());
        assert_eq!(campaign.fired_count(), 2);
    }

    #[test]
    fn corrupt_fetch_flips_bits_and_requests_flush() {
        let mut plan = FaultPlan::parse("fetch@2:0x1").unwrap();
        let mut st = CpuState::new();
        st.pc = 0x1000;
        st.mem.write_u32(0x1000, 0x0000_0013).unwrap();
        assert_eq!(plan.before_step(&mut st, 0).unwrap(), InjectAction::Continue);
        assert_eq!(plan.before_step(&mut st, 2).unwrap(), InjectAction::FlushDecodeCache);
        assert_eq!(st.mem.read_u32(0x1000).unwrap(), 0x0000_0012);
    }
}
