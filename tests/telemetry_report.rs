//! End-to-end checks for the run telemetry subsystem: facade spans and
//! counters recorded by `run_cell`, guest profiling via
//! [`ProfilingObserver`], and `RunReport` JSON round-tripping.
//!
//! The global [`telemetry::Telemetry`] instance is shared across the whole
//! test binary (tests may run in parallel), so assertions here are
//! monotone (`>=`, "contains") rather than exact counts.

use isacmp::telemetry::{Json, RunReport};
use isacmp::{
    compile, run_cell, IsaKind, Observer, Personality, ProfilingObserver, SizeClass, Workload,
};

#[test]
fn run_cell_records_spans_and_counters() {
    let tel = isacmp::telemetry::global();
    let before = tel.counter("cells_run");
    run_cell(Workload::Stream, IsaKind::RiscV, &Personality::gcc122(), SizeClass::Test)
        .expect("cell measures");
    assert!(tel.counter("cells_run") > before);
    assert!(tel.counter("instructions_retired") > 0);

    let names: Vec<String> =
        tel.timeline().records().iter().map(|r| r.name.clone()).collect();
    assert!(names.iter().any(|n| n.starts_with("cell:STREAM/RISC-V/")));
    for stage in ["compile", "emulate", "verify"] {
        assert!(names.iter().any(|n| n == stage), "missing span {stage:?} in {names:?}");
    }
    // Every cell wall time lands in the histogram.
    let snapshot = tel.metrics_snapshot();
    let h = snapshot.histogram("cell_wall_ms").expect("cell_wall_ms recorded");
    assert!(h.count() >= 1);
}

#[test]
fn profiling_observer_attributes_guest_execution() {
    let prog = Workload::Stream.build(SizeClass::Test);
    let compiled = compile(&prog, IsaKind::AArch64, &Personality::gcc122());
    let mut profile = ProfilingObserver::new(&compiled.program.regions);
    {
        let mut obs: Vec<&mut dyn Observer> = vec![&mut profile];
        let (_, stats) = isacmp::execute(&compiled, &mut obs);
        assert_eq!(profile.retired(), stats.retired);
    }
    // STREAM's four kernels must all retire instructions, with triad/add
    // (3-array kernels) at least as hot as copy (2-array kernel).
    let hot = profile.hot_regions(10);
    let count = |name: &str| {
        hot.iter().find(|(n, _)| n == name).map(|(_, c)| *c).unwrap_or(0)
    };
    for k in ["copy", "scale", "add", "triad"] {
        assert!(count(k) > 0, "kernel {k} missing from {hot:?}");
    }
    assert!(count("triad") >= count("copy"));
    // The group mix must be dominated by real work, not Other.
    let mix = profile.group_mix();
    let mixed: u64 = mix.iter().map(|(_, c)| c).sum();
    assert_eq!(mixed, profile.retired());
    assert!(profile.branch_fraction() > 0.0 && profile.branch_fraction() < 0.5);
}

#[test]
fn run_report_round_trips_through_json() {
    let tel = isacmp::telemetry::global();
    run_cell(Workload::Lbm, IsaKind::AArch64, &Personality::gcc92(), SizeClass::Test)
        .expect("cell measures");
    let report = RunReport::new("integration-test")
        .with_run(std::time::Duration::from_millis(12), 48_000, Some(0))
        .finish_from(tel);

    let text = report.to_json().pretty();
    let parsed = Json::parse(&text).expect("report JSON parses");
    let back = RunReport::from_json(&parsed).expect("report JSON maps back");
    assert_eq!(back.command, "integration-test");
    assert_eq!(back.retired, 48_000);
    assert_eq!(back.exit_code, Some(0));
    assert!((back.host_mips - report.host_mips).abs() < 1e-9);
    // The embedded span array must mention the cell we just ran.
    assert!(text.contains("cell:LBM/AArch64/gcc-9.2"));
    assert!(text.contains("instructions_retired"));
}
