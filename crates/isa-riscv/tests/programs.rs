//! End-to-end guest programs exercising instruction classes the workloads
//! use lightly: M-extension division chains, atomics, byte loads/stores,
//! conversions and jump-and-link control flow.

use isa_riscv::{AmoOp, AmoWidth, Inst, RvAsm, RiscVExecutor};
use simcore::{CpuState, EmulationCore, Program};

fn run(program: &Program) -> CpuState {
    let mut st = CpuState::new();
    program.load(&mut st).unwrap();
    EmulationCore::new(RiscVExecutor::new()).run(&mut st, &mut []).unwrap();
    st
}

#[test]
fn gcd_via_rem_loop() {
    // Euclid's algorithm: gcd(1071, 462) = 21, using rem + mv in a loop.
    let mut a = RvAsm::new(0x1_0000, 0x10_0000);
    let out = a.data_zero(8, 8);
    a.li(10, 1071);
    a.li(11, 462);
    let loop_top = a.new_label();
    let done = a.new_label();
    a.bind(loop_top);
    a.beq(11, 0, done);
    a.push(Inst::Op { op: isa_riscv::RegOp::Rem, rd: 12, rs1: 10, rs2: 11 });
    a.mv(10, 11);
    a.mv(11, 12);
    a.j(loop_top);
    a.bind(done);
    a.la(13, out);
    a.sd(10, 13, 0);
    a.exit(0);
    let st = run(&a.finish());
    assert_eq!(st.mem.read_u64(out).unwrap(), 21);
}

#[test]
fn fibonacci_iterative() {
    // fib(20) = 6765 with word-width adds.
    let mut a = RvAsm::new(0x1_0000, 0x10_0000);
    let out = a.data_zero(8, 8);
    a.li(10, 0); // a
    a.li(11, 1); // b
    a.li(12, 20); // n
    let loop_top = a.new_label();
    let done = a.new_label();
    a.bind(loop_top);
    a.beq(12, 0, done);
    a.add(13, 10, 11);
    a.mv(10, 11);
    a.mv(11, 13);
    a.addi(12, 12, -1);
    a.j(loop_top);
    a.bind(done);
    a.la(14, out);
    a.sd(10, 14, 0);
    a.exit(0);
    let st = run(&a.finish());
    assert_eq!(st.mem.read_u64(out).unwrap(), 6765);
}

#[test]
fn atomic_fetch_add_loop() {
    // amoadd.d accumulates 1..=10 into a memory cell; each op returns the
    // running value before the add.
    let mut a = RvAsm::new(0x1_0000, 0x10_0000);
    let cell = a.data_u64(0);
    let last = a.data_zero(8, 8);
    a.la(10, cell);
    a.li(11, 1);
    a.li(12, 10);
    let loop_top = a.new_label();
    a.bind(loop_top);
    a.push(Inst::Amo { op: AmoOp::Add, width: AmoWidth::D, rd: 13, rs1: 10, rs2: 11 });
    a.addi(11, 11, 1);
    a.bge(12, 11, loop_top);
    a.la(14, last);
    a.sd(13, 14, 0); // value observed by the final amoadd (sum of 1..9)
    a.exit(0);
    let st = run(&a.finish());
    assert_eq!(st.mem.read_u64(cell).unwrap(), 55);
    assert_eq!(st.mem.read_u64(last).unwrap(), 45);
}

#[test]
fn byte_memcpy() {
    // lb/sb copy of a string, including non-ASCII bytes.
    let src_data = b"RISC-V \xF0\x9F\xA6\x80!";
    let mut a = RvAsm::new(0x1_0000, 0x10_0000);
    let src = a.data_bytes(src_data);
    let dst = a.data_zero(src_data.len(), 1);
    a.la(10, src);
    a.la(11, dst);
    a.la(12, src + src_data.len() as u64);
    let loop_top = a.new_label();
    a.bind(loop_top);
    a.push(Inst::Load { op: isa_riscv::LoadOp::Lbu, rd: 13, rs1: 10, offset: 0 });
    a.push(Inst::Store { op: isa_riscv::StoreOp::Sb, rs2: 13, rs1: 11, offset: 0 });
    a.addi(10, 10, 1);
    a.addi(11, 11, 1);
    a.bne(10, 12, loop_top);
    a.exit(0);
    let st = run(&a.finish());
    let mut copied = vec![0u8; src_data.len()];
    st.mem.read_bytes(dst, &mut copied).unwrap();
    assert_eq!(&copied, src_data);
}

#[test]
fn int_fp_round_trip_loop() {
    // sum_{i=1..100} i via FP: convert, accumulate, convert back.
    let mut a = RvAsm::new(0x1_0000, 0x10_0000);
    let out = a.data_zero(8, 8);
    a.li(10, 1);
    a.li(11, 100);
    a.push(Inst::FcvtFpFromInt {
        ty: isa_riscv::IntTy::L,
        width: isa_riscv::FpWidth::D,
        frd: 0,
        rs1: 0,
    }); // acc = 0.0
    let loop_top = a.new_label();
    a.bind(loop_top);
    a.fcvt_d_l(1, 10);
    a.fadd_d(0, 0, 1);
    a.addi(10, 10, 1);
    a.bge(11, 10, loop_top);
    a.fcvt_l_d(12, 0);
    a.la(13, out);
    a.sd(12, 13, 0);
    a.exit(0);
    let st = run(&a.finish());
    assert_eq!(st.mem.read_u64(out).unwrap(), 5050);
}

#[test]
fn jal_call_and_return() {
    // A leaf "function" called twice via jal/jalr, doubling its argument.
    let mut a = RvAsm::new(0x1_0000, 0x10_0000);
    let out = a.data_zero(16, 8);
    let func = a.new_label();
    let start = a.new_label();
    a.j(start);
    a.bind(func); // a0 = a0 * 2; ret
    a.add(10, 10, 10);
    a.push(Inst::Jalr { rd: 0, rs1: 1, offset: 0 });
    a.bind(start);
    a.set_entry_here();
    a.li(10, 21);
    a.jal_to(1, func);
    a.la(11, out);
    a.sd(10, 11, 0);
    a.jal_to(1, func);
    a.sd(10, 11, 8);
    a.exit(0);
    let st = run(&a.finish());
    assert_eq!(st.mem.read_u64(out).unwrap(), 42);
    assert_eq!(st.mem.read_u64(out + 8).unwrap(), 84);
}

#[test]
fn entry_point_respected() {
    // set_entry_here after dead code: the dead prefix must not run.
    let mut a = RvAsm::new(0x1_0000, 0x10_0000);
    let out = a.data_u64(7);
    a.la(5, out);
    a.li(6, 999);
    a.sd(6, 5, 0); // dead: would clobber out
    a.set_entry_here();
    a.exit(0);
    let st = run(&a.finish());
    assert_eq!(st.mem.read_u64(out).unwrap(), 7, "dead prefix executed");
}
