//! Compiler personalities: the codegen idioms that differ between GCC 9.2
//! and GCC 12.2 in the paper, plus ablation knobs for experiment E6.

/// Code-generation idiom switches.
///
/// The defaults model the paper's two compilers; individual knobs can be
/// toggled for the idiom-ablation study (DESIGN.md experiment E6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Personality {
    /// AArch64 loop exits use a single `cmp reg, reg` (GCC 12.2). When
    /// false, the GCC 9.2 pattern is emitted: a `sub` materialising the
    /// remaining-count plus a `subs` against it — one extra instruction per
    /// back-edge (the paper's STREAM §3.3 finding).
    pub arm_cmp_loop_exit: bool,
    /// Fold constant stencil offsets into load/store immediates. When false
    /// (GCC 9.2), a separate address `add` is emitted for every access with
    /// a non-zero offset — the reason offset-heavy kernels (LBM) improve
    /// with the newer compiler on RISC-V.
    pub fold_const_offsets: bool,
    /// Allow the AArch64 register-offset addressing mode
    /// (`[base, idx, lsl #3]`). Both paper compilers use it; turning it off
    /// forces RISC-V-style pointer bumping on Arm (ablation).
    pub arm_register_offset: bool,
    /// Use AArch64 post-indexed loads/stores (`[base], #8`). The paper notes
    /// this would give a 4-instruction copy loop but GCC does not choose it;
    /// off for both personalities, on for the ablation.
    pub arm_post_index: bool,
    /// RISC-V fused compare-and-branch (`bne a5, s0, loop`). Always true for
    /// real compilers; the ablation turns it off to emit an explicit
    /// `sltu`/`xor` + `bnez` pair, quantifying the paper's §7 claim that
    /// separate compares could cost AArch64 up to 15 % extra path length.
    pub riscv_fused_compare_branch: bool,
    /// Contract `a*b + c` into fused multiply-add instructions (both GCC
    /// versions do at `-O2`).
    pub fuse_fma: bool,
}

impl Personality {
    /// GCC 9.2 model.
    pub fn gcc92() -> Self {
        Personality {
            arm_cmp_loop_exit: false,
            fold_const_offsets: false,
            arm_register_offset: true,
            arm_post_index: false,
            riscv_fused_compare_branch: true,
            fuse_fma: true,
        }
    }

    /// GCC 12.2 model.
    pub fn gcc122() -> Self {
        Personality {
            arm_cmp_loop_exit: true,
            fold_const_offsets: true,
            arm_register_offset: true,
            arm_post_index: false,
            riscv_fused_compare_branch: true,
            fuse_fma: true,
        }
    }

    /// Human-readable compiler label ("gcc-9.2" / "gcc-12.2" for the two
    /// presets, "custom" otherwise).
    pub fn label(&self) -> &'static str {
        if *self == Personality::gcc92() {
            "gcc-9.2"
        } else if *self == Personality::gcc122() {
            "gcc-12.2"
        } else {
            "custom"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_documented_knobs() {
        let g92 = Personality::gcc92();
        let g122 = Personality::gcc122();
        assert!(!g92.arm_cmp_loop_exit && g122.arm_cmp_loop_exit);
        assert!(!g92.fold_const_offsets && g122.fold_const_offsets);
        assert_eq!(g92.arm_register_offset, g122.arm_register_offset);
        assert!(!g92.arm_post_index && !g122.arm_post_index);
    }

    #[test]
    fn labels() {
        assert_eq!(Personality::gcc92().label(), "gcc-9.2");
        assert_eq!(Personality::gcc122().label(), "gcc-12.2");
        let mut p = Personality::gcc122();
        p.arm_post_index = true;
        assert_eq!(p.label(), "custom");
    }
}
