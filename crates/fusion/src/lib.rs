#![warn(missing_docs)]
//! Macro-op fusion analysis over the retired stream.
//!
//! Celio et al. ("The Renewed Case for RISC") argue RISC-V closes the
//! dynamic-instruction-count gap against denser ISAs via macro-op fusion:
//! a front end that recognises adjacent fusible pairs and retires them as
//! one macro-op. This crate measures that claim for both of our ISAs: a
//! streaming [`FusionPass`] observer watches consecutive retirements,
//! recognises per-ISA fusible pairs ([`PairKind`]), and feeds the *fused*
//! stream — one merged record per fused pair — into its own
//! [`analysis::PathLength`] and [`analysis::DualCriticalPath`], yielding
//! the effective path length and fused critical path next to the
//! unfused baseline.
//!
//! The recognizers are structural: a [`simcore::RetiredInst`] carries
//! groups, register sets and memory accesses but no opcodes (by design —
//! the on-disk trace format carries exactly the same fields, which is
//! what guarantees a live run and a trace replay produce byte-identical
//! fusion reports). Each rule therefore matches the dataflow shape of the
//! idiom rather than its mnemonics; see [`PairKind`] for the pair tables.
//!
//! Pairing is greedy and non-overlapping, exactly like a real fusing
//! front end's adjacent-slot comparator: a retired instruction can
//! participate in at most one pair, and a pair never spans a basic-block
//! boundary — a branch closes the window, and the end of the stream
//! flushes an unconsumed producer unfused.

use analysis::critical_path::DualCriticalPath;
use analysis::path_length::PathLength;
use analysis::tables::FusedCell;
use simcore::{IsaKind, MemAccess, Observer, RegId, Region, RetireSource, RetiredInst, SimError};
use uarch::Tx2Latency;

/// A fusible adjacent pair, per ISA.
///
/// RISC-V kinds follow Celio et al.'s fusion tables; AArch64 kinds are the
/// pairs real Arm cores fuse (`cmp`+`b.cond`) or that a pair-forming front
/// end could combine (`ldp`/`stp` candidates the compiler left as two
/// instructions, `adrp`+`add` address formation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairKind {
    /// RISC-V `slli rd, rs, k` + `add rd', rs1, rd` — indexed address.
    RvShiftAdd,
    /// RISC-V `slli rd, rs, k` + load through `rd` — indexed load.
    RvShiftLoad,
    /// RISC-V `lui`/`auipc` + `addi` — 32-bit constant / address formation.
    RvLuiAddi,
    /// RISC-V `lui`/`auipc` + load through the formed address.
    RvLuiLoad,
    /// RISC-V compare-into-register + branch on that register.
    RvCmpBranch,
    /// AArch64 flag-setting op + conditional branch (`cmp` + `b.cond`).
    A64CmpBranch,
    /// AArch64 `adr`/`adrp`/`movz` + dependent `add` — address formation.
    A64AdrAdd,
    /// AArch64 adjacent same-size loads off one base — an `ldp` candidate.
    A64LoadPair,
    /// AArch64 adjacent same-size stores off one base — an `stp` candidate.
    A64StorePair,
}

impl PairKind {
    /// Every pair kind, RISC-V first, in table order.
    pub const ALL: [PairKind; 9] = [
        PairKind::RvShiftAdd,
        PairKind::RvShiftLoad,
        PairKind::RvLuiAddi,
        PairKind::RvLuiLoad,
        PairKind::RvCmpBranch,
        PairKind::A64CmpBranch,
        PairKind::A64AdrAdd,
        PairKind::A64LoadPair,
        PairKind::A64StorePair,
    ];

    /// Stable short name, used in tables, CSVs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            PairKind::RvShiftAdd => "slli+add",
            PairKind::RvShiftLoad => "slli+ld",
            PairKind::RvLuiAddi => "lui+addi",
            PairKind::RvLuiLoad => "lui+ld",
            PairKind::RvCmpBranch => "cmp+branch",
            PairKind::A64CmpBranch => "cmp+b.cond",
            PairKind::A64AdrAdd => "adr+add",
            PairKind::A64LoadPair => "ldp-candidate",
            PairKind::A64StorePair => "stp-candidate",
        }
    }

    /// Position in [`PairKind::ALL`] (the enum is declared in table order).
    #[inline]
    fn index(self) -> usize {
        self as usize
    }

    /// The ISA whose fusion table this pair belongs to.
    pub fn isa(self) -> IsaKind {
        match self {
            PairKind::RvShiftAdd
            | PairKind::RvShiftLoad
            | PairKind::RvLuiAddi
            | PairKind::RvLuiLoad
            | PairKind::RvCmpBranch => IsaKind::RiscV,
            _ => IsaKind::AArch64,
        }
    }
}

/// The producer's single destination register, if it has exactly one.
/// Every dead-intermediate rule hangs off this: the fused pair's linking
/// register must be unambiguous.
#[inline]
fn single_dst(ri: &RetiredInst) -> Option<RegId> {
    if ri.dsts.len() == 1 {
        ri.dsts.iter().next()
    } else {
        None
    }
}

/// True when the instruction touches no memory (pure register op).
#[inline]
fn no_mem(ri: &RetiredInst) -> bool {
    ri.mem_reads.is_empty() && ri.mem_writes.is_empty()
}

/// A `lui`/`auipc`/`adr`/`adrp`/`movz`-shaped producer: an IntAlu with no
/// register or memory sources — its result depends on nothing in flight,
/// so a consuming `addi`/`add`/load can fuse without stalling.
#[inline]
fn is_srcless_alu(ri: &RetiredInst) -> bool {
    ri.group == simcore::InstGroup::IntAlu && ri.srcs.is_empty() && no_mem(ri) && !ri.is_branch
}

/// Dead-intermediate shape: the consumer reads the producer's single
/// destination `d` *and* overwrites it, so the intermediate value never
/// escapes the pair and the fused macro-op needs no extra dest port.
#[inline]
fn consumes_and_kills(consumer: &RetiredInst, d: RegId) -> bool {
    consumer.srcs.contains(d) && consumer.dsts.contains(d)
}

/// Whether any rule in `isa`'s pair table could accept `ri` as the older
/// (producer) half of a pair. This is exactly the disjunction of the
/// producer-side conditions in [`recognise`] — an instruction failing it
/// cannot fuse regardless of what retires next, so the pass emits it
/// immediately instead of buffering it. The randomized equivalence test
/// against a naive reference pairing pins that this shortcut never changes
/// a result.
#[inline]
fn can_produce(isa: IsaKind, ri: &RetiredInst) -> bool {
    use simcore::InstGroup::{IntAlu, Load, Shift, Store};
    if ri.is_branch {
        return false;
    }
    match isa {
        IsaKind::RiscV => {
            // Every RISC-V rule needs a register-only Shift/IntAlu with a
            // single non-flags destination.
            (ri.group == Shift || ri.group == IntAlu)
                && no_mem(ri)
                && matches!(single_dst(ri), Some(d) if d != RegId::Flags)
        }
        IsaKind::AArch64 => {
            ri.dsts.contains(RegId::Flags)
                || (ri.group == Load && mem_one(&ri.mem_reads).is_some())
                || (ri.group == Store && mem_one(&ri.mem_writes).is_some())
                || (is_srcless_alu(ri) && single_dst(ri).is_some())
        }
    }
}

/// Try to fuse `p` (older) with `c` (newer) under `isa`'s pair table.
/// Returns the recognised kind; rules are tried in table order and the
/// first match wins.
pub fn recognise(isa: IsaKind, p: &RetiredInst, c: &RetiredInst) -> Option<PairKind> {
    use simcore::InstGroup::{Branch, IntAlu, Load, Shift, Store};
    // A branch never produces: the window closes behind it (see
    // `FusionPass::on_retire`), but guard here too for direct callers.
    if p.is_branch {
        return None;
    }
    match isa {
        IsaKind::RiscV => {
            let d = single_dst(p)?;
            // RISC-V has no condition flags; a Flags-linked pair can only
            // appear in a malformed stream and must never fuse here.
            if d == RegId::Flags {
                return None;
            }
            if p.group == Shift && no_mem(p) && !c.is_branch && consumes_and_kills(c, d) {
                if c.group == IntAlu && no_mem(c) {
                    return Some(PairKind::RvShiftAdd);
                }
                if c.group == Load {
                    return Some(PairKind::RvShiftLoad);
                }
            }
            if is_srcless_alu(p) && !c.is_branch && consumes_and_kills(c, d) {
                if c.group == IntAlu && no_mem(c) {
                    return Some(PairKind::RvLuiAddi);
                }
                if c.group == Load {
                    return Some(PairKind::RvLuiLoad);
                }
            }
            // Compare-into-register + branch on exactly that register
            // (beqz/bnez shape — the pair Celio et al. fuse into one
            // compare-and-branch macro-op).
            if p.group == IntAlu
                && no_mem(p)
                && c.group == Branch
                && c.is_branch
                && c.srcs.len() == 1
                && c.srcs.contains(d)
            {
                return Some(PairKind::RvCmpBranch);
            }
            None
        }
        IsaKind::AArch64 => {
            // Flag-setting op + conditional branch reading the flags.
            if p.dsts.contains(RegId::Flags)
                && c.group == Branch
                && c.is_branch
                && c.srcs.contains(RegId::Flags)
            {
                return Some(PairKind::A64CmpBranch);
            }
            // Adjacent same-size accesses at contiguous addresses off the
            // same base registers: what `ldp`/`stp` would have encoded.
            // Checked before the single-destination rules — a store has no
            // destination register at all.
            if p.group == Load && c.group == Load {
                if let (Some(a), Some(b)) = (mem_one(&p.mem_reads), mem_one(&c.mem_reads)) {
                    if a.size == b.size
                        && b.addr == a.addr + a.size as u64
                        && p.srcs == c.srcs
                        && p.dsts.iter().all(|r| !c.srcs.contains(r) && !c.dsts.contains(r))
                    {
                        return Some(PairKind::A64LoadPair);
                    }
                }
            }
            if p.group == Store && c.group == Store {
                if let (Some(a), Some(b)) = (mem_one(&p.mem_writes), mem_one(&c.mem_writes)) {
                    if a.size == b.size && b.addr == a.addr + a.size as u64 {
                        return Some(PairKind::A64StorePair);
                    }
                }
            }
            let d = single_dst(p)?;
            if is_srcless_alu(p)
                && c.group == IntAlu
                && no_mem(c)
                && !c.is_branch
                && consumes_and_kills(c, d)
            {
                return Some(PairKind::A64AdrAdd);
            }
            None
        }
    }
}

/// The single access of a one-entry memory list, if that's what it is.
#[inline]
fn mem_one(list: &simcore::MemList) -> Option<MemAccess> {
    if list.len() == 1 {
        list.iter().next()
    } else {
        None
    }
}

/// Merge a recognised pair into the one macro-op record the fused stream
/// retires. The merged record keeps the producer's PC (region attribution
/// of the pair) and the consumer's group and branch bits (the macro-op
/// completes as its second half does); sources union minus the pair's
/// internal link, so the fused critical path sees the macro-op's true
/// external dependencies.
pub fn merge(kind: PairKind, p: &RetiredInst, c: &RetiredInst) -> RetiredInst {
    let mut m = RetiredInst::new(p.pc, c.group);
    // The register (or flags) produced by `p` purely for `c`'s benefit:
    // internal to the macro-op, not an external source.
    let link: Option<RegId> = match kind {
        PairKind::A64CmpBranch => Some(RegId::Flags),
        PairKind::A64LoadPair | PairKind::A64StorePair => None,
        _ => single_dst(p),
    };
    m.srcs = p
        .srcs
        .iter()
        .chain(c.srcs.iter())
        .filter(|r| Some(*r) != link)
        .collect();
    // Dead-intermediate kinds write exactly what the consumer writes; the
    // rest (cmp+branch keeps its compare result / flags live, pairs have
    // two destinations) keep the union.
    m.dsts = match kind {
        PairKind::RvShiftAdd
        | PairKind::RvShiftLoad
        | PairKind::RvLuiAddi
        | PairKind::RvLuiLoad
        | PairKind::A64AdrAdd => c.dsts,
        _ => p.dsts.union(c.dsts),
    };
    for a in p.mem_reads.iter().chain(c.mem_reads.iter()) {
        m.mem_reads.push(a.addr, a.size);
    }
    for a in p.mem_writes.iter().chain(c.mem_writes.iter()) {
        m.mem_writes.push(a.addr, a.size);
    }
    m.is_branch = c.is_branch;
    m.taken = c.taken;
    m
}

/// Everything the fusion pass measured over one retired stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionReport {
    /// Instructions retired (the unfused path length).
    pub total_retired: u64,
    /// Pairs fused; each removes one instruction from the effective path.
    pub fused_pairs: u64,
    /// Per-kind fusion counts, in [`PairKind::ALL`] order, zeros included.
    pub counts: Vec<(PairKind, u64)>,
    /// Effective (fused) dynamic path length: `total_retired - fused_pairs`.
    pub effective_path_length: u64,
    /// Effective per-kernel instruction counts (macro-ops attributed to
    /// the producer's region).
    pub effective_kernels: Vec<(String, u64)>,
    /// Unit-cost critical path of the fused stream.
    pub fused_critical_path: u64,
    /// TX2-latency-scaled critical path of the fused stream.
    pub fused_scaled_cp: u64,
}

impl FusionReport {
    /// Fraction of the unfused path removed by fusion.
    pub fn reduction(&self) -> f64 {
        if self.total_retired == 0 {
            0.0
        } else {
            self.fused_pairs as f64 / self.total_retired as f64
        }
    }

    /// Count for one pair kind.
    pub fn count(&self, kind: PairKind) -> u64 {
        self.counts.iter().find(|(k, _)| *k == kind).map(|(_, n)| *n).unwrap_or(0)
    }

    /// Package the report as the [`FusedCell`] carried inside an
    /// [`analysis::tables::ExperimentCell`].
    pub fn to_fused_cell(&self) -> FusedCell {
        FusedCell {
            fused_pairs: self.fused_pairs,
            effective_path_length: self.effective_path_length,
            fused_critical_path: self.fused_critical_path,
            fused_scaled_cp: self.fused_scaled_cp,
            pair_counts: self
                .counts
                .iter()
                .filter(|(_, n)| *n > 0)
                .map(|(k, n)| (k.name().to_string(), *n))
                .collect(),
            effective_kernels: self.effective_kernels.clone(),
        }
    }

    /// One human-readable line per non-zero pair kind.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "retired {}, fused {} pair(s) ({:.2}% of path), effective {}\n",
            self.total_retired,
            self.fused_pairs,
            100.0 * self.reduction(),
            self.effective_path_length,
        );
        for (k, n) in self.counts.iter().filter(|(_, n)| *n > 0) {
            out.push_str(&format!("  {:<14} {n}\n", k.name()));
        }
        out.push_str(&format!(
            "  fused CP {} (scaled {})\n",
            self.fused_critical_path, self.fused_scaled_cp
        ));
        out
    }
}

/// Streaming fusion pass: an [`Observer`] that pairs adjacent retirements
/// and measures the fused stream.
///
/// Holds at most one pending (unemitted) instruction. When the next
/// retirement fuses with it, one merged macro-op record flows to the
/// internal analyses; otherwise the pending record flows through unfused
/// and the new one takes its place. Branches are never left pending — a
/// taken-or-not branch ends the fusion window, so a pair can never span a
/// basic-block boundary — and [`Observer::on_finish`] flushes a pending
/// producer unfused, so a stream ending mid-pair fuses nothing across the
/// boundary.
pub struct FusionPass {
    isa: IsaKind,
    pending: Option<RetiredInst>,
    counts: [u64; PairKind::ALL.len()],
    total_retired: u64,
    effective: PathLength,
    fused_cp: DualCriticalPath,
}

impl FusionPass {
    /// Fusion pass for one ISA over a program with the given kernel
    /// regions (for effective per-kernel attribution).
    pub fn new(isa: IsaKind, regions: &[Region]) -> Self {
        FusionPass {
            isa,
            pending: None,
            counts: [0; PairKind::ALL.len()],
            total_retired: 0,
            effective: PathLength::new(regions),
            fused_cp: DualCriticalPath::new(Tx2Latency),
        }
    }

    #[inline]
    fn emit(&mut self, ri: &RetiredInst) {
        self.effective.on_retire(ri);
        self.fused_cp.on_retire(ri);
    }

    /// Pump an entire retirement source (live run, replayed trace, or
    /// record slice) through the pass.
    pub fn consume(&mut self, source: &mut dyn RetireSource) -> Result<u64, SimError> {
        let mut obs: [&mut dyn Observer; 1] = [self];
        source.drive(&mut obs)
    }

    /// The measurements so far. Call after the stream finishes (i.e. after
    /// [`Observer::on_finish`] flushed any pending producer).
    pub fn report(&self) -> FusionReport {
        let fused_pairs: u64 = self.counts.iter().sum();
        FusionReport {
            total_retired: self.total_retired,
            fused_pairs,
            counts: PairKind::ALL.iter().zip(self.counts.iter()).map(|(k, n)| (*k, *n)).collect(),
            effective_path_length: self.effective.total(),
            effective_kernels: self.effective.by_kernel(),
            fused_critical_path: self.fused_cp.unit().critical_path,
            fused_scaled_cp: self.fused_cp.scaled().critical_path,
        }
    }
}

impl Observer for FusionPass {
    #[inline]
    fn on_retire(&mut self, ri: &RetiredInst) {
        self.total_retired += 1;
        match self.pending.take() {
            None => {
                // Only a possible producer is worth buffering; anything
                // else (branches included — nothing fuses across them)
                // retires straight through without the copy.
                if can_produce(self.isa, ri) {
                    self.pending = Some(*ri);
                } else {
                    self.emit(ri);
                }
            }
            Some(p) => {
                if let Some(kind) = recognise(self.isa, &p, ri) {
                    self.counts[kind.index()] += 1;
                    let merged = merge(kind, &p, ri);
                    self.emit(&merged);
                } else {
                    self.emit(&p);
                    if can_produce(self.isa, ri) {
                        self.pending = Some(*ri);
                    } else {
                        self.emit(ri);
                    }
                }
            }
        }
    }

    fn on_finish(&mut self) {
        // End of stream: a producer still waiting for its consumer retires
        // unfused. A pair never fuses across the stream boundary.
        if let Some(p) = self.pending.take() {
            self.emit(&p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{InstGroup, RegSet};

    fn op(group: InstGroup, srcs: &[RegId], dsts: &[RegId]) -> RetiredInst {
        let mut ri = RetiredInst::new(0x100, group);
        ri.srcs = RegSet::of(srcs);
        ri.dsts = RegSet::of(dsts);
        ri
    }

    fn x(n: u8) -> RegId {
        RegId::Int(n)
    }

    fn run(isa: IsaKind, stream: &[RetiredInst]) -> FusionReport {
        let mut pass = FusionPass::new(isa, &[]);
        let mut src: &[RetiredInst] = stream;
        pass.consume(&mut src).unwrap();
        pass.report()
    }

    #[test]
    fn shift_add_fuses_with_dead_intermediate() {
        let stream = vec![
            op(InstGroup::Shift, &[x(1)], &[x(5)]),
            op(InstGroup::IntAlu, &[x(2), x(5)], &[x(5)]),
        ];
        let r = run(IsaKind::RiscV, &stream);
        assert_eq!(r.count(PairKind::RvShiftAdd), 1);
        assert_eq!(r.total_retired, 2);
        assert_eq!(r.effective_path_length, 1);
        // The merged macro-op depends on x1 and x2, not the internal x5.
        assert_eq!(r.fused_critical_path, 1);
    }

    #[test]
    fn live_intermediate_does_not_fuse() {
        // The consumer writes elsewhere: x5 stays live past the pair.
        let stream = vec![
            op(InstGroup::Shift, &[x(1)], &[x(5)]),
            op(InstGroup::IntAlu, &[x(2), x(5)], &[x(6)]),
        ];
        let r = run(IsaKind::RiscV, &stream);
        assert_eq!(r.fused_pairs, 0);
        assert_eq!(r.effective_path_length, 2);
    }

    #[test]
    fn lui_addi_and_lui_load_fuse() {
        let mut ld = op(InstGroup::Load, &[x(7)], &[x(7)]);
        ld.mem_reads.push(0x2000, 8);
        let stream = vec![
            op(InstGroup::IntAlu, &[], &[x(7)]), // lui
            op(InstGroup::IntAlu, &[x(7)], &[x(7)]), // addi
            op(InstGroup::IntAlu, &[], &[x(7)]), // lui
            ld,
        ];
        let r = run(IsaKind::RiscV, &stream);
        assert_eq!(r.count(PairKind::RvLuiAddi), 1);
        assert_eq!(r.count(PairKind::RvLuiLoad), 1);
        assert_eq!(r.effective_path_length, 2);
    }

    #[test]
    fn riscv_cmp_branch_fuses_only_single_source_branches() {
        let mut bz = op(InstGroup::Branch, &[x(5)], &[]);
        bz.is_branch = true;
        let stream = vec![op(InstGroup::IntAlu, &[x(1), x(2)], &[x(5)]), bz.clone()];
        let r = run(IsaKind::RiscV, &stream);
        assert_eq!(r.count(PairKind::RvCmpBranch), 1);

        // A two-source branch (beq rs1, rs2) is not the fused shape.
        let mut beq = op(InstGroup::Branch, &[x(5), x(6)], &[]);
        beq.is_branch = true;
        let stream = vec![op(InstGroup::IntAlu, &[x(1), x(2)], &[x(5)]), beq];
        assert_eq!(run(IsaKind::RiscV, &stream).fused_pairs, 0);
    }

    #[test]
    fn aarch64_cmp_bcond_fuses_through_flags() {
        let cmp = op(InstGroup::IntAlu, &[x(1), x(2)], &[RegId::Flags]);
        let mut b = op(InstGroup::Branch, &[RegId::Flags], &[]);
        b.is_branch = true;
        b.taken = true;
        let r = run(IsaKind::AArch64, &[cmp, b]);
        assert_eq!(r.count(PairKind::A64CmpBranch), 1);
        assert_eq!(r.effective_path_length, 1);
        // RISC-V rules must not see flag-based pairs (RISC-V has no flags).
        let cmp = op(InstGroup::IntAlu, &[x(1), x(2)], &[RegId::Flags]);
        let mut b = op(InstGroup::Branch, &[RegId::Flags], &[]);
        b.is_branch = true;
        assert_eq!(run(IsaKind::RiscV, &[cmp, b]).fused_pairs, 0);
    }

    #[test]
    fn load_pair_requires_contiguous_same_base() {
        let mk = |addr: u64, dst: u8| {
            let mut ld = op(InstGroup::Load, &[x(1)], &[x(dst)]);
            ld.mem_reads.push(addr, 8);
            ld
        };
        let r = run(IsaKind::AArch64, &[mk(0x1000, 2), mk(0x1008, 3)]);
        assert_eq!(r.count(PairKind::A64LoadPair), 1);
        // Non-contiguous: no pair.
        assert_eq!(run(IsaKind::AArch64, &[mk(0x1000, 2), mk(0x1010, 3)]).fused_pairs, 0);
        // Second load's address depends on the first's result: no pair.
        let dep = {
            let mut ld = op(InstGroup::Load, &[x(2)], &[x(3)]);
            ld.mem_reads.push(0x1008, 8);
            ld
        };
        assert_eq!(run(IsaKind::AArch64, &[mk(0x1000, 2), dep]).fused_pairs, 0);
    }

    #[test]
    fn store_pair_fuses_contiguous_writes() {
        let mk = |addr: u64, src: u8| {
            let mut st = op(InstGroup::Store, &[x(1), x(src)], &[]);
            st.mem_writes.push(addr, 8);
            st
        };
        let r = run(IsaKind::AArch64, &[mk(0x1000, 2), mk(0x1008, 3)]);
        assert_eq!(r.count(PairKind::A64StorePair), 1);
        let m = merge(
            PairKind::A64StorePair,
            &mk(0x1000, 2),
            &mk(0x1008, 3),
        );
        assert_eq!(m.mem_writes.len(), 2);
    }

    #[test]
    fn fusion_is_greedy_and_non_overlapping() {
        // shift add shift: the first two fuse, the third waits — and a
        // following add fuses with *it*, not with the consumed middle op.
        let stream = vec![
            op(InstGroup::Shift, &[x(1)], &[x(5)]),
            op(InstGroup::IntAlu, &[x(2), x(5)], &[x(5)]),
            op(InstGroup::Shift, &[x(3)], &[x(6)]),
            op(InstGroup::IntAlu, &[x(4), x(6)], &[x(6)]),
        ];
        let r = run(IsaKind::RiscV, &stream);
        assert_eq!(r.count(PairKind::RvShiftAdd), 2);
        assert_eq!(r.effective_path_length, 2);
    }

    #[test]
    fn branch_closes_the_fusion_window() {
        // producer | branch | consumer: the branch between them must stop
        // the pair, and the branch itself must not be left pending.
        let mut br = op(InstGroup::Branch, &[x(9)], &[]);
        br.is_branch = true;
        let stream = vec![
            op(InstGroup::Shift, &[x(1)], &[x(5)]),
            br,
            op(InstGroup::IntAlu, &[x(2), x(5)], &[x(5)]),
        ];
        let r = run(IsaKind::RiscV, &stream);
        // The shift could have fused with the branch? No — shift+branch is
        // not a pair; and the post-branch add must not pair with the
        // pre-branch shift.
        assert_eq!(r.fused_pairs, 0);
        assert_eq!(r.effective_path_length, 3);
    }

    #[test]
    fn fused_cp_shortens_serial_address_chains() {
        // lui; addi; ld — unfused CP 3 (serial), fused (lui+addi) + ld:
        // CP 2. The fused stream's critical path must see the shortening.
        let mut ld = op(InstGroup::Load, &[x(7)], &[x(8)]);
        ld.mem_reads.push(0x3000, 8);
        let stream = vec![
            op(InstGroup::IntAlu, &[], &[x(7)]),
            op(InstGroup::IntAlu, &[x(7)], &[x(7)]),
            ld,
        ];
        let r = run(IsaKind::RiscV, &stream);
        assert_eq!(r.count(PairKind::RvLuiAddi), 1);
        assert_eq!(r.fused_critical_path, 2);
    }

    #[test]
    fn empty_stream_reports_zeroes() {
        let r = run(IsaKind::RiscV, &[]);
        assert_eq!(r.total_retired, 0);
        assert_eq!(r.fused_pairs, 0);
        assert_eq!(r.effective_path_length, 0);
        assert_eq!(r.fused_critical_path, 0);
        assert_eq!(r.reduction(), 0.0);
    }

    #[test]
    fn single_instruction_stream_flushes_unfused() {
        let r = run(IsaKind::RiscV, &[op(InstGroup::Shift, &[x(1)], &[x(5)])]);
        assert_eq!(r.total_retired, 1);
        assert_eq!(r.fused_pairs, 0);
        assert_eq!(r.effective_path_length, 1, "on_finish must flush the pending producer");
    }

    #[test]
    fn stream_ending_mid_pair_does_not_fuse_across_the_boundary() {
        // First stream ends on a producer; second stream starts with what
        // would have been its consumer. Driven as two separate sources
        // (two on_finish flushes), nothing may fuse.
        let producer = op(InstGroup::Shift, &[x(1)], &[x(5)]);
        let consumer = op(InstGroup::IntAlu, &[x(2), x(5)], &[x(5)]);
        let mut pass = FusionPass::new(IsaKind::RiscV, &[]);
        let mut a: &[RetiredInst] = &[producer.clone()];
        pass.consume(&mut a).unwrap();
        let mut b: &[RetiredInst] = &[consumer.clone()];
        pass.consume(&mut b).unwrap();
        let r = pass.report();
        assert_eq!(r.fused_pairs, 0, "a pair must not fuse across a stream boundary");
        assert_eq!(r.effective_path_length, 2);
        // The same two records in one stream do fuse — the boundary is
        // what stopped it above.
        assert_eq!(run(IsaKind::RiscV, &[producer, consumer]).fused_pairs, 1);
    }

    #[test]
    fn effective_length_always_equals_total_minus_pairs() {
        // Pseudo-random streams: the invariant the tables rely on.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for isa in [IsaKind::RiscV, IsaKind::AArch64] {
            let stream: Vec<RetiredInst> = (0..500)
                .map(|_| {
                    let r = next();
                    let g = match r % 5 {
                        0 => InstGroup::Shift,
                        1 => InstGroup::IntAlu,
                        2 => InstGroup::Load,
                        3 => InstGroup::Branch,
                        _ => InstGroup::Store,
                    };
                    let dst = [x((r >> 16) as u8 % 8)];
                    let dsts: &[_] = if g == InstGroup::Store { &[] } else { &dst };
                    let mut ri = op(g, &[x((r >> 8) as u8 % 8)], dsts);
                    ri.is_branch = g == InstGroup::Branch;
                    if g == InstGroup::Load {
                        ri.mem_reads.push(0x1000 + (r % 64) * 8, 8);
                    }
                    if g == InstGroup::Store {
                        ri.mem_writes.push(0x1000 + (r % 64) * 8, 8);
                    }
                    ri
                })
                .collect();
            let r = run(isa, &stream);
            assert_eq!(r.total_retired, 500);
            assert_eq!(r.effective_path_length, r.total_retired - r.fused_pairs);
            assert_eq!(r.fused_pairs, r.counts.iter().map(|(_, n)| n).sum::<u64>());
            // Only this ISA's kinds may fire.
            for (k, n) in &r.counts {
                if *n > 0 {
                    assert_eq!(k.isa(), isa, "{k:?} fired under {isa:?}");
                }
            }
        }
    }

    #[test]
    fn buffering_shortcut_matches_naive_reference_pairing() {
        // `on_retire` refuses to buffer instructions `can_produce` rejects;
        // that shortcut must be invisible. Compare against a naive greedy
        // pairing that consults `recognise` for every adjacent pair, on
        // streams biased to hit every rule family (srcless ALUs, flag
        // setters, contiguous memory runs).
        for (i, k) in PairKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i, "ALL must be in declaration order");
        }
        fn naive(
            isa: IsaKind,
            stream: &[RetiredInst],
        ) -> (Vec<RetiredInst>, [u64; PairKind::ALL.len()]) {
            let mut out = Vec::new();
            let mut counts = [0u64; PairKind::ALL.len()];
            let mut i = 0;
            while i < stream.len() {
                if i + 1 < stream.len() {
                    if let Some(k) = recognise(isa, &stream[i], &stream[i + 1]) {
                        counts[k.index()] += 1;
                        out.push(merge(k, &stream[i], &stream[i + 1]));
                        i += 2;
                        continue;
                    }
                }
                out.push(stream[i]);
                i += 1;
            }
            (out, counts)
        }
        let mut state = 0xfeed_face_cafe_f00du64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for isa in [IsaKind::RiscV, IsaKind::AArch64] {
            let stream: Vec<RetiredInst> = (0..800)
                .map(|_| {
                    let r = next();
                    let g = match r % 5 {
                        0 => InstGroup::Shift,
                        1 => InstGroup::IntAlu,
                        2 => InstGroup::Load,
                        3 => InstGroup::Branch,
                        _ => InstGroup::Store,
                    };
                    let mut ri = RetiredInst::new(0x100, g);
                    // A quarter of ops are srcless (lui/adr shapes); flag
                    // setters and flag readers appear for the A64 rules.
                    if (r >> 24) % 4 != 0 {
                        ri.srcs = RegSet::of(&[x((r >> 8) as u8 % 4)]);
                    }
                    if g == InstGroup::Branch {
                        ri.is_branch = true;
                        if (r >> 32) % 3 == 0 {
                            ri.srcs = RegSet::of(&[RegId::Flags]);
                        }
                    } else if g != InstGroup::Store {
                        ri.dsts = if g == InstGroup::IntAlu && (r >> 40) % 4 == 0 {
                            RegSet::of(&[RegId::Flags])
                        } else {
                            RegSet::of(&[x((r >> 16) as u8 % 4)])
                        };
                    }
                    // Addresses cluster on an 8-byte grid so contiguous
                    // ldp/stp candidates actually occur.
                    if g == InstGroup::Load {
                        ri.mem_reads.push(0x1000 + (r % 8) * 8, 8);
                    }
                    if g == InstGroup::Store {
                        ri.mem_writes.push(0x1000 + (r % 8) * 8, 8);
                    }
                    ri
                })
                .collect();
            let r = run(isa, &stream);
            let (fused_stream, counts) = naive(isa, &stream);
            assert_eq!(r.effective_path_length as usize, fused_stream.len());
            for (j, (k, n)) in r.counts.iter().enumerate() {
                assert_eq!(*n, counts[j], "{k:?} count diverged under {isa:?}");
            }
            assert!(r.fused_pairs > 0, "stream must actually exercise fusion under {isa:?}");
            let mut cp = DualCriticalPath::new(Tx2Latency);
            for ri in &fused_stream {
                cp.on_retire(ri);
            }
            assert_eq!(r.fused_critical_path, cp.unit().critical_path);
            assert_eq!(r.fused_scaled_cp, cp.scaled().critical_path);
        }
    }

    #[test]
    fn report_round_trips_into_fused_cell() {
        let stream = vec![
            op(InstGroup::Shift, &[x(1)], &[x(5)]),
            op(InstGroup::IntAlu, &[x(2), x(5)], &[x(5)]),
        ];
        let r = run(IsaKind::RiscV, &stream);
        let fc = r.to_fused_cell();
        assert_eq!(fc.fused_pairs, 1);
        assert_eq!(fc.effective_path_length, 1);
        assert_eq!(fc.pair_counts, vec![("slli+add".to_string(), 1)]);
        let s = r.summary();
        assert!(s.contains("slli+add"), "{s}");
    }
}
