//! A minimal, dependency-free JSON value, writer and parser.
//!
//! The repo builds with no registry access, so result/report serialisation
//! is hand-rolled: build a [`Json`] tree, render it with [`Json::pretty`]
//! (or `to_string` for compact output), and read it back with
//! [`Json::parse`]. Object member order is preserved, which keeps emitted
//! reports diffable run to run.

use std::fmt::Write as _;

/// A JSON value. `Default` is `Null`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Json {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for an object built from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value as `u64` (lossy past 2^53, like all JSON).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|v| *v >= 0.0).map(|v| v as u64)
    }

    /// Numeric value as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().map(|v| v as i64)
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render on a single line with no trailing newline — the JSON Lines
    /// building block. Same output as `to_string`; the name documents
    /// intent at call sites.
    pub fn compact(&self) -> String {
        self.to_string()
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Json::Obj(members) => write_seq(out, indent, '{', '}', members.len(), |out, i, ind| {
                let (k, v) = &members[i];
                write_str(out, k);
                out.push_str(": ");
                v.write(out, ind);
            }),
        }
    }

    /// Parse a JSON document. Returns a readable error with byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null"); // JSON has no Inf/NaN
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    if len == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    for i in 0..len {
        match indent {
            Some(level) => {
                out.push('\n');
                out.push_str(&"  ".repeat(level + 1));
                item(out, i, Some(level + 1));
            }
            None => item(out, i, None),
        }
        if i + 1 < len {
            out.push(',');
            if indent.is_none() {
                out.push(' ');
            }
        }
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_round_trip_preserves_order() {
        let v = Json::obj(vec![
            ("z", Json::Num(1.0)),
            ("a", Json::Arr(vec![Json::Num(2.0), Json::Str("x\"y\n".into())])),
            ("m", Json::obj(vec![("k", Json::Null)])),
        ]);
        let compact = v.to_string();
        let pretty = v.pretty();
        assert_eq!(Json::parse(&compact).unwrap(), v);
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        // Insertion order survives rendering.
        assert!(compact.find("\"z\"").unwrap() < compact.find("\"a\"").unwrap());
    }

    #[test]
    fn string_escapes() {
        let v = Json::Str("tab\t nl\n quote\" back\\ ctrl\u{1}".into());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn large_integers_exact() {
        let v = Json::Num(3_350_107_615.0);
        assert_eq!(v.to_string(), "3350107615");
        assert_eq!(Json::parse("3350107615").unwrap().as_u64(), Some(3_350_107_615));
    }

    #[test]
    fn errors_are_clean() {
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn compact_is_single_line() {
        let v = Json::obj(vec![("a", Json::Arr(vec![Json::Num(1.0), Json::Null]))]);
        let c = v.compact();
        assert_eq!(c, v.to_string());
        assert!(!c.contains('\n'), "{c}");
        assert_eq!(Json::parse(&c).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::Num(v).to_string(), "null");
        }
        // Inside structures too, and the result stays parseable.
        let v = Json::obj(vec![("bad", Json::Num(f64::NAN)), ("ok", Json::Num(1.5))]);
        let text = v.pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("bad"), Some(&Json::Null));
        assert_eq!(parsed.get("ok").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn every_control_character_escapes_and_round_trips() {
        let s: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let v = Json::Str(s.clone());
        let text = v.to_string();
        // No raw control bytes may survive in the rendering.
        assert!(text.bytes().all(|b| b >= 0x20), "raw control byte in {text:?}");
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s.as_str()));
    }

    #[test]
    fn unicode_strings_round_trip() {
        let v = Json::Str("héllo → 世界 🚀".into());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        // \u escapes parse, including the replacement of lone surrogates.
        assert_eq!(Json::parse(r#""é""#).unwrap().as_str(), Some("é"));
        assert_eq!(Json::parse(r#""\ud800""#).unwrap().as_str(), Some("\u{fffd}"));
        assert!(Json::parse(r#""\uzzzz""#).is_err());
    }

    #[test]
    fn deep_nesting_round_trips() {
        // 128 levels of alternating arrays and objects.
        let mut v = Json::Num(7.0);
        for i in 0..128 {
            v = if i % 2 == 0 {
                Json::Arr(vec![v])
            } else {
                Json::obj(vec![("d", v)])
            };
        }
        for text in [v.to_string(), v.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
        // Unbalanced deep input errors instead of succeeding bogusly.
        let open = "[".repeat(128);
        assert!(Json::parse(&open).is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 4, "s": "x", "b": true, "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
    }
}
